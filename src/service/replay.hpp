// Sim-driven closed-loop replay: the deterministic validation harness for
// the online control loop.
//
// The live PipelineService observes wall-clock arrivals, which makes its
// end-to-end behavior timing-dependent — fine for the soak test, useless for
// asserting convergence. replay_trace() runs the *same* controller against a
// synthetic arrival trace in pure virtual time:
//
//   for each chunk of `chunk_items` arrivals:
//     1. draw the chunk's inter-arrival gaps from the offered process;
//     2. attribute arrival j to session j mod `sessions` (symmetric
//        round-robin producers) and apply the current admission cut —
//        arrivals of shed sessions are dropped and their gaps merge into
//        the next admitted arrival's gap, exactly like the live watermark;
//     3. simulate the admitted stream for the chunk under the plan loaded
//        at chunk start (sim::simulate_enforced_waits + TraceArrivals);
//     4. feed every *offered* gap plus the chunk's worst observed latency
//        to the controller and tick() it, then recompute the admission cut
//        — mirroring the service worker's drain loop, where plan swaps and
//        admission changes land between batches, never inside one.
//
// Because every piece (arrival trace, estimator, solver, simulator) is
// deterministic, a rate-step or rate-ramp replay converges to exactly the
// schedule the offline oracle (solve at the true post-change rate) produces,
// and the tests assert that bit-for-bit via the plan's firing intervals.
#pragma once

#include <cstdint>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "control/controller.hpp"
#include "core/enforced_waits.hpp"
#include "sdf/pipeline.hpp"
#include "util/types.hpp"

namespace ripple::service {

struct ReplayConfig {
  Cycles deadline = 0.0;       ///< end-to-end deadline D (> 0)
  Cycles initial_tau0 = 0.0;   ///< controller prior (> 0)
  /// Worst-case multipliers; empty selects EnforcedWaitsConfig::optimistic.
  std::vector<double> b;
  control::ControllerConfig controller;
  std::size_t chunk_items = 256;  ///< offered arrivals per control interval
  std::size_t chunks = 64;        ///< control intervals to replay
  std::size_t sessions = 4;       ///< symmetric round-robin producers
  std::uint64_t seed = 0;         ///< arrival + gain sampling streams
};

/// One control interval of the replay.
struct ReplayChunk {
  Cycles mean_gap_offered = 0.0;  ///< ground-truth mean gap this chunk
  Cycles tau0_estimate = 0.0;     ///< estimator output after the chunk
  Cycles planned_tau0 = 0.0;      ///< operating point of the plan in force
  std::uint64_t plan_epoch = 0;
  bool shedding = false;
  std::size_t admitted_sessions = 0;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_misses = 0;
  Cycles worst_latency = 0.0;
  double active_fraction = 0.0;
};

struct ReplayReport {
  std::vector<ReplayChunk> chunks;
  /// The plan in force when the replay ended.
  control::PlanPtr final_plan;
  std::uint64_t total_offered = 0;
  std::uint64_t total_admitted = 0;
  std::uint64_t total_shed = 0;
  std::uint64_t total_misses = 0;
  control::ControllerStats controller;
};

/// Replay `offered` through the closed loop. The process is consumed
/// statefully (construct a fresh one per replay). Throws std::logic_error on
/// malformed config, like the live service.
ReplayReport replay_trace(const sdf::PipelineSpec& pipeline,
                          arrivals::ArrivalProcess& offered,
                          const ReplayConfig& config);

}  // namespace ripple::service
