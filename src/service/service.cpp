#include "service/service.hpp"

#include <algorithm>
#include <any>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "util/assert.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace ripple::service {

namespace {

control::Controller make_controller(const sdf::PipelineSpec& pipeline,
                                    const ServiceConfig& config) {
  core::EnforcedWaitsConfig waits;
  if (config.b.empty()) {
    waits = core::EnforcedWaitsConfig::optimistic(pipeline);
  } else {
    waits.b = config.b;
  }
  return control::Controller(pipeline, std::move(waits), config.deadline,
                             config.initial_tau0, config.controller);
}

void validate_config(const ServiceConfig& config) {
  RIPPLE_REQUIRE(config.session_capacity > 0,
                 "session capacity must be positive");
  RIPPLE_REQUIRE(config.batch_size > 0, "batch size must be positive");
  RIPPLE_REQUIRE(config.cycles_per_us > 0.0, "cycles_per_us must be positive");
  RIPPLE_REQUIRE(config.shard_queue_capacity > 0,
                 "shard queue capacity must be positive");
  RIPPLE_REQUIRE(config.exec_threads <= 256,
                 "exec_threads must be at most 256 (0 = hardware "
                 "concurrency)");
}

}  // namespace

PipelineService::Shard::Shard(std::size_t shard_index,
                              const sdf::PipelineSpec& pipeline,
                              std::vector<runtime::StageFn> stages,
                              const ServiceConfig& config)
    : index(shard_index),
      executor(pipeline, std::move(stages)),
      controller(make_controller(pipeline, config)),
      queue(config.shard_queue_capacity),
      // Until the first control tick, admit every session the initial plan
      // can take. A shedding initial plan starts with the gate closed to new
      // sessions; the first tick opens it to the admitted count.
      admitted_watermark(controller.plan()->shedding ? 0 : UINT64_MAX) {
  drain_scratch.reserve(config.batch_size);
}

PipelineService::PipelineService(sdf::PipelineSpec pipeline,
                                 std::vector<runtime::StageFn> stages,
                                 ServiceConfig config)
    : pipeline_(std::move(pipeline)),
      config_(std::move(config)),
      ledger_(config_.shards),
      epoch_time_(std::chrono::steady_clock::now()) {
  RIPPLE_REQUIRE(config_.shards == 1,
                 "shards > 1 needs the StageFactory constructor — stateful "
                 "stages cannot be shared across shard workers");
  validate_config(config_);
  shards_.push_back(
      std::make_unique<Shard>(0, pipeline_, std::move(stages), config_));
}

PipelineService::PipelineService(sdf::PipelineSpec pipeline,
                                 StageFactory stages, ServiceConfig config)
    : pipeline_(std::move(pipeline)),
      config_(std::move(config)),
      ledger_(config_.shards),
      epoch_time_(std::chrono::steady_clock::now()) {
  RIPPLE_REQUIRE(stages != nullptr, "null stage factory");
  validate_config(config_);
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(
        std::make_unique<Shard>(s, pipeline_, stages(s), config_));
  }
}

PipelineService::~PipelineService() { stop(); }

Cycles PipelineService::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_time_;
  const double us =
      std::chrono::duration<double, std::micro>(elapsed).count();
  return us * config_.cycles_per_us;
}

std::size_t PipelineService::shard_of(SessionId id) const noexcept {
  if (shards_.size() == 1) return 0;
  // splitmix64 finalizer: cheap, well-mixed placement for sequential ids.
  std::uint64_t x = id;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shards_.size());
}

SessionId PipelineService::open_session() {
  const SessionId id =
      next_session_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& shard = *shards_[shard_of(id)];
  auto session = std::make_unique<Session>();
  session->open_seq = id;
  {
    std::lock_guard<std::mutex> lock(shard.sessions_mutex);
    shard.sessions.emplace(id, std::move(session));
  }
  shard.open_count.fetch_add(1, std::memory_order_relaxed);
  if (ingest_observer_ != nullptr) ingest_observer_->on_session_open(id);
  return id;
}

bool PipelineService::close_session(SessionId id) {
  Shard& shard = *shards_[shard_of(id)];
  {
    std::lock_guard<std::mutex> lock(shard.sessions_mutex);
    auto it = shard.sessions.find(id);
    if (it == shard.sessions.end() || !it->second->open) return false;
    it->second->open = false;
  }
  shard.open_count.fetch_sub(1, std::memory_order_relaxed);
  if (ingest_observer_ != nullptr) ingest_observer_->on_session_close(id);
  return true;
}

SubmitOutcome PipelineService::submit(SessionId id,
                                      std::vector<runtime::Item> items) {
  Shard& shard = *shards_[shard_of(id)];
  Session* session = nullptr;
  {
    std::lock_guard<std::mutex> lock(shard.sessions_mutex);
    auto it = shard.sessions.find(id);
    if (it == shard.sessions.end() || !it->second->open) {
      throw std::logic_error("submit on unknown or closed session");
    }
    session = it->second.get();
  }

  SubmitOutcome outcome;
  submitted_.fetch_add(items.size(), std::memory_order_relaxed);

  if (session->open_seq >
      shard.admitted_watermark.load(std::memory_order_relaxed)) {
    outcome.shed = items.size();
    shed_.fetch_add(items.size(), std::memory_order_relaxed);
    {
      // The items are rejected but their arrival times still inform the rate
      // estimator (capped so a runaway producer cannot grow this unbounded).
      std::lock_guard<std::mutex> lock(shard.shed_mutex);
      const Cycles arrival = now();
      for (std::size_t k = 0;
           k < items.size() && shard.shed_arrivals.size() < 65536; ++k) {
        shard.shed_arrivals.push_back(arrival);
      }
    }
    // Coalesced wakeup: notify only on the empty -> non-empty transition;
    // an already-signalled worker re-checks the count before sleeping.
    if (shard.shed_since_drain.fetch_add(items.size(),
                                         std::memory_order_relaxed) == 0) {
      shard.worker_cv.notify_one();
    }
#if RIPPLE_OBS
    if (obs::enabled()) {
      obs::Registry::global().counter("service.shed")->add(items.size());
    }
#endif
    return outcome;
  }

  const Cycles arrival = now();
  for (auto& item : items) {
    // fetch_add-then-check: previous values are unique, so at most
    // session_capacity items are ever in flight — the same bound the old
    // per-session mutex enforced, without the lock.
    if (session->inflight.fetch_add(1, std::memory_order_relaxed) >=
        config_.session_capacity) {
      session->inflight.fetch_sub(1, std::memory_order_relaxed);
      ++outcome.rejected_backpressure;
      continue;
    }
    Pending pending;
    pending.item = std::move(item);
    pending.arrival = arrival;
    pending.seq = submit_seq_.fetch_add(1, std::memory_order_relaxed);
    pending.session = session;
    if (!shard.queue.try_push(std::move(pending))) {
      // Shard ring full: bounded ingest memory. Counted, never dropped.
      session->inflight.fetch_sub(1, std::memory_order_relaxed);
      ++outcome.rejected_backpressure;
      continue;
    }
    ++outcome.accepted;
  }
  accepted_.fetch_add(outcome.accepted, std::memory_order_relaxed);
  rejected_backpressure_.fetch_add(outcome.rejected_backpressure,
                                   std::memory_order_relaxed);
  if (outcome.accepted > 0) {
    // Coalesced wakeup (see above): one notify per idle period, not one per
    // submission. The worker's 1 ms wait_for bounds the cost of the benign
    // race where it is mid-drain when the count rises from zero.
    if (shard.pending_count.fetch_add(outcome.accepted,
                                      std::memory_order_relaxed) == 0) {
      shard.worker_cv.notify_one();
    }
#if RIPPLE_OBS
    else if (obs::enabled()) {
      obs::Registry::global().counter("service.notify.coalesced")->add(1);
    }
#endif
  }
  return outcome;
}

void PipelineService::start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (running_) return;
  stop_requested_.store(false, std::memory_order_relaxed);
  running_ = true;
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, raw = shard.get()] {
      worker_loop(*raw);
    });
  }
}

void PipelineService::stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (!running_) return;
    stop_requested_.store(true, std::memory_order_relaxed);
  }
  for (auto& shard : shards_) shard->worker_cv.notify_one();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  running_ = false;
}

void PipelineService::worker_loop(Shard& shard) {
#ifdef __linux__
  if (config_.pin_workers) {
    // With a parallel executor, give each shard a disjoint group of
    // exec_threads cores and pin the whole worker (committer + pool threads,
    // which inherit this affinity mask when the executor spawns them) to the
    // group; exec_threads <= 1 degenerates to the classic one-core-per-shard
    // pinning.
    const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
    const unsigned group =
        static_cast<unsigned>(std::max<std::size_t>(
            1, std::min<std::size_t>(config_.exec_threads, cores)));
    cpu_set_t set;
    CPU_ZERO(&set);
    const unsigned base = static_cast<unsigned>(shard.index) * group;
    for (unsigned k = 0; k < group; ++k) {
      CPU_SET(static_cast<int>((base + k) % cores), &set);
    }
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
#endif
#if RIPPLE_OBS
  if (obs::enabled()) {
    obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
    if (trace.active()) {
      obs::TraceSession::global().set_track_name(
          obs::Domain::kHost, trace.track(),
          "service.shard" + std::to_string(shard.index));
    }
  }
#endif
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(shard.worker_mutex);
      shard.worker_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return stop_requested_.load(std::memory_order_relaxed) ||
               shard.pending_count.load(std::memory_order_relaxed) > 0 ||
               shard.shed_since_drain.load(std::memory_order_relaxed) > 0;
      });
      if (stop_requested_.load(std::memory_order_relaxed) &&
          shard.pending_count.load(std::memory_order_relaxed) == 0) {
        return;
      }
    }
    drain_shard(shard);
  }
}

void PipelineService::set_ingest_observer(IngestObserver* observer) {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  RIPPLE_REQUIRE(!running_,
                 "set_ingest_observer while the workers are running");
  RIPPLE_REQUIRE(observer == nullptr || shards_.size() == 1,
                 "the ingest observer requires shards == 1 — drain records "
                 "carry no shard identity, so multi-shard journals would not "
                 "replay deterministically");
  ingest_observer_ = observer;
}

std::size_t PipelineService::drain_once() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    RIPPLE_REQUIRE(!running_, "drain_once() while the workers are running");
  }
  std::size_t total = 0;
  for (auto& shard : shards_) total += drain_shard(*shard);
  return total;
}

std::size_t PipelineService::drain_shard(Shard& shard) {
  // Pop everything currently published in the shard's MPSC ring — O(items),
  // independent of how many sessions are open. Popping is also the point
  // where a session's in-flight budget is released (the bound the submit
  // path enforces), matching the old drain-frees-capacity semantics.
  shard.drain_scratch.clear();
  {
    Pending pending;
    while (shard.queue.try_pop(pending)) {
      pending.session->inflight.fetch_sub(1, std::memory_order_relaxed);
      shard.drain_scratch.push_back(std::move(pending));
    }
  }
  std::vector<Cycles> shed_times;
  {
    std::lock_guard<std::mutex> lock(shard.shed_mutex);
    shed_times.swap(shard.shed_arrivals);
  }
  shard.shed_since_drain.store(0, std::memory_order_relaxed);
  if (shard.drain_scratch.empty() && shed_times.empty()) return 0;
  shard.pending_count.fetch_sub(shard.drain_scratch.size(),
                                std::memory_order_relaxed);
  shard.last_drain_depth.store(shard.drain_scratch.size(),
                               std::memory_order_relaxed);

  // The ring preserves enqueue order, but concurrent producers interleave;
  // (arrival, seq) is the same total order the old per-session merge sorted
  // into, so the shards=1 path stays bit-identical.
  std::sort(shard.drain_scratch.begin(), shard.drain_scratch.end(),
            [](const Pending& a, const Pending& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.seq < b.seq;
            });

#if RIPPLE_OBS
  {
    obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
    if (trace.active()) {
      trace.counter(obs::Domain::kHost, trace.track(),
                    "service.shard.queue_depth",
                    obs::TraceSession::global().host_now_us(),
                    static_cast<double>(shard.drain_scratch.size()));
    }
  }
#endif

  // Journal the drain before any controller mutation: the observer sees the
  // admitted batch in executed order plus the raw shed timestamps, and the
  // controller state at this call is exactly "all prior records applied" —
  // the snapshot boundary the recovery path relies on.
  if (ingest_observer_ != nullptr) {
    shard.observer_scratch.clear();
    shard.observer_scratch.reserve(shard.drain_scratch.size());
    for (const Pending& pending : shard.drain_scratch) {
      ArrivalRecord record;
      record.session = pending.session->open_seq;
      record.seq = pending.seq;
      record.arrival = pending.arrival;
      if (const auto* value =
              std::any_cast<std::uint64_t>(&pending.item)) {
        record.payload = *value;
        record.has_payload = true;
      }
      shard.observer_scratch.push_back(record);
    }
    ingest_observer_->on_drain(shard.observer_scratch, shed_times);
  }

  // Feed the controller the *offered* stream's inter-arrival gaps: admitted
  // arrivals merged with the timestamps of shed submissions. Estimating from
  // admitted arrivals alone would hide exactly the overload that triggered
  // shedding — and a fully shed shard would never see the load drop.
  std::vector<Cycles> arrivals;
  arrivals.reserve(shard.drain_scratch.size() + shed_times.size());
  for (const Pending& pending : shard.drain_scratch) {
    arrivals.push_back(pending.arrival);
  }
  arrivals.insert(arrivals.end(), shed_times.begin(), shed_times.end());
  std::sort(arrivals.begin(), arrivals.end());
  for (const Cycles arrival : arrivals) {
    shard.controller.observe_gap(
        std::max(arrival - shard.last_arrival, Cycles(1e-9)));
    shard.last_arrival = arrival;
  }

  const control::ControlDecision decision = shard.controller.tick();
#if RIPPLE_OBS
  if (decision.shedding) {
    obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
    if (trace.active()) {
      trace.instant(obs::Domain::kHost, trace.track(), "control.shed",
                    obs::TraceSession::global().host_now_us(), 0.0);
    }
  }
#endif
  publish_load(shard);
  const std::size_t admitted = refresh_watermark(shard);
#if RIPPLE_OBS
  {
    obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
    if (trace.active()) {
      trace.counter(obs::Domain::kHost, trace.track(),
                    "service.shard.admitted",
                    obs::TraceSession::global().host_now_us(),
                    static_cast<double>(admitted));
    }
  }
#else
  (void)admitted;
#endif

  const std::size_t total = shard.drain_scratch.size();
  std::size_t offset = 0;
  while (offset < total) {
    const std::size_t n = std::min(config_.batch_size, total - offset);
    shard.batch_scratch.assign(
        std::make_move_iterator(shard.drain_scratch.begin() +
                                static_cast<std::ptrdiff_t>(offset)),
        std::make_move_iterator(shard.drain_scratch.begin() +
                                static_cast<std::ptrdiff_t>(offset + n)));
    execute_batch(shard, shard.batch_scratch);
    offset += n;
  }
  shard.drain_scratch.clear();
  return total;
}

void PipelineService::execute_batch(Shard& shard,
                                    std::vector<Pending>& batch) {
  const control::PlanPtr plan = shard.controller.plan();

  runtime::ExecutorConfig config;
  config.firing_intervals = plan->schedule.firing_intervals;
  config.deadline = config_.deadline;
  config.max_collected_results = 0;
  config.exec_threads = config_.exec_threads;
  config.input_gaps.reserve(batch.size());
  Cycles previous = batch.front().arrival;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Cycles gap =
        i == 0 ? plan->planned_tau0 : batch[i].arrival - previous;
    config.input_gaps.push_back(std::max(gap, Cycles(1e-9)));
    previous = batch[i].arrival;
  }

  std::vector<runtime::Item> inputs;
  inputs.reserve(batch.size());
  for (Pending& pending : batch) inputs.push_back(std::move(pending.item));

#if RIPPLE_OBS
  obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
  if (trace.active()) {
    trace.begin(obs::Domain::kHost, trace.track(), "service.batch",
                obs::TraceSession::global().host_now_us());
  }
#endif
  auto result = shard.executor.run(std::move(inputs), config);
#if RIPPLE_OBS
  if (trace.active()) {
    trace.end(obs::Domain::kHost, trace.track(), "service.batch",
              obs::TraceSession::global().host_now_us());
  }
#endif

  shard.batches.fetch_add(1, std::memory_order_relaxed);
  shard.executed_items.fetch_add(batch.size(), std::memory_order_relaxed);
  if (!result.ok()) return;  // stage threw or event budget: items are spent
  const sim::TrialMetrics& metrics = result.value().base;
  sink_outputs_.fetch_add(metrics.sink_outputs, std::memory_order_relaxed);
  deadline_misses_.fetch_add(metrics.inputs_missed, std::memory_order_relaxed);
  if (metrics.sink_outputs > 0) {
    const Cycles worst = metrics.output_latency.max();
    shard.controller.observe_worst_latency(worst);
    shard.worst_latency_interval =
        std::max(shard.worst_latency_interval, worst);
    if (ingest_observer_ != nullptr) {
      ingest_observer_->on_batch_latency(worst);
    }
  }
}

void PipelineService::publish_load(Shard& shard) {
  control::ShardLoad load;
  load.open_sessions = shard.open_count.load(std::memory_order_relaxed);
  const Cycles target = shard.controller.admission_target_tau0();
  load.offered_rate = target > 0.0 ? 1.0 / target : 0.0;
  const Cycles floor = shard.controller.replanner().floor_tau0();
  load.feasible_rate = floor > 0.0 ? 1.0 / floor : 0.0;
  load.queue_depth = shard.last_drain_depth.load(std::memory_order_relaxed);
  load.worst_latency = shard.worst_latency_interval;
  load.deadline = config_.deadline;
  shard.worst_latency_interval = 0.0;
  ledger_.publish(shard.index, load);
}

std::size_t PipelineService::refresh_watermark(Shard& shard) {
  const std::size_t open = shard.open_count.load(std::memory_order_relaxed);
  const std::size_t local = shard.controller.admitted_sessions(open);
  const std::size_t admitted = ledger_.apportion(shard.index, local);
  std::uint64_t watermark;
  if (admitted >= open) {
    // Not shedding: new sessions admitted on arrival, and — the steady-state
    // fast path — no O(open sessions) scan.
    watermark = UINT64_MAX;
  } else if (admitted == 0) {
    watermark = 0;
  } else {
    // Shedding: keep the oldest `admitted` sessions, shed everything newer.
    // Map iteration order == admission order, so the collected seqs are
    // already sorted.
    std::vector<std::uint64_t> open_seqs;
    std::lock_guard<std::mutex> lock(shard.sessions_mutex);
    open_seqs.reserve(shard.sessions.size());
    for (auto& [id, session] : shard.sessions) {
      if (session->open) open_seqs.push_back(session->open_seq);
    }
    watermark = admitted >= open_seqs.size() ? UINT64_MAX
                                             : open_seqs[admitted - 1];
  }
  shard.admitted_watermark.store(watermark, std::memory_order_relaxed);
  return admitted;
}

ServiceStats PipelineService::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected_backpressure =
      rejected_backpressure_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.sink_outputs = sink_outputs_.load(std::memory_order_relaxed);
  stats.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    stats.batches += shard->batches.load(std::memory_order_relaxed);
    stats.executed_items +=
        shard->executed_items.load(std::memory_order_relaxed);
    stats.open_sessions += shard->open_count.load(std::memory_order_relaxed);
  }
  stats.plan_epoch = shards_.front()->controller.epoch();
  return stats;
}

ShardStats PipelineService::shard_stats(std::size_t shard) const {
  RIPPLE_REQUIRE(shard < shards_.size(), "shard_stats: shard out of range");
  const Shard& s = *shards_[shard];
  ShardStats stats;
  stats.shard = shard;
  stats.open_sessions = s.open_count.load(std::memory_order_relaxed);
  stats.batches = s.batches.load(std::memory_order_relaxed);
  stats.executed_items = s.executed_items.load(std::memory_order_relaxed);
  stats.plan_epoch = s.controller.epoch();
  stats.queue_depth = s.last_drain_depth.load(std::memory_order_relaxed);
  const control::ShardLoad load = ledger_.load(shard);
  stats.offered_rate = load.offered_rate;
  stats.worst_latency = load.worst_latency;
  stats.admitted_watermark =
      s.admitted_watermark.load(std::memory_order_relaxed);
  return stats;
}

control::PlanPtr PipelineService::plan(std::size_t shard) const {
  RIPPLE_REQUIRE(shard < shards_.size(), "plan: shard out of range");
  return shards_[shard]->controller.plan();
}

const control::Controller& PipelineService::controller(
    std::size_t shard) const {
  RIPPLE_REQUIRE(shard < shards_.size(), "controller: shard out of range");
  return shards_[shard]->controller;
}

std::vector<runtime::StageFn> synthetic_stages(const sdf::PipelineSpec& spec) {
  std::vector<runtime::StageFn> stages;
  stages.reserve(spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i) {
    if (i + 1 == spec.size()) {
      stages.push_back([](runtime::Item&& input,
                          std::vector<runtime::Item>& outputs) {
        outputs.push_back(std::move(input));
      });
      continue;
    }
    // Fixed-point (32.32) atomic gain accumulator. The task-parallel engine
    // runs firings of the same stage concurrently, so a plain double here
    // races (lost read-modify-writes would change the emitted total). A
    // fetch_add keeps the total exact and interleaving-independent: after n
    // calls exactly floor(n * gain) items have been emitted, and integer
    // gains still emit the same count on every call.
    const auto gain_fp = static_cast<std::uint64_t>(
        spec.mean_gain(i) * 4294967296.0);
    auto accumulator = std::make_shared<std::atomic<std::uint64_t>>(0);
    stages.push_back([gain_fp, accumulator](runtime::Item&& input,
                                            std::vector<runtime::Item>& outputs) {
      const std::uint64_t prev =
          accumulator->fetch_add(gain_fp, std::memory_order_relaxed);
      const std::size_t emit =
          static_cast<std::size_t>(((prev + gain_fp) >> 32) - (prev >> 32));
      for (std::size_t k = 0; k < emit; ++k) outputs.push_back(input);
    });
  }
  return stages;
}

StageFactory synthetic_stage_factory(const sdf::PipelineSpec& spec) {
  return [spec](std::size_t) { return synthetic_stages(spec); };
}

}  // namespace ripple::service
