#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/assert.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::service {

namespace {

control::Controller make_controller(const sdf::PipelineSpec& pipeline,
                                    const ServiceConfig& config) {
  core::EnforcedWaitsConfig waits;
  if (config.b.empty()) {
    waits = core::EnforcedWaitsConfig::optimistic(pipeline);
  } else {
    waits.b = config.b;
  }
  return control::Controller(pipeline, std::move(waits), config.deadline,
                             config.initial_tau0, config.controller);
}

}  // namespace

PipelineService::PipelineService(sdf::PipelineSpec pipeline,
                                 std::vector<runtime::StageFn> stages,
                                 ServiceConfig config)
    : pipeline_(pipeline),
      executor_(pipeline, std::move(stages)),
      config_(std::move(config)),
      controller_(make_controller(pipeline, config_)),
      epoch_time_(std::chrono::steady_clock::now()) {
  RIPPLE_REQUIRE(config_.session_capacity > 0,
                 "session capacity must be positive");
  RIPPLE_REQUIRE(config_.batch_size > 0, "batch size must be positive");
  RIPPLE_REQUIRE(config_.cycles_per_us > 0.0,
                 "cycles_per_us must be positive");
  // Until the first control tick, admit every session the initial plan can
  // take. A shedding initial plan starts with the gate closed to new
  // sessions; the first tick opens it to the admitted count.
  admitted_watermark_.store(
      controller_.plan()->shedding ? 0 : UINT64_MAX, std::memory_order_relaxed);
  drain_scratch_.reserve(config_.batch_size);
}

PipelineService::~PipelineService() { stop(); }

Cycles PipelineService::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_time_;
  const double us =
      std::chrono::duration<double, std::micro>(elapsed).count();
  return us * config_.cycles_per_us;
}

SessionId PipelineService::open_session() {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  const SessionId id = ++next_session_seq_;
  auto session = std::make_shared<Session>();
  session->open_seq = id;
  session->queue.reserve(std::min<std::size_t>(config_.session_capacity, 64));
  sessions_.emplace(id, std::move(session));
  return id;
}

bool PipelineService::close_session(SessionId id) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end() || !it->second->open) return false;
  it->second->open = false;
  return true;
}

SubmitOutcome PipelineService::submit(SessionId id,
                                      std::vector<runtime::Item> items) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end() || !it->second->open) {
      throw std::logic_error("submit on unknown or closed session");
    }
    session = it->second;
  }

  SubmitOutcome outcome;
  submitted_.fetch_add(items.size(), std::memory_order_relaxed);

  if (session->open_seq > admitted_watermark_.load(std::memory_order_relaxed)) {
    outcome.shed = items.size();
    shed_.fetch_add(items.size(), std::memory_order_relaxed);
    {
      // The items are rejected but their arrival times still inform the rate
      // estimator (capped so a runaway producer cannot grow this unbounded).
      std::lock_guard<std::mutex> lock(shed_mutex_);
      const Cycles arrival = now();
      for (std::size_t k = 0;
           k < items.size() && shed_arrivals_.size() < 65536; ++k) {
        shed_arrivals_.push_back(arrival);
      }
    }
    shed_since_drain_.fetch_add(items.size(), std::memory_order_relaxed);
    worker_cv_.notify_one();
#if RIPPLE_OBS
    if (obs::enabled()) {
      obs::Registry::global().counter("service.shed")->add(items.size());
    }
#endif
    return outcome;
  }

  const Cycles arrival = now();
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    for (auto& item : items) {
      if (session->queue.size() >= config_.session_capacity) {
        ++outcome.rejected_backpressure;
        continue;
      }
      Pending pending;
      pending.item = std::move(item);
      pending.arrival = arrival;
      pending.seq = submit_seq_.fetch_add(1, std::memory_order_relaxed);
      session->queue.push_back(std::move(pending));
      ++outcome.accepted;
    }
  }
  accepted_.fetch_add(outcome.accepted, std::memory_order_relaxed);
  rejected_backpressure_.fetch_add(outcome.rejected_backpressure,
                                   std::memory_order_relaxed);
  if (outcome.accepted > 0) {
    pending_count_.fetch_add(outcome.accepted, std::memory_order_relaxed);
    worker_cv_.notify_one();
  }
  return outcome;
}

void PipelineService::start() {
  std::lock_guard<std::mutex> lock(worker_mutex_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  worker_ = std::thread([this] { worker_loop(); });
}

void PipelineService::stop() {
  {
    std::lock_guard<std::mutex> lock(worker_mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  worker_cv_.notify_one();
  worker_.join();
  std::lock_guard<std::mutex> lock(worker_mutex_);
  running_ = false;
}

void PipelineService::worker_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(worker_mutex_);
      worker_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
        return stop_requested_ ||
               pending_count_.load(std::memory_order_relaxed) > 0 ||
               shed_since_drain_.load(std::memory_order_relaxed) > 0;
      });
      if (stop_requested_ &&
          pending_count_.load(std::memory_order_relaxed) == 0) {
        return;
      }
    }
    drain_pending();
  }
}

std::size_t PipelineService::drain_once() {
  {
    std::lock_guard<std::mutex> lock(worker_mutex_);
    RIPPLE_REQUIRE(!running_, "drain_once() while the worker is running");
  }
  return drain_pending();
}

std::size_t PipelineService::drain_pending() {
  // Snapshot the sessions, then drain each queue under its own mutex only.
  std::vector<std::shared_ptr<Session>> snapshot;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    snapshot.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) snapshot.push_back(session);
  }

  drain_scratch_.clear();
  for (auto& session : snapshot) {
    std::lock_guard<std::mutex> lock(session->mutex);
    while (!session->queue.empty()) {
      drain_scratch_.push_back(session->queue.pop_front());
    }
  }
  std::vector<Cycles> shed_times;
  {
    std::lock_guard<std::mutex> lock(shed_mutex_);
    shed_times.swap(shed_arrivals_);
  }
  shed_since_drain_.store(0, std::memory_order_relaxed);
  if (drain_scratch_.empty() && shed_times.empty()) return 0;
  pending_count_.fetch_sub(drain_scratch_.size(), std::memory_order_relaxed);

  std::sort(drain_scratch_.begin(), drain_scratch_.end(),
            [](const Pending& a, const Pending& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.seq < b.seq;
            });

#if RIPPLE_OBS
  {
    obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
    if (trace.active()) {
      trace.counter(obs::Domain::kHost, trace.track(), "service.queue_depth",
                    obs::TraceSession::global().host_now_us(),
                    static_cast<double>(drain_scratch_.size()));
    }
  }
#endif

  // Feed the controller the *offered* stream's inter-arrival gaps: admitted
  // arrivals merged with the timestamps of shed submissions. Estimating from
  // admitted arrivals alone would hide exactly the overload that triggered
  // shedding — and a fully shed service would never see the load drop.
  std::vector<Cycles> arrivals;
  arrivals.reserve(drain_scratch_.size() + shed_times.size());
  for (const Pending& pending : drain_scratch_) {
    arrivals.push_back(pending.arrival);
  }
  arrivals.insert(arrivals.end(), shed_times.begin(), shed_times.end());
  std::sort(arrivals.begin(), arrivals.end());
  for (const Cycles arrival : arrivals) {
    controller_.observe_gap(std::max(arrival - last_arrival_, Cycles(1e-9)));
    last_arrival_ = arrival;
  }

  const control::ControlDecision decision = controller_.tick();
#if RIPPLE_OBS
  if (decision.shedding) {
    obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
    if (trace.active()) {
      trace.instant(obs::Domain::kHost, trace.track(), "control.shed",
                    obs::TraceSession::global().host_now_us());
    }
  }
#endif
  refresh_watermark();

  const std::size_t total = drain_scratch_.size();
  std::size_t offset = 0;
  std::vector<Pending> batch;
  while (offset < total) {
    const std::size_t n = std::min(config_.batch_size, total - offset);
    batch.assign(std::make_move_iterator(drain_scratch_.begin() + offset),
                 std::make_move_iterator(drain_scratch_.begin() + offset + n));
    execute_batch(batch);
    offset += n;
  }
  drain_scratch_.clear();
  return total;
}

void PipelineService::execute_batch(std::vector<Pending>& batch) {
  const control::PlanPtr plan = controller_.plan();

  runtime::ExecutorConfig config;
  config.firing_intervals = plan->schedule.firing_intervals;
  config.deadline = config_.deadline;
  config.max_collected_results = 0;
  config.input_gaps.reserve(batch.size());
  Cycles previous = batch.front().arrival;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Cycles gap =
        i == 0 ? plan->planned_tau0 : batch[i].arrival - previous;
    config.input_gaps.push_back(std::max(gap, Cycles(1e-9)));
    previous = batch[i].arrival;
  }

  std::vector<runtime::Item> inputs;
  inputs.reserve(batch.size());
  for (Pending& pending : batch) inputs.push_back(std::move(pending.item));

#if RIPPLE_OBS
  obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
  if (trace.active()) {
    trace.begin(obs::Domain::kHost, trace.track(), "service.batch",
                obs::TraceSession::global().host_now_us());
  }
#endif
  auto result = executor_.run(std::move(inputs), config);
#if RIPPLE_OBS
  if (trace.active()) {
    trace.end(obs::Domain::kHost, trace.track(), "service.batch",
              obs::TraceSession::global().host_now_us());
  }
#endif

  batches_.fetch_add(1, std::memory_order_relaxed);
  executed_items_.fetch_add(batch.size(), std::memory_order_relaxed);
  if (!result.ok()) return;  // stage threw or event budget: items are spent
  const sim::TrialMetrics& metrics = result.value().base;
  sink_outputs_.fetch_add(metrics.sink_outputs, std::memory_order_relaxed);
  deadline_misses_.fetch_add(metrics.inputs_missed, std::memory_order_relaxed);
  if (metrics.sink_outputs > 0) {
    controller_.observe_worst_latency(metrics.output_latency.max());
  }
}

void PipelineService::refresh_watermark() {
  std::vector<std::uint64_t> open_seqs;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    open_seqs.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) {
      if (session->open) open_seqs.push_back(session->open_seq);
    }
  }
  const std::size_t admitted = controller_.admitted_sessions(open_seqs.size());
  std::uint64_t watermark;
  if (admitted >= open_seqs.size()) {
    watermark = UINT64_MAX;  // not shedding: new sessions admitted on arrival
  } else if (admitted == 0) {
    watermark = 0;
  } else {
    // open_seqs is sorted (map iteration order == admission order): keep the
    // oldest `admitted` sessions, shed everything newer.
    watermark = open_seqs[admitted - 1];
  }
  admitted_watermark_.store(watermark, std::memory_order_relaxed);
}

ServiceStats PipelineService::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected_backpressure =
      rejected_backpressure_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.executed_items = executed_items_.load(std::memory_order_relaxed);
  stats.sink_outputs = sink_outputs_.load(std::memory_order_relaxed);
  stats.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto& [id, session] : sessions_) {
      if (session->open) ++stats.open_sessions;
    }
  }
  stats.plan_epoch = controller_.epoch();
  return stats;
}

std::vector<runtime::StageFn> synthetic_stages(const sdf::PipelineSpec& spec) {
  std::vector<runtime::StageFn> stages;
  stages.reserve(spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i) {
    if (i + 1 == spec.size()) {
      stages.push_back([](runtime::Item&& input,
                          std::vector<runtime::Item>& outputs) {
        outputs.push_back(std::move(input));
      });
      continue;
    }
    const double gain = spec.mean_gain(i);
    auto accumulator = std::make_shared<double>(0.0);
    stages.push_back([gain, accumulator](runtime::Item&& input,
                                         std::vector<runtime::Item>& outputs) {
      *accumulator += gain;
      const auto emit = static_cast<std::size_t>(std::floor(*accumulator));
      *accumulator -= static_cast<double>(emit);
      for (std::size_t k = 0; k < emit; ++k) outputs.push_back(input);
    });
  }
  return stages;
}

}  // namespace ripple::service
