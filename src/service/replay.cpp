#include "service/replay.hpp"

#include <utility>

#include "dist/rng.hpp"
#include "sim/enforced_sim.hpp"
#include "util/assert.hpp"

namespace ripple::service {

ReplayReport replay_trace(const sdf::PipelineSpec& pipeline,
                          arrivals::ArrivalProcess& offered,
                          const ReplayConfig& config) {
  RIPPLE_REQUIRE(config.chunk_items > 0, "chunk_items must be positive");
  RIPPLE_REQUIRE(config.chunks > 0, "chunks must be positive");
  RIPPLE_REQUIRE(config.sessions > 0, "sessions must be positive");

  core::EnforcedWaitsConfig waits;
  if (config.b.empty()) {
    waits = core::EnforcedWaitsConfig::optimistic(pipeline);
  } else {
    waits.b = config.b;
  }
  control::Controller controller(pipeline, std::move(waits), config.deadline,
                                 config.initial_tau0, config.controller);

  dist::Xoshiro256 arrival_rng(dist::derive_seed({config.seed, 0x5eA}));
  ReplayReport report;
  report.chunks.reserve(config.chunks);

  std::size_t admitted_sessions = controller.admitted_sessions(config.sessions);
  std::vector<Cycles> offered_gaps;
  std::vector<Cycles> admitted_gaps;
  sim::TrialMetrics metrics;

  for (std::size_t chunk = 0; chunk < config.chunks; ++chunk) {
    // 1. Draw the offered gaps for this control interval.
    offered_gaps.clear();
    Cycles offered_sum = 0.0;
    for (std::size_t j = 0; j < config.chunk_items; ++j) {
      const Cycles gap = offered.next_interarrival(arrival_rng);
      offered_gaps.push_back(gap);
      offered_sum += gap;
    }

    // 2. Admission cut: arrival j belongs to session j mod S; sessions at or
    // beyond the admitted count are shed, their gaps merging into the next
    // admitted arrival's gap (the shed item still occupies wall time).
    admitted_gaps.clear();
    Cycles carried = 0.0;
    std::uint64_t shed_count = 0;
    for (std::size_t j = 0; j < offered_gaps.size(); ++j) {
      carried += offered_gaps[j];
      if (j % config.sessions < admitted_sessions) {
        admitted_gaps.push_back(carried);
        carried = 0.0;
      } else {
        ++shed_count;
      }
    }

    // 3. Simulate the admitted stream under the plan in force at chunk
    // start. A fully shed chunk (admitted_sessions == 0) skips the sim.
    const control::PlanPtr plan = controller.plan();
    ReplayChunk record;
    record.mean_gap_offered =
        offered_sum / static_cast<double>(config.chunk_items);
    record.planned_tau0 = plan->planned_tau0;
    record.plan_epoch = plan->epoch;
    record.shedding = plan->shedding;
    record.admitted_sessions = admitted_sessions;
    record.offered = offered_gaps.size();
    record.admitted = admitted_gaps.size();
    record.shed = shed_count;

    if (!admitted_gaps.empty()) {
      arrivals::TraceArrivals trace(admitted_gaps);
      sim::EnforcedSimConfig sim_config;
      sim_config.input_count = admitted_gaps.size();
      sim_config.deadline = config.deadline;
      sim_config.seed = dist::derive_seed({config.seed, chunk + 1});
      sim::simulate_enforced_waits_into(pipeline,
                                        plan->schedule.firing_intervals, trace,
                                        sim_config, metrics);
      record.deadline_misses = metrics.inputs_missed;
      record.worst_latency = metrics.output_latency.max();
      record.active_fraction = metrics.active_fraction();
      controller.observe_worst_latency(record.worst_latency);
    }

    // 4. Feed the offered gaps, tick, and recompute admission for the next
    // chunk — the same between-batches cadence as the live worker.
    for (const Cycles gap : offered_gaps) controller.observe_gap(gap);
    const control::ControlDecision decision = controller.tick();
    record.tau0_estimate = decision.tau0_estimate;
    admitted_sessions = controller.admitted_sessions(config.sessions);

    report.total_offered += record.offered;
    report.total_admitted += record.admitted;
    report.total_shed += record.shed;
    report.total_misses += record.deadline_misses;
    report.chunks.push_back(std::move(record));
  }

  report.final_plan = controller.plan();
  report.controller = controller.stats();
  return report;
}

}  // namespace ripple::service
