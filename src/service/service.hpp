// Live pipeline service: concurrent producer sessions feeding the batch
// executor through lock-free sharded ingest, with the control loop adapting
// each shard's wait schedule as the offered rate drifts.
//
// Shard model (the unit of scaling): the service owns N shards, each with
// its own PipelineExecutor, its own Controller (estimator + replanner +
// PlanStore epoch), a bounded lock-free MPSC ingest queue
// (util/mpsc_queue.hpp), its own drain scratch, and — when started — its
// own worker thread (optionally pinned to a core). Sessions hash to a shard
// at open time and stay there, so a shard worker only ever touches its own
// state plus the service-wide counters (relaxed atomics) and the global
// AdmissionLedger (relaxed slot writes).
//
// Thread model (everything TSan-checked by the multi-shard soak + CI job):
//
//   * Producer threads call open_session / submit / close_session. submit
//     resolves the session's shard, stamps each item with a virtual-cycle
//     arrival time, applies admission control (a lock-free read of the
//     shard's watermark: sessions opened after it are being shed) and
//     backpressure (an atomic per-session in-flight count bounded by
//     session_capacity, plus the bounded shard queue itself), and enqueues
//     Pending records directly into the shard's MPSC ring — no per-session
//     mutex, no ring scan on the drain side. Worker wakeups are coalesced:
//     the condition variable is only notified on the shard's empty ->
//     non-empty transition, so a hot submit path never pays one notify per
//     batch while the worker is already awake.
//   * Each shard worker drains its MPSC queue (O(items), independent of how
//     many sessions are open), sorts the drained batch into arrival order,
//     feeds the observed inter-arrival gaps of its substream to its
//     controller, ticks it (possibly re-solving and hot-swapping the
//     shard's plan), publishes its load to the AdmissionLedger, refreshes
//     its admission watermark through the ledger's global clamp, and
//     executes the batch through its own PipelineExecutor under the plan
//     loaded at batch start — a plan swap mid-batch never affects a batch
//     already running.
//   * Counters are relaxed atomics; plan pointers are per-shard PlanStore
//     snapshots. No lock is ever held across an executor run.
//
// Shedding policy: each shard's controller assumes symmetric sessions and
// admits the oldest k of its open sessions such that k/S_shard of the
// shard's offered rate fits under the feasibility floor; the AdmissionLedger
// then clamps k against the aggregate offered/feasible rates so hash
// imbalance cannot leave one shard drowning while others coast
// (control/admission.hpp). Rejected-by-shedding submissions are counted
// (`shed`), never silently dropped, and mirror to the `service.shed` metric
// on instrumented builds — across every shard.
//
// Determinism contract: with shards = 1 the service is bit-identical to the
// pre-sharding single-worker path — one controller, identity admission
// apportioning, the same (arrival, seq) drain order, and the same tick
// cadence — which is what the golden drain_once/replay tests pin down.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "control/admission.hpp"
#include "control/controller.hpp"
#include "runtime/pipeline_executor.hpp"
#include "sdf/pipeline.hpp"
#include "util/mpsc_queue.hpp"
#include "util/types.hpp"

namespace ripple::service {

using SessionId = std::uint64_t;

/// Builds one shard's stage set. Each shard owns a private executor, so
/// stateful stages (like synthetic_stages' gain accumulators) must be
/// instantiated per shard — sharing one closure set across shard workers
/// would race.
using StageFactory =
    std::function<std::vector<runtime::StageFn>(std::size_t shard)>;

/// One admitted arrival as the shard worker drains it, in executed order.
struct ArrivalRecord {
  std::uint64_t session = 0;  ///< owning session's id (== its open_seq)
  std::uint64_t seq = 0;      ///< global submit sequence (drain tie-break)
  Cycles arrival = 0.0;       ///< virtual-cycle arrival stamp
  std::uint64_t payload = 0;  ///< the item payload when it is a uint64
  bool has_payload = false;   ///< false for non-uint64 item types
};

/// Hook onto the admitted ingest stream — the attachment point for the
/// arrival journal (net/journal.hpp). Calls mirror exactly the sequence of
/// controller mutations the drain loop performs, which is what makes a
/// journal replay bit-identical:
///
///   on_drain(admitted, shed)  — once per non-empty drain, *before* the
///       worker feeds the merged gap stream to the controller and ticks it.
///       `admitted` is the drained batch in executed (arrival, seq) order;
///       `shed` is the raw shed-arrival timestamps swapped out this drain.
///   on_batch_latency(worst)   — after each executed batch that produced
///       sink outputs, in execution order (these feed the *next* tick).
///   on_session_open/close     — admission bookkeeping (any thread).
///
/// Threading: on_drain/on_batch_latency come from the shard worker (or the
/// drain_once caller); on_session_open/close from whatever thread opens or
/// closes the session. The observer synchronizes internally.
class IngestObserver {
 public:
  virtual ~IngestObserver() = default;
  virtual void on_session_open(SessionId id) = 0;
  virtual void on_session_close(SessionId id) = 0;
  virtual void on_drain(const std::vector<ArrivalRecord>& admitted,
                        const std::vector<Cycles>& shed_arrivals) = 0;
  virtual void on_batch_latency(Cycles worst) = 0;
};

struct ServiceConfig {
  Cycles deadline = 0.0;       ///< end-to-end deadline D (> 0 required)
  Cycles initial_tau0 = 0.0;   ///< prior inter-arrival estimate (> 0)
  /// Worst-case queue multipliers; empty selects
  /// EnforcedWaitsConfig::optimistic.
  std::vector<double> b;
  control::ControllerConfig controller;
  std::size_t session_capacity = 4096;  ///< bounded in-flight items per session
  std::size_t batch_size = 256;         ///< max items per executor run
  /// Virtual cycles per wall-clock microsecond (the live arrival clock).
  double cycles_per_us = 1000.0;
  /// Worker shards. Sessions hash to a shard at open time; 1 preserves the
  /// single-worker deterministic path bit for bit.
  std::size_t shards = 1;
  /// Bounded MPSC ingest ring per shard (rounded up to a power of two).
  /// A full ring rejects as backpressure — counted, never dropped.
  std::size_t shard_queue_capacity = 65536;
  /// Pin shard worker k to core k mod hardware_concurrency (Linux only;
  /// ignored elsewhere). With exec_threads > 1 each shard worker is pinned
  /// to the first core of a disjoint exec_threads-wide core group instead,
  /// so a shard's committer and its executor pool spread over neighboring
  /// cores rather than stacking on one.
  bool pin_workers = false;
  /// Execution threads per shard's batch executor
  /// (runtime::ExecutorConfig::exec_threads): 1 (the default) runs batches
  /// sequentially on the shard worker; N >= 2 makes the shard worker the
  /// committer of a task-parallel run over N-1 pool threads; 0 selects
  /// hardware_concurrency. Batch results and metrics are bit-identical
  /// across every value, so the shards = 1 determinism contract extends to
  /// shards x exec_threads.
  std::size_t exec_threads = 1;
};

struct SubmitOutcome {
  std::size_t accepted = 0;
  std::size_t rejected_backpressure = 0;
  std::size_t shed = 0;
};

/// Consistent-enough snapshot of the service counters (each counter is a
/// relaxed atomic; the set is not read under one lock).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_backpressure = 0;
  std::uint64_t shed = 0;
  std::uint64_t batches = 0;
  std::uint64_t executed_items = 0;
  std::uint64_t sink_outputs = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t open_sessions = 0;
  /// Shard 0's plan epoch (the service epoch of the unsharded path).
  std::uint64_t plan_epoch = 0;
};

/// Per-shard snapshot: shard-owned counters plus the load summary the shard
/// last published to the AdmissionLedger. Safe from any thread.
struct ShardStats {
  std::size_t shard = 0;
  std::uint64_t open_sessions = 0;
  std::uint64_t batches = 0;
  std::uint64_t executed_items = 0;
  std::uint64_t plan_epoch = 0;
  std::size_t queue_depth = 0;       ///< pending at the last drain
  double offered_rate = 0.0;         ///< last published to the ledger
  Cycles worst_latency = 0.0;        ///< last published to the ledger
  std::uint64_t admitted_watermark = 0;
};

class PipelineService {
 public:
  /// Single-shard constructor (the classic interface): the stage set is
  /// used as-is by the one executor. Throws on malformed config
  /// (non-positive deadline/tau0, arity mismatch, infeasible deadline) and
  /// requires config.shards == 1 — stateful stages cannot be shared across
  /// shard workers.
  PipelineService(sdf::PipelineSpec pipeline,
                  std::vector<runtime::StageFn> stages, ServiceConfig config);
  /// Sharded constructor: `stages(shard)` builds a private stage set per
  /// shard. Works for any shard count.
  PipelineService(sdf::PipelineSpec pipeline, StageFactory stages,
                  ServiceConfig config);
  ~PipelineService();

  PipelineService(const PipelineService&) = delete;
  PipelineService& operator=(const PipelineService&) = delete;

  // --- session side (any thread) ------------------------------------------

  SessionId open_session();
  /// Unknown or already-closed ids are ignored (returns false). Pending
  /// items of a closed session still execute.
  bool close_session(SessionId id);

  /// Submit items on a session. Shed sessions reject everything (counted);
  /// admitted sessions accept up to the session's free in-flight capacity
  /// (and the shard ring's free space) and reject the rest as backpressure.
  /// Throws std::logic_error on an unknown session.
  ///
  /// Teardown semantics (pinned by ServiceLiveTest.SubmitDuringAndAfterStop):
  /// submit never fails just because the workers are stopping or stopped.
  /// Items accepted while stop() runs are either executed by the worker's
  /// final drain or stay queued; items accepted after stop() stay queued and
  /// execute on the next start() or drain_once(). Accepted-item conservation
  /// (executed + still-queued == accepted) holds across the race.
  SubmitOutcome submit(SessionId id, std::vector<runtime::Item> items);

  // --- lifecycle ----------------------------------------------------------

  /// Start one worker thread per shard. No-op when already running.
  void start();
  /// Drain every pending item on every shard, then join the workers.
  /// Idempotent.
  void stop();

  /// Synchronously drain pending items on the caller's thread, shard 0
  /// first — the single-threaded path for deterministic tests and the CLI
  /// replay of recorded submissions. Only valid while the workers are not
  /// running. Returns the number of items executed.
  std::size_t drain_once();

  /// Attach an ingest observer (the arrival journal). Non-owning; the
  /// observer must outlive the service or be detached (nullptr) first.
  /// Requires shards == 1 — the journal's drain records carry no shard
  /// identity, so interleaved multi-shard drains would not replay
  /// deterministically — and must not be changed while workers run.
  void set_ingest_observer(IngestObserver* observer);

  // --- introspection ------------------------------------------------------

  ServiceStats stats() const;
  std::size_t shards() const noexcept { return shards_.size(); }
  /// Which shard a session id maps to (stable for the service lifetime).
  std::size_t shard_of(SessionId id) const noexcept;
  /// Per-shard snapshot (safe from any thread).
  ShardStats shard_stats(std::size_t shard) const;
  const control::AdmissionLedger& admission() const { return ledger_; }

  control::PlanPtr current_plan() const { return plan(0); }
  /// Shard `shard`'s current plan (always safe; one shared_ptr copy).
  control::PlanPtr plan(std::size_t shard) const;
  /// Shard 0's controller, for the unsharded tests/CLI. The controller is
  /// written by its shard worker; read it only when the workers are stopped
  /// (tests) — the plan()/epoch() accessors and the estimator's
  /// gap_quantile() (atomic-slot window) are the exceptions and are always
  /// safe against a running worker.
  const control::Controller& controller() const { return controller(0); }
  const control::Controller& controller(std::size_t shard) const;
  const sdf::PipelineSpec& pipeline() const { return pipeline_; }

 private:
  struct Session {
    std::uint64_t open_seq = 0;  ///< admission order (1-based, global)
    bool open = true;            ///< guarded by the shard's sessions_mutex
    /// Accepted items not yet popped by the shard worker. fetch_add-then-
    /// check gives the exact session_capacity bound without a lock.
    std::atomic<std::size_t> inflight{0};
  };
  struct Pending {
    runtime::Item item;
    Cycles arrival = 0.0;
    std::uint64_t seq = 0;  ///< global submit order, breaks arrival ties
    Session* session = nullptr;  ///< owner; outlives the queue (never erased)
  };
  struct Shard {
    Shard(std::size_t index, const sdf::PipelineSpec& pipeline,
          std::vector<runtime::StageFn> stages, const ServiceConfig& config);

    const std::size_t index;
    runtime::PipelineExecutor executor;
    control::Controller controller;
    util::MpscQueue<Pending> queue;

    mutable std::mutex sessions_mutex;
    std::map<SessionId, std::unique_ptr<Session>> sessions;
    std::atomic<std::size_t> open_count{0};

    /// Sessions with open_seq <= watermark are admitted (read lock-free on
    /// the submit path; refreshed by the shard worker after each tick).
    std::atomic<std::uint64_t> admitted_watermark;
    std::atomic<std::uint64_t> pending_count{0};

    /// Arrival timestamps of shed submissions, drained by the worker for
    /// rate estimation only (see drain_shard).
    std::mutex shed_mutex;
    std::vector<Cycles> shed_arrivals;
    std::atomic<std::uint64_t> shed_since_drain{0};

    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> executed_items{0};
    std::atomic<std::size_t> last_drain_depth{0};

    Cycles last_arrival = 0.0;  ///< worker-only: previous observed arrival
    /// Worker-only: worst batch latency since the last ledger publish (the
    /// readable copy lives in the ledger slot).
    Cycles worst_latency_interval = 0.0;

    std::mutex worker_mutex;
    std::condition_variable worker_cv;
    std::thread worker;

    std::vector<Pending> drain_scratch;  ///< worker-only batch buffer
    std::vector<Pending> batch_scratch;  ///< worker-only executor slice
    std::vector<ArrivalRecord> observer_scratch;  ///< worker-only, journal
  };

  Cycles now() const;
  void worker_loop(Shard& shard);
  /// Drain + execute everything currently pending on one shard (its worker,
  /// or drain_once on the caller's thread).
  std::size_t drain_shard(Shard& shard);
  void execute_batch(Shard& shard, std::vector<Pending>& batch);
  /// Recompute the shard's watermark through the ledger clamp; returns the
  /// admitted-session count it settled on.
  std::size_t refresh_watermark(Shard& shard);
  void publish_load(Shard& shard);

  sdf::PipelineSpec pipeline_;
  ServiceConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  control::AdmissionLedger ledger_;
  IngestObserver* ingest_observer_ = nullptr;

  std::atomic<std::uint64_t> next_session_seq_{0};
  std::atomic<std::uint64_t> submit_seq_{0};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_backpressure_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> sink_outputs_{0};
  std::atomic<std::uint64_t> deadline_misses_{0};

  std::chrono::steady_clock::time_point epoch_time_;

  std::mutex lifecycle_mutex_;
  std::atomic<bool> stop_requested_{false};
  bool running_ = false;
};

/// Deterministic per-item stages whose emission counts track each node's
/// mean gain via an error-feedback accumulator (stage i emits floor(acc)
/// items after acc += g_i). Gives any PipelineSpec a runnable stage set for
/// the service demos, soak tests, and benches; the terminal stage passes
/// items through to the sink.
std::vector<runtime::StageFn> synthetic_stages(const sdf::PipelineSpec& spec);

/// Factory form of synthetic_stages: a fresh accumulator set per shard.
StageFactory synthetic_stage_factory(const sdf::PipelineSpec& spec);

}  // namespace ripple::service
