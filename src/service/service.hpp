// Live pipeline service: concurrent producer sessions feeding the batch
// executor through bounded ingest queues, with the control loop adapting the
// wait schedule as the offered rate drifts.
//
// Thread model (everything TSan-checked by the soak test + CI job):
//
//   * Producer threads call open_session / submit / close_session. submit
//     stamps each item with a virtual-cycle arrival time, applies admission
//     control (a lock-free watermark read: sessions opened after the
//     watermark are being shed) and backpressure (per-session bounded
//     queue), and enqueues under that session's mutex only.
//   * One worker thread drains every session's queue, merges items into
//     arrival order, feeds the observed inter-arrival gaps to the
//     controller, ticks it (possibly re-solving and hot-swapping the plan),
//     refreshes the admission watermark, and executes the batch through the
//     vector-wide PipelineExecutor under the plan loaded at batch start —
//     a plan swap mid-batch never affects a batch already running.
//   * Counters are relaxed atomics; the plan pointer is a PlanStore
//     snapshot (one shared_ptr copy under a short mutex). No lock is ever
//     held across the executor.
//
// Shedding policy: the controller assumes symmetric sessions and admits the
// oldest k of S open sessions such that k/S of the offered rate fits under
// the feasibility floor (see control/controller.hpp). Rejected-by-shedding
// submissions are counted (`shed`), never silently dropped, and mirror to
// the `service.shed` metric on instrumented builds.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "control/controller.hpp"
#include "runtime/pipeline_executor.hpp"
#include "sdf/pipeline.hpp"
#include "util/ring_buffer.hpp"
#include "util/types.hpp"

namespace ripple::service {

using SessionId = std::uint64_t;

struct ServiceConfig {
  Cycles deadline = 0.0;       ///< end-to-end deadline D (> 0 required)
  Cycles initial_tau0 = 0.0;   ///< prior inter-arrival estimate (> 0)
  /// Worst-case queue multipliers; empty selects
  /// EnforcedWaitsConfig::optimistic.
  std::vector<double> b;
  control::ControllerConfig controller;
  std::size_t session_capacity = 4096;  ///< bounded ingest items per session
  std::size_t batch_size = 256;         ///< max items per executor run
  /// Virtual cycles per wall-clock microsecond (the live arrival clock).
  double cycles_per_us = 1000.0;
};

struct SubmitOutcome {
  std::size_t accepted = 0;
  std::size_t rejected_backpressure = 0;
  std::size_t shed = 0;
};

/// Consistent-enough snapshot of the service counters (each counter is a
/// relaxed atomic; the set is not read under one lock).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_backpressure = 0;
  std::uint64_t shed = 0;
  std::uint64_t batches = 0;
  std::uint64_t executed_items = 0;
  std::uint64_t sink_outputs = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t open_sessions = 0;
  std::uint64_t plan_epoch = 0;
};

class PipelineService {
 public:
  /// Stages run through the executor's per-item adapter. Throws on malformed
  /// config (non-positive deadline/tau0, arity mismatch, infeasible
  /// deadline).
  PipelineService(sdf::PipelineSpec pipeline,
                  std::vector<runtime::StageFn> stages, ServiceConfig config);
  ~PipelineService();

  PipelineService(const PipelineService&) = delete;
  PipelineService& operator=(const PipelineService&) = delete;

  // --- session side (any thread) ------------------------------------------

  SessionId open_session();
  /// Unknown or already-closed ids are ignored (returns false). Pending
  /// items of a closed session still execute.
  bool close_session(SessionId id);

  /// Submit items on a session. Shed sessions reject everything (counted);
  /// admitted sessions accept up to the queue's free capacity and reject the
  /// rest as backpressure. Throws std::logic_error on an unknown session.
  SubmitOutcome submit(SessionId id, std::vector<runtime::Item> items);

  // --- lifecycle ----------------------------------------------------------

  /// Start the worker thread. No-op when already running.
  void start();
  /// Drain every pending item, then join the worker. Idempotent.
  void stop();

  /// Synchronously drain pending items on the caller's thread — the
  /// single-threaded path for deterministic tests and the CLI replay of
  /// recorded submissions. Only valid while the worker is not running.
  /// Returns the number of items executed.
  std::size_t drain_once();

  // --- introspection ------------------------------------------------------

  ServiceStats stats() const;
  control::PlanPtr current_plan() const { return controller_.plan(); }
  /// The controller is written by the worker; read it only when the worker
  /// is stopped (tests) — the plan()/epoch() accessors are the exception
  /// and are always safe.
  const control::Controller& controller() const { return controller_; }
  const sdf::PipelineSpec& pipeline() const { return pipeline_; }

 private:
  struct Pending {
    runtime::Item item;
    Cycles arrival = 0.0;
    std::uint64_t seq = 0;  ///< global submit order, breaks arrival ties
  };
  struct Session {
    std::uint64_t open_seq = 0;  ///< admission order (1-based)
    bool open = true;
    std::mutex mutex;
    util::RingBuffer<Pending> queue;
  };

  Cycles now() const;
  void worker_loop();
  /// Drain + execute everything currently pending (worker or drain_once).
  std::size_t drain_pending();
  void execute_batch(std::vector<Pending>& batch);
  void refresh_watermark();

  sdf::PipelineSpec pipeline_;
  runtime::PipelineExecutor executor_;
  ServiceConfig config_;
  control::Controller controller_;

  mutable std::mutex sessions_mutex_;
  std::map<SessionId, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_seq_ = 0;

  /// Sessions with open_seq <= watermark are admitted (read lock-free on the
  /// submit path; refreshed by the worker after each control tick).
  std::atomic<std::uint64_t> admitted_watermark_;
  std::atomic<std::uint64_t> submit_seq_{0};
  std::atomic<std::uint64_t> pending_count_{0};

  /// Arrival timestamps of shed submissions, drained by the worker for rate
  /// estimation only. The estimator must keep seeing the *offered* stream
  /// while admission rejects it — otherwise a fully shed service would never
  /// observe the load dropping and the watermark would stay closed forever.
  std::mutex shed_mutex_;
  std::vector<Cycles> shed_arrivals_;
  std::atomic<std::uint64_t> shed_since_drain_{0};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_backpressure_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> executed_items_{0};
  std::atomic<std::uint64_t> sink_outputs_{0};
  std::atomic<std::uint64_t> deadline_misses_{0};

  std::chrono::steady_clock::time_point epoch_time_;
  Cycles last_arrival_ = 0.0;  ///< worker-only: previous observed arrival

  std::mutex worker_mutex_;
  std::condition_variable worker_cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread worker_;

  std::vector<Pending> drain_scratch_;  ///< worker-only batch buffer
};

/// Deterministic per-item stages whose emission counts track each node's
/// mean gain via an error-feedback accumulator (stage i emits floor(acc)
/// items after acc += g_i). Gives any PipelineSpec a runnable stage set for
/// the service demos, soak tests, and benches; the terminal stage passes
/// items through to the sink.
std::vector<runtime::StageFn> synthetic_stages(const sdf::PipelineSpec& spec);

}  // namespace ripple::service
