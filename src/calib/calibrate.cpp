#include "calib/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "arrivals/arrival_process.hpp"
#include "dist/rng.hpp"
#include "sim/enforced_sim.hpp"
#include "sim/monolithic_sim.hpp"
#include "sim/trial_runner.hpp"
#include "util/assert.hpp"
#include "util/string_utils.hpp"

namespace ripple::calib {

std::vector<Probe> default_probes() {
  // Corners, edge midpoints and center of the paper's ranges
  // (tau0 in [1, 100], D in [2e4, 3.5e5]). Infeasible points are skipped at
  // evaluation time, so the fast-arrival corner is safe to include.
  return {
      {1.0, 2e4},    {1.0, 1.85e5},   {1.0, 3.5e5},
      {10.0, 2e4},   {10.0, 1.85e5},  {10.0, 3.5e5},
      {50.0, 2e4},   {50.0, 1.85e5},  {50.0, 3.5e5},
      {100.0, 2e4},  {100.0, 1.85e5}, {100.0, 3.5e5},
  };
}

namespace {

/// Evaluate one probe for enforced waits: optimize, then run seeded trials.
/// Also reports the worst per-node queue depth (in vector multiples) seen,
/// which drives the raise heuristic.
struct EnforcedProbeEvaluation {
  ProbeOutcome outcome;
  std::vector<double> observed_depth;  ///< max queue length / v, per node
};

EnforcedProbeEvaluation evaluate_enforced_probe(
    const sdf::PipelineSpec& pipeline, const core::EnforcedWaitsStrategy& strategy,
    const Probe& probe, const CalibrationOptions& options, std::uint64_t round) {
  EnforcedProbeEvaluation eval;
  eval.outcome.probe = probe;
  eval.observed_depth.assign(pipeline.size(), 0.0);

  auto solved = strategy.solve(probe.tau0, probe.deadline);
  if (!solved.ok()) return eval;  // infeasible: skip
  eval.outcome.feasible = true;
  const std::vector<Cycles> intervals = solved.value().firing_intervals;

  auto trial_body = [&, intervals](std::uint64_t trial, sim::TrialMetrics& out) {
    arrivals::FixedRateArrivals arrival_process(probe.tau0);
    sim::EnforcedSimConfig config;
    config.input_count = options.inputs_per_trial;
    config.deadline = probe.deadline;
    config.seed = dist::derive_seed(
        {options.base_seed, 0xE4F0ACEDULL, round,
         static_cast<std::uint64_t>(probe.tau0 * 1e6),
         static_cast<std::uint64_t>(probe.deadline), trial});
    sim::simulate_enforced_waits_into(pipeline, intervals, arrival_process,
                                      config, out);
  };
  const sim::TrialSummary summary = sim::run_trials_into(
      trial_body, options.trials, options.pool, options.trial_grain);

  eval.outcome.miss_free_fraction = summary.miss_free_fraction();
  eval.outcome.mean_miss_fraction = summary.miss_fraction.mean();
  eval.outcome.mean_active_fraction = summary.active_fraction.mean();
  const double v = static_cast<double>(pipeline.simd_width());
  for (std::size_t i = 0; i < summary.max_queue_lengths.size(); ++i) {
    eval.observed_depth[i] =
        static_cast<double>(summary.max_queue_lengths[i]) / v;
  }
  return eval;
}

std::string format_b(const std::vector<double>& b) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (i != 0) os << ", ";
    os << util::format_double(b[i], 3);
  }
  os << '}';
  return os.str();
}

}  // namespace

EnforcedCalibrationResult calibrate_enforced_waits(
    const sdf::PipelineSpec& pipeline, const core::EnforcedWaitsConfig& initial,
    const std::vector<Probe>& probes, const CalibrationOptions& options) {
  RIPPLE_REQUIRE(!probes.empty(), "calibration needs at least one probe");
  EnforcedCalibrationResult result;
  result.config = initial;

  for (int round = 0; round < options.max_rounds; ++round) {
    ++result.rounds;
    const core::EnforcedWaitsStrategy strategy(pipeline, result.config);

    std::vector<EnforcedProbeEvaluation> evaluations;
    evaluations.reserve(probes.size());
    double worst_miss_free = 1.0;
    bool any_feasible = false;
    std::vector<double> worst_depth(pipeline.size(), 0.0);

    for (const Probe& probe : probes) {
      evaluations.push_back(evaluate_enforced_probe(
          pipeline, strategy, probe, options, static_cast<std::uint64_t>(round)));
      const EnforcedProbeEvaluation& eval = evaluations.back();
      if (!eval.outcome.feasible) continue;
      any_feasible = true;
      worst_miss_free = std::min(worst_miss_free, eval.outcome.miss_free_fraction);
      for (std::size_t i = 0; i < worst_depth.size(); ++i) {
        worst_depth[i] = std::max(worst_depth[i], eval.observed_depth[i]);
      }
    }

    result.final_outcomes.clear();
    for (const auto& eval : evaluations) result.final_outcomes.push_back(eval.outcome);
    result.worst_miss_free = any_feasible ? worst_miss_free : 0.0;

    if (!any_feasible) {
      result.log.push_back("round " + std::to_string(round) +
                           ": no feasible probe with b = " +
                           format_b(result.config.b));
      return result;  // raising b only shrinks feasibility; stop
    }
    if (worst_miss_free >= options.target_miss_free) {
      result.success = true;
      result.log.push_back("round " + std::to_string(round) + ": b = " +
                           format_b(result.config.b) +
                           " meets target (worst miss-free " +
                           util::format_double(worst_miss_free, 4) + ")");
      return result;
    }

    // Raise the multiplier of the node whose observed queue depth most
    // exceeds its current allowance; break ties toward the deeper pipeline
    // stage (later stages accumulate upstream burstiness).
    std::size_t worst_node = 0;
    double worst_ratio = -1.0;
    for (std::size_t i = 0; i < worst_depth.size(); ++i) {
      const double ratio = (worst_depth[i] + 1.0) / result.config.b[i];
      if (ratio >= worst_ratio) {
        worst_ratio = ratio;
        worst_node = i;
      }
    }
    result.config.b[worst_node] += 1.0;
    result.log.push_back(
        "round " + std::to_string(round) + ": worst miss-free " +
        util::format_double(worst_miss_free, 4) + " < target; raising b[" +
        std::to_string(worst_node) + "] -> " +
        util::format_double(result.config.b[worst_node], 3));

    if (result.config.b[worst_node] > options.max_multiplier) {
      result.log.push_back("give up: multiplier bound exceeded");
      return result;
    }
  }
  result.log.push_back("give up: round budget exhausted");
  return result;
}

MonolithicCalibrationResult calibrate_monolithic(
    const sdf::PipelineSpec& pipeline, const core::MonolithicConfig& initial,
    const std::vector<Probe>& probes, const CalibrationOptions& options) {
  RIPPLE_REQUIRE(!probes.empty(), "calibration needs at least one probe");
  MonolithicCalibrationResult result;
  result.config = initial;

  for (int round = 0; round < options.max_rounds; ++round) {
    ++result.rounds;
    const core::MonolithicStrategy strategy(pipeline, result.config);

    result.final_outcomes.clear();
    double worst_miss_free = 1.0;
    bool any_feasible = false;

    for (const Probe& probe : probes) {
      ProbeOutcome outcome;
      outcome.probe = probe;
      auto solved = strategy.solve(probe.tau0, probe.deadline);
      if (solved.ok()) {
        outcome.feasible = true;
        any_feasible = true;
        const std::int64_t block = solved.value().block_size;
        auto trial_body = [&, block](std::uint64_t trial,
                                     sim::TrialMetrics& out) {
          arrivals::FixedRateArrivals arrival_process(probe.tau0);
          sim::MonolithicSimConfig config;
          config.block_size = block;
          config.input_count = options.inputs_per_trial;
          config.deadline = probe.deadline;
          config.seed = dist::derive_seed(
              {options.base_seed, 0x30701170ULL,
               static_cast<std::uint64_t>(round),
               static_cast<std::uint64_t>(probe.tau0 * 1e6),
               static_cast<std::uint64_t>(probe.deadline), trial});
          sim::simulate_monolithic_into(pipeline, arrival_process, config, out);
        };
        const sim::TrialSummary summary = sim::run_trials_into(
            trial_body, options.trials, options.pool, options.trial_grain);
        outcome.miss_free_fraction = summary.miss_free_fraction();
        outcome.mean_miss_fraction = summary.miss_fraction.mean();
        outcome.mean_active_fraction = summary.active_fraction.mean();
        worst_miss_free = std::min(worst_miss_free, outcome.miss_free_fraction);
      }
      result.final_outcomes.push_back(outcome);
    }
    result.worst_miss_free = any_feasible ? worst_miss_free : 0.0;

    if (!any_feasible) {
      result.log.push_back("round " + std::to_string(round) +
                           ": no feasible probe");
      return result;
    }
    if (worst_miss_free >= options.target_miss_free) {
      result.success = true;
      result.log.push_back(
          "round " + std::to_string(round) + ": (b=" +
          util::format_double(result.config.b, 3) + ", S=" +
          util::format_double(result.config.S, 3) + ") meets target");
      return result;
    }

    // Alternate raising the service-scale S (finer) and the block multiplier
    // b (coarser), mirroring the paper's manual "raise one or more
    // parameters" loop.
    if (round % 2 == 0) {
      result.config.S += 0.25;
      result.log.push_back("round " + std::to_string(round) + ": raising S -> " +
                           util::format_double(result.config.S, 3));
    } else {
      result.config.b += 1.0;
      result.log.push_back("round " + std::to_string(round) + ": raising b -> " +
                           util::format_double(result.config.b, 3));
    }
    if (result.config.b > options.max_multiplier) {
      result.log.push_back("give up: multiplier bound exceeded");
      return result;
    }
  }
  result.log.push_back("give up: round budget exhausted");
  return result;
}

}  // namespace ripple::calib

