#include "calib/kernel_costs.hpp"

#include "util/assert.hpp"

namespace ripple::calib {

std::optional<double> resolved_ns_per_item(const device::AutotuneReport& report,
                                           const std::string& kernel,
                                           device::SimdLevel level) {
  for (int slot = static_cast<int>(level); slot >= 0; --slot) {
    const std::optional<double> ns =
        report.ns_per_item(kernel, static_cast<device::SimdLevel>(slot));
    if (ns.has_value()) return ns;
  }
  return std::nullopt;
}

std::vector<double> stage_scales(const device::AutotuneReport& report,
                                 const StageKernels& kernels,
                                 device::SimdLevel measured,
                                 device::SimdLevel target) {
  std::vector<double> scales(kernels.size(), 1.0);
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    if (kernels[i].empty()) continue;
    const std::optional<double> was =
        resolved_ns_per_item(report, kernels[i], measured);
    const std::optional<double> will =
        resolved_ns_per_item(report, kernels[i], target);
    if (was.has_value() && will.has_value() && *was > 0.0) {
      scales[i] = *will / *was;
    }
  }
  return scales;
}

util::Result<sdf::PipelineSpec> reprice_pipeline(
    const sdf::PipelineSpec& spec, const std::vector<double>& scales) {
  RIPPLE_REQUIRE(scales.size() == spec.size(),
                 "one scale per pipeline stage required");
  sdf::PipelineBuilder builder(spec.name());
  builder.simd_width(spec.simd_width());
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const sdf::NodeSpec& node = spec.node(i);
    builder.add_node(node.name, node.service_time * scales[i], node.gain);
  }
  return builder.build();
}

}  // namespace ripple::calib
