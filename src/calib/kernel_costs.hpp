// Per-ISA kernel costs feeding the planner (closing the dispatch loop).
//
// The measured t_i in a PipelineSpec reflect whichever kernel variants the
// device::KernelRegistry resolved on the measuring host. When the resolved
// ISA changes — a different machine, a --simd-level pin, an autotune
// decision — the true stage costs shift by the per-variant throughput
// ratios, and a plan optimized for the old t_i can pick the wrong knee.
// This module turns a registry AutotuneReport (deterministic microbench
// costs per kernel per ISA) into per-stage scale factors and reprices a
// pipeline spec in place, so calibration and re-planning always see service
// times consistent with the kernels that will actually run. See
// docs/KERNELS.md for the registry side and tests/test_calib.cpp for the
// plan-shift demonstration.
#pragma once

#include <string>
#include <vector>

#include "device/kernel_registry.hpp"
#include "sdf/pipeline.hpp"
#include "util/result.hpp"

namespace ripple::calib {

/// Stage index -> registry kernel name pricing that stage. An empty name
/// means the stage has no vector kernel (its t_i is ISA-independent).
using StageKernels = std::vector<std::string>;

/// Microbench cost of `kernel` when resolution is capped at `level`: the
/// measurement at the highest level <= `level` that the report holds —
/// mirroring the registry's fall-down resolution. Empty when the kernel (or
/// any variant at or below `level`) is absent from the report.
std::optional<double> resolved_ns_per_item(const device::AutotuneReport& report,
                                           const std::string& kernel,
                                           device::SimdLevel level);

/// Per-stage service-time scale factors for retargeting a pipeline whose
/// t_i were measured with kernels resolved at `measured` to a host/pin that
/// resolves at `target`: scale = ns(kernel @ target) / ns(kernel @
/// measured). Stages with an empty kernel name, or kernels the report does
/// not cover, keep scale 1.0.
std::vector<double> stage_scales(const device::AutotuneReport& report,
                                 const StageKernels& kernels,
                                 device::SimdLevel measured,
                                 device::SimdLevel target);

/// Rebuild `spec` with each node's service time multiplied by scales[i]
/// (names, gains, and SIMD width unchanged). scales.size() must equal
/// spec.size(); forwards the builder's validation failures.
util::Result<sdf::PipelineSpec> reprice_pipeline(
    const sdf::PipelineSpec& spec, const std::vector<double>& scales);

}  // namespace ripple::calib
