// Empirical worst-case parameter calibration (paper Section 6.2).
//
// Both strategies need parameters describing how far transient behavior can
// depart from the average: the per-node queue multipliers b_i for enforced
// waits, and (b, S) for the monolithic strategy. The paper chooses them by
// a raise-and-retest loop: start optimistic (b_i = ceil(g_i), b = 1, S = 1),
// optimize, simulate many seeded trials at probe points of the (tau0, D)
// space, and raise parameters until misses become sufficiently rare. This
// module packages that loop as a reusable algorithm.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/enforced_waits.hpp"
#include "core/monolithic.hpp"
#include "sdf/pipeline.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace ripple::calib {

/// One (tau0, D) validation point.
struct Probe {
  Cycles tau0 = 0.0;
  Cycles deadline = 0.0;
};

/// A small probe set spanning the corners and center of the paper's
/// parameter ranges, filtered to points feasible for the given config.
std::vector<Probe> default_probes();

struct CalibrationOptions {
  std::uint64_t trials = 100;           ///< seeds per probe (paper: 100)
  ItemCount inputs_per_trial = 50000;   ///< stream length (paper: 50000)
  double target_miss_free = 0.95;       ///< min fraction of miss-free trials
  int max_rounds = 64;
  double max_multiplier = 64.0;         ///< give-up bound on any b_i
  std::uint64_t base_seed = 0;
  util::ThreadPool* pool = nullptr;
  /// Consecutive trials a pool worker claims per atomic fetch (forwarded to
  /// run_trials). Trials are seeded by index, so this never changes results.
  std::size_t trial_grain = 4;
};

/// Result of one probe evaluation in the final round.
struct ProbeOutcome {
  Probe probe;
  bool feasible = false;
  double miss_free_fraction = 0.0;
  double mean_miss_fraction = 0.0;
  double mean_active_fraction = 0.0;
};

struct EnforcedCalibrationResult {
  bool success = false;
  int rounds = 0;
  core::EnforcedWaitsConfig config;       ///< calibrated b_i
  double worst_miss_free = 0.0;           ///< min across feasible probes
  std::vector<ProbeOutcome> final_outcomes;
  std::vector<std::string> log;           ///< one line per adjustment
};

/// Calibrate the b_i multipliers for enforced waits, starting from
/// `initial` (use EnforcedWaitsConfig::optimistic for the paper's start).
EnforcedCalibrationResult calibrate_enforced_waits(
    const sdf::PipelineSpec& pipeline, const core::EnforcedWaitsConfig& initial,
    const std::vector<Probe>& probes, const CalibrationOptions& options);

struct MonolithicCalibrationResult {
  bool success = false;
  int rounds = 0;
  core::MonolithicConfig config;  ///< calibrated (b, S)
  double worst_miss_free = 0.0;
  std::vector<ProbeOutcome> final_outcomes;
  std::vector<std::string> log;
};

/// Calibrate (b, S) for the monolithic strategy starting from `initial`.
MonolithicCalibrationResult calibrate_monolithic(
    const sdf::PipelineSpec& pipeline, const core::MonolithicConfig& initial,
    const std::vector<Probe>& probes, const CalibrationOptions& options);

}  // namespace ripple::calib
