#include "device/occupancy.hpp"

#include "util/assert.hpp"

namespace ripple::device {

OccupancyTracker::OccupancyTracker(const SimdDevice& device,
                                   std::size_t node_count)
    : vector_width_(device.vector_width()), per_node_(node_count) {
  RIPPLE_REQUIRE(node_count > 0, "tracker needs at least one node");
}

void OccupancyTracker::record_firing(std::size_t node, std::uint32_t consumed) {
  RIPPLE_REQUIRE(node < per_node_.size(), "node index out of range");
  RIPPLE_REQUIRE(consumed <= vector_width_,
                 "consumed items exceed the vector width");
  Counters& c = per_node_[node];
  ++c.firings;
  if (consumed == 0) ++c.empty_firings;
  c.items += consumed;
}

std::uint64_t OccupancyTracker::firings(std::size_t node) const {
  RIPPLE_REQUIRE(node < per_node_.size(), "node index out of range");
  return per_node_[node].firings;
}

std::uint64_t OccupancyTracker::empty_firings(std::size_t node) const {
  RIPPLE_REQUIRE(node < per_node_.size(), "node index out of range");
  return per_node_[node].empty_firings;
}

std::uint64_t OccupancyTracker::items_consumed(std::size_t node) const {
  RIPPLE_REQUIRE(node < per_node_.size(), "node index out of range");
  return per_node_[node].items;
}

double OccupancyTracker::mean_occupancy(std::size_t node) const {
  RIPPLE_REQUIRE(node < per_node_.size(), "node index out of range");
  const Counters& c = per_node_[node];
  if (c.firings == 0) return 0.0;
  return static_cast<double>(c.items) /
         (static_cast<double>(c.firings) * static_cast<double>(vector_width_));
}

double OccupancyTracker::mean_nonempty_occupancy(std::size_t node) const {
  RIPPLE_REQUIRE(node < per_node_.size(), "node index out of range");
  const Counters& c = per_node_[node];
  const std::uint64_t nonempty = c.firings - c.empty_firings;
  if (nonempty == 0) return 0.0;
  return static_cast<double>(c.items) /
         (static_cast<double>(nonempty) * static_cast<double>(vector_width_));
}

double OccupancyTracker::overall_occupancy() const {
  std::uint64_t firings = 0;
  std::uint64_t items = 0;
  for (const Counters& c : per_node_) {
    firings += c.firings;
    items += c.items;
  }
  if (firings == 0) return 0.0;
  return static_cast<double>(items) /
         (static_cast<double>(firings) * static_cast<double>(vector_width_));
}

}  // namespace ripple::device
