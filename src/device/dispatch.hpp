// Runtime SIMD dispatch: which instruction set the vector-wide kernels use.
//
// The repo's SIMD kernels (blast/simd_kernels, cascade/simd_kernels) are
// compiled in two flavors: a portable scalar loop, always built, and an AVX2
// path guarded twice — at compile time by the RIPPLE_SIMD CMake option (so
// non-x86 or forced-scalar builds contain no AVX2 code at all) and at run
// time by CPUID detection (so an AVX2-less host never executes it). Kernels
// consult active_simd_level() per batch; tests and benchmarks can pin the
// level with set_simd_override() to compare paths on the same host.
//
// RIPPLE_SIMD=OFF builds compile exactly the scalar fallback, which the CI
// forced-scalar job keeps green (see .github/workflows/ci.yml).
#pragma once

#include <optional>

// Compile gate for the x86 SIMD paths: the RIPPLE_SIMD option must be ON and
// the target must be x86-64 (the kernels use AVX2 intrinsics via function
// target attributes, so no special per-file compiler flags are needed).
#if RIPPLE_SIMD && (defined(__x86_64__) || defined(_M_X64))
#define RIPPLE_SIMD_X86 1
#else
#define RIPPLE_SIMD_X86 0
#endif

namespace ripple::device {

enum class SimdLevel {
  kScalar,  ///< portable fallback loops
  kAvx2,    ///< 8-lane i32 / 4-lane i64 gathers and compares
};

const char* to_string(SimdLevel level) noexcept;

/// True when this binary contains the AVX2 kernel bodies.
constexpr bool simd_compiled() noexcept { return RIPPLE_SIMD_X86 != 0; }

/// Best level the host CPU supports (cached CPUID probe); kScalar on
/// non-x86 builds.
SimdLevel detected_simd_level() noexcept;

/// Level kernels should use right now: the detected level clamped by the
/// compile gate, unless an override is pinned.
SimdLevel active_simd_level() noexcept;

/// Pin (or release, with nullopt) the dispatch level. Overrides above the
/// compiled/detected capability are clamped down, so forcing kAvx2 on a
/// scalar-only build still yields kScalar. Not thread-safe against kernels
/// running concurrently; intended for test and benchmark setup.
void set_simd_override(std::optional<SimdLevel> level) noexcept;

}  // namespace ripple::device
