// Runtime SIMD dispatch: which instruction sets the vector-wide kernels may
// use, and the process-wide level cap that callers and tests can pin.
//
// The repo's SIMD kernels (blast/simd_kernels, cascade/simd_kernels) are
// compiled as a per-ISA matrix: a portable scalar loop is always built, and
// each vector ISA (NEON, AVX2, AVX-512) is guarded twice — at compile time
// by the RIPPLE_SIMD / RIPPLE_SIMD_<ISA> CMake options (so forced-scalar or
// wrong-architecture builds contain none of that ISA's code) and at run time
// by CPU feature detection (so a host lacking the ISA never executes it).
// Which *variant* of a kernel runs is decided per kernel by the function-
// level registry in device/kernel_registry.hpp; this header supplies the
// level lattice, the feature probes, and the global level cap
// (active_simd_level()) that clamps every kernel's resolution. Tests and
// benchmarks pin the cap with set_simd_override() to compare paths on the
// same host.
//
// RIPPLE_SIMD=OFF builds compile exactly the scalar fallback, which the CI
// dispatch-matrix job keeps green (see .github/workflows/ci.yml).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

// Per-ISA compile gates. RIPPLE_SIMD is the master switch; the per-ISA
// RIPPLE_SIMD_AVX2 / RIPPLE_SIMD_AVX512 / RIPPLE_SIMD_NEON sub-options
// default ON when undefined (CMake defines them =0 when disabled) so plain
// `-DRIPPLE_SIMD=1` compiles keep every ISA the target architecture can
// express. The kernels use intrinsics via function target attributes, so no
// special per-file compiler flags are needed on x86; NEON bodies compile
// only on AArch64, where NEON is baseline.
#ifndef RIPPLE_SIMD_AVX2
#define RIPPLE_SIMD_AVX2 1
#endif
#ifndef RIPPLE_SIMD_AVX512
#define RIPPLE_SIMD_AVX512 1
#endif
#ifndef RIPPLE_SIMD_NEON
#define RIPPLE_SIMD_NEON 1
#endif

#if RIPPLE_SIMD && RIPPLE_SIMD_AVX2 && (defined(__x86_64__) || defined(_M_X64))
#define RIPPLE_SIMD_X86 1
#else
#define RIPPLE_SIMD_X86 0
#endif

#if RIPPLE_SIMD && RIPPLE_SIMD_AVX512 && \
    (defined(__x86_64__) || defined(_M_X64))
#define RIPPLE_SIMD_X86_AVX512 1
#else
#define RIPPLE_SIMD_X86_AVX512 0
#endif

#if RIPPLE_SIMD && RIPPLE_SIMD_NEON && defined(__aarch64__)
#define RIPPLE_SIMD_NEON_ARM 1
#else
#define RIPPLE_SIMD_NEON_ARM 0
#endif

namespace ripple::device {

/// Dispatch levels, ordered by preference: overrides clamp by min() against
/// this order, and resolution picks the highest available level. NEON sits
/// between scalar and AVX2 — it is never co-resident with the x86 levels on
/// one host, and 4 lanes ranks below 8.
enum class SimdLevel {
  kScalar = 0,  ///< portable fallback loops
  kNeon = 1,    ///< 4-lane i32 NEON (AArch64)
  kAvx2 = 2,    ///< 8-lane i32 / 4-lane i64 gathers and compares
  kAvx512 = 3,  ///< 16-lane i32 / 8-lane i64, mask registers
};

inline constexpr int kSimdLevelCount = 4;

const char* to_string(SimdLevel level) noexcept;

/// Parse "scalar" / "neon" / "avx2" / "avx512"; nullopt on anything else.
std::optional<SimdLevel> parse_simd_level(std::string_view name) noexcept;

/// True when this binary contains the bodies for `level` (kScalar: always).
constexpr bool level_compiled(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kNeon:
      return RIPPLE_SIMD_NEON_ARM != 0;
    case SimdLevel::kAvx2:
      return RIPPLE_SIMD_X86 != 0;
    case SimdLevel::kAvx512:
      return RIPPLE_SIMD_X86_AVX512 != 0;
  }
  return false;
}

/// True when this binary contains any vector kernel bodies.
constexpr bool simd_compiled() noexcept {
  return RIPPLE_SIMD_X86 != 0 || RIPPLE_SIMD_X86_AVX512 != 0 ||
         RIPPLE_SIMD_NEON_ARM != 0;
}

/// True when `level` is both compiled in and reported by the host CPU
/// (cached feature probe). kScalar is always supported.
bool level_supported(SimdLevel level) noexcept;

/// Best level that is compiled in and supported by the host CPU.
SimdLevel detected_simd_level() noexcept;

/// The process-wide level cap: the detected level, clamped down by the
/// pinned override when one is set. Kernel resolution never selects a
/// variant above this.
SimdLevel active_simd_level() noexcept;

/// Pin (or release, with nullopt) the global dispatch cap. Overrides above
/// the compiled/detected capability are clamped down, so forcing kAvx512 on
/// an AVX2 host still yields kAvx2. The environment variable
/// RIPPLE_SIMD_LEVEL ("scalar"/"neon"/"avx2"/"avx512") seeds the override at
/// first use. Not thread-safe against kernels running concurrently; intended
/// for test, benchmark, and startup configuration.
void set_simd_override(std::optional<SimdLevel> level) noexcept;

/// Monotonic counter bumped by every dispatch-affecting change: global
/// override, kernel registration, per-kernel override, autotune. Cached
/// kernel handles (device/kernel_registry.hpp) re-resolve when it moves, so
/// steady-state dispatch costs one relaxed atomic load per batch.
std::uint64_t dispatch_generation() noexcept;
void bump_dispatch_generation() noexcept;

}  // namespace ripple::device
