#include "device/simd_device.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ripple::device {

SimdDevice::SimdDevice(std::uint32_t vector_width, std::size_t node_count)
    : vector_width_(vector_width), node_count_(node_count) {
  RIPPLE_REQUIRE(vector_width > 0, "vector width must be positive");
  RIPPLE_REQUIRE(node_count > 0, "device must host at least one node");
}

SimdDevice SimdDevice::for_pipeline(const sdf::PipelineSpec& pipeline) {
  return SimdDevice(pipeline.simd_width(), pipeline.size());
}

double SimdDevice::node_share() const noexcept {
  return 1.0 / static_cast<double>(node_count_);
}

Cycles SimdDevice::exclusive_firing_duration(Cycles service_time) const noexcept {
  return service_time * node_share();
}

std::uint32_t SimdDevice::items_consumed(std::uint64_t queue_length) const noexcept {
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(queue_length, vector_width_));
}

double SimdDevice::occupancy(std::uint32_t consumed) const noexcept {
  const std::uint32_t clamped = std::min(consumed, vector_width_);
  return static_cast<double>(clamped) / static_cast<double>(vector_width_);
}

}  // namespace ripple::device
