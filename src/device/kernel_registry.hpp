// Function-level SIMD dispatch: a registry mapping named stage kernels to
// their vectorized variants, in the style of Ripple's vector bitcode
// libraries (scalar function -> SIMD equivalent by name).
//
// The global SimdLevel cap (device/dispatch.hpp) answers "what may run";
// this registry answers "what runs for *this* kernel". Each kernel owns a
// scalar baseline plus any number of per-ISA variants registered by name,
// level, and lane width:
//
//   KernelRegistry::instance().register_variant(
//       "blast.seed_probe", "blast", SimdLevel::kAvx512, 16,
//       reinterpret_cast<AnyKernelFn>(&seed_filter_avx512));
//
// Callers resolve once per batch through a cached KernelHandle<FnPtr>: the
// handle re-resolves only when the dispatch generation moves (registration,
// override, or autotune), so the steady-state cost is one relaxed atomic
// load per batch. Resolution picks, among variants that are compiled in,
// supported by the host CPU, and at or below the effective cap
// (min(active_simd_level(), per-kernel override)), the autotuned winner if
// one is recorded and eligible, else the highest-preference level. A kernel
// with no eligible vector variant falls back to its scalar baseline, which
// registration requires.
//
// Autotune is gated (nothing runs it implicitly) and deterministic in its
// inputs: each kernel registers a microbench closure over fixed-seed
// committed fixtures, and autotune() replays it per supported variant,
// recording ns/item and the per-kernel winner. The report is the measured
// per-ISA cost surface that calib/kernel_costs.hpp turns into solver stage
// scales, closing the loop from resolved kernel to calibrated t_i.
//
// The full catalog (docs/KERNELS.md) is generated from dump(); a test diffs
// the two so the doc cannot go stale.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "device/dispatch.hpp"

namespace ripple::device {

/// Type-erased kernel entry point. Variants of one kernel share a concrete
/// signature; KernelHandle<FnPtr> casts back to it. Calling through the
/// original type is what keeps the erasure well-defined.
using AnyKernelFn = void (*)();

/// Deterministic replay harness for one kernel: run `variant` (already cast
/// to the kernel's signature inside) once over the kernel's committed
/// fixed-seed inputs and return the number of items processed.
using MicrobenchFn = std::uint64_t (*)(AnyKernelFn variant);

struct KernelVariant {
  SimdLevel level = SimdLevel::kScalar;
  std::uint32_t lanes = 1;
  AnyKernelFn fn = nullptr;
};

/// One catalog line of the registry dump (the source of docs/KERNELS.md).
struct KernelCatalogRow {
  std::string kernel;
  std::string subsystem;
  SimdLevel level = SimdLevel::kScalar;
  std::uint32_t lanes = 1;
  bool supported = false;  ///< compiled in and runnable on this host
};

struct AutotuneOptions {
  int repeats = 3;    ///< timed replays per variant; the minimum is kept
  bool apply = true;  ///< record winners so resolution prefers them
};

struct AutotuneMeasurement {
  SimdLevel level = SimdLevel::kScalar;
  std::uint32_t lanes = 1;
  double ns_per_item = 0.0;
};

struct AutotuneKernelReport {
  std::string kernel;
  std::vector<AutotuneMeasurement> measured;  ///< ascending by level
  SimdLevel winner = SimdLevel::kScalar;
};

struct AutotuneReport {
  std::vector<AutotuneKernelReport> kernels;  ///< ascending by kernel name
  double wall_us = 0.0;

  /// ns/item for (kernel, level); nullopt when not measured.
  std::optional<double> ns_per_item(std::string_view kernel,
                                    SimdLevel level) const noexcept;
};

class KernelRegistry {
 public:
  /// The process-wide registry every KernelHandle resolves against. Local
  /// instances can be constructed for tests.
  static KernelRegistry& instance();

  KernelRegistry() = default;
  KernelRegistry(const KernelRegistry&) = delete;
  KernelRegistry& operator=(const KernelRegistry&) = delete;

  /// Register one variant. The first registration of a kernel names its
  /// owning subsystem and must include a scalar baseline before any resolve.
  /// Throws std::logic_error on a duplicate (kernel, level), a null fn, a
  /// scalar variant with lanes != 1, or lanes == 0.
  void register_variant(std::string_view kernel, std::string_view subsystem,
                        SimdLevel level, std::uint32_t lanes, AnyKernelFn fn);

  /// Attach the deterministic microbench autotune() replays for `kernel`.
  void set_microbench(std::string_view kernel, MicrobenchFn fn);

  bool has_kernel(std::string_view kernel) const;

  /// The variant `kernel` should run right now (see file comment for the
  /// policy). Throws std::logic_error for an unknown kernel or one missing
  /// its scalar baseline.
  KernelVariant resolve(std::string_view kernel);

  SimdLevel resolved_level(std::string_view kernel);

  /// Pin (or release) a per-kernel cap. Like the global override it clamps
  /// by min(): pinning kAvx512 on an AVX2 host resolves the AVX2 variant.
  void set_kernel_override(std::string_view kernel,
                           std::optional<SimdLevel> level);
  std::optional<SimdLevel> kernel_override(std::string_view kernel) const;

  /// Replay every registered microbench against every supported variant of
  /// its kernel; record winners (when options.apply) and return the measured
  /// per-ISA cost surface. Gated: nothing calls this implicitly.
  AutotuneReport autotune(const AutotuneOptions& options = {});

  std::optional<SimdLevel> autotuned_level(std::string_view kernel) const;
  void clear_autotune();

  /// Every registered (kernel, level) pair, ascending by name then level.
  std::vector<KernelCatalogRow> dump() const;
  /// Sorted distinct kernel names.
  std::vector<std::string> kernel_names() const;

 private:
  struct Entry {
    std::string subsystem;
    std::array<AnyKernelFn, kSimdLevelCount> fn{};
    std::array<std::uint32_t, kSimdLevelCount> lanes{};
    MicrobenchFn microbench = nullptr;
    std::optional<SimdLevel> override_level;
    std::optional<SimdLevel> autotuned;
  };

  KernelVariant resolve_locked(const std::string& name, const Entry& entry,
                               SimdLevel cap) const;

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> kernels_;
};

/// Per-call-site cached resolution: keeps the resolved variant until the
/// dispatch generation moves. Intended as a thread_local in the kernel's
/// batch wrapper, constructed from a string literal.
template <typename FnPtr>
class KernelHandle {
 public:
  explicit KernelHandle(const char* kernel) noexcept : kernel_(kernel) {}

  /// The resolved entry point, cast back to the kernel's signature.
  FnPtr fn() {
    refresh();
    return reinterpret_cast<FnPtr>(variant_.fn);
  }

  /// The resolved variant (for level-dependent shape gates in wrappers).
  const KernelVariant& variant() {
    refresh();
    return variant_;
  }

 private:
  void refresh() {
    const std::uint64_t generation = dispatch_generation();
    if (variant_.fn == nullptr || generation != generation_) {
      variant_ = KernelRegistry::instance().resolve(kernel_);
      generation_ = generation;
    }
  }

  const char* kernel_;
  KernelVariant variant_{};
  std::uint64_t generation_ = 0;
};

}  // namespace ripple::device
