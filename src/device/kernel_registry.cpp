#include "device/kernel_registry.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"
#include "util/stopwatch.hpp"

#if RIPPLE_OBS
#include "obs/metrics.hpp"
#endif

namespace ripple::device {

namespace {

#if RIPPLE_OBS
void note_resolution(const std::string& kernel, SimdLevel level) {
  obs::Registry::global().counter("device.dispatch.resolves")->increment();
  obs::Registry::global()
      .gauge("device.dispatch.variant." + kernel)
      ->set(static_cast<double>(static_cast<int>(level)));
}
#endif

}  // namespace

std::optional<double> AutotuneReport::ns_per_item(
    std::string_view kernel, SimdLevel level) const noexcept {
  for (const AutotuneKernelReport& report : kernels) {
    if (report.kernel != kernel) continue;
    for (const AutotuneMeasurement& m : report.measured) {
      if (m.level == level) return m.ns_per_item;
    }
  }
  return std::nullopt;
}

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry registry;
  return registry;
}

void KernelRegistry::register_variant(std::string_view kernel,
                                      std::string_view subsystem,
                                      SimdLevel level, std::uint32_t lanes,
                                      AnyKernelFn fn) {
  RIPPLE_REQUIRE(fn != nullptr, "kernel variant fn must be non-null");
  RIPPLE_REQUIRE(lanes >= 1, "kernel variant lanes must be >= 1");
  RIPPLE_REQUIRE(level != SimdLevel::kScalar || lanes == 1,
                 "scalar baseline is single-lane by definition");
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = kernels_.try_emplace(std::string(kernel));
  Entry& entry = it->second;
  if (inserted) entry.subsystem = std::string(subsystem);
  const int slot = static_cast<int>(level);
  RIPPLE_REQUIRE(entry.fn[slot] == nullptr,
                 "duplicate kernel variant registration: " +
                     std::string(kernel) + " @ " + to_string(level));
  entry.fn[slot] = fn;
  entry.lanes[slot] = lanes;
  bump_dispatch_generation();
}

void KernelRegistry::set_microbench(std::string_view kernel, MicrobenchFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = kernels_.find(kernel);
  RIPPLE_REQUIRE(it != kernels_.end(),
                 "set_microbench on unknown kernel: " + std::string(kernel));
  it->second.microbench = fn;
}

bool KernelRegistry::has_kernel(std::string_view kernel) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return kernels_.find(kernel) != kernels_.end();
}

KernelVariant KernelRegistry::resolve_locked(const std::string& name,
                                             const Entry& entry,
                                             SimdLevel cap) const {
  // Every kernel must carry a scalar baseline — the bit-identity reference
  // and the guaranteed landing spot for unsupported-ISA fallback — even when
  // a vector variant would resolve on this host.
  RIPPLE_REQUIRE(entry.fn[0] != nullptr,
                 "kernel has no scalar baseline: " + name);
  if (entry.override_level.has_value() && *entry.override_level < cap) {
    cap = *entry.override_level;
  }
  // The autotuned winner takes precedence when it survives the cap and the
  // host; otherwise the highest eligible level wins.
  if (entry.autotuned.has_value()) {
    const int slot = static_cast<int>(*entry.autotuned);
    if (*entry.autotuned <= cap && entry.fn[slot] != nullptr &&
        level_supported(*entry.autotuned)) {
      return KernelVariant{*entry.autotuned, entry.lanes[slot],
                           entry.fn[slot]};
    }
  }
  for (int slot = static_cast<int>(cap); slot > 0; --slot) {
    const SimdLevel level = static_cast<SimdLevel>(slot);
    if (entry.fn[slot] != nullptr && level_supported(level)) {
      return KernelVariant{level, entry.lanes[slot], entry.fn[slot]};
    }
  }
  return KernelVariant{SimdLevel::kScalar, 1, entry.fn[0]};
}

KernelVariant KernelRegistry::resolve(std::string_view kernel) {
  const SimdLevel cap = active_simd_level();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = kernels_.find(kernel);
  RIPPLE_REQUIRE(it != kernels_.end(),
                 "resolve of unknown kernel: " + std::string(kernel));
  const KernelVariant variant = resolve_locked(it->first, it->second, cap);
#if RIPPLE_OBS
  note_resolution(it->first, variant.level);
#endif
  return variant;
}

SimdLevel KernelRegistry::resolved_level(std::string_view kernel) {
  return resolve(kernel).level;
}

void KernelRegistry::set_kernel_override(std::string_view kernel,
                                         std::optional<SimdLevel> level) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = kernels_.find(kernel);
    RIPPLE_REQUIRE(it != kernels_.end(), "set_kernel_override on unknown "
                                         "kernel: " +
                                             std::string(kernel));
    it->second.override_level = level;
  }
  bump_dispatch_generation();
}

std::optional<SimdLevel> KernelRegistry::kernel_override(
    std::string_view kernel) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = kernels_.find(kernel);
  return it == kernels_.end() ? std::nullopt : it->second.override_level;
}

AutotuneReport KernelRegistry::autotune(const AutotuneOptions& options) {
  RIPPLE_REQUIRE(options.repeats >= 1, "autotune repeats must be >= 1");
  AutotuneReport report;
  util::Stopwatch wall;
  // Snapshot the kernel list, then run microbenches unlocked: they call the
  // variant bodies, which must not deadlock against registry reads.
  std::vector<std::pair<std::string, Entry>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, entry] : kernels_) {
      if (entry.microbench != nullptr) snapshot.emplace_back(name, entry);
    }
  }
  for (const auto& [name, entry] : snapshot) {
    AutotuneKernelReport kernel_report;
    kernel_report.kernel = name;
    double best_ns = std::numeric_limits<double>::infinity();
    for (int slot = 0; slot < kSimdLevelCount; ++slot) {
      const SimdLevel level = static_cast<SimdLevel>(slot);
      if (entry.fn[slot] == nullptr || !level_supported(level)) continue;
      entry.microbench(entry.fn[slot]);  // warm caches and allocations
      double min_seconds = std::numeric_limits<double>::infinity();
      std::uint64_t items = 0;
      for (int r = 0; r < options.repeats; ++r) {
        util::Stopwatch timer;
        items = entry.microbench(entry.fn[slot]);
        min_seconds = std::min(min_seconds, timer.elapsed_seconds());
      }
      AutotuneMeasurement measurement;
      measurement.level = level;
      measurement.lanes = entry.lanes[slot];
      measurement.ns_per_item =
          items > 0 ? min_seconds * 1e9 / static_cast<double>(items) : 0.0;
      if (measurement.ns_per_item < best_ns) {
        best_ns = measurement.ns_per_item;
        kernel_report.winner = level;
      }
      kernel_report.measured.push_back(measurement);
    }
    if (kernel_report.measured.empty()) continue;
    if (options.apply) {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = kernels_.find(name);
      if (it != kernels_.end()) it->second.autotuned = kernel_report.winner;
    }
    report.kernels.push_back(std::move(kernel_report));
  }
  if (options.apply) bump_dispatch_generation();
  report.wall_us = wall.elapsed_seconds() * 1e6;
#if RIPPLE_OBS
  obs::Registry::global()
      .gauge("device.dispatch.autotune_wall_us")
      ->set(report.wall_us);
  obs::Registry::global()
      .counter("device.dispatch.autotuned_kernels")
      ->add(report.kernels.size());
#endif
  return report;
}

std::optional<SimdLevel> KernelRegistry::autotuned_level(
    std::string_view kernel) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = kernels_.find(kernel);
  return it == kernels_.end() ? std::nullopt : it->second.autotuned;
}

void KernelRegistry::clear_autotune() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, entry] : kernels_) entry.autotuned = std::nullopt;
  }
  bump_dispatch_generation();
}

std::vector<KernelCatalogRow> KernelRegistry::dump() const {
  std::vector<KernelCatalogRow> rows;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, entry] : kernels_) {
    for (int slot = 0; slot < kSimdLevelCount; ++slot) {
      if (entry.fn[slot] == nullptr) continue;
      KernelCatalogRow row;
      row.kernel = name;
      row.subsystem = entry.subsystem;
      row.level = static_cast<SimdLevel>(slot);
      row.lanes = entry.lanes[slot];
      row.supported = level_supported(row.level);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<std::string> KernelRegistry::kernel_names() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mutex_);
  names.reserve(kernels_.size());
  for (const auto& [name, entry] : kernels_) names.push_back(name);
  return names;
}

}  // namespace ripple::device
