#include "device/dispatch.hpp"

#include <atomic>
#include <cstdlib>

namespace ripple::device {

namespace {

std::atomic<std::uint64_t>& generation_slot() noexcept {
  static std::atomic<std::uint64_t> value{1};
  return value;
}

std::optional<SimdLevel> env_override() noexcept {
  const char* name = std::getenv("RIPPLE_SIMD_LEVEL");
  if (name == nullptr) return std::nullopt;
  return parse_simd_level(name);
}

std::optional<SimdLevel>& override_slot() noexcept {
  static std::optional<SimdLevel> value = env_override();
  return value;
}

bool probe_level(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kNeon:
      // NEON is architecturally baseline on AArch64; compiling the bodies
      // implies the host can run them.
      return RIPPLE_SIMD_NEON_ARM != 0;
    case SimdLevel::kAvx2:
#if RIPPLE_SIMD_X86
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case SimdLevel::kAvx512:
#if RIPPLE_SIMD_X86_AVX512
      // The AVX-512 kernels are compiled with target
      // "avx512f,avx512bw,avx512dq,avx512vl"; require the full set.
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vl");
#else
      return false;
#endif
  }
  return false;
}

SimdLevel probe_best() noexcept {
  for (int i = kSimdLevelCount - 1; i > 0; --i) {
    const SimdLevel level = static_cast<SimdLevel>(i);
    if (level_compiled(level) && probe_level(level)) return level;
  }
  return SimdLevel::kScalar;
}

}  // namespace

const char* to_string(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kNeon:
      return "neon";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<SimdLevel> parse_simd_level(std::string_view name) noexcept {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "neon") return SimdLevel::kNeon;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  return std::nullopt;
}

bool level_supported(SimdLevel level) noexcept {
  static const bool supported[kSimdLevelCount] = {
      true, level_compiled(SimdLevel::kNeon) && probe_level(SimdLevel::kNeon),
      level_compiled(SimdLevel::kAvx2) && probe_level(SimdLevel::kAvx2),
      level_compiled(SimdLevel::kAvx512) && probe_level(SimdLevel::kAvx512)};
  return supported[static_cast<int>(level)];
}

SimdLevel detected_simd_level() noexcept {
  static const SimdLevel detected = probe_best();
  return detected;
}

SimdLevel active_simd_level() noexcept {
  const SimdLevel ceiling = detected_simd_level();
  const std::optional<SimdLevel>& pinned = override_slot();
  if (pinned.has_value()) {
    return *pinned < ceiling ? *pinned : ceiling;
  }
  return ceiling;
}

void set_simd_override(std::optional<SimdLevel> level) noexcept {
  override_slot() = level;
  bump_dispatch_generation();
}

std::uint64_t dispatch_generation() noexcept {
  return generation_slot().load(std::memory_order_acquire);
}

void bump_dispatch_generation() noexcept {
  generation_slot().fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace ripple::device
