#include "device/dispatch.hpp"

namespace ripple::device {

namespace {

std::optional<SimdLevel>& override_slot() noexcept {
  static std::optional<SimdLevel> value;
  return value;
}

SimdLevel probe_cpu() noexcept {
#if RIPPLE_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

}  // namespace

const char* to_string(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel detected_simd_level() noexcept {
  static const SimdLevel detected = probe_cpu();
  return detected;
}

SimdLevel active_simd_level() noexcept {
  const SimdLevel ceiling = detected_simd_level();
  const std::optional<SimdLevel>& pinned = override_slot();
  if (pinned.has_value()) {
    return *pinned < ceiling ? *pinned : ceiling;
  }
  return ceiling;
}

void set_simd_override(std::optional<SimdLevel> level) noexcept {
  override_slot() = level;
}

}  // namespace ripple::device
