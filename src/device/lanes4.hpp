// Four-lane i32 vector layer: NEON intrinsics on AArch64, a portable
// scalar-array backend everywhere else — with identical lane semantics, so
// the NEON kernel bodies written against it (blast/simd_kernels_lanes4.cpp)
// compile and golden-test on x86 through the portable backend. That is the
// whole point of the abstraction: the ARM port's arithmetic is proven
// bit-identical to scalar on every CI host, and only the thin intrinsic
// wrappers below are ARM-specific.
//
// Masks are full-width lane values (-1 true / 0 false), matching the AVX2
// kernels' convention. Memory access helpers read per lane and honor the
// mask — inactive lanes never touch memory — which replaces the x86 kernels'
// clamped-word-gather-plus-shift technique (NEON has no gather).
#pragma once

#include <cstdint>
#include <cstring>

#include "device/dispatch.hpp"

#if RIPPLE_SIMD_NEON_ARM
#include <arm_neon.h>
#endif

namespace ripple::device {

#if RIPPLE_SIMD_NEON_ARM

struct I32x4 {
  int32x4_t v;
};

inline I32x4 x4_dup(std::int32_t x) noexcept { return {vdupq_n_s32(x)}; }
inline I32x4 x4_load(const std::int32_t* p) noexcept { return {vld1q_s32(p)}; }
inline void x4_store(std::int32_t* p, I32x4 a) noexcept { vst1q_s32(p, a.v); }
inline I32x4 x4_add(I32x4 a, I32x4 b) noexcept {
  return {vaddq_s32(a.v, b.v)};
}
inline I32x4 x4_sub(I32x4 a, I32x4 b) noexcept {
  return {vsubq_s32(a.v, b.v)};
}
inline I32x4 x4_min(I32x4 a, I32x4 b) noexcept {
  return {vminq_s32(a.v, b.v)};
}
inline I32x4 x4_max(I32x4 a, I32x4 b) noexcept {
  return {vmaxq_s32(a.v, b.v)};
}
inline I32x4 x4_and(I32x4 a, I32x4 b) noexcept {
  return {vandq_s32(a.v, b.v)};
}
inline I32x4 x4_or(I32x4 a, I32x4 b) noexcept { return {vorrq_s32(a.v, b.v)}; }
/// a & ~b (the AVX2 andnot with the operands in reading order).
inline I32x4 x4_andnot(I32x4 a, I32x4 b) noexcept {
  return {vbicq_s32(a.v, b.v)};
}
inline I32x4 x4_cmpeq(I32x4 a, I32x4 b) noexcept {
  return {vreinterpretq_s32_u32(vceqq_s32(a.v, b.v))};
}
inline I32x4 x4_cmpgt(I32x4 a, I32x4 b) noexcept {
  return {vreinterpretq_s32_u32(vcgtq_s32(a.v, b.v))};
}
/// Per-lane select: b where the mask lane is set, a elsewhere (blendv order).
inline I32x4 x4_blend(I32x4 mask, I32x4 a, I32x4 b) noexcept {
  return {vbslq_s32(vreinterpretq_u32_s32(mask.v), b.v, a.v)};
}
/// True when any mask lane is set (lanes are -1/0, so min over lanes is -1
/// iff at least one is set).
inline bool x4_any(I32x4 mask) noexcept { return vminvq_s32(mask.v) != 0; }

#else  // portable backend

struct I32x4 {
  std::int32_t lane[4];
};

inline I32x4 x4_dup(std::int32_t x) noexcept { return {{x, x, x, x}}; }
inline I32x4 x4_load(const std::int32_t* p) noexcept {
  I32x4 r;
  std::memcpy(r.lane, p, sizeof(r.lane));
  return r;
}
inline void x4_store(std::int32_t* p, I32x4 a) noexcept {
  std::memcpy(p, a.lane, sizeof(a.lane));
}
inline I32x4 x4_add(I32x4 a, I32x4 b) noexcept {
  I32x4 r;
  for (int l = 0; l < 4; ++l) r.lane[l] = a.lane[l] + b.lane[l];
  return r;
}
inline I32x4 x4_sub(I32x4 a, I32x4 b) noexcept {
  I32x4 r;
  for (int l = 0; l < 4; ++l) r.lane[l] = a.lane[l] - b.lane[l];
  return r;
}
inline I32x4 x4_min(I32x4 a, I32x4 b) noexcept {
  I32x4 r;
  for (int l = 0; l < 4; ++l)
    r.lane[l] = a.lane[l] < b.lane[l] ? a.lane[l] : b.lane[l];
  return r;
}
inline I32x4 x4_max(I32x4 a, I32x4 b) noexcept {
  I32x4 r;
  for (int l = 0; l < 4; ++l)
    r.lane[l] = a.lane[l] > b.lane[l] ? a.lane[l] : b.lane[l];
  return r;
}
inline I32x4 x4_and(I32x4 a, I32x4 b) noexcept {
  I32x4 r;
  for (int l = 0; l < 4; ++l) r.lane[l] = a.lane[l] & b.lane[l];
  return r;
}
inline I32x4 x4_or(I32x4 a, I32x4 b) noexcept {
  I32x4 r;
  for (int l = 0; l < 4; ++l) r.lane[l] = a.lane[l] | b.lane[l];
  return r;
}
inline I32x4 x4_andnot(I32x4 a, I32x4 b) noexcept {
  I32x4 r;
  for (int l = 0; l < 4; ++l) r.lane[l] = a.lane[l] & ~b.lane[l];
  return r;
}
inline I32x4 x4_cmpeq(I32x4 a, I32x4 b) noexcept {
  I32x4 r;
  for (int l = 0; l < 4; ++l) r.lane[l] = a.lane[l] == b.lane[l] ? -1 : 0;
  return r;
}
inline I32x4 x4_cmpgt(I32x4 a, I32x4 b) noexcept {
  I32x4 r;
  for (int l = 0; l < 4; ++l) r.lane[l] = a.lane[l] > b.lane[l] ? -1 : 0;
  return r;
}
inline I32x4 x4_blend(I32x4 mask, I32x4 a, I32x4 b) noexcept {
  I32x4 r;
  for (int l = 0; l < 4; ++l) r.lane[l] = mask.lane[l] ? b.lane[l] : a.lane[l];
  return r;
}
inline bool x4_any(I32x4 mask) noexcept {
  return (mask.lane[0] | mask.lane[1] | mask.lane[2] | mask.lane[3]) != 0;
}

#endif  // RIPPLE_SIMD_NEON_ARM

/// Sign-bit mask of the four lanes (bit l set iff lane l is negative) — the
/// movemask equivalent for worklist re-packing.
inline int x4_mask_bits(I32x4 mask) noexcept {
  std::int32_t m[4];
  x4_store(m, mask);
  return (m[0] < 0 ? 1 : 0) | (m[1] < 0 ? 2 : 0) | (m[2] < 0 ? 4 : 0) |
         (m[3] < 0 ? 8 : 0);
}

/// Per-lane byte load, masked: active lanes read base[idx], inactive lanes
/// yield 0 and never touch memory. Active lanes must hold in-range indices.
inline I32x4 x4_bytes_at(const std::uint8_t* base, I32x4 idx,
                         I32x4 active) noexcept {
  std::int32_t i[4];
  std::int32_t m[4];
  std::int32_t out[4];
  x4_store(i, idx);
  x4_store(m, active);
  for (int l = 0; l < 4; ++l) {
    out[l] = m[l] != 0 ? static_cast<std::int32_t>(base[i[l]]) : 0;
  }
  return x4_load(out);
}

/// Per-lane byte load with the index clamped into [0, limit]: the read is
/// always in range, and lanes whose logical index was clamped must have the
/// value masked out downstream (mirrors the x86 kernels' clamped gathers).
inline I32x4 x4_bytes_clamped(const std::uint8_t* base, I32x4 idx,
                              std::int32_t limit, I32x4 active) noexcept {
  return x4_bytes_at(
      base, x4_min(x4_max(idx, x4_dup(0)), x4_dup(limit)), active);
}

/// Per-lane i32 gather: out[l] = base[idx[l]] (unconditional; indices must
/// be in range for every lane).
inline I32x4 x4_gather_i32(const std::int32_t* base, I32x4 idx) noexcept {
  std::int32_t i[4];
  std::int32_t out[4];
  x4_store(i, idx);
  for (int l = 0; l < 4; ++l) out[l] = base[i[l]];
  return x4_load(out);
}

}  // namespace ripple::device
