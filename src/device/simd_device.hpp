// Virtual SIMD device model (paper Section 2.2).
//
// The paper's implementation model: one single-threaded SIMD-capable
// processor; each of the N pipeline nodes owns a fixed 1/N fraction of
// processor time, scheduled preemptively at fine granularity so a node that
// wants to fire sees negligible dispatch delay. A firing consumes a vector of
// up to v items and takes the node's fixed service time t_i whether the
// vector is full or not (t_i is measured under the node's 1/N share).
//
// This module owns those rules so the simulator and the analytic strategies
// agree on them by construction.
#pragma once

#include <cstdint>

#include "sdf/pipeline.hpp"
#include "util/types.hpp"

namespace ripple::device {

/// Static device description plus the firing-time rules.
class SimdDevice {
 public:
  /// `node_count` is N, the number of pipeline nodes sharing the processor.
  SimdDevice(std::uint32_t vector_width, std::size_t node_count);

  /// Build a device matching a pipeline (width v, N nodes).
  static SimdDevice for_pipeline(const sdf::PipelineSpec& pipeline);

  std::uint32_t vector_width() const noexcept { return vector_width_; }
  std::size_t node_count() const noexcept { return node_count_; }

  /// Fraction of the processor each node owns (1/N).
  double node_share() const noexcept;

  /// Wall-clock duration of one firing with service time t (measured under
  /// the node's share): exactly t, by the paper's definition of t_i.
  Cycles firing_duration(Cycles service_time) const noexcept { return service_time; }

  /// Duration the same firing would take if the node briefly owned the whole
  /// processor (used by what-if analyses of the monolithic implementation,
  /// which runs one stage at a time): t * share.
  Cycles exclusive_firing_duration(Cycles service_time) const noexcept;

  /// Items consumed by one firing given the queue length at firing start.
  std::uint32_t items_consumed(std::uint64_t queue_length) const noexcept;

  /// SIMD lane occupancy of a firing that consumed `consumed` items, in [0,1].
  double occupancy(std::uint32_t consumed) const noexcept;

 private:
  std::uint32_t vector_width_;
  std::size_t node_count_;
};

}  // namespace ripple::device
