// Lane-occupancy accounting: how full the SIMD vectors of each node's firings
// are. The paper's whole premise is that low occupancy wastes active time;
// this tracker quantifies it per node so experiments can report it.
#pragma once

#include <cstdint>
#include <vector>

#include "device/simd_device.hpp"

namespace ripple::device {

/// Per-node firing/occupancy counters.
class OccupancyTracker {
 public:
  OccupancyTracker(const SimdDevice& device, std::size_t node_count);

  /// Record one firing of `node` that consumed `consumed` items.
  void record_firing(std::size_t node, std::uint32_t consumed);

  std::uint64_t firings(std::size_t node) const;
  std::uint64_t empty_firings(std::size_t node) const;
  std::uint64_t items_consumed(std::size_t node) const;

  /// Mean lanes-filled fraction across all firings of `node` (0 if none).
  double mean_occupancy(std::size_t node) const;

  /// Mean occupancy over non-empty firings only (0 if none).
  double mean_nonempty_occupancy(std::size_t node) const;

  /// Aggregate mean occupancy across all nodes, weighted by firing count.
  double overall_occupancy() const;

  std::size_t node_count() const noexcept { return per_node_.size(); }

 private:
  struct Counters {
    std::uint64_t firings = 0;
    std::uint64_t empty_firings = 0;
    std::uint64_t items = 0;
  };

  std::uint32_t vector_width_;
  std::vector<Counters> per_node_;
};

}  // namespace ripple::device
