// Streaming and batch statistics used by the simulator's metrics and by the
// calibration loop's miss-rate confidence intervals.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace ripple::dist {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range samples go to clamp bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  /// Zero every bin, keeping the range and bin storage (for reuse across
  /// trials without reallocating).
  void reset() noexcept;

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const noexcept { return total_; }
  double bin_lower(std::size_t i) const;
  double bin_upper(std::size_t i) const;

  /// Value below which fraction q of samples fall (linear within bin).
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Exact quantile of a sample set (interpolated, type-7 like NumPy default).
/// Sorts a copy; fine for per-trial latency vectors.
double quantile(std::vector<double> samples, double q);

/// Wilson score interval for a binomial proportion at normal quantile z
/// (z = 1.96 for 95%).
struct ProportionInterval {
  double lower = 0.0;
  double upper = 1.0;
  double point = 0.0;
};
ProportionInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                   double z = 1.96);

}  // namespace ripple::dist
