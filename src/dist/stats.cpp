#include "dist/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ripple::dist {

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel combination.
  const double delta = other.mean_ - mean_;
  const double total = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  RIPPLE_REQUIRE(hi > lo, "histogram range must be non-empty");
  RIPPLE_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  std::size_t index;
  if (x < lo_) {
    index = 0;
  } else if (x >= hi_) {
    index = counts_.size() - 1;
  } else {
    index = static_cast<std::size_t>((x - lo_) / width_);
    index = std::min(index, counts_.size() - 1);
  }
  ++counts_[index];
  ++total_;
}

void Histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

double Histogram::bin_lower(std::size_t i) const {
  RIPPLE_REQUIRE(i < counts_.size(), "bin index out of range");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_upper(std::size_t i) const {
  return bin_lower(i) + width_;
}

double Histogram::quantile(double q) const {
  RIPPLE_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double inside = counts_[i] == 0
                                ? 0.0
                                : (target - cumulative) / static_cast<double>(counts_[i]);
      return bin_lower(i) + inside * width_;
    }
    cumulative = next;
  }
  return hi_;
}

double quantile(std::vector<double> samples, double q) {
  RIPPLE_REQUIRE(!samples.empty(), "quantile of empty sample set");
  RIPPLE_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t below = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(below);
  if (below + 1 >= samples.size()) return samples.back();
  return samples[below] * (1.0 - frac) + samples[below + 1] * frac;
}

ProportionInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                   double z) {
  ProportionInterval interval;
  if (trials == 0) return interval;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  interval.point = p;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  interval.lower = std::max(0.0, center - half);
  interval.upper = std::min(1.0, center + half);
  return interval;
}

}  // namespace ripple::dist
