// Deterministic, portable random number generation.
//
// We avoid std::*_distribution because their outputs are implementation
// defined; every sampling routine here is specified bit-for-bit so that
// experiment outputs are reproducible across compilers and platforms.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>

namespace ripple::dist {

/// SplitMix64: used to expand seeds and to derive independent stream seeds
/// from (experiment, cell, trial) coordinates.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator for simulation sampling.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Mix an arbitrary list of coordinates into one seed. Different coordinate
/// tuples give (with overwhelming probability) independent streams.
std::uint64_t derive_seed(std::initializer_list<std::uint64_t> coordinates) noexcept;

}  // namespace ripple::dist
