#include "dist/gain.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/string_utils.hpp"

namespace ripple::dist {

namespace detail {

void CdfTable::build(std::vector<double> cdf) {
  RIPPLE_REQUIRE(!cdf.empty(), "CDF table needs at least one entry");
  cdf_ = std::move(cdf);
  guide_.assign(kGuideSize, 0);
  // guide_[j] = first k any u >= j/kGuideSize can map to, i.e. the first k
  // with cdf[k] > j/kGuideSize (entries at or below the bucket floor can
  // never be selected by such a u).
  std::size_t k = 0;
  for (std::size_t j = 0; j < kGuideSize; ++j) {
    const double floor_u = static_cast<double>(j) / static_cast<double>(kGuideSize);
    while (k + 1 < cdf_.size() && cdf_[k] <= floor_u) ++k;
    guide_[j] = static_cast<std::uint32_t>(k);
  }
}

}  // namespace detail

namespace {

/// Build the censored CDF/moments from unnormalized point masses over
/// 0..cap-1 plus everything-above mass folded into cap.
struct FiniteMoments {
  double mean = 0.0;
  double variance = 0.0;
};

FiniteMoments moments_from_cdf(const std::vector<double>& cdf) {
  FiniteMoments m;
  double prev = 0.0;
  double second = 0.0;
  for (std::size_t k = 0; k < cdf.size(); ++k) {
    const double pk = cdf[k] - prev;
    prev = cdf[k];
    m.mean += static_cast<double>(k) * pk;
    second += static_cast<double>(k) * static_cast<double>(k) * pk;
  }
  m.variance = second - m.mean * m.mean;
  return m;
}

}  // namespace

// ------------------------------------------------------------- base defaults

void GainDistribution::sample_n(Xoshiro256& rng, OutputCount* out,
                                std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = sample(rng);
}

std::uint64_t GainDistribution::sample_sum(Xoshiro256& rng,
                                           std::uint64_t n) const {
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < n; ++i) total += sample(rng);
  return total;
}

// ---------------------------------------------------------------- Deterministic

DeterministicGain::DeterministicGain(OutputCount k) : k_(k) {}
OutputCount DeterministicGain::sample(Xoshiro256&) const { return k_; }
void DeterministicGain::sample_n(Xoshiro256&, OutputCount* out,
                                 std::size_t n) const {
  std::fill(out, out + n, k_);  // sample() consumes no RNG state
}
std::uint64_t DeterministicGain::sample_sum(Xoshiro256&, std::uint64_t n) const {
  return n * static_cast<std::uint64_t>(k_);
}
double DeterministicGain::mean() const { return k_; }
double DeterministicGain::variance() const { return 0.0; }
OutputCount DeterministicGain::max_outputs() const { return k_; }
std::string DeterministicGain::name() const {
  return "deterministic(" + std::to_string(k_) + ")";
}

// -------------------------------------------------------------------- Bernoulli

BernoulliGain::BernoulliGain(double p) : p_(p) {
  RIPPLE_REQUIRE(p >= 0.0 && p <= 1.0, "Bernoulli parameter must be in [0,1]");
}
OutputCount BernoulliGain::sample(Xoshiro256& rng) const {
  return rng.uniform01() < p_ ? 1u : 0u;
}
void BernoulliGain::sample_n(Xoshiro256& rng, OutputCount* out,
                             std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = rng.uniform01() < p_ ? 1u : 0u;
}
std::uint64_t BernoulliGain::sample_sum(Xoshiro256& rng, std::uint64_t n) const {
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < n; ++i) total += rng.uniform01() < p_ ? 1u : 0u;
  return total;
}
double BernoulliGain::mean() const { return p_; }
double BernoulliGain::variance() const { return p_ * (1.0 - p_); }
OutputCount BernoulliGain::max_outputs() const { return p_ > 0.0 ? 1u : 0u; }
std::string BernoulliGain::name() const {
  return "bernoulli(" + util::format_double(p_, 6) + ")";
}

// -------------------------------------------------------------- CensoredPoisson

CensoredPoissonGain::CensoredPoissonGain(double lambda, OutputCount cap)
    : lambda_(lambda), cap_(cap) {
  RIPPLE_REQUIRE(lambda >= 0.0, "Poisson rate must be non-negative");
  RIPPLE_REQUIRE(cap >= 1, "censoring cap must be at least 1");
  std::vector<double> cdf(cap_ + 1);
  // p_k = e^-lambda lambda^k / k! for k < cap; everything above folds into cap.
  double pk = std::exp(-lambda_);
  double cumulative = 0.0;
  for (OutputCount k = 0; k < cap_; ++k) {
    cumulative += pk;
    cdf[k] = std::min(cumulative, 1.0);
    pk *= lambda_ / static_cast<double>(k + 1);
  }
  cdf[cap_] = 1.0;
  const FiniteMoments m = moments_from_cdf(cdf);
  mean_ = m.mean;
  variance_ = m.variance;
  table_.build(std::move(cdf));
}

OutputCount CensoredPoissonGain::sample(Xoshiro256& rng) const {
  return table_.sample(rng);
}
void CensoredPoissonGain::sample_n(Xoshiro256& rng, OutputCount* out,
                                   std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = table_.sample(rng);
}
std::uint64_t CensoredPoissonGain::sample_sum(Xoshiro256& rng,
                                              std::uint64_t n) const {
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < n; ++i) total += table_.sample(rng);
  return total;
}
double CensoredPoissonGain::mean() const { return mean_; }
double CensoredPoissonGain::variance() const { return variance_; }
OutputCount CensoredPoissonGain::max_outputs() const { return cap_; }
std::string CensoredPoissonGain::name() const {
  return "censored_poisson(" + util::format_double(lambda_, 6) + ", " +
         std::to_string(cap_) + ")";
}

// --------------------------------------------------------- TruncatedGeometric

TruncatedGeometricGain::TruncatedGeometricGain(double p, OutputCount cap)
    : p_(p), cap_(cap) {
  RIPPLE_REQUIRE(p >= 0.0 && p < 1.0, "geometric ratio must be in [0,1)");
  RIPPLE_REQUIRE(cap >= 1, "truncation cap must be at least 1");
  // Unnormalized masses p^k for k in [0, cap], then normalize.
  std::vector<double> mass(cap_ + 1);
  double w = 1.0;
  double total = 0.0;
  for (OutputCount k = 0; k <= cap_; ++k) {
    mass[k] = w;
    total += w;
    w *= p_;
  }
  std::vector<double> cdf(cap_ + 1);
  double cumulative = 0.0;
  for (OutputCount k = 0; k <= cap_; ++k) {
    cumulative += mass[k] / total;
    cdf[k] = std::min(cumulative, 1.0);
  }
  cdf[cap_] = 1.0;
  const FiniteMoments m = moments_from_cdf(cdf);
  mean_ = m.mean;
  variance_ = m.variance;
  table_.build(std::move(cdf));
}

std::shared_ptr<const TruncatedGeometricGain> TruncatedGeometricGain::with_mean(
    double target_mean, OutputCount cap) {
  RIPPLE_REQUIRE(target_mean >= 0.0, "target mean must be non-negative");
  RIPPLE_REQUIRE(target_mean < static_cast<double>(cap),
                 "target mean must be below the cap");
  // The truncated mean is continuous and increasing in p; bisect.
  double lo = 0.0;
  double hi = 1.0 - 1e-12;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    TruncatedGeometricGain probe(mid, cap);
    if (probe.mean() < target_mean) lo = mid;
    else hi = mid;
  }
  return std::make_shared<const TruncatedGeometricGain>(0.5 * (lo + hi), cap);
}

OutputCount TruncatedGeometricGain::sample(Xoshiro256& rng) const {
  return table_.sample(rng);
}
void TruncatedGeometricGain::sample_n(Xoshiro256& rng, OutputCount* out,
                                      std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = table_.sample(rng);
}
std::uint64_t TruncatedGeometricGain::sample_sum(Xoshiro256& rng,
                                                 std::uint64_t n) const {
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < n; ++i) total += table_.sample(rng);
  return total;
}
double TruncatedGeometricGain::mean() const { return mean_; }
double TruncatedGeometricGain::variance() const { return variance_; }
OutputCount TruncatedGeometricGain::max_outputs() const { return cap_; }
std::string TruncatedGeometricGain::name() const {
  return "truncated_geometric(" + util::format_double(p_, 6) + ", " +
         std::to_string(cap_) + ")";
}

// -------------------------------------------------------------------- Empirical

EmpiricalGain::EmpiricalGain(std::vector<double> weights) {
  RIPPLE_REQUIRE(!weights.empty(), "empirical gain needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    RIPPLE_REQUIRE(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  RIPPLE_REQUIRE(total > 0.0, "weights must not all be zero");
  std::vector<double> cdf(weights.size());
  double cumulative = 0.0;
  for (std::size_t k = 0; k < weights.size(); ++k) {
    cumulative += weights[k] / total;
    cdf[k] = std::min(cumulative, 1.0);
  }
  cdf.back() = 1.0;
  const FiniteMoments m = moments_from_cdf(cdf);
  mean_ = m.mean;
  variance_ = m.variance;
  table_.build(std::move(cdf));
}

OutputCount EmpiricalGain::sample(Xoshiro256& rng) const {
  return table_.sample(rng);
}
void EmpiricalGain::sample_n(Xoshiro256& rng, OutputCount* out,
                             std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = table_.sample(rng);
}
std::uint64_t EmpiricalGain::sample_sum(Xoshiro256& rng, std::uint64_t n) const {
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < n; ++i) total += table_.sample(rng);
  return total;
}
double EmpiricalGain::mean() const { return mean_; }
double EmpiricalGain::variance() const { return variance_; }
std::vector<double> EmpiricalGain::weights() const {
  const std::vector<double>& cdf = table_.cdf();
  std::vector<double> masses(cdf.size());
  double previous = 0.0;
  for (std::size_t k = 0; k < cdf.size(); ++k) {
    masses[k] = cdf[k] - previous;
    previous = cdf[k];
  }
  return masses;
}

OutputCount EmpiricalGain::max_outputs() const {
  return static_cast<OutputCount>(table_.cdf().size() - 1);
}
std::string EmpiricalGain::name() const {
  return "empirical(k_max=" + std::to_string(table_.cdf().size() - 1) + ")";
}

// -------------------------------------------------------------------- factories

GainPtr make_deterministic(OutputCount k) {
  return std::make_shared<const DeterministicGain>(k);
}
GainPtr make_bernoulli(double p) {
  return std::make_shared<const BernoulliGain>(p);
}
GainPtr make_censored_poisson(double lambda, OutputCount cap) {
  return std::make_shared<const CensoredPoissonGain>(lambda, cap);
}

}  // namespace ripple::dist
