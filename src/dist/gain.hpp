// Gain distributions: the per-input output-count models of paper Section 6.1.
//
// A node's *gain* is the (stochastic) number of output items it produces per
// input item. The paper models filter-like stages as Bernoulli(g) and the
// expanding BLAST stage as Poisson(g) censored at the stage's hard output
// limit u = 16.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dist/rng.hpp"

namespace ripple::dist {

/// Number of outputs one input produces at a node.
using OutputCount = std::uint32_t;

namespace detail {

/// Precomputed inversion table for a finite CDF over 0..K.
///
/// Sampling maps a uniform u to the first k with u < cdf[k]. The guide index
/// quantizes [0,1) into buckets and records, per bucket, the first k any u in
/// that bucket can map to, so a draw touches one or two CDF entries instead
/// of scanning from zero. The u -> k mapping is bit-for-bit identical to the
/// plain linear scan, so precomputation never changes sampled streams.
class CdfTable {
 public:
  CdfTable() = default;
  explicit CdfTable(std::vector<double> cdf) { build(std::move(cdf)); }

  void build(std::vector<double> cdf);

  OutputCount sample(Xoshiro256& rng) const noexcept {
    const double u = rng.uniform01();
    // uniform01() contracts u < 1.0, but clamp the bucket anyway so an RNG
    // swap that can return exactly 1.0 reads the last guide entry instead of
    // one past the array.
    std::size_t bucket = static_cast<std::size_t>(u * kGuideSize);
    if (bucket >= kGuideSize) bucket = kGuideSize - 1;
    std::size_t k = guide_[bucket];
    while (k + 1 < cdf_.size() && u >= cdf_[k]) ++k;
    return static_cast<OutputCount>(k);
  }

  const std::vector<double>& cdf() const noexcept { return cdf_; }

 private:
  static constexpr std::size_t kGuideSize = 64;

  std::vector<double> cdf_;
  std::vector<std::uint32_t> guide_;  // bucket -> first reachable k
};

}  // namespace detail

/// Abstract per-input gain model. Implementations must be immutable after
/// construction so one instance can be shared across simulation threads
/// (each thread carries its own RNG).
class GainDistribution {
 public:
  virtual ~GainDistribution() = default;

  /// Draw the number of outputs for one input item.
  virtual OutputCount sample(Xoshiro256& rng) const = 0;

  /// Draw `n` output counts into `out` (one virtual dispatch per firing
  /// instead of one per item). Consumes exactly the same RNG stream, in the
  /// same order, as n successive sample() calls.
  virtual void sample_n(Xoshiro256& rng, OutputCount* out, std::size_t n) const;

  /// Sum of `n` draws (batch processing where only the total matters). Same
  /// RNG stream contract as sample_n.
  virtual std::uint64_t sample_sum(Xoshiro256& rng, std::uint64_t n) const;

  /// Exact expected outputs per input (the paper's g_i).
  virtual double mean() const = 0;

  /// Exact variance of outputs per input.
  virtual double variance() const = 0;

  /// Hard upper bound on outputs per input (the paper's u for stage 1).
  virtual OutputCount max_outputs() const = 0;

  virtual std::string name() const = 0;
};

using GainPtr = std::shared_ptr<const GainDistribution>;

/// Always exactly k outputs (k = 1 models a regular node).
class DeterministicGain final : public GainDistribution {
 public:
  explicit DeterministicGain(OutputCount k);
  OutputCount sample(Xoshiro256& rng) const override;
  void sample_n(Xoshiro256& rng, OutputCount* out, std::size_t n) const override;
  std::uint64_t sample_sum(Xoshiro256& rng, std::uint64_t n) const override;
  double mean() const override;
  double variance() const override;
  OutputCount max_outputs() const override;
  std::string name() const override;

  OutputCount count() const noexcept { return k_; }

 private:
  OutputCount k_;
};

/// One output with probability p, else zero (paper's filter stages).
class BernoulliGain final : public GainDistribution {
 public:
  explicit BernoulliGain(double p);
  OutputCount sample(Xoshiro256& rng) const override;
  void sample_n(Xoshiro256& rng, OutputCount* out, std::size_t n) const override;
  std::uint64_t sample_sum(Xoshiro256& rng, std::uint64_t n) const override;
  double mean() const override;
  double variance() const override;
  OutputCount max_outputs() const override;
  std::string name() const override;

  double probability() const noexcept { return p_; }

 private:
  double p_;
};

/// Poisson(lambda) censored at cap: values above cap are reported as cap
/// (paper's expanding stage, lambda = 1.92, cap = u = 16).
///
/// mean()/variance() are the *censored* moments, computed exactly at
/// construction, so analytic predictions line up with what the simulator
/// actually samples.
class CensoredPoissonGain final : public GainDistribution {
 public:
  CensoredPoissonGain(double lambda, OutputCount cap);
  OutputCount sample(Xoshiro256& rng) const override;
  void sample_n(Xoshiro256& rng, OutputCount* out, std::size_t n) const override;
  std::uint64_t sample_sum(Xoshiro256& rng, std::uint64_t n) const override;
  double mean() const override;
  double variance() const override;
  OutputCount max_outputs() const override;
  std::string name() const override;

  double lambda() const noexcept { return lambda_; }

 private:
  double lambda_;
  OutputCount cap_;
  detail::CdfTable table_;  // P(outputs <= k), k in [0, cap], with guide index
  double mean_ = 0.0;
  double variance_ = 0.0;
};

/// Geometric-tail gain: P(k) proportional to (1-p) p^k for k in [0, cap].
/// Heavier-tailed than Poisson at the same mean; used in robustness ablations.
class TruncatedGeometricGain final : public GainDistribution {
 public:
  /// Constructs the truncated geometric with the given success parameter.
  TruncatedGeometricGain(double p, OutputCount cap);

  /// Factory choosing p so the truncated mean equals `target_mean`.
  static std::shared_ptr<const TruncatedGeometricGain> with_mean(double target_mean,
                                                                 OutputCount cap);

  OutputCount sample(Xoshiro256& rng) const override;
  void sample_n(Xoshiro256& rng, OutputCount* out, std::size_t n) const override;
  std::uint64_t sample_sum(Xoshiro256& rng, std::uint64_t n) const override;
  double mean() const override;
  double variance() const override;
  OutputCount max_outputs() const override;
  std::string name() const override;

  double ratio() const noexcept { return p_; }

 private:
  double p_;
  OutputCount cap_;
  detail::CdfTable table_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

/// Arbitrary finite distribution over output counts 0..(weights.size()-1),
/// e.g. a measured histogram from the mini-BLAST substrate.
class EmpiricalGain final : public GainDistribution {
 public:
  explicit EmpiricalGain(std::vector<double> weights);
  OutputCount sample(Xoshiro256& rng) const override;
  void sample_n(Xoshiro256& rng, OutputCount* out, std::size_t n) const override;
  std::uint64_t sample_sum(Xoshiro256& rng, std::uint64_t n) const override;
  double mean() const override;
  double variance() const override;
  OutputCount max_outputs() const override;
  std::string name() const override;

  /// Reconstructed point masses (differences of the internal CDF).
  std::vector<double> weights() const;

 private:
  detail::CdfTable table_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

/// Convenience factories.
GainPtr make_deterministic(OutputCount k);
GainPtr make_bernoulli(double p);
GainPtr make_censored_poisson(double lambda, OutputCount cap);

}  // namespace ripple::dist
