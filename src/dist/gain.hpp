// Gain distributions: the per-input output-count models of paper Section 6.1.
//
// A node's *gain* is the (stochastic) number of output items it produces per
// input item. The paper models filter-like stages as Bernoulli(g) and the
// expanding BLAST stage as Poisson(g) censored at the stage's hard output
// limit u = 16.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dist/rng.hpp"

namespace ripple::dist {

/// Number of outputs one input produces at a node.
using OutputCount = std::uint32_t;

/// Abstract per-input gain model. Implementations must be immutable after
/// construction so one instance can be shared across simulation threads
/// (each thread carries its own RNG).
class GainDistribution {
 public:
  virtual ~GainDistribution() = default;

  /// Draw the number of outputs for one input item.
  virtual OutputCount sample(Xoshiro256& rng) const = 0;

  /// Exact expected outputs per input (the paper's g_i).
  virtual double mean() const = 0;

  /// Exact variance of outputs per input.
  virtual double variance() const = 0;

  /// Hard upper bound on outputs per input (the paper's u for stage 1).
  virtual OutputCount max_outputs() const = 0;

  virtual std::string name() const = 0;
};

using GainPtr = std::shared_ptr<const GainDistribution>;

/// Always exactly k outputs (k = 1 models a regular node).
class DeterministicGain final : public GainDistribution {
 public:
  explicit DeterministicGain(OutputCount k);
  OutputCount sample(Xoshiro256& rng) const override;
  double mean() const override;
  double variance() const override;
  OutputCount max_outputs() const override;
  std::string name() const override;

  OutputCount count() const noexcept { return k_; }

 private:
  OutputCount k_;
};

/// One output with probability p, else zero (paper's filter stages).
class BernoulliGain final : public GainDistribution {
 public:
  explicit BernoulliGain(double p);
  OutputCount sample(Xoshiro256& rng) const override;
  double mean() const override;
  double variance() const override;
  OutputCount max_outputs() const override;
  std::string name() const override;

  double probability() const noexcept { return p_; }

 private:
  double p_;
};

/// Poisson(lambda) censored at cap: values above cap are reported as cap
/// (paper's expanding stage, lambda = 1.92, cap = u = 16).
///
/// mean()/variance() are the *censored* moments, computed exactly at
/// construction, so analytic predictions line up with what the simulator
/// actually samples.
class CensoredPoissonGain final : public GainDistribution {
 public:
  CensoredPoissonGain(double lambda, OutputCount cap);
  OutputCount sample(Xoshiro256& rng) const override;
  double mean() const override;
  double variance() const override;
  OutputCount max_outputs() const override;
  std::string name() const override;

  double lambda() const noexcept { return lambda_; }

 private:
  double lambda_;
  OutputCount cap_;
  std::vector<double> cdf_;  // cdf_[k] = P(outputs <= k), k in [0, cap]
  double mean_ = 0.0;
  double variance_ = 0.0;
};

/// Geometric-tail gain: P(k) proportional to (1-p) p^k for k in [0, cap].
/// Heavier-tailed than Poisson at the same mean; used in robustness ablations.
class TruncatedGeometricGain final : public GainDistribution {
 public:
  /// Constructs the truncated geometric with the given success parameter.
  TruncatedGeometricGain(double p, OutputCount cap);

  /// Factory choosing p so the truncated mean equals `target_mean`.
  static std::shared_ptr<const TruncatedGeometricGain> with_mean(double target_mean,
                                                                 OutputCount cap);

  OutputCount sample(Xoshiro256& rng) const override;
  double mean() const override;
  double variance() const override;
  OutputCount max_outputs() const override;
  std::string name() const override;

  double ratio() const noexcept { return p_; }

 private:
  double p_;
  OutputCount cap_;
  std::vector<double> cdf_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

/// Arbitrary finite distribution over output counts 0..(weights.size()-1),
/// e.g. a measured histogram from the mini-BLAST substrate.
class EmpiricalGain final : public GainDistribution {
 public:
  explicit EmpiricalGain(std::vector<double> weights);
  OutputCount sample(Xoshiro256& rng) const override;
  double mean() const override;
  double variance() const override;
  OutputCount max_outputs() const override;
  std::string name() const override;

  /// Reconstructed point masses (differences of the internal CDF).
  std::vector<double> weights() const;

 private:
  std::vector<double> cdf_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

/// Convenience factories.
GainPtr make_deterministic(OutputCount k);
GainPtr make_bernoulli(double p);
GainPtr make_censored_poisson(double lambda, OutputCount cap);

}  // namespace ripple::dist
