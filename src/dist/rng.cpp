#include "dist/rng.hpp"

namespace ripple::dist {

std::uint64_t Xoshiro256::uniform_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless method with rejection of the biased region.
  // (128-bit arithmetic is a GCC/Clang extension; hence __extension__.)
  __extension__ using Uint128 = unsigned __int128;
  while (true) {
    const std::uint64_t x = (*this)();
    const Uint128 m = static_cast<Uint128>(x) * static_cast<Uint128>(bound);
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound || low >= (0 - bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::uint64_t derive_seed(std::initializer_list<std::uint64_t> coordinates) noexcept {
  std::uint64_t acc = 0x9412f32c5b1cca13ULL;  // arbitrary non-zero base
  for (std::uint64_t coordinate : coordinates) {
    SplitMix64 sm(acc ^ (coordinate + 0x632be59bd9b4e019ULL));
    acc = sm.next();
  }
  // One extra scramble so a single-coordinate seed of 0 is still well mixed.
  return SplitMix64(acc).next();
}

}  // namespace ripple::dist
