// SoA lane batches: the data layout of the vector-wide pipeline executor.
//
// A firing of node i consumes up to v lanes. Instead of handing the stage v
// type-erased std::any items one at a time (the seed executor's model, kept
// as ReferenceExecutor), the vector engine hands it one *dense* batch in
// structure-of-arrays form: up to kMaxLaneFields parallel u32 columns, one
// value per lane per column. Items in this repo's real workloads are small
// POD tuples (a subject position; a (subject, query) hit; a scored hit), so
// a fixed register file of u32 columns covers them; stages agree on column
// meaning by convention, like a calling convention, and declare their
// input/output arity in BatchStage. Signed fields (alignment scores) travel
// bit-cast through a u32 column.
//
// Stages that cannot use columns — user code written against the classic
// per-item StageFn — run through the adapter (PipelineExecutor's StageFn
// constructor), which carries std::any payloads instead of columns
// (`carries_items`); the engine's queues and compaction work identically in
// both representations.
//
// Output side: a stage appends zero or more outputs per lane, in lane order,
// through a BatchEmitter. Appends are dense — surviving outputs are written
// back to back with a per-lane count vector alongside — so irregular gains
// never leave holes: the emitter *is* the compaction. SIMD kernels that
// compact internally can instead write through the raw reserve()/
// commit_lane() interface without per-item calls.
#pragma once

#include <any>
#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "util/assert.hpp"

namespace ripple::runtime {

/// A data item flowing between adapter (per-item) stages. Typed batch stages
/// use SoA columns instead and never touch std::any.
using Item = std::any;

/// Index of the pipeline input an in-flight value descends from (for
/// per-input latency and deadline accounting).
using RootId = std::uint32_t;

/// Width of the SoA register file: enough for (pos), (pos, pos) and
/// (pos, pos, score) shaped items.
inline constexpr std::size_t kMaxLaneFields = 3;

/// Bit-cast helpers for signed values carried in u32 columns.
inline std::uint32_t field_from_i32(std::int32_t value) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}
inline std::int32_t field_to_i32(std::uint32_t bits) noexcept {
  std::int32_t value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Dense read-only view of the lanes one firing consumes. Exactly one of
/// {field columns, items} is populated, matching the stage's declared
/// representation.
struct LaneView {
  std::size_t lanes = 0;
  /// Column f base pointer (length `lanes`); null beyond the stage's input
  /// arity and for item-carrying stages.
  std::array<const std::uint32_t*, kMaxLaneFields> field{};
  /// Per-lane type-erased payloads for adapter stages; null for typed
  /// stages. The stage may move from these (each lane is consumed once).
  Item* items = nullptr;
};

/// Collector for one firing's outputs: dense SoA columns (or items) plus the
/// per-lane output counts the engine needs to propagate root ids.
class BatchEmitter {
 public:
  /// Arm for a firing of `lanes` input lanes producing `field_count` columns
  /// (`carries_items` switches to the std::any representation). Storage is
  /// retained across firings.
  void reset(std::size_t lanes, std::size_t field_count, bool carries_items) {
    lanes_ = lanes;
    field_count_ = carries_items ? 0 : field_count;
    carries_items_ = carries_items;
    counts_.assign(lanes, 0);
    total_ = 0;
    for (std::size_t f = 0; f < kMaxLaneFields; ++f) cols_[f].clear();
    items_.clear();
  }

  std::size_t lanes() const noexcept { return lanes_; }
  std::size_t field_count() const noexcept { return field_count_; }
  bool carries_items() const noexcept { return carries_items_; }
  std::size_t total() const noexcept { return total_; }
  const std::uint32_t* counts() const noexcept { return counts_.data(); }
  const std::uint32_t* column(std::size_t f) const { return cols_[f].data(); }
  const Item* items() const noexcept { return items_.data(); }
  Item* items() noexcept { return items_.data(); }

  /// Append one output for input lane `lane`. Lanes must be visited in
  /// non-decreasing order (outputs stay dense and lane-sorted — this is what
  /// keeps compaction hole-free and the result order identical to the
  /// scalar engine's).
  void emit(std::size_t lane, std::uint32_t f0 = 0, std::uint32_t f1 = 0,
            std::uint32_t f2 = 0) {
    RIPPLE_ASSERT(!carries_items_, "emit() on an item-carrying emitter");
    bump(lane);
    if (field_count_ > 0) cols_[0].push_back(f0);
    if (field_count_ > 1) cols_[1].push_back(f1);
    if (field_count_ > 2) cols_[2].push_back(f2);
  }

  /// Append one type-erased output for input lane `lane` (adapter stages).
  void emit_item(std::size_t lane, Item item) {
    RIPPLE_ASSERT(carries_items_, "emit_item() on a typed emitter");
    bump(lane);
    items_.push_back(std::move(item));
  }

  // --- Raw kernel interface -------------------------------------------------
  // SIMD kernels compact survivors themselves: they grab column cursors
  // sized for up to `n` more outputs, write `produced` values to each used
  // column, then account them lane by lane with commit_lane(). The emitter
  // stays consistent at item granularity as long as commit_lane() totals
  // match what was written.

  /// Ensure room for `n` more outputs; returns each column's append cursor.
  /// Growth is geometric: resize(total_ + n) alone would reallocate to the
  /// exact requested size on nearly every kernel call (std::vector only
  /// amortizes push_back, not resize), so a stage making many small raw
  /// reservations per firing would reallocate per call. Doubling keeps the
  /// per-firing reallocation count logarithmic, and because reset() only
  /// clear()s, a warmed emitter allocates nothing at steady state (see
  /// EmitterSteadyStateAllocationFree in tests/test_runtime_batch.cpp).
  std::array<std::uint32_t*, kMaxLaneFields> reserve(std::size_t n) {
    std::array<std::uint32_t*, kMaxLaneFields> cursors{};
    const std::size_t need = total_ + n;
    for (std::size_t f = 0; f < field_count_; ++f) {
      if (need > cols_[f].capacity()) {
        cols_[f].reserve(std::max(need, 2 * cols_[f].capacity()));
      }
      cols_[f].resize(need);
      cursors[f] = cols_[f].data() + total_;
    }
    return cursors;
  }

  /// Account `produced` already-written outputs to `lane` (non-decreasing).
  void commit_lane(std::size_t lane, std::uint32_t produced) {
    RIPPLE_ASSERT(lane < lanes_, "commit_lane() lane out of range");
    counts_[lane] += produced;
    total_ += produced;
  }

  /// Shrink columns to the committed total after raw writes (reserve() may
  /// have over-allocated).
  void finish_raw() {
    for (std::size_t f = 0; f < field_count_; ++f) cols_[f].resize(total_);
  }

 private:
  void bump(std::size_t lane) {
    RIPPLE_ASSERT(lane < lanes_, "emit lane out of range");
    ++counts_[lane];
    ++total_;
  }

  std::size_t lanes_ = 0;
  std::size_t field_count_ = 0;
  bool carries_items_ = false;
  std::array<std::vector<std::uint32_t>, kMaxLaneFields> cols_;
  std::vector<Item> items_;
  std::vector<std::uint32_t> counts_;
  std::size_t total_ = 0;
};

/// One vector-wide stage invocation: read up to v lanes, append outputs.
using BatchStageFn = std::function<void(const LaneView&, BatchEmitter&)>;

/// A pipeline stage in the vector engine, with its data-shape declaration.
struct BatchStage {
  BatchStageFn fn;
  /// u32 columns this stage reads per lane (0..kMaxLaneFields).
  std::uint8_t input_fields = 1;
  /// u32 columns this stage writes per output.
  std::uint8_t output_fields = 1;
  /// True for adapter-wrapped per-item stages: lanes carry std::any items
  /// instead of columns, on both sides.
  bool carries_items = false;
  /// Optional: build a collectible Item from one sink output's fields (used
  /// only for ExecutionMetrics::results at the sink). Defaults to an Item
  /// holding std::array<std::uint32_t, kMaxLaneFields>.
  std::function<Item(const std::uint32_t* fields)> materialize;
};

}  // namespace ripple::runtime
