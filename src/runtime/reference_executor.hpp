// The seed per-item executor, preserved verbatim as a reference engine.
//
// This is the scalar path the vector-wide PipelineExecutor replaced: one
// std::any item at a time through std::function stages, std::deque queues
// between nodes. It exists for two reasons:
//
//   1. Golden oracle — tests/test_runtime_batch.cpp proves the vector
//      engine's sink results, per-node counters and deadline-miss counts are
//      bit-identical to this engine on paper-grid configurations, under both
//      RIPPLE_SIMD=ON and =OFF.
//   2. Benchmark baseline — bench/bench_runtime.cpp reports the batched and
//      SIMD engines' end-to-end speedup against this engine (the
//      BENCH_runtime.json "scalar" series).
//
// Semantics (virtual time, deadline accounting, failure codes) match
// PipelineExecutor::run exactly; see pipeline_executor.hpp. Do not extend
// this engine — new capability goes into the vector engine.
#pragma once

#include <vector>

#include "runtime/pipeline_executor.hpp"
#include "sdf/pipeline.hpp"
#include "util/result.hpp"

namespace ripple::runtime {

class ReferenceExecutor {
 public:
  /// One StageFn per pipeline node. Throws std::logic_error on arity
  /// mismatch.
  ReferenceExecutor(sdf::PipelineSpec spec, std::vector<StageFn> stages);

  const sdf::PipelineSpec& pipeline() const noexcept { return pipeline_; }

  /// Run the given inputs through the pipeline in virtual time.
  /// Failure codes: "bad_config" (malformed intervals), "event_budget".
  util::Result<ExecutionMetrics> run(std::vector<Item> inputs,
                                     const ExecutorConfig& config) const;

 private:
  sdf::PipelineSpec pipeline_;
  std::vector<StageFn> stages_;
};

}  // namespace ripple::runtime
