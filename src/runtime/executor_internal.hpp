// Shared internals of the two PipelineExecutor engines.
//
// The sequential engine (pipeline_executor.cpp) and the task-parallel
// committer (pipeline_executor_parallel.cpp) must replay the *same* virtual
// event loop — same event kinds, same priorities, same validation, same
// sink-side materialization — for the parallel engine's bit-identity
// guarantee to hold. The pieces both translation units replicate live here
// so they cannot drift apart.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "runtime/pipeline_executor.hpp"

namespace ripple::runtime::detail {

enum EventPriority : int {
  kPriorityFireEnd = 0,
  // Priority 1 was the seed engine's arrival events; the vector engine
  // materializes arrivals lazily (they commute with fire-ends, which never
  // touch the source queue) so only fire events remain.
  kPriorityFireStart = 2,
};

struct EventPayload {
  enum class Kind : std::uint8_t { kFireEnd, kFireStart };
  Kind kind;
  NodeIndex node = 0;
};

inline Item default_materialize(const std::uint32_t* fields) {
  std::array<std::uint32_t, kMaxLaneFields> tuple{};
  for (std::size_t f = 0; f < kMaxLaneFields; ++f) tuple[f] = fields[f];
  return Item(tuple);
}

/// Shared run-config validation. Returns the failure to propagate, or
/// nullopt when the configuration is runnable.
inline std::optional<util::Result<ExecutionMetrics>> validate_run_config(
    const sdf::PipelineSpec& pipeline, std::size_t input_count,
    const ExecutorConfig& config) {
  using R = util::Result<ExecutionMetrics>;
  const std::size_t n = pipeline.size();
  if (config.firing_intervals.size() != n) {
    return R::failure("bad_config", "one firing interval per node required");
  }
  for (NodeIndex i = 0; i < n; ++i) {
    if (config.firing_intervals[i] < pipeline.service_time(i) - 1e-9) {
      return R::failure("bad_config",
                        "firing interval below service time at node " +
                            std::to_string(i));
    }
  }
  if (input_count == 0) {
    return R::failure("bad_config", "need at least one input");
  }
  if (!config.input_gaps.empty()) {
    if (config.input_gaps.size() != input_count) {
      return R::failure("bad_config", "one arrival gap per input required");
    }
    for (Cycles gap : config.input_gaps) {
      if (!(gap > 0.0)) {
        return R::failure("bad_config", "arrival gaps must be positive");
      }
    }
  } else if (!(config.input_gap > 0.0)) {
    return R::failure("bad_config", "input gap must be positive");
  }
  return std::nullopt;
}

}  // namespace ripple::runtime::detail
