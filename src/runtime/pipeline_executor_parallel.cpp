// Task-parallel pipeline engine: wavefront-scheduled stage firings on a
// shard-local worker pool, bit-identical to the sequential engine.
//
// The enforced-waits schedule fixes every node's firing cadence up front, so
// the dependency structure of a run is known before it executes: the k-th
// consuming firing of node i reads a *determined* slice of the item stream
// on edge i (everything node i-1 delivered before the firing's start, minus
// what node i's earlier firings consumed). That makes firings of different
// nodes — and *different firings of the same node* — independent pure
// functions of their input windows, free to execute concurrently.
//
// Two cooperating roles, both driven from the calling thread:
//
//   * The PLANNER (plan_step) runs a shadow replica of the sequential event
//     loop ahead of real time. It tracks per-edge streams as lists of
//     *segments* (each completed firing's emitter is one segment), computes
//     each upcoming firing's consumed count from pure arithmetic
//     (min(queue, v), where the queue size follows from upstream segment
//     totals and the arrival schedule), materializes the firing's dense
//     input window by slicing segments, and dispatches it as a StageTask to
//     the worker pool. Where a value it needs is not determined yet — a
//     segment total still being computed by a worker, or the live-item count
//     during the drain tail — it stalls; stalls only cost parallelism,
//     never correctness.
//
//   * The COMMITTER (the run loop) replays the sequential engine's event
//     loop *exactly* — same event queue pushes in the same order, hence the
//     same (time, priority, seq) total order — with per-edge counters in
//     place of materialized queues. Every observable effect happens here, in
//     virtual-time order, with the sequential code's arithmetic: metrics
//     counters, latency accounting, sink-result collection, trace spans, and
//     the drain/reschedule decisions. Stage outputs are taken from the
//     planned firing's emitter, which the committer waits for (helping
//     execute it when no worker picked it up — progress never depends on
//     pool capacity).
//
// Determinism argument (DESIGN.md §16): the committer's control flow reads
// only its own replayed state, never scheduling order; the planner's
// speculation is write-free outside engine-private buffers; and a planned
// firing is only dispatched once its input window is bit-determined. So the
// committed sequence of states is the sequential engine's sequence, and
// results, ExecutionMetrics, and exported sim-domain traces match bit for
// bit for every exec_threads value.
#include <algorithm>
#include <cstring>
#include <deque>
#include <exception>
#include <memory>
#include <vector>

#include "runtime/executor_internal.hpp"
#include "runtime/pipeline_executor.hpp"
#include "runtime/stage_scheduler.hpp"
#include "sim/event_queue.hpp"
#include "util/assert.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::runtime {

using detail::EventPayload;
using detail::kPriorityFireEnd;
using detail::kPriorityFireStart;

namespace {

/// One planned stage firing: the unit of pool work. Owns its dense input
/// window (sliced out of upstream segments by the planner) and its output
/// emitter (the downstream segment). Recycled through a per-node free list.
struct Firing final : StageTask {
  NodeIndex node = 0;
  Cycles start = 0.0;
  std::uint32_t consumed = 0;
  const BatchStage* stage = nullptr;

  // Input window (exactly one representation populated, per the stage).
  std::array<std::vector<std::uint32_t>, kMaxLaneFields> in_cols;
  std::vector<Item> in_items;
  std::vector<RootId> lane_roots;

  BatchEmitter emitter;  ///< outputs; valid once done()

  // Planner-side consumption of this segment by downstream windows.
  std::size_t out_taken = 0;
  std::size_t out_lane = 0;        ///< root-expansion cursor: lane
  std::uint32_t out_lane_off = 0;  ///< outputs already taken from out_lane
  bool folded = false;         ///< total folded into the shadow live count
  bool end_committed = false;  ///< committer processed the fire-end
  /// Live planner references: one while pending_ holds the firing (until its
  /// total folds or a sink fire-end cancels it), one while it is a node's
  /// shadow_cur_, one while an edge segment list still queues its outputs.
  /// Recycling storage with any of these outstanding would let the same
  /// pointer appear twice in pending_ — the fold sweep would then credit the
  /// new incarnation's total twice and lose the old one's.
  std::uint32_t planner_refs = 0;

  void execute() noexcept override {
    LaneView view;
    view.lanes = consumed;
    if (stage->carries_items) {
      view.items = in_items.data();
    } else {
      for (std::size_t f = 0; f < stage->input_fields; ++f) {
        view.field[f] = in_cols[f].data();
      }
    }
    emitter.reset(consumed, stage->output_fields, stage->carries_items);
    try {
      stage->fn(view, emitter);
    } catch (...) {
      error = std::current_exception();
    }
  }
};

class ParallelEngine {
 public:
  ParallelEngine(const sdf::PipelineSpec& pipeline,
                 const std::vector<BatchStage>& stages,
                 const BatchInputs* typed_inputs,
                 std::vector<Item>* item_inputs, const ExecutorConfig& config,
                 StageScheduler& scheduler)
      : pipeline_(pipeline),
        stages_(stages),
        typed_inputs_(typed_inputs),
        item_inputs_(item_inputs),
        config_(config),
        scheduler_(scheduler),
        n_(pipeline.size()),
        v_(pipeline.simd_width()),
        input_count_(typed_inputs != nullptr ? typed_inputs->size()
                                             : item_inputs->size()),
        per_input_gaps_(!config.input_gaps.empty()),
        max_inflight_(std::max<std::size_t>(
            8, 4 * (scheduler.worker_count() + 1))) {
    segments_.resize(n_);
    commit_fifo_.resize(n_);
    shadow_cur_.assign(n_, nullptr);
    committing_.assign(n_, nullptr);
    free_.resize(n_);
    s_next_arrival_ =
        per_input_gaps_ ? config.input_gaps[0] : config.input_gap;
  }

  ~ParallelEngine() { quiesce(); }

  util::Result<ExecutionMetrics> run();

 private:
  struct PlanStep {
    bool advanced = false;
    Firing* blocked_on = nullptr;  ///< undone task the planner stalled on
  };

  void shadow_materialize(Cycles now) {
    if (s_arrivals_done_ || s_next_arrival_ > now) return;
    while (!s_arrivals_done_ && s_next_arrival_ <= now) {
      ++s_arr_count_;
      ++shadow_live_;
      if (s_arr_count_ == input_count_) {
        s_arrivals_done_ = true;
      } else {
        s_next_arrival_ += per_input_gaps_ ? config_.input_gaps[s_arr_count_]
                                           : config_.input_gap;
      }
    }
  }

  /// Fold completed firings' output totals into the shadow live count.
  void fold_pending() {
    std::size_t kept = 0;
    for (Firing* firing : pending_) {
      if (firing->done()) {
        shadow_live_ += firing->emitter.total();
        firing->folded = true;
        --firing->planner_refs;
        maybe_recycle(firing);
      } else {
        pending_[kept++] = firing;
      }
    }
    pending_.resize(kept);
  }

  /// Planner view of min(queue_i, v) at the shadow's current position.
  /// Exact whenever it returns >= 0; -1 means stalled (sets *blocked_on).
  int shadow_consumed(NodeIndex i, Firing** blocked_on) {
    if (i == 0) {
      const std::uint64_t size = s_arr_count_ - s_arr_taken_;
      return static_cast<int>(std::min<std::uint64_t>(size, v_));
    }
    std::uint64_t avail = 0;
    for (Firing* seg : segments_[i]) {
      if (!seg->done()) {
        *blocked_on = seg;
        return -1;
      }
      avail += seg->emitter.total() - seg->out_taken;
      if (avail >= v_) return static_cast<int>(v_);
    }
    return static_cast<int>(std::min<std::uint64_t>(avail, v_));
  }

  Firing* make_firing(NodeIndex i) {
    Firing* firing;
    if (!free_[i].empty()) {
      firing = free_[i].back();
      free_[i].pop_back();
    } else {
      storage_.push_back(std::make_unique<Firing>());
      firing = storage_.back().get();
    }
    RIPPLE_ASSERT(firing->planner_refs == 0,
                  "recycled firing still referenced by the planner");
    firing->node = i;
    firing->stage = &stages_[i];
    firing->out_taken = 0;
    firing->out_lane = 0;
    firing->out_lane_off = 0;
    firing->folded = false;
    firing->end_committed = false;
    firing->reset_state();
    return firing;
  }

  /// Return a firing to the free list once nothing references it anymore:
  /// its fire-end is committed, its outputs are fully consumed, and every
  /// planner reference (pending_, shadow_cur_, edge segment lists) has been
  /// released. The last condition is load-bearing: a firing's outputs can be
  /// fully consumed downstream and its fire-end committed while its total
  /// still sits unfolded in pending_ (fold_pending only runs once arrivals
  /// drain), and recycling it then would hand the same storage out twice.
  void maybe_recycle(Firing* firing) {
    if (!firing->end_committed || firing->planner_refs != 0) return;
    const bool is_sink = firing->node + 1 == n_;
    if (!is_sink && firing->out_taken != firing->emitter.total()) return;
    free_[firing->node].push_back(firing);
  }

  /// Slice `consumed` lanes out of the edge stream into the firing's dense
  /// window. Callable only after shadow_consumed() returned this count, so
  /// every touched segment is done.
  void build_window(Firing& firing) {
    const std::uint32_t consumed = firing.consumed;
    const BatchStage& stage = *firing.stage;
    firing.lane_roots.resize(consumed);
    if (stage.carries_items) {
      firing.in_items.resize(consumed);
    } else {
      for (std::size_t f = 0; f < stage.input_fields; ++f) {
        firing.in_cols[f].resize(consumed);
      }
    }
    if (firing.node == 0) {
      for (std::uint32_t k = 0; k < consumed; ++k) {
        const std::size_t idx = s_arr_taken_ + k;
        firing.lane_roots[k] = static_cast<RootId>(idx);
        if (typed_inputs_ != nullptr) {
          for (std::size_t f = 0; f < stage.input_fields; ++f) {
            firing.in_cols[f][k] = typed_inputs_->column(f)[idx];
          }
        } else {
          firing.in_items[k] = std::move((*item_inputs_)[idx]);
        }
      }
      s_arr_taken_ += consumed;
      return;
    }
    auto& segs = segments_[firing.node];
    std::uint32_t dest = 0;
    while (dest < consumed) {
      RIPPLE_ASSERT(!segs.empty(), "window slice ran out of segments");
      Firing* src = segs.front();
      const std::size_t src_left = src->emitter.total() - src->out_taken;
      if (src_left == 0) {
        segs.pop_front();
        --src->planner_refs;
        maybe_recycle(src);
        continue;
      }
      const std::uint32_t take = static_cast<std::uint32_t>(
          std::min<std::size_t>(consumed - dest, src_left));
      if (stage.carries_items) {
        Item* items = src->emitter.items();
        for (std::uint32_t t = 0; t < take; ++t) {
          firing.in_items[dest + t] = std::move(items[src->out_taken + t]);
        }
      } else {
        for (std::size_t f = 0; f < stage.input_fields; ++f) {
          std::memcpy(firing.in_cols[f].data() + dest,
                      src->emitter.column(f) + src->out_taken,
                      take * sizeof(std::uint32_t));
        }
      }
      const std::uint32_t* counts = src->emitter.counts();
      for (std::uint32_t t = 0; t < take; ++t) {
        while (src->out_lane_off == counts[src->out_lane]) {
          ++src->out_lane;
          src->out_lane_off = 0;
        }
        firing.lane_roots[dest + t] = src->lane_roots[src->out_lane];
        ++src->out_lane_off;
      }
      src->out_taken += take;
      dest += take;
      if (src->out_taken == src->emitter.total()) {
        segs.pop_front();
        --src->planner_refs;
        maybe_recycle(src);
      }
    }
  }

  /// Advance the shadow replay by one event (or resolve a stalled
  /// reschedule decision). `force` ignores the in-flight cap — used when the
  /// committer needs the firing for the event it is about to commit.
  PlanStep plan_step(bool force) {
    PlanStep step;
    if (resched_node_ != kNoResched) {
      // A drained-arrivals reschedule decision needs the exact live count;
      // the shadow halts entirely until every started firing's total is
      // folded (event-push order is seq-significant, so nothing may be
      // processed past this point while it is undecided).
      fold_pending();
      if (!pending_.empty()) {
        step.blocked_on = pending_.front();
        return step;
      }
      if (shadow_live_ != 0) {
        shadow_events_.push(resched_time_ + config_.firing_intervals[resched_node_],
                            kPriorityFireStart,
                            {EventPayload::Kind::kFireStart,
                             static_cast<NodeIndex>(resched_node_)});
      }
      resched_node_ = kNoResched;
      step.advanced = true;
      return step;
    }
    if (shadow_events_.empty()) return step;
    if (!force && shadow_processed_ - committed_seen_ >= kMaxLead) return step;
    // Copy before any pop: top() references the heap's front slot.
    const EventPayload payload = shadow_events_.top().payload;
    const Cycles now = shadow_events_.top().time;
    shadow_materialize(now);
    if (payload.kind == EventPayload::Kind::kFireStart) {
      const NodeIndex i = payload.node;
      const int consumed = shadow_consumed(i, &step.blocked_on);
      if (consumed < 0) return step;  // window not determined yet
      if (consumed > 0 && !force && inflight_ >= max_inflight_) return step;
      shadow_events_.pop();
      ++shadow_processed_;
      if (consumed > 0) {
        Firing* firing = make_firing(i);
        firing->start = now;
        firing->consumed = static_cast<std::uint32_t>(consumed);
        build_window(*firing);
        shadow_live_ -= static_cast<std::uint64_t>(consumed);
        pending_.push_back(firing);
        commit_fifo_[i].push_back(firing);
        shadow_cur_[i] = firing;
        firing->planner_refs = 2;  // pending_ + shadow_cur_
        ++inflight_;
        ++dispatched_this_wave_;
        scheduler_.submit(firing);
        shadow_events_.push(now + pipeline_.service_time(i), kPriorityFireEnd,
                            {EventPayload::Kind::kFireEnd, i});
      }
      if (!s_arrivals_done_) {
        shadow_events_.push(now + config_.firing_intervals[i],
                            kPriorityFireStart,
                            {EventPayload::Kind::kFireStart, i});
      } else {
        fold_pending();
        if (!pending_.empty()) {
          resched_node_ = i;
          resched_time_ = now;
        } else if (shadow_live_ != 0) {
          shadow_events_.push(now + config_.firing_intervals[i],
                              kPriorityFireStart,
                              {EventPayload::Kind::kFireStart, i});
        }
      }
      step.advanced = true;
      return step;
    }
    // Fire-end: deliver the in-flight firing's segment downstream (totals
    // may still be pending — consumers stall on them lane-exactly).
    shadow_events_.pop();
    ++shadow_processed_;
    const NodeIndex i = payload.node;
    Firing* firing = shadow_cur_[i];
    RIPPLE_ASSERT(firing != nullptr, "shadow fire-end without a firing");
    shadow_cur_[i] = nullptr;
    --firing->planner_refs;
    if (i + 1 == n_) {
      // Sink outputs leave the system: net live effect of the firing is
      // -consumed, so an unfolded +total simply cancels out of pending_.
      if (firing->folded) {
        shadow_live_ -= firing->emitter.total();
      } else {
        pending_.erase(std::find(pending_.begin(), pending_.end(), firing));
        --firing->planner_refs;
      }
      maybe_recycle(firing);
    } else {
      ++firing->planner_refs;  // handed from shadow_cur_ to the segment list
      segments_[i + 1].push_back(firing);
    }
    step.advanced = true;
    return step;
  }

  /// Run the planner as far ahead as it can get right now.
  void plan_ahead() {
    dispatched_this_wave_ = 0;
    while (true) {
      const PlanStep step = plan_step(/*force=*/false);
      if (!step.advanced) break;
    }
#if RIPPLE_OBS
    if (config_.trace_workers && dispatched_this_wave_ > 0) {
      obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
      if (trace.active()) {
        const double now_us = obs::TraceSession::global().host_now_us();
        trace.begin(obs::Domain::kHost, trace.track(), "runtime.wave", now_us);
        trace.end(obs::Domain::kHost, trace.track(), "runtime.wave",
                  obs::TraceSession::global().host_now_us());
        trace.counter(obs::Domain::kHost, trace.track(), "runtime.steal",
                      obs::TraceSession::global().host_now_us(),
                      static_cast<double>(scheduler_.steals()));
      }
    }
#endif
  }

  /// Block-tolerant fetch of the planned firing the committer is about to
  /// commit: force the shadow forward, waiting on whichever task it is
  /// stalled behind.
  Firing* take_planned(NodeIndex i) {
    while (commit_fifo_[i].empty()) {
      const PlanStep step = plan_step(/*force=*/true);
      if (step.advanced) continue;
      // Always-on: this is the cold path, and a divergence here would
      // otherwise dereference null and corrupt instead of failing loudly.
      RIPPLE_REQUIRE(step.blocked_on != nullptr,
                     "parallel planner diverged from the committer");
      scheduler_.wait(*step.blocked_on);
    }
    Firing* firing = commit_fifo_[i].front();
    commit_fifo_[i].pop_front();
    --inflight_;
    return firing;
  }

  /// Wait out every dispatched-but-uncommitted task so engine-owned storage
  /// can be torn down (failure paths; idempotent).
  void quiesce() {
    for (auto& fifo : commit_fifo_) {
      for (Firing* firing : fifo) scheduler_.wait(*firing);
    }
  }

  const sdf::PipelineSpec& pipeline_;
  const std::vector<BatchStage>& stages_;
  const BatchInputs* typed_inputs_;
  std::vector<Item>* item_inputs_;
  const ExecutorConfig& config_;
  StageScheduler& scheduler_;

  const std::size_t n_;
  const std::uint32_t v_;
  const std::size_t input_count_;
  const bool per_input_gaps_;
  const std::size_t max_inflight_;
  static constexpr std::uint64_t kMaxLead = 4096;
  static constexpr std::size_t kNoResched = static_cast<std::size_t>(-1);

  // --- planner (shadow) state ---------------------------------------------
  sim::EventQueue<EventPayload> shadow_events_;
  std::vector<std::deque<Firing*>> segments_;     ///< edge i's delivered stream
  std::vector<std::deque<Firing*>> commit_fifo_;  ///< dispatched, uncommitted
  std::vector<Firing*> shadow_cur_;               ///< started, un-ended
  std::vector<Firing*> pending_;                  ///< totals not yet folded
  std::uint64_t shadow_live_ = 0;
  std::size_t s_arr_count_ = 0;  ///< arrivals materialized (shadow clock)
  std::size_t s_arr_taken_ = 0;  ///< arrivals consumed into node-0 windows
  Cycles s_next_arrival_ = 0.0;
  bool s_arrivals_done_ = false;
  std::size_t resched_node_ = kNoResched;
  Cycles resched_time_ = 0.0;
  std::uint64_t shadow_processed_ = 0;
  std::uint64_t committed_seen_ = 0;
  std::size_t inflight_ = 0;
  std::size_t dispatched_this_wave_ = 0;

  // --- storage --------------------------------------------------------------
  std::vector<std::unique_ptr<Firing>> storage_;
  std::vector<std::vector<Firing*>> free_;

  // --- committer state ------------------------------------------------------
  std::vector<Firing*> committing_;
};

util::Result<ExecutionMetrics> ParallelEngine::run() {
  using R = util::Result<ExecutionMetrics>;

  ExecutionMetrics metrics;
  metrics.base.nodes.resize(n_);
  metrics.base.vector_width = v_;
  metrics.base.sharing_actors = n_;
  metrics.base.arm_latency_histogram(config_.deadline);

  std::vector<Cycles> root_arrival(input_count_, 0.0);
  std::vector<bool> root_missed(input_count_, false);

  std::vector<std::uint64_t> qsize(n_, 0);
  std::uint64_t live_items = 0;
  std::size_t next_input = 0;
  // Arrival k's timestamp accumulates gap by gap (never k * gap) so the
  // doubles match the seed engine's event-chained arrival times bit for bit
  // — and the shadow replica accumulates the same way.
  Cycles next_arrival =
      per_input_gaps_ ? config_.input_gaps[0] : config_.input_gap;
  bool arrivals_done = false;

  const auto materialize_arrivals = [&](Cycles now) {
    if (arrivals_done || next_arrival > now) return;
    while (!arrivals_done && next_arrival <= now) {
      const RootId root = static_cast<RootId>(next_input);
      root_arrival[root] = next_arrival;
      ++metrics.base.inputs_arrived;
      ++qsize[0];
      ++live_items;
      ++next_input;
      if (next_input == input_count_) {
        arrivals_done = true;
      } else {
        next_arrival += per_input_gaps_ ? config_.input_gaps[next_input]
                                        : config_.input_gap;
      }
    }
    metrics.base.nodes[0].max_queue_length = std::max<std::uint64_t>(
        metrics.base.nodes[0].max_queue_length, qsize[0]);
  };

  sim::EventQueue<EventPayload> events;
  for (NodeIndex i = 0; i < n_; ++i) {
    events.push(0.0, kPriorityFireStart, {EventPayload::Kind::kFireStart, i});
    shadow_events_.push(0.0, kPriorityFireStart,
                        {EventPayload::Kind::kFireStart, i});
  }

#if RIPPLE_OBS
  // Per-stage service spans on the sim timeline, mirroring enforced_sim.
  obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
  if (trace.active()) {
    for (NodeIndex i = 0; i < n_; ++i) {
      obs::TraceSession::global().set_track_name(
          obs::Domain::kSim, static_cast<std::uint32_t>(i),
          pipeline_.node(i).name);
    }
  }
#endif

  std::uint64_t processed = 0;
  while (!events.empty() && processed < config_.max_events) {
    plan_ahead();
    const auto event = events.pop();
    ++processed;
    committed_seen_ = processed;
    const Cycles now = event.time;
    materialize_arrivals(now);

    switch (event.payload.kind) {
      case EventPayload::Kind::kFireStart: {
        const NodeIndex i = event.payload.node;
        sim::NodeMetrics& node = metrics.base.nodes[i];
        const std::uint32_t consumed =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(qsize[i], v_));
#if RIPPLE_OBS
        if (trace.active()) {
          trace.counter(obs::Domain::kSim, static_cast<std::uint32_t>(i),
                        "queue_depth", now, static_cast<double>(qsize[i]));
          if (consumed > 0) {
            trace.begin(obs::Domain::kSim, static_cast<std::uint32_t>(i),
                        "service", now);
          } else if (config_.charge_empty_firings) {
            trace.instant(obs::Domain::kSim, static_cast<std::uint32_t>(i),
                          "empty_firing", now, pipeline_.service_time(i));
          }
        }
#endif

        if (consumed > 0 || config_.charge_empty_firings) {
          ++node.firings;
          if (consumed == 0) ++node.empty_firings;
          node.active_time += pipeline_.service_time(i);
        }

        if (consumed > 0) {
          node.items_consumed += consumed;
          Firing* firing = take_planned(i);
          RIPPLE_ASSERT(firing->start == now && firing->consumed == consumed,
                        "parallel plan diverged from the committed timeline");
          scheduler_.wait(*firing);
          if (firing->error) {
            try {
              std::rethrow_exception(firing->error);
            } catch (const std::exception& e) {
              return R::failure("stage_exception",
                                "stage '" + pipeline_.node(i).name +
                                    "' threw: " + e.what());
            } catch (...) {
              return R::failure("stage_exception",
                                "stage '" + pipeline_.node(i).name +
                                    "' threw");
            }
          }
          qsize[i] -= consumed;
          node.items_produced += firing->emitter.total();
          live_items += firing->emitter.total();
          live_items -= consumed;
          events.push(now + pipeline_.service_time(i), kPriorityFireEnd,
                      {EventPayload::Kind::kFireEnd, i});
          committing_[i] = firing;
        }

        if (!(arrivals_done && live_items == 0)) {
          events.push(now + config_.firing_intervals[i], kPriorityFireStart,
                      {EventPayload::Kind::kFireStart, i});
        }
        break;
      }

      case EventPayload::Kind::kFireEnd: {
        const NodeIndex i = event.payload.node;
        Firing* firing = committing_[i];
        committing_[i] = nullptr;
        BatchEmitter& emitter = firing->emitter;
        const std::vector<RootId>& lane_roots = firing->lane_roots;
        const bool is_sink = (i + 1 == n_);
        if (is_sink) {
          const std::uint32_t* counts = emitter.counts();
          std::size_t out = 0;
          for (std::size_t lane = 0; lane < emitter.lanes(); ++lane) {
            const RootId root = lane_roots[lane];
            for (std::uint32_t c = 0; c < counts[lane]; ++c, ++out) {
              ++metrics.base.sink_outputs;
              const Cycles latency = now - root_arrival[root];
              metrics.base.record_latency(latency);
              if (config_.deadline > 0.0 &&
                  latency > config_.deadline * (1.0 + 1e-12) &&
                  !root_missed[root]) {
                root_missed[root] = true;
                ++metrics.base.inputs_missed;
#if RIPPLE_OBS
                if (trace.active()) {
                  trace.instant(obs::Domain::kSim,
                                static_cast<std::uint32_t>(i), "deadline_miss",
                                now, config_.deadline - latency);
                }
#endif
              }
              metrics.base.makespan = std::max(metrics.base.makespan, now);
              if (metrics.results.size() < config_.max_collected_results) {
                if (emitter.carries_items()) {
                  metrics.results.push_back(std::move(emitter.items()[out]));
                } else {
                  std::uint32_t fields[kMaxLaneFields] = {0, 0, 0};
                  for (std::size_t f = 0; f < stages_[i].output_fields; ++f) {
                    fields[f] = emitter.column(f)[out];
                  }
                  metrics.results.push_back(
                      stages_[i].materialize
                          ? stages_[i].materialize(fields)
                          : detail::default_materialize(fields));
                }
              }
            }
          }
          live_items -= emitter.total();
        } else {
          qsize[i + 1] += emitter.total();
          metrics.base.nodes[i + 1].max_queue_length = std::max<std::uint64_t>(
              metrics.base.nodes[i + 1].max_queue_length, qsize[i + 1]);
        }
#if RIPPLE_OBS
        if (trace.active()) {
          trace.end(obs::Domain::kSim, static_cast<std::uint32_t>(i),
                    "service", now);
        }
#endif
        firing->end_committed = true;
        maybe_recycle(firing);
        break;
      }
    }
  }
  if (processed >= config_.max_events) {
    return R::failure("event_budget",
                      "event budget exhausted (unstable schedule?)");
  }

  metrics.base.inputs_on_time =
      metrics.base.inputs_arrived - metrics.base.inputs_missed;
  if (metrics.base.makespan <= 0.0 && metrics.base.inputs_arrived > 0) {
    metrics.base.makespan =
        per_input_gaps_
            ? next_arrival
            : config_.input_gap *
                  static_cast<double>(metrics.base.inputs_arrived);
  }
  return metrics;
}

}  // namespace

util::Result<ExecutionMetrics> PipelineExecutor::execute_parallel(
    const BatchInputs* typed_inputs, std::vector<Item>* item_inputs,
    const ExecutorConfig& config, std::size_t threads) const {
  StageScheduler& scheduler = acquire_scheduler(threads - 1);
  scheduler.begin_run(config.trace_workers);
  ParallelEngine engine(pipeline_, stages_, typed_inputs, item_inputs, config,
                        scheduler);
  return engine.run();
}

}  // namespace ripple::runtime
