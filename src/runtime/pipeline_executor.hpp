// Vector-wide virtual-time execution of REAL stage computations under
// enforced waits.
//
// sim/enforced_sim.hpp validates schedules against *sampled* gain models;
// this executor goes one step further and carries actual data items through
// user-provided stage computations (the MERCATOR-style host-runtime view):
// gains, queue growth and deadline misses emerge from the computation itself
// rather than from a fitted distribution. Time is still virtual — node i's
// firings occupy its configured x_i = t_i + w_i cycles — so runs are exactly
// reproducible and independent of host speed, but every output at the sink
// is a genuine computed result.
//
// The engine is vector-wide end to end: lanes wait in SoA ring queues
// (runtime/soa_queue.hpp), each firing hands its stage one dense batch of up
// to v lanes (runtime/lane_batch.hpp), and stages with SIMD kernels (see
// blast/simd_kernels.hpp, cascade/simd_kernels.hpp) process the whole batch
// with AVX2 when src/device/dispatch.hpp reports support. Per-item StageFn
// callers keep working through an adapter that wraps each scalar function in
// a batch loop over std::any lanes; results and metrics are bit-identical to
// the seed per-item engine, which survives as ReferenceExecutor (the golden
// oracle and benchmark baseline — see tests/test_runtime_batch.cpp and
// bench/bench_runtime.cpp).
//
// On RIPPLE_OBS builds with recording enabled, each consuming firing emits a
// "service" trace span and a "queue_depth" counter sample on the stage's
// track, with "empty_firing" and "deadline_miss" instants mirroring the
// stochastic simulator's timeline (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/lane_batch.hpp"
#include "sdf/pipeline.hpp"
#include "sim/metrics.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace ripple::runtime {

/// One per-item pipeline stage (classic interface): consume `input`, append
/// zero or more outputs. For the final (sink) stage, appended outputs are
/// the pipeline's results. Runs through the batch adapter.
using StageFn = std::function<void(Item&& input, std::vector<Item>& outputs)>;

/// Wrap a per-item stage as a vector-wide BatchStage: the adapter walks the
/// batch lane by lane, finalizing each lane's outputs before touching the
/// next, so a stage that throws mid-batch leaves every earlier lane's
/// outputs intact and no partial lane behind.
BatchStage adapt_stage(StageFn stage);

struct ExecutorConfig {
  std::vector<Cycles> firing_intervals;  ///< x_i per node
  Cycles input_gap = 1.0;                ///< virtual cycles between inputs
  /// Optional irregular arrival schedule: gap k is the time from arrival
  /// k-1 to arrival k (the first gap is measured from t = 0). When
  /// non-empty it must have one positive gap per input, and `input_gap` is
  /// ignored. A constant vector filled with `input_gap` reproduces the
  /// fixed-gap run bit for bit — the service layer uses this to replay the
  /// actual spacing of live ingest batches.
  std::vector<Cycles> input_gaps;
  Cycles deadline = 0.0;                 ///< 0 = no miss accounting
  bool charge_empty_firings = true;
  /// Keep up to this many sink results in ExecutionMetrics::results.
  std::size_t max_collected_results = 1024;
  std::uint64_t max_events = 500'000'000;
  /// Execution threads for this run. 1 (the default) runs the sequential
  /// engine on the calling thread; N >= 2 runs the task-parallel engine —
  /// the calling thread becomes the committer (replaying the sequential
  /// event loop and committing results, metrics, and trace spans in
  /// virtual-time order) and N-1 pool workers execute stage firings whose
  /// input windows are already determined (DESIGN.md §16). Results, metrics,
  /// and exported traces are bit-identical across every value. 0 selects
  /// hardware_concurrency.
  std::size_t exec_threads = 1;
  /// Emit per-worker host-domain instrumentation from the parallel engine
  /// ("runtime.task" spans, "runtime.steal" counters, "runtime.wave" plan
  /// batches). Off by default so exported traces stay byte-identical to the
  /// sequential engine's.
  bool trace_workers = false;
};

struct ExecutionMetrics {
  sim::TrialMetrics base;      ///< same counters as the stochastic simulator
  std::vector<Item> results;   ///< first max_collected_results sink outputs
};

/// Typed pipeline inputs: up to kMaxLaneFields u32 columns per item, fed to
/// a typed stage-0 (see LaneView). Arrival order defines root ids.
class BatchInputs {
 public:
  void push(std::uint32_t f0, std::uint32_t f1 = 0, std::uint32_t f2 = 0) {
    cols_[0].push_back(f0);
    cols_[1].push_back(f1);
    cols_[2].push_back(f2);
  }
  std::size_t size() const noexcept { return cols_[0].size(); }
  const std::uint32_t* column(std::size_t f) const { return cols_[f].data(); }

 private:
  std::array<std::vector<std::uint32_t>, kMaxLaneFields> cols_;
};

class StageScheduler;

class PipelineExecutor {
 public:
  /// Classic interface: one StageFn per pipeline node, each adapted to the
  /// vector engine. Throws std::logic_error on arity mismatch.
  PipelineExecutor(sdf::PipelineSpec spec, std::vector<StageFn> stages);

  /// Vector-wide interface: one BatchStage per node. Adjacent stages must
  /// agree on representation (stage i's output_fields feed stage i+1's
  /// input_fields; item-carrying stages only neighbor item-carrying ones).
  /// Throws std::logic_error on arity or representation mismatch.
  PipelineExecutor(sdf::PipelineSpec spec, std::vector<BatchStage> stages);
  ~PipelineExecutor();

  PipelineExecutor(const PipelineExecutor&) = delete;
  PipelineExecutor& operator=(const PipelineExecutor&) = delete;

  const sdf::PipelineSpec& pipeline() const noexcept { return pipeline_; }

  /// Run type-erased inputs through the pipeline in virtual time. Requires
  /// an item-carrying stage 0 (i.e. the StageFn constructor, or batch
  /// stages built with adapt_stage).
  /// Failure codes: "bad_config" (malformed intervals, non-positive input
  /// gap, no inputs), "event_budget", "stage_exception" (a stage threw; all
  /// items fully emitted before the throw were delivered to the successor
  /// queue, and the executor remains reusable).
  util::Result<ExecutionMetrics> run(std::vector<Item> inputs,
                                     const ExecutorConfig& config) const;

  /// Run typed SoA inputs through the pipeline in virtual time. Requires a
  /// typed stage 0 whose input_fields columns are read from `inputs`.
  /// Failure codes as for run().
  util::Result<ExecutionMetrics> run_batch(const BatchInputs& inputs,
                                           const ExecutorConfig& config) const;

 private:
  util::Result<ExecutionMetrics> execute(const BatchInputs* typed_inputs,
                                         std::vector<Item>* item_inputs,
                                         const ExecutorConfig& config) const;
  /// Task-parallel engine (pipeline_executor_parallel.cpp); entered when
  /// the resolved exec_threads is >= 2.
  util::Result<ExecutionMetrics> execute_parallel(
      const BatchInputs* typed_inputs, std::vector<Item>* item_inputs,
      const ExecutorConfig& config, std::size_t threads) const;
  /// Lazily build (or resize) the persistent worker pool for `workers` pool
  /// threads. The pool outlives individual runs: service batches are small
  /// and thread spawn would dominate them.
  StageScheduler& acquire_scheduler(std::size_t workers) const;

  sdf::PipelineSpec pipeline_;
  std::vector<BatchStage> stages_;
  mutable std::mutex scheduler_mutex_;
  mutable std::unique_ptr<StageScheduler> scheduler_;
};

}  // namespace ripple::runtime
