// Virtual-time execution of REAL stage computations under enforced waits.
//
// sim/enforced_sim.hpp validates schedules against *sampled* gain models;
// this executor goes one step further and carries actual data items through
// user-provided stage functions (the MERCATOR-style host-runtime view):
// gains, queue growth and deadline misses emerge from the computation itself
// rather than from a fitted distribution. Time is still virtual — node i's
// firings occupy its configured x_i = t_i + w_i cycles — so runs are exactly
// reproducible and independent of host speed, but every output at the sink
// is a genuine computed result.
//
// Use it to check that a schedule optimized against *measured* gain models
// still holds up on the real data path (see tests/test_runtime.cpp, which
// drives the mini-BLAST stages through it).
//
// On RIPPLE_OBS builds with recording enabled, each consuming firing emits a
// "service" trace span and a "queue_depth" counter sample on the stage's
// track, with "empty_firing" and "deadline_miss" instants mirroring the
// stochastic simulator's timeline (docs/OBSERVABILITY.md).
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <vector>

#include "sdf/pipeline.hpp"
#include "sim/metrics.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace ripple::runtime {

/// A data item flowing between stages. Each stage knows the concrete type it
/// expects (std::any_cast inside the stage function).
using Item = std::any;

/// One pipeline stage: consume `input`, append zero or more outputs.
/// For the final (sink) stage, appended outputs are the pipeline's results.
using StageFn = std::function<void(Item&& input, std::vector<Item>& outputs)>;

struct ExecutorConfig {
  std::vector<Cycles> firing_intervals;  ///< x_i per node
  Cycles input_gap = 1.0;                ///< virtual cycles between inputs
  Cycles deadline = 0.0;                 ///< 0 = no miss accounting
  bool charge_empty_firings = true;
  /// Keep up to this many sink results in ExecutionMetrics::results.
  std::size_t max_collected_results = 1024;
  std::uint64_t max_events = 500'000'000;
};

struct ExecutionMetrics {
  sim::TrialMetrics base;      ///< same counters as the stochastic simulator
  std::vector<Item> results;   ///< first max_collected_results sink outputs
};

class PipelineExecutor {
 public:
  /// One StageFn per pipeline node; the spec supplies per-node service times
  /// and the SIMD width. Throws std::logic_error on arity mismatch.
  PipelineExecutor(sdf::PipelineSpec spec, std::vector<StageFn> stages);

  const sdf::PipelineSpec& pipeline() const noexcept { return pipeline_; }

  /// Run the given inputs through the pipeline in virtual time.
  /// Failure codes: "bad_config" (malformed intervals), "event_budget".
  util::Result<ExecutionMetrics> run(std::vector<Item> inputs,
                                     const ExecutorConfig& config) const;

 private:
  sdf::PipelineSpec pipeline_;
  std::vector<StageFn> stages_;
};

}  // namespace ripple::runtime
