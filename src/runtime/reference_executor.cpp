// Seed per-item engine, kept as the golden oracle and benchmark baseline
// for the vector-wide PipelineExecutor (see reference_executor.hpp).
#include "runtime/reference_executor.hpp"

#include <algorithm>
#include <deque>

#include "sim/event_queue.hpp"
#include "util/assert.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::runtime {

namespace {

enum EventPriority : int {
  kPriorityFireEnd = 0,
  kPriorityArrival = 1,
  kPriorityFireStart = 2,
};

struct EventPayload {
  enum class Kind : std::uint8_t { kFireEnd, kArrival, kFireStart };
  Kind kind;
  NodeIndex node = 0;
};

struct QueuedItem {
  RootId root;
  Item payload;
};

}  // namespace

ReferenceExecutor::ReferenceExecutor(sdf::PipelineSpec spec,
                                     std::vector<StageFn> stages)
    : pipeline_(std::move(spec)), stages_(std::move(stages)) {
  RIPPLE_REQUIRE(stages_.size() == pipeline_.size(),
                 "one stage function per pipeline node");
  for (const StageFn& stage : stages_) {
    RIPPLE_REQUIRE(static_cast<bool>(stage), "stage functions must be callable");
  }
}

util::Result<ExecutionMetrics> ReferenceExecutor::run(
    std::vector<Item> inputs, const ExecutorConfig& config) const {
  using R = util::Result<ExecutionMetrics>;
  const std::size_t n = pipeline_.size();
  if (config.firing_intervals.size() != n) {
    return R::failure("bad_config", "one firing interval per node required");
  }
  for (NodeIndex i = 0; i < n; ++i) {
    if (config.firing_intervals[i] < pipeline_.service_time(i) - 1e-9) {
      return R::failure("bad_config",
                        "firing interval below service time at node " +
                            std::to_string(i));
    }
  }
  if (!(config.input_gap > 0.0)) {
    return R::failure("bad_config", "input gap must be positive");
  }
  if (inputs.empty()) {
    return R::failure("bad_config", "need at least one input");
  }

  const std::uint32_t v = pipeline_.simd_width();

  ExecutionMetrics metrics;
  metrics.base.nodes.resize(n);
  metrics.base.vector_width = v;
  metrics.base.sharing_actors = n;
  metrics.base.arm_latency_histogram(config.deadline);

  std::vector<std::deque<QueuedItem>> queues(n);
  std::vector<std::vector<QueuedItem>> in_flight(n);
  std::vector<Cycles> root_arrival(inputs.size(), 0.0);
  std::vector<bool> root_missed(inputs.size(), false);

  std::uint64_t live_items = 0;
  std::size_t next_input = 0;
  bool arrivals_done = false;

  sim::EventQueue<EventPayload> events;
  events.push(config.input_gap, kPriorityArrival,
              {EventPayload::Kind::kArrival, 0});
  for (NodeIndex i = 0; i < n; ++i) {
    events.push(0.0, kPriorityFireStart, {EventPayload::Kind::kFireStart, i});
  }

#if RIPPLE_OBS
  // Per-stage service spans on the sim timeline, mirroring enforced_sim.
  obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
  if (trace.active()) {
    for (NodeIndex i = 0; i < n; ++i) {
      obs::TraceSession::global().set_track_name(
          obs::Domain::kSim, static_cast<std::uint32_t>(i),
          pipeline_.node(i).name);
    }
  }
#endif

  std::vector<Item> stage_outputs;  // reused scratch for stage calls
  std::uint64_t processed = 0;
  while (!events.empty() && processed < config.max_events) {
    const auto event = events.pop();
    ++processed;
    const Cycles now = event.time;

    switch (event.payload.kind) {
      case EventPayload::Kind::kArrival: {
        const RootId root = static_cast<RootId>(next_input);
        root_arrival[root] = now;
        ++metrics.base.inputs_arrived;
        queues[0].push_back(QueuedItem{root, std::move(inputs[next_input])});
        ++live_items;
        ++next_input;
        metrics.base.nodes[0].max_queue_length =
            std::max<std::uint64_t>(metrics.base.nodes[0].max_queue_length,
                                    queues[0].size());
        if (next_input < inputs.size()) {
          events.push(now + config.input_gap, kPriorityArrival,
                      {EventPayload::Kind::kArrival, 0});
        } else {
          arrivals_done = true;
        }
        break;
      }

      case EventPayload::Kind::kFireStart: {
        const NodeIndex i = event.payload.node;
        sim::NodeMetrics& node = metrics.base.nodes[i];
        auto& queue = queues[i];
        const std::uint32_t consumed =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(queue.size(), v));
#if RIPPLE_OBS
        if (trace.active()) {
          trace.counter(obs::Domain::kSim, static_cast<std::uint32_t>(i),
                        "queue_depth", now,
                        static_cast<double>(queue.size()));
          if (consumed > 0) {
            trace.begin(obs::Domain::kSim, static_cast<std::uint32_t>(i),
                        "service", now);
          } else if (config.charge_empty_firings) {
            trace.instant(obs::Domain::kSim, static_cast<std::uint32_t>(i),
                          "empty_firing", now, pipeline_.service_time(i));
          }
        }
#endif

        if (consumed > 0 || config.charge_empty_firings) {
          ++node.firings;
          if (consumed == 0) ++node.empty_firings;
          node.active_time += pipeline_.service_time(i);
        }

        if (consumed > 0) {
          node.items_consumed += consumed;
          auto& bundle = in_flight[i];
          for (std::uint32_t k = 0; k < consumed; ++k) {
            QueuedItem item = std::move(queue.front());
            queue.pop_front();
            stage_outputs.clear();
            stages_[i](std::move(item.payload), stage_outputs);
            node.items_produced += stage_outputs.size();
            for (Item& output : stage_outputs) {
              bundle.push_back(QueuedItem{item.root, std::move(output)});
            }
            live_items += stage_outputs.size();
          }
          live_items -= consumed;
          events.push(now + pipeline_.service_time(i), kPriorityFireEnd,
                      {EventPayload::Kind::kFireEnd, i});
        }

        if (!(arrivals_done && live_items == 0)) {
          events.push(now + config.firing_intervals[i], kPriorityFireStart,
                      {EventPayload::Kind::kFireStart, i});
        }
        break;
      }

      case EventPayload::Kind::kFireEnd: {
        const NodeIndex i = event.payload.node;
        auto& bundle = in_flight[i];
        const bool is_sink = (i + 1 == n);
        if (is_sink) {
          for (QueuedItem& item : bundle) {
            ++metrics.base.sink_outputs;
            const Cycles latency = now - root_arrival[item.root];
            metrics.base.record_latency(latency);
            if (config.deadline > 0.0 &&
                latency > config.deadline * (1.0 + 1e-12) &&
                !root_missed[item.root]) {
              root_missed[item.root] = true;
              ++metrics.base.inputs_missed;
#if RIPPLE_OBS
              if (trace.active()) {
                trace.instant(obs::Domain::kSim,
                              static_cast<std::uint32_t>(i), "deadline_miss",
                              now, config.deadline - latency);
              }
#endif
            }
            metrics.base.makespan = std::max(metrics.base.makespan, now);
            if (metrics.results.size() < config.max_collected_results) {
              metrics.results.push_back(std::move(item.payload));
            }
          }
          live_items -= bundle.size();
        } else {
          auto& next_queue = queues[i + 1];
          for (QueuedItem& item : bundle) next_queue.push_back(std::move(item));
          metrics.base.nodes[i + 1].max_queue_length =
              std::max<std::uint64_t>(metrics.base.nodes[i + 1].max_queue_length,
                                      next_queue.size());
        }
        bundle.clear();
#if RIPPLE_OBS
        if (trace.active()) {
          trace.end(obs::Domain::kSim, static_cast<std::uint32_t>(i),
                    "service", now);
        }
#endif
        break;
      }
    }
  }
  if (processed >= config.max_events) {
    return R::failure("event_budget",
                      "event budget exhausted (unstable schedule?)");
  }

  metrics.base.inputs_on_time =
      metrics.base.inputs_arrived - metrics.base.inputs_missed;
  if (metrics.base.makespan <= 0.0 && metrics.base.inputs_arrived > 0) {
    metrics.base.makespan =
        config.input_gap * static_cast<double>(metrics.base.inputs_arrived);
  }
  return metrics;
}

}  // namespace ripple::runtime
