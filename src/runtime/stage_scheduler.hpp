// Shard-local worker pool for task-parallel pipeline execution.
//
// The parallel engine (pipeline_executor_parallel.cpp) runs one *committer*
// thread — the caller of PipelineExecutor::run — that replays the sequential
// event loop and commits every result in virtual-time order, while the
// actual stage invocations (the expensive part: BLAST kernels, cascade
// filters, adapter stages) run as StageTasks on this pool. The scheduler is
// deliberately dumb: it knows nothing about firings or virtual time, it just
// executes ready tasks and lets the committer wait on (or help with)
// specific ones.
//
// Structure: every participant — the committer (participant 0) plus each
// pool worker — owns one Chase-Lev deque (util/work_deque.hpp). The
// committer pushes ready tasks into its own deque; idle workers steal the
// oldest task from any non-empty deque (per-worker steal counters feed the
// `runtime.steal` observability counter). Workers never block while work is
// visible; with nothing to steal they park on a condition variable and are
// woken by the next submit.
//
// Claiming: every execution consumes a deque entry first (pop or steal),
// then CASes the task kReady -> kRunning. The committer's wait() helps by
// draining deques the same way rather than claiming its target in place —
// that invariant is what lets the engine recycle task storage the moment a
// task commits: a task being done implies its (single) deque entry was
// already consumed, so no stale entry can ever resolve to recycled storage.
//
// Lifetime: one scheduler persists across runs inside a PipelineExecutor
// (threads are expensive; service batches are small). Between runs the pool
// is quiescent — the engine waits for every submitted task before
// returning — so per-run state may be torn down safely. run() may be called
// from different threads across runs: deque 0's ownership transfer is
// synchronized by begin_run()'s mutex acquisition.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/work_deque.hpp"

namespace ripple::runtime {

/// One unit of pool work: a pipeline-stage firing in practice. The engine
/// owns the storage; the scheduler only sees pointers. execute() must not
/// throw — implementations capture errors into `error` for the committer to
/// surface in commit order.
class StageTask {
 public:
  enum State : int { kReady = 0, kRunning = 1, kDone = 2 };

  virtual ~StageTask() = default;
  virtual void execute() noexcept = 0;

  bool done() const noexcept {
    return state_.load(std::memory_order_acquire) == kDone;
  }
  void reset_state() noexcept {
    error = nullptr;
    state_.store(kReady, std::memory_order_relaxed);
  }

  /// Set when execute() captured a throw; surfaced by the committer with the
  /// sequential engine's exact message format.
  std::exception_ptr error;

 private:
  friend class StageScheduler;
  std::atomic<int> state_{kReady};
};

class StageScheduler {
 public:
  /// Spawns `workers` pool threads (0 is valid: every task is then executed
  /// inline by wait()'s help path, which is how exec_threads=2 degrades when
  /// the lone worker is busy).
  explicit StageScheduler(std::size_t workers);
  ~StageScheduler();

  StageScheduler(const StageScheduler&) = delete;
  StageScheduler& operator=(const StageScheduler&) = delete;

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Establish the calling thread as this run's committer (deque-0 owner)
  /// and arm/disarm per-worker tracing for the run. Requires quiescence.
  void begin_run(bool trace_workers);
  /// Committer: submit a ready task (pushes to the committer's deque and
  /// wakes a parked worker).
  void submit(StageTask* task);
  /// Committer: block until `task` is done, helping drain ready tasks while
  /// it waits (so progress never depends on pool capacity).
  void wait(StageTask& task);
  /// Committer: total tasks stolen across all workers (monotonic over the
  /// scheduler's lifetime; exposed as the `runtime.steal` counter).
  std::uint64_t steals() const noexcept;

 private:
  void worker_loop(std::size_t worker);
  bool try_run_one(std::size_t self);
  static bool claim_and_run(StageTask* task);
  void finish(StageTask* task);

  std::vector<std::unique_ptr<util::WorkStealingDeque<StageTask*>>> deques_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> steal_counts_;

  // Parking lot: work_epoch_ advances on every submit; a worker re-checks it
  // under park_mutex_ before sleeping so wakeups are never lost.
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<std::size_t> parked_{0};
  std::atomic<bool> stopping_{false};

  // Completion signal for wait(): finishers take done_mutex_ briefly after
  // publishing kDone so a waiter that saw kRunning cannot miss the notify.
  std::mutex done_mutex_;
  std::condition_variable done_cv_;

  std::atomic<bool> trace_workers_{false};
};

}  // namespace ripple::runtime
