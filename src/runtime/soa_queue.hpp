// Ring-buffered SoA lane queue: the buffer between two vector-engine stages.
//
// Each pipeline edge holds waiting lanes as parallel power-of-two rings —
// one u32 ring per column, one ring of root ids, and (for adapter stages) a
// ring of std::any items — sharing a single head/size. A firing gathers its
// up-to-v front lanes into a dense window (zero-copy when the front run
// doesn't wrap, one bounded memcpy when it does), and a completed firing
// appends its compacted survivors in one pass, expanding per-lane output
// counts into per-item root ids as it goes. Capacity is retained across
// firings and runs, so steady state touches the allocator never.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/lane_batch.hpp"
#include "util/assert.hpp"

namespace ripple::runtime {

class SoaQueue {
 public:
  /// Shape the queue for its producer's output representation. Clears
  /// contents; keeps capacity.
  void configure(std::size_t field_count, bool carries_items) {
    field_count_ = carries_items ? 0 : field_count;
    carries_items_ = carries_items;
    head_ = 0;
    size_ = 0;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void reserve(std::size_t capacity) {
    if (capacity > capacity_) grow_to(round_up_pow2(capacity));
  }

  /// Push one lane (arrival path).
  void push_fields(const std::uint32_t* fields, RootId root) {
    RIPPLE_ASSERT(!carries_items_, "push_fields() on an item queue");
    ensure_room(1);
    const std::size_t slot = (head_ + size_) & mask_;
    for (std::size_t f = 0; f < field_count_; ++f) fields_[f][slot] = fields[f];
    roots_[slot] = root;
    ++size_;
  }

  void push_item(Item item, RootId root) {
    RIPPLE_ASSERT(carries_items_, "push_item() on a typed queue");
    ensure_room(1);
    const std::size_t slot = (head_ + size_) & mask_;
    items_[slot] = std::move(item);
    roots_[slot] = root;
    ++size_;
  }

  /// Append a completed firing's outputs: `emitter` holds them dense in lane
  /// order; `lane_roots[k]` is the root of input lane k, replicated across
  /// that lane's outputs.
  void append(const BatchEmitter& emitter, const RootId* lane_roots) {
    const std::size_t n = emitter.total();
    if (n == 0) return;
    ensure_room(n);
    // Root expansion first (shared by both representations).
    {
      std::size_t out = 0;
      const std::uint32_t* counts = emitter.counts();
      for (std::size_t lane = 0; lane < emitter.lanes(); ++lane) {
        for (std::uint32_t c = 0; c < counts[lane]; ++c) {
          roots_[(head_ + size_ + out) & mask_] = lane_roots[lane];
          ++out;
        }
      }
      RIPPLE_ASSERT(out == n, "emitter counts disagree with total");
    }
    if (carries_items_) {
      Item* src = const_cast<BatchEmitter&>(emitter).items();
      for (std::size_t i = 0; i < n; ++i) {
        items_[(head_ + size_ + i) & mask_] = std::move(src[i]);
      }
    } else {
      for (std::size_t f = 0; f < field_count_; ++f) {
        const std::uint32_t* src = emitter.column(f);
        std::uint32_t* ring = fields_[f].data();
        const std::size_t tail = (head_ + size_) & mask_;
        const std::size_t first = std::min(n, capacity_ - tail);
        std::copy(src, src + first, ring + tail);
        std::copy(src + first, src + n, ring);
      }
    }
    size_ += n;
  }

  /// Expose the front `n` lanes as a dense window. Columns and roots point
  /// either directly into the rings (front run contiguous) or into the
  /// provided scratch after one wrap-fixing copy. For item queues the items
  /// pointer addresses the ring front directly (wrap handled by the caller
  /// iterating via item_at()).
  struct FrontWindow {
    std::array<const std::uint32_t*, kMaxLaneFields> field{};
    const RootId* roots = nullptr;
  };
  struct GatherScratch {
    std::array<std::vector<std::uint32_t>, kMaxLaneFields> field;
    std::vector<RootId> roots;
  };

  FrontWindow gather_front(std::size_t n, GatherScratch& scratch) const {
    RIPPLE_ASSERT(n <= size_, "gather past end of SoaQueue");
    FrontWindow window;
    const bool contiguous = head_ + n <= capacity_;
    if (contiguous) {
      for (std::size_t f = 0; f < field_count_; ++f) {
        window.field[f] = fields_[f].data() + head_;
      }
      window.roots = roots_.data() + head_;
      return window;
    }
    const std::size_t first = capacity_ - head_;
    for (std::size_t f = 0; f < field_count_; ++f) {
      auto& dense = scratch.field[f];
      dense.resize(n);
      std::copy(fields_[f].begin() + head_, fields_[f].end(), dense.begin());
      std::copy(fields_[f].begin(), fields_[f].begin() + (n - first),
                dense.begin() + first);
      window.field[f] = dense.data();
    }
    scratch.roots.resize(n);
    std::copy(roots_.begin() + head_, roots_.end(), scratch.roots.begin());
    std::copy(roots_.begin(), roots_.begin() + (n - first),
              scratch.roots.begin() + first);
    window.roots = scratch.roots.data();
    return window;
  }

  /// Mutable access to the i-th item from the front (item queues; the
  /// consumer moves out of it before discard_front()).
  Item& item_at(std::size_t i) {
    RIPPLE_ASSERT(i < size_, "item_at past end of SoaQueue");
    return items_[(head_ + i) & mask_];
  }
  RootId root_at(std::size_t i) const { return roots_[(head_ + i) & mask_]; }

  void discard_front(std::size_t n) {
    RIPPLE_ASSERT(n <= size_, "discard past end of SoaQueue");
    head_ = (head_ + n) & mask_;
    size_ -= n;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = kMinCapacity;
    while (p < n) p *= 2;
    return p;
  }

  void ensure_room(std::size_t extra) {
    if (size_ + extra > capacity_) grow_to(round_up_pow2(size_ + extra));
  }

  void grow_to(std::size_t new_capacity) {
    // Re-linearize into fresh storage (rare: capacity only ever grows).
    for (std::size_t f = 0; f < field_count_; ++f) {
      std::vector<std::uint32_t> fresh(new_capacity);
      for (std::size_t i = 0; i < size_; ++i) {
        fresh[i] = fields_[f][(head_ + i) & mask_];
      }
      fields_[f] = std::move(fresh);
    }
    if (carries_items_) {
      std::vector<Item> fresh(new_capacity);
      for (std::size_t i = 0; i < size_; ++i) {
        fresh[i] = std::move(items_[(head_ + i) & mask_]);
      }
      items_ = std::move(fresh);
    }
    std::vector<RootId> fresh_roots(new_capacity);
    for (std::size_t i = 0; i < size_; ++i) {
      fresh_roots[i] = roots_[(head_ + i) & mask_];
    }
    roots_ = std::move(fresh_roots);
    head_ = 0;
    capacity_ = new_capacity;
    mask_ = new_capacity - 1;
  }

  std::size_t field_count_ = 0;
  bool carries_items_ = false;
  std::array<std::vector<std::uint32_t>, kMaxLaneFields> fields_;
  std::vector<Item> items_;
  std::vector<RootId> roots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace ripple::runtime
