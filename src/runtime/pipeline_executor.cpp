#include "runtime/pipeline_executor.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "runtime/executor_internal.hpp"
#include "runtime/soa_queue.hpp"
#include "runtime/stage_scheduler.hpp"
#include "sim/event_queue.hpp"
#include "util/assert.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::runtime {

using detail::default_materialize;
using detail::EventPayload;
using detail::kPriorityFireEnd;
using detail::kPriorityFireStart;

namespace {

void validate_stages(const sdf::PipelineSpec& pipeline,
                     const std::vector<BatchStage>& stages) {
  RIPPLE_REQUIRE(stages.size() == pipeline.size(),
                 "one stage function per pipeline node");
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const BatchStage& stage = stages[i];
    RIPPLE_REQUIRE(static_cast<bool>(stage.fn),
                   "stage functions must be callable");
    RIPPLE_REQUIRE(stage.input_fields <= kMaxLaneFields &&
                       stage.output_fields <= kMaxLaneFields,
                   "stage arity exceeds the lane register file");
    if (i > 0) {
      RIPPLE_REQUIRE(stages[i].carries_items == stages[i - 1].carries_items,
                     "adjacent stages must share a lane representation");
      RIPPLE_REQUIRE(stages[i].carries_items ||
                         stages[i].input_fields == stages[i - 1].output_fields,
                     "stage input arity must match predecessor output arity");
    }
  }
}

}  // namespace

BatchStage adapt_stage(StageFn stage) {
  RIPPLE_REQUIRE(static_cast<bool>(stage), "stage functions must be callable");
  BatchStage batch;
  batch.carries_items = true;
  batch.fn = [stage = std::move(stage)](const LaneView& in, BatchEmitter& out) {
    // Lane-granular: each lane's outputs are fully emitted before the next
    // scalar call, so a throw leaves earlier lanes delivered and no partial
    // lane behind (see tests/test_runtime_batch.cpp, AdapterThrowMidBatch).
    std::vector<Item> scratch;
    for (std::size_t lane = 0; lane < in.lanes; ++lane) {
      scratch.clear();
      stage(std::move(in.items[lane]), scratch);
      for (Item& item : scratch) out.emit_item(lane, std::move(item));
    }
  };
  return batch;
}

PipelineExecutor::PipelineExecutor(sdf::PipelineSpec spec,
                                   std::vector<StageFn> stages)
    : pipeline_(std::move(spec)) {
  RIPPLE_REQUIRE(stages.size() == pipeline_.size(),
                 "one stage function per pipeline node");
  stages_.reserve(stages.size());
  for (StageFn& stage : stages) stages_.push_back(adapt_stage(std::move(stage)));
  validate_stages(pipeline_, stages_);
}

PipelineExecutor::PipelineExecutor(sdf::PipelineSpec spec,
                                   std::vector<BatchStage> stages)
    : pipeline_(std::move(spec)), stages_(std::move(stages)) {
  validate_stages(pipeline_, stages_);
}

PipelineExecutor::~PipelineExecutor() = default;

StageScheduler& PipelineExecutor::acquire_scheduler(std::size_t workers) const {
  std::lock_guard<std::mutex> lock(scheduler_mutex_);
  if (scheduler_ == nullptr || scheduler_->worker_count() != workers) {
    scheduler_.reset();  // quiesced between runs; join before respawn
    scheduler_ = std::make_unique<StageScheduler>(workers);
  }
  return *scheduler_;
}

util::Result<ExecutionMetrics> PipelineExecutor::run(
    std::vector<Item> inputs, const ExecutorConfig& config) const {
  RIPPLE_REQUIRE(stages_.front().carries_items,
                 "run() needs an item-carrying stage 0; use run_batch()");
  return execute(nullptr, &inputs, config);
}

util::Result<ExecutionMetrics> PipelineExecutor::run_batch(
    const BatchInputs& inputs, const ExecutorConfig& config) const {
  RIPPLE_REQUIRE(!stages_.front().carries_items,
                 "run_batch() needs a typed stage 0; use run()");
  return execute(&inputs, nullptr, config);
}

util::Result<ExecutionMetrics> PipelineExecutor::execute(
    const BatchInputs* typed_inputs, std::vector<Item>* item_inputs,
    const ExecutorConfig& config) const {
  using R = util::Result<ExecutionMetrics>;
  const std::size_t n = pipeline_.size();
  const std::size_t input_count =
      typed_inputs != nullptr ? typed_inputs->size() : item_inputs->size();
  if (auto invalid = detail::validate_run_config(pipeline_, input_count, config)) {
    return *std::move(invalid);
  }
  const std::size_t threads =
      config.exec_threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : config.exec_threads;
  if (threads > 1) {
    return execute_parallel(typed_inputs, item_inputs, config, threads);
  }
  const bool per_input_gaps = !config.input_gaps.empty();

  const std::uint32_t v = pipeline_.simd_width();

  ExecutionMetrics metrics;
  metrics.base.nodes.resize(n);
  metrics.base.vector_width = v;
  metrics.base.sharing_actors = n;
  metrics.base.arm_latency_histogram(config.deadline);

  // Queue i feeds stage i; its representation is what stage i consumes.
  std::vector<SoaQueue> queues(n);
  for (NodeIndex i = 0; i < n; ++i) {
    queues[i].configure(stages_[i].input_fields, stages_[i].carries_items);
    queues[i].reserve(2 * v);
  }
  // Per-node in-flight firing: outputs staged until the fire-end delivers
  // them, plus the consumed lanes' root ids for root propagation.
  std::vector<BatchEmitter> in_flight(n);
  std::vector<std::vector<RootId>> in_flight_roots(n);
  for (auto& roots : in_flight_roots) roots.reserve(v);

  std::vector<Cycles> root_arrival(input_count, 0.0);
  std::vector<bool> root_missed(input_count, false);

  std::uint64_t live_items = 0;
  std::size_t next_input = 0;
  // Arrival k's timestamp accumulates gap by gap (never k * gap) so the
  // doubles match the seed engine's event-chained arrival times bit for bit.
  Cycles next_arrival =
      per_input_gaps ? config.input_gaps[0] : config.input_gap;
  bool arrivals_done = false;

  // Lazily materialize every arrival with time <= now into queue 0. Safe to
  // run at any event boundary: arrivals only touch the source queue, which
  // no fire-end writes, so their seed-engine ordering against same-time
  // fire-ends is immaterial; fire-starts (which do read queue 0) always
  // materialize first.
  const auto materialize_arrivals = [&](Cycles now) {
    if (arrivals_done || next_arrival > now) return;
    while (!arrivals_done && next_arrival <= now) {
      const RootId root = static_cast<RootId>(next_input);
      root_arrival[root] = next_arrival;
      ++metrics.base.inputs_arrived;
      if (typed_inputs != nullptr) {
        std::uint32_t fields[kMaxLaneFields];
        for (std::size_t f = 0; f < kMaxLaneFields; ++f) {
          fields[f] = typed_inputs->column(f)[next_input];
        }
        queues[0].push_fields(fields, root);
      } else {
        queues[0].push_item(std::move((*item_inputs)[next_input]), root);
      }
      ++live_items;
      ++next_input;
      if (next_input == input_count) {
        arrivals_done = true;
      } else {
        next_arrival +=
            per_input_gaps ? config.input_gaps[next_input] : config.input_gap;
      }
    }
    metrics.base.nodes[0].max_queue_length = std::max<std::uint64_t>(
        metrics.base.nodes[0].max_queue_length, queues[0].size());
  };

  sim::EventQueue<EventPayload> events;
  for (NodeIndex i = 0; i < n; ++i) {
    events.push(0.0, kPriorityFireStart, {EventPayload::Kind::kFireStart, i});
  }

#if RIPPLE_OBS
  // Per-stage service spans on the sim timeline, mirroring enforced_sim.
  obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
  if (trace.active()) {
    for (NodeIndex i = 0; i < n; ++i) {
      obs::TraceSession::global().set_track_name(
          obs::Domain::kSim, static_cast<std::uint32_t>(i),
          pipeline_.node(i).name);
    }
  }
#endif

  SoaQueue::GatherScratch gather_scratch;
  std::vector<Item> item_window;  // dense per-firing item lanes
  std::uint64_t processed = 0;
  while (!events.empty() && processed < config.max_events) {
    const auto event = events.pop();
    ++processed;
    const Cycles now = event.time;
    materialize_arrivals(now);

    switch (event.payload.kind) {
      case EventPayload::Kind::kFireStart: {
        const NodeIndex i = event.payload.node;
        sim::NodeMetrics& node = metrics.base.nodes[i];
        const BatchStage& stage = stages_[i];
        SoaQueue& queue = queues[i];
        const std::uint32_t consumed =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(queue.size(), v));
#if RIPPLE_OBS
        if (trace.active()) {
          trace.counter(obs::Domain::kSim, static_cast<std::uint32_t>(i),
                        "queue_depth", now,
                        static_cast<double>(queue.size()));
          if (consumed > 0) {
            trace.begin(obs::Domain::kSim, static_cast<std::uint32_t>(i),
                        "service", now);
          } else if (config.charge_empty_firings) {
            trace.instant(obs::Domain::kSim, static_cast<std::uint32_t>(i),
                          "empty_firing", now, pipeline_.service_time(i));
          }
        }
#endif

        if (consumed > 0 || config.charge_empty_firings) {
          ++node.firings;
          if (consumed == 0) ++node.empty_firings;
          node.active_time += pipeline_.service_time(i);
        }

        if (consumed > 0) {
          node.items_consumed += consumed;
          // Gather the front lanes into a dense view, fire the stage once
          // on the whole vector, then retire the lanes.
          LaneView view;
          view.lanes = consumed;
          std::vector<RootId>& lane_roots = in_flight_roots[i];
          lane_roots.resize(consumed);
          if (stage.carries_items) {
            item_window.resize(consumed);
            for (std::uint32_t k = 0; k < consumed; ++k) {
              item_window[k] = std::move(queue.item_at(k));
              lane_roots[k] = queue.root_at(k);
            }
            view.items = item_window.data();
          } else {
            const SoaQueue::FrontWindow window =
                queue.gather_front(consumed, gather_scratch);
            view.field = window.field;
            std::copy(window.roots, window.roots + consumed,
                      lane_roots.begin());
          }
          BatchEmitter& emitter = in_flight[i];
          emitter.reset(consumed, stage.output_fields, stage.carries_items);
          try {
            stage.fn(view, emitter);
          } catch (const std::exception& e) {
            return R::failure(
                "stage_exception",
                "stage '" + pipeline_.node(i).name + "' threw: " + e.what());
          } catch (...) {
            return R::failure("stage_exception", "stage '" +
                                                     pipeline_.node(i).name +
                                                     "' threw");
          }
          queue.discard_front(consumed);
          node.items_produced += emitter.total();
          live_items += emitter.total();
          live_items -= consumed;
          events.push(now + pipeline_.service_time(i), kPriorityFireEnd,
                      {EventPayload::Kind::kFireEnd, i});
        }

        if (!(arrivals_done && live_items == 0)) {
          events.push(now + config.firing_intervals[i], kPriorityFireStart,
                      {EventPayload::Kind::kFireStart, i});
        }
        break;
      }

      case EventPayload::Kind::kFireEnd: {
        const NodeIndex i = event.payload.node;
        BatchEmitter& emitter = in_flight[i];
        const std::vector<RootId>& lane_roots = in_flight_roots[i];
        const bool is_sink = (i + 1 == n);
        if (is_sink) {
          const std::uint32_t* counts = emitter.counts();
          std::size_t out = 0;
          for (std::size_t lane = 0; lane < emitter.lanes(); ++lane) {
            const RootId root = lane_roots[lane];
            for (std::uint32_t c = 0; c < counts[lane]; ++c, ++out) {
              ++metrics.base.sink_outputs;
              const Cycles latency = now - root_arrival[root];
              metrics.base.record_latency(latency);
              if (config.deadline > 0.0 &&
                  latency > config.deadline * (1.0 + 1e-12) &&
                  !root_missed[root]) {
                root_missed[root] = true;
                ++metrics.base.inputs_missed;
#if RIPPLE_OBS
                if (trace.active()) {
                  trace.instant(obs::Domain::kSim,
                                static_cast<std::uint32_t>(i), "deadline_miss",
                                now, config.deadline - latency);
                }
#endif
              }
              metrics.base.makespan = std::max(metrics.base.makespan, now);
              if (metrics.results.size() < config.max_collected_results) {
                if (emitter.carries_items()) {
                  metrics.results.push_back(std::move(emitter.items()[out]));
                } else {
                  std::uint32_t fields[kMaxLaneFields] = {0, 0, 0};
                  for (std::size_t f = 0; f < stages_[i].output_fields; ++f) {
                    fields[f] = emitter.column(f)[out];
                  }
                  metrics.results.push_back(
                      stages_[i].materialize ? stages_[i].materialize(fields)
                                             : default_materialize(fields));
                }
              }
            }
          }
          live_items -= emitter.total();
        } else {
          SoaQueue& next_queue = queues[i + 1];
          next_queue.append(emitter, lane_roots.data());
          metrics.base.nodes[i + 1].max_queue_length = std::max<std::uint64_t>(
              metrics.base.nodes[i + 1].max_queue_length, next_queue.size());
        }
        emitter.reset(0, stages_[i].output_fields, stages_[i].carries_items);
#if RIPPLE_OBS
        if (trace.active()) {
          trace.end(obs::Domain::kSim, static_cast<std::uint32_t>(i),
                    "service", now);
        }
#endif
        break;
      }
    }
  }
  if (processed >= config.max_events) {
    return R::failure("event_budget",
                      "event budget exhausted (unstable schedule?)");
  }

  metrics.base.inputs_on_time =
      metrics.base.inputs_arrived - metrics.base.inputs_missed;
  if (metrics.base.makespan <= 0.0 && metrics.base.inputs_arrived > 0) {
    // No sink output ever left (everything filtered): fall back to the last
    // arrival's timestamp, which next_arrival holds once arrivals are done.
    metrics.base.makespan =
        per_input_gaps
            ? next_arrival
            : config.input_gap * static_cast<double>(metrics.base.inputs_arrived);
  }
  return metrics;
}

}  // namespace ripple::runtime
