#include "runtime/stage_scheduler.hpp"

#include "util/assert.hpp"

#if RIPPLE_OBS
#include <string>

#include "obs/obs.hpp"
#endif

namespace ripple::runtime {

StageScheduler::StageScheduler(std::size_t workers) {
  deques_.reserve(workers + 1);
  steal_counts_.reserve(workers);
  for (std::size_t i = 0; i < workers + 1; ++i) {
    deques_.push_back(std::make_unique<util::WorkStealingDeque<StageTask*>>());
  }
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    steal_counts_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

StageScheduler::~StageScheduler() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
    work_epoch_.fetch_add(1, std::memory_order_release);
  }
  park_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void StageScheduler::begin_run(bool trace_workers) {
  // The lock acquisition orders this committer after the previous run's
  // committer (which quiesced the pool before returning), making the plain
  // deque-0 owner state safely transferable across threads.
  std::lock_guard<std::mutex> lock(park_mutex_);
  trace_workers_.store(trace_workers, std::memory_order_relaxed);
}

void StageScheduler::submit(StageTask* task) {
  deques_[0]->push(task);
  work_epoch_.fetch_add(1, std::memory_order_release);
  if (parked_.load(std::memory_order_acquire) > 0) {
    park_cv_.notify_one();
  }
}

bool StageScheduler::claim_and_run(StageTask* task) {
  int expected = StageTask::kReady;
  if (!task->state_.compare_exchange_strong(expected, StageTask::kRunning,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
    return false;
  }
  task->execute();
  return true;
}

void StageScheduler::finish(StageTask* task) {
  task->state_.store(StageTask::kDone, std::memory_order_release);
  // Empty critical section: a waiter that read kRunning and is entering
  // done_cv_.wait() holds done_mutex_; taking it here fences the notify
  // after the waiter's predicate check, so the wakeup cannot be lost.
  { std::lock_guard<std::mutex> lock(done_mutex_); }
  done_cv_.notify_all();
}

void StageScheduler::wait(StageTask& task) {
  // Help by draining the deques rather than claiming `task` in place: every
  // execution consumes a deque entry, so no entry can outlive its task (the
  // engine recycles tasks as soon as they commit, and a stale entry pointing
  // at a re-armed task would let a thief run it twice). All submissions land
  // in deque 0, so the target task is reachable from here; once pop and
  // steals both come up empty its entry was consumed by someone, and that
  // runner's finish() will signal done_cv_.
  while (!task.done()) {
    if (!try_run_one(0)) break;
  }
  if (task.done()) return;
  std::unique_lock<std::mutex> lock(done_mutex_);
  done_cv_.wait(lock, [&task] { return task.done(); });
}

std::uint64_t StageScheduler::steals() const noexcept {
  std::uint64_t total = 0;
  for (const auto& count : steal_counts_) {
    total += count->load(std::memory_order_relaxed);
  }
  return total;
}

bool StageScheduler::try_run_one(std::size_t self) {
  StageTask* task = nullptr;
  // Own deque first (newest-first for locality), then steal oldest-first
  // from the others, starting after self so thieves spread out.
  if (!deques_[self]->pop(task)) {
    task = nullptr;
    const std::size_t count = deques_.size();
    for (std::size_t hop = 1; hop < count && task == nullptr; ++hop) {
      StageTask* stolen = nullptr;
      if (deques_[(self + hop) % count]->steal(stolen)) {
        task = stolen;
        if (self > 0) {
          steal_counts_[self - 1]->fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
  if (task == nullptr) return false;
  if (claim_and_run(task)) finish(task);
  // A lost claim race still counts as progress: the entry is consumed.
  return true;
}

void StageScheduler::worker_loop(std::size_t worker) {
  const std::size_t self = worker + 1;  // deque index (0 is the committer)
#if RIPPLE_OBS
  bool track_named = false;
#endif
  while (!stopping_.load(std::memory_order_acquire)) {
    const std::uint64_t epoch = work_epoch_.load(std::memory_order_acquire);
    bool ran = false;
#if RIPPLE_OBS
    if (trace_workers_.load(std::memory_order_relaxed) && obs::enabled()) {
      obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
      if (trace.active()) {
        if (!track_named) {
          obs::TraceSession::global().set_track_name(
              obs::Domain::kHost, trace.track(),
              "runtime.worker" + std::to_string(worker));
          track_named = true;
        }
        const double begin_us = obs::TraceSession::global().host_now_us();
        ran = try_run_one(self);
        if (ran) {
          trace.begin(obs::Domain::kHost, trace.track(), "runtime.task",
                      begin_us);
          trace.end(obs::Domain::kHost, trace.track(), "runtime.task",
                    obs::TraceSession::global().host_now_us());
          trace.counter(
              obs::Domain::kHost, trace.track(), "runtime.steal",
              obs::TraceSession::global().host_now_us(),
              static_cast<double>(
                  steal_counts_[worker]->load(std::memory_order_relaxed)));
        }
      } else {
        ran = try_run_one(self);
      }
    } else {
      ran = try_run_one(self);
    }
#else
    ran = try_run_one(self);
#endif
    if (ran) continue;
    // Nothing visible: park until the next submit (re-check the epoch under
    // the lock so a submit between our scan and the wait is never missed).
    std::unique_lock<std::mutex> lock(park_mutex_);
    parked_.fetch_add(1, std::memory_order_release);
    park_cv_.wait(lock, [this, epoch] {
      return stopping_.load(std::memory_order_acquire) ||
             work_epoch_.load(std::memory_order_acquire) != epoch;
    });
    parked_.fetch_sub(1, std::memory_order_release);
  }
}

}  // namespace ripple::runtime
