#include "cascade/measure.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ripple::cascade {

CascadeMeasurement measure_cascade(const Detector& detector, const Scene& scene,
                                   const CascadeMeasureConfig& config) {
  RIPPLE_REQUIRE(config.window_count > 0, "need at least one window");
  RIPPLE_REQUIRE(config.stride >= 1, "stride must be positive");
  RIPPLE_REQUIRE(scene.image.width() >= detector.window() &&
                     scene.image.height() >= detector.window(),
                 "scene smaller than the detection window");

  CascadeMeasurement measurement;
  measurement.stages.resize(detector.stage_count());

  const IntegralImage integral(scene.image);
  const std::size_t max_x = scene.image.width() - detector.window();
  const std::size_t max_y = scene.image.height() - detector.window();
  const std::size_t columns = max_x + 1;
  const std::size_t rows = max_y + 1;

  std::size_t raster = 0;
  for (std::uint64_t w = 0; w < config.window_count; ++w, raster += config.stride) {
    const std::size_t wx = raster % columns;
    const std::size_t wy = (raster / columns) % rows;
    ++measurement.windows_streamed;

    bool alive = true;
    for (std::size_t s = 0; s < detector.stage_count() && alive; ++s) {
      StageStats& stage = measurement.stages[s];
      ++stage.inputs;
      std::uint64_t ops = 0;
      alive = detector.stage_pass(s, integral, wx, wy, ops);
      stage.total_ops += ops;
      stage.passed += alive;
    }
    measurement.detections += alive;
  }
  return measurement;
}

util::Result<sdf::PipelineSpec> CascadeMeasurement::to_pipeline_spec(
    std::uint32_t simd_width, double cycles_per_op) const {
  using R = util::Result<sdf::PipelineSpec>;
  RIPPLE_REQUIRE(cycles_per_op > 0.0, "cycle scale must be positive");
  if (stages.empty()) {
    return R::failure("no_data", "no stages measured");
  }
  sdf::PipelineBuilder builder("cascade(measured)");
  builder.simd_width(simd_width);
  for (std::size_t s = 0; s < stages.size(); ++s) {
    if (stages[s].inputs == 0) {
      return R::failure("no_data", "stage " + std::to_string(s) +
                                       " received no inputs");
    }
    const bool sink = (s + 1 == stages.size());
    dist::GainPtr gain = sink ? dist::make_deterministic(1)
                              : dist::make_bernoulli(stages[s].pass_rate());
    const double service = std::max(1.0, stages[s].mean_ops() * cycles_per_op);
    builder.add_node("stage_" + std::to_string(s), service, std::move(gain));
  }
  return builder.build();
}

}  // namespace ripple::cascade
