// The detection cascade: stages of boosted decision stumps with thresholds
// calibrated on synthetic scenes (the Viola-Jones structure the paper cites
// as a motivating irregular application).
//
// Stage s evaluates its features on a window, sums stump votes, and passes
// the window to stage s+1 iff the vote total clears the stage threshold.
// Early stages are cheap and permissive; later stages are expensive and
// strict — exactly the irregular filter-cascade shape whose scheduling the
// paper studies. Thresholds are chosen from empirical score quantiles so
// each stage has a configured background pass rate while keeping planted
// objects (which score far higher) flowing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cascade/features.hpp"
#include "cascade/image.hpp"
#include "util/result.hpp"

namespace ripple::cascade {

struct Stump {
  HaarFeature feature;
  std::int64_t threshold = 0;  ///< split point (background median)
  /// Vote orientation: false -> vote when response > threshold, true ->
  /// vote when response <= threshold. Chosen during training so planted
  /// objects vote more often than background (whose rate the median pins
  /// near 1/2 either way).
  bool invert = false;

  bool vote(std::int64_t response) const {
    return (response > threshold) != invert;
  }
};

struct CascadeStage {
  std::vector<Stump> stumps;
  std::uint32_t vote_threshold = 0;  ///< pass iff votes >= this

  /// Evaluate a window; counts rectangle-sum operations into `ops`.
  bool evaluate(const IntegralImage& integral, std::size_t wx, std::size_t wy,
                std::uint64_t& ops) const;
};

struct DetectorConfig {
  std::size_t window = 24;  ///< detection window side
  /// Features per stage, cheap to expensive (Viola-Jones used 2..200).
  std::vector<std::size_t> stage_sizes = {2, 6, 16, 40};
  /// Target background pass rate per non-terminal stage.
  std::vector<double> stage_pass_rates = {0.4, 0.25, 0.12, 0.05};
  /// Calibration sample: background windows drawn from the scene.
  std::size_t calibration_windows = 4000;
};

class Detector {
 public:
  /// Build a cascade calibrated against `scene`. Fails with "bad_config"
  /// when sizes/rates disagree, or "degenerate" if calibration cannot reach
  /// a target pass rate (e.g. all-equal scores).
  static util::Result<Detector> train(const Scene& scene,
                                      const DetectorConfig& config,
                                      dist::Xoshiro256& rng);

  std::size_t stage_count() const noexcept { return stages_.size(); }
  std::size_t window() const noexcept { return window_; }
  const CascadeStage& stage(std::size_t s) const;

  /// Run one window through stage `s` only (the pipeline-node view).
  bool stage_pass(std::size_t s, const IntegralImage& integral, std::size_t wx,
                  std::size_t wy, std::uint64_t& ops) const;

  /// Run a window through the whole cascade; returns the index of the first
  /// rejecting stage, or nullopt if all stages pass (a detection).
  std::optional<std::size_t> first_rejecting_stage(const IntegralImage& integral,
                                                   std::size_t wx,
                                                   std::size_t wy,
                                                   std::uint64_t& ops) const;

 private:
  Detector() = default;
  std::size_t window_ = 0;
  std::vector<CascadeStage> stages_;
};

}  // namespace ripple::cascade
