// Synthetic grayscale imagery for the detection-cascade substrate.
//
// The paper cites Viola-Jones-style decision cascades (its ref [26]) as a
// motivating irregular streaming application: a stream of image windows
// flows through classifier stages of increasing cost, each rejecting most of
// its input. We synthesize the imagery — noise backgrounds with planted
// bright/dark block patterns ("objects") — so the cascade stages have a real
// signal to separate, mirroring how blast/ synthesizes DNA.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/rng.hpp"

namespace ripple::cascade {

using Pixel = std::uint8_t;

class Image {
 public:
  Image(std::size_t width, std::size_t height, Pixel fill = 0);

  std::size_t width() const noexcept { return width_; }
  std::size_t height() const noexcept { return height_; }

  Pixel at(std::size_t x, std::size_t y) const;
  void set(std::size_t x, std::size_t y, Pixel value);

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<Pixel> pixels_;
};

/// Uniform noise background.
Image noise_image(std::size_t width, std::size_t height, dist::Xoshiro256& rng);

/// Plant a 2x2-block object pattern (bright top-left/bottom-right, dark
/// otherwise — a structure Haar features respond to) of the given size at
/// (x, y), with additive noise of amplitude `jitter`.
void plant_object(Image& image, std::size_t x, std::size_t y, std::size_t size,
                  std::uint32_t jitter, dist::Xoshiro256& rng);

/// Summed-area table: O(1) rectangle sums for Haar feature evaluation.
class IntegralImage {
 public:
  explicit IntegralImage(const Image& image);

  std::size_t width() const noexcept { return width_; }
  std::size_t height() const noexcept { return height_; }

  /// Sum of pixels in [x0, x1) x [y0, y1).
  std::int64_t rect_sum(std::size_t x0, std::size_t y0, std::size_t x1,
                        std::size_t y1) const;

  /// Raw summed-area table for vectorized corner gathers
  /// (cascade/simd_kernels.cpp): row-major (width+1) x (height+1), entry
  /// (x, y) at index y * (width() + 1) + x.
  const std::int64_t* table_data() const noexcept { return table_.data(); }

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<std::int64_t> table_;  // (width+1) x (height+1)

  std::int64_t cell(std::size_t x, std::size_t y) const {
    return table_[y * (width_ + 1) + x];
  }
};

/// A scene with known object positions, for calibrating stage thresholds.
struct Scene {
  Image image{1, 1};
  std::vector<std::pair<std::size_t, std::size_t>> object_origins;
  std::size_t object_size = 0;
};

struct SceneConfig {
  std::size_t width = 1024;
  std::size_t height = 1024;
  std::size_t object_count = 24;
  std::size_t object_size = 24;
  std::uint32_t jitter = 24;
};

Scene make_scene(const SceneConfig& config, dist::Xoshiro256& rng);

}  // namespace ripple::cascade
