#include "cascade/features.hpp"

#include "util/assert.hpp"

namespace ripple::cascade {

std::uint32_t HaarFeature::rect_count() const {
  switch (kind) {
    case Kind::kTwoRectHorizontal:
    case Kind::kTwoRectVertical:
      return 2;
    case Kind::kThreeRectHorizontal:
      return 3;
    case Kind::kFourRectChecker:
      return 4;
  }
  return 0;
}

std::int64_t HaarFeature::evaluate(const IntegralImage& integral,
                                   std::size_t wx, std::size_t wy,
                                   std::uint64_t& ops) const {
  const std::size_t x0 = wx + x;
  const std::size_t y0 = wy + y;
  const std::size_t x1 = x0 + width;
  const std::size_t y1 = y0 + height;
  ops += rect_count();
  switch (kind) {
    case Kind::kTwoRectHorizontal: {
      const std::size_t xm = x0 + width / 2;
      return integral.rect_sum(x0, y0, xm, y1) -
             integral.rect_sum(xm, y0, x1, y1);
    }
    case Kind::kTwoRectVertical: {
      const std::size_t ym = y0 + height / 2;
      return integral.rect_sum(x0, y0, x1, ym) -
             integral.rect_sum(x0, ym, x1, y1);
    }
    case Kind::kThreeRectHorizontal: {
      const std::size_t third = width / 3;
      const std::size_t xa = x0 + third;
      const std::size_t xb = x0 + 2 * third;
      return integral.rect_sum(x0, y0, xa, y1) -
             integral.rect_sum(xa, y0, xb, y1) +
             integral.rect_sum(xb, y0, x1, y1);
    }
    case Kind::kFourRectChecker: {
      const std::size_t xm = x0 + width / 2;
      const std::size_t ym = y0 + height / 2;
      return integral.rect_sum(x0, y0, xm, ym) +
             integral.rect_sum(xm, ym, x1, y1) -
             integral.rect_sum(xm, y0, x1, ym) -
             integral.rect_sum(x0, ym, xm, y1);
    }
  }
  return 0;
}

HaarFeature random_feature(std::size_t window, dist::Xoshiro256& rng) {
  RIPPLE_REQUIRE(window >= 8, "window too small for Haar features");
  HaarFeature feature;
  feature.kind = static_cast<HaarFeature::Kind>(rng.uniform_below(4));

  const bool three_rect = feature.kind == HaarFeature::Kind::kThreeRectHorizontal;
  const std::size_t granularity = three_rect ? 6 : 2;  // divisible extents
  const std::size_t max_units = window / granularity;
  // Extent of at least 2 units for meaningful contrast.
  const std::size_t units_w =
      2 + rng.uniform_below(std::max<std::size_t>(max_units - 1, 1));
  const std::size_t units_h =
      2 + rng.uniform_below(std::max<std::size_t>(window / 2 - 1, 1));
  std::size_t w = std::min(units_w * granularity, window);
  if (three_rect) w = std::max<std::size_t>(6, (w / 3) * 3);  // keep thirds exact
  else w = std::max<std::size_t>(2, (w / 2) * 2);
  feature.width = static_cast<std::uint16_t>(w);
  feature.height = static_cast<std::uint16_t>(
      std::max<std::size_t>(2, std::min(units_h * 2, window)));
  feature.x = static_cast<std::uint16_t>(
      rng.uniform_below(window - feature.width + 1));
  feature.y = static_cast<std::uint16_t>(
      rng.uniform_below(window - feature.height + 1));
  return feature;
}

}  // namespace ripple::cascade
