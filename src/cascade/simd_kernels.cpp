#include "cascade/simd_kernels.hpp"

#include <vector>

#include "device/dispatch.hpp"

#if RIPPLE_SIMD_X86
#include <immintrin.h>
#endif

namespace ripple::cascade::simd {

namespace {

void haar_response_scalar(const HaarFeature& feature,
                          const IntegralImage& integral,
                          const std::uint32_t* wx, const std::uint32_t* wy,
                          std::size_t n, std::int64_t* responses) {
  std::uint64_t ops = 0;
  for (std::size_t i = 0; i < n; ++i) {
    responses[i] = feature.evaluate(integral, wx[i], wy[i], ops);
  }
}

#if RIPPLE_SIMD_X86

/// Four table cells at (x, y) per lane, as 64-bit gathers. Corner indices
/// are built in 32-bit lanes (table entries number far below 2^31).
__attribute__((target("avx2"))) inline __m256i cell4(const std::int64_t* table,
                                                     __m128i pitch, __m128i x,
                                                     __m128i y) {
  const __m128i idx = _mm_add_epi32(_mm_mullo_epi32(y, pitch), x);
  return _mm256_i32gather_epi64(reinterpret_cast<const long long*>(table), idx,
                                8);
}

/// Four summed-area-table rectangle sums via sixteen corner gathers.
__attribute__((target("avx2"))) inline __m256i rect_sum4(
    const std::int64_t* table, __m128i pitch, __m128i x0, __m128i y0,
    __m128i x1, __m128i y1) {
  return _mm256_add_epi64(
      _mm256_sub_epi64(
          _mm256_sub_epi64(cell4(table, pitch, x1, y1),
                           cell4(table, pitch, x0, y1)),
          cell4(table, pitch, x1, y0)),
      cell4(table, pitch, x0, y0));
}

__attribute__((target("avx2"))) void haar_response_avx2(
    const HaarFeature& feature, const IntegralImage& integral,
    const std::uint32_t* wx, const std::uint32_t* wy, std::size_t n,
    std::int64_t* responses) {
  const std::int64_t* table = integral.table_data();
  const __m128i pitch =
      _mm_set1_epi32(static_cast<int>(integral.width() + 1));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i x0 = _mm_add_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(wx + i)),
        _mm_set1_epi32(feature.x));
    const __m128i y0 = _mm_add_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(wy + i)),
        _mm_set1_epi32(feature.y));
    const __m128i x1 = _mm_add_epi32(x0, _mm_set1_epi32(feature.width));
    const __m128i y1 = _mm_add_epi32(y0, _mm_set1_epi32(feature.height));
    __m256i r;
    switch (feature.kind) {
      case HaarFeature::Kind::kTwoRectHorizontal: {
        const __m128i xm =
            _mm_add_epi32(x0, _mm_set1_epi32(feature.width / 2));
        r = _mm256_sub_epi64(rect_sum4(table, pitch, x0, y0, xm, y1),
                             rect_sum4(table, pitch, xm, y0, x1, y1));
        break;
      }
      case HaarFeature::Kind::kTwoRectVertical: {
        const __m128i ym =
            _mm_add_epi32(y0, _mm_set1_epi32(feature.height / 2));
        r = _mm256_sub_epi64(rect_sum4(table, pitch, x0, y0, x1, ym),
                             rect_sum4(table, pitch, x0, ym, x1, y1));
        break;
      }
      case HaarFeature::Kind::kThreeRectHorizontal: {
        const int third = feature.width / 3;
        const __m128i xa = _mm_add_epi32(x0, _mm_set1_epi32(third));
        const __m128i xb = _mm_add_epi32(x0, _mm_set1_epi32(2 * third));
        r = _mm256_add_epi64(
            _mm256_sub_epi64(rect_sum4(table, pitch, x0, y0, xa, y1),
                             rect_sum4(table, pitch, xa, y0, xb, y1)),
            rect_sum4(table, pitch, xb, y0, x1, y1));
        break;
      }
      case HaarFeature::Kind::kFourRectChecker: {
        const __m128i xm =
            _mm_add_epi32(x0, _mm_set1_epi32(feature.width / 2));
        const __m128i ym =
            _mm_add_epi32(y0, _mm_set1_epi32(feature.height / 2));
        r = _mm256_sub_epi64(
            _mm256_add_epi64(rect_sum4(table, pitch, x0, y0, xm, ym),
                             rect_sum4(table, pitch, xm, ym, x1, y1)),
            _mm256_add_epi64(rect_sum4(table, pitch, xm, y0, x1, ym),
                             rect_sum4(table, pitch, x0, ym, xm, y1)));
        break;
      }
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(responses + i), r);
  }
  if (i < n) haar_response_scalar(feature, integral, wx + i, wy + i, n - i,
                                  responses + i);
}

#endif  // RIPPLE_SIMD_X86

}  // namespace

void haar_response_batch(const HaarFeature& feature,
                         const IntegralImage& integral,
                         const std::uint32_t* wx, const std::uint32_t* wy,
                         std::size_t n, std::int64_t* responses) {
#if RIPPLE_SIMD_X86
  if (device::active_simd_level() == device::SimdLevel::kAvx2) {
    haar_response_avx2(feature, integral, wx, wy, n, responses);
    return;
  }
#endif
  haar_response_scalar(feature, integral, wx, wy, n, responses);
}

void stage_votes_batch(const CascadeStage& stage, const IntegralImage& integral,
                       const std::uint32_t* wx, const std::uint32_t* wy,
                       std::size_t n, std::uint32_t* votes) {
  for (std::size_t i = 0; i < n; ++i) votes[i] = 0;
  thread_local std::vector<std::int64_t> responses;
  responses.resize(n);
  for (const Stump& stump : stage.stumps) {
    haar_response_batch(stump.feature, integral, wx, wy, n, responses.data());
    for (std::size_t i = 0; i < n; ++i) {
      votes[i] += stump.vote(responses[i]) ? 1u : 0u;
    }
  }
}

}  // namespace ripple::cascade::simd
