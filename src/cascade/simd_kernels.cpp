#include "cascade/simd_kernels.hpp"

#include <vector>

#include "device/dispatch.hpp"
#include "device/kernel_registry.hpp"
#include "dist/rng.hpp"

#if RIPPLE_SIMD_X86
#include <immintrin.h>
#endif

namespace ripple::cascade::simd {

namespace {

/// Concrete signature every haar_response variant shares; the registry
/// stores it type-erased.
using HaarResponseFn = void (*)(const HaarFeature& feature,
                                const IntegralImage& integral,
                                const std::uint32_t* wx,
                                const std::uint32_t* wy, std::size_t n,
                                std::int64_t* responses);

void haar_response_scalar(const HaarFeature& feature,
                          const IntegralImage& integral,
                          const std::uint32_t* wx, const std::uint32_t* wy,
                          std::size_t n, std::int64_t* responses) {
  std::uint64_t ops = 0;
  for (std::size_t i = 0; i < n; ++i) {
    responses[i] = feature.evaluate(integral, wx[i], wy[i], ops);
  }
}

#if RIPPLE_SIMD_X86

/// Four table cells at (x, y) per lane, as 64-bit gathers. Corner indices
/// are built in 32-bit lanes (table entries number far below 2^31).
__attribute__((target("avx2"))) inline __m256i cell4(const std::int64_t* table,
                                                     __m128i pitch, __m128i x,
                                                     __m128i y) {
  const __m128i idx = _mm_add_epi32(_mm_mullo_epi32(y, pitch), x);
  return _mm256_i32gather_epi64(reinterpret_cast<const long long*>(table), idx,
                                8);
}

/// Four summed-area-table rectangle sums via sixteen corner gathers.
__attribute__((target("avx2"))) inline __m256i rect_sum4(
    const std::int64_t* table, __m128i pitch, __m128i x0, __m128i y0,
    __m128i x1, __m128i y1) {
  return _mm256_add_epi64(
      _mm256_sub_epi64(
          _mm256_sub_epi64(cell4(table, pitch, x1, y1),
                           cell4(table, pitch, x0, y1)),
          cell4(table, pitch, x1, y0)),
      cell4(table, pitch, x0, y0));
}

__attribute__((target("avx2"))) void haar_response_avx2(
    const HaarFeature& feature, const IntegralImage& integral,
    const std::uint32_t* wx, const std::uint32_t* wy, std::size_t n,
    std::int64_t* responses) {
  const std::int64_t* table = integral.table_data();
  const __m128i pitch =
      _mm_set1_epi32(static_cast<int>(integral.width() + 1));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i x0 = _mm_add_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(wx + i)),
        _mm_set1_epi32(feature.x));
    const __m128i y0 = _mm_add_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(wy + i)),
        _mm_set1_epi32(feature.y));
    const __m128i x1 = _mm_add_epi32(x0, _mm_set1_epi32(feature.width));
    const __m128i y1 = _mm_add_epi32(y0, _mm_set1_epi32(feature.height));
    __m256i r;
    switch (feature.kind) {
      case HaarFeature::Kind::kTwoRectHorizontal: {
        const __m128i xm =
            _mm_add_epi32(x0, _mm_set1_epi32(feature.width / 2));
        r = _mm256_sub_epi64(rect_sum4(table, pitch, x0, y0, xm, y1),
                             rect_sum4(table, pitch, xm, y0, x1, y1));
        break;
      }
      case HaarFeature::Kind::kTwoRectVertical: {
        const __m128i ym =
            _mm_add_epi32(y0, _mm_set1_epi32(feature.height / 2));
        r = _mm256_sub_epi64(rect_sum4(table, pitch, x0, y0, x1, ym),
                             rect_sum4(table, pitch, x0, ym, x1, y1));
        break;
      }
      case HaarFeature::Kind::kThreeRectHorizontal: {
        const int third = feature.width / 3;
        const __m128i xa = _mm_add_epi32(x0, _mm_set1_epi32(third));
        const __m128i xb = _mm_add_epi32(x0, _mm_set1_epi32(2 * third));
        r = _mm256_add_epi64(
            _mm256_sub_epi64(rect_sum4(table, pitch, x0, y0, xa, y1),
                             rect_sum4(table, pitch, xa, y0, xb, y1)),
            rect_sum4(table, pitch, xb, y0, x1, y1));
        break;
      }
      case HaarFeature::Kind::kFourRectChecker: {
        const __m128i xm =
            _mm_add_epi32(x0, _mm_set1_epi32(feature.width / 2));
        const __m128i ym =
            _mm_add_epi32(y0, _mm_set1_epi32(feature.height / 2));
        r = _mm256_sub_epi64(
            _mm256_add_epi64(rect_sum4(table, pitch, x0, y0, xm, ym),
                             rect_sum4(table, pitch, xm, ym, x1, y1)),
            _mm256_add_epi64(rect_sum4(table, pitch, xm, y0, x1, ym),
                             rect_sum4(table, pitch, x0, ym, xm, y1)));
        break;
      }
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(responses + i), r);
  }
  if (i < n) haar_response_scalar(feature, integral, wx + i, wy + i, n - i,
                                  responses + i);
}

#endif  // RIPPLE_SIMD_X86

#if RIPPLE_SIMD_X86_AVX512

#define RIPPLE_AVX512_TARGET "avx2,avx512f,avx512bw,avx512dq,avx512vl"

/// Eight table cells per call: corner indices in 8 x i32, values as a
/// 512-bit vector of 8 x i64 (the AVX-512 i32gather_epi64 takes a half-width
/// index vector, and its operand order is (vindex, base, scale)).
__attribute__((target(RIPPLE_AVX512_TARGET))) inline __m512i cell8(
    const std::int64_t* table, __m256i pitch, __m256i x, __m256i y) {
  const __m256i idx = _mm256_add_epi32(_mm256_mullo_epi32(y, pitch), x);
  return _mm512_i32gather_epi64(idx, table, 8);
}

/// Eight rectangle sums via thirty-two corner gathers.
__attribute__((target(RIPPLE_AVX512_TARGET))) inline __m512i rect_sum8(
    const std::int64_t* table, __m256i pitch, __m256i x0, __m256i y0,
    __m256i x1, __m256i y1) {
  return _mm512_add_epi64(
      _mm512_sub_epi64(
          _mm512_sub_epi64(cell8(table, pitch, x1, y1),
                           cell8(table, pitch, x0, y1)),
          cell8(table, pitch, x1, y0)),
      cell8(table, pitch, x0, y0));
}

__attribute__((target(RIPPLE_AVX512_TARGET))) void haar_response_avx512(
    const HaarFeature& feature, const IntegralImage& integral,
    const std::uint32_t* wx, const std::uint32_t* wy, std::size_t n,
    std::int64_t* responses) {
  const std::int64_t* table = integral.table_data();
  const __m256i pitch =
      _mm256_set1_epi32(static_cast<int>(integral.width() + 1));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x0 = _mm256_add_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wx + i)),
        _mm256_set1_epi32(feature.x));
    const __m256i y0 = _mm256_add_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wy + i)),
        _mm256_set1_epi32(feature.y));
    const __m256i x1 = _mm256_add_epi32(x0, _mm256_set1_epi32(feature.width));
    const __m256i y1 = _mm256_add_epi32(y0, _mm256_set1_epi32(feature.height));
    __m512i r;
    switch (feature.kind) {
      case HaarFeature::Kind::kTwoRectHorizontal: {
        const __m256i xm =
            _mm256_add_epi32(x0, _mm256_set1_epi32(feature.width / 2));
        r = _mm512_sub_epi64(rect_sum8(table, pitch, x0, y0, xm, y1),
                             rect_sum8(table, pitch, xm, y0, x1, y1));
        break;
      }
      case HaarFeature::Kind::kTwoRectVertical: {
        const __m256i ym =
            _mm256_add_epi32(y0, _mm256_set1_epi32(feature.height / 2));
        r = _mm512_sub_epi64(rect_sum8(table, pitch, x0, y0, x1, ym),
                             rect_sum8(table, pitch, x0, ym, x1, y1));
        break;
      }
      case HaarFeature::Kind::kThreeRectHorizontal: {
        const int third = feature.width / 3;
        const __m256i xa = _mm256_add_epi32(x0, _mm256_set1_epi32(third));
        const __m256i xb = _mm256_add_epi32(x0, _mm256_set1_epi32(2 * third));
        r = _mm512_add_epi64(
            _mm512_sub_epi64(rect_sum8(table, pitch, x0, y0, xa, y1),
                             rect_sum8(table, pitch, xa, y0, xb, y1)),
            rect_sum8(table, pitch, xb, y0, x1, y1));
        break;
      }
      case HaarFeature::Kind::kFourRectChecker: {
        const __m256i xm =
            _mm256_add_epi32(x0, _mm256_set1_epi32(feature.width / 2));
        const __m256i ym =
            _mm256_add_epi32(y0, _mm256_set1_epi32(feature.height / 2));
        r = _mm512_sub_epi64(
            _mm512_add_epi64(rect_sum8(table, pitch, x0, y0, xm, ym),
                             rect_sum8(table, pitch, xm, ym, x1, y1)),
            _mm512_add_epi64(rect_sum8(table, pitch, xm, y0, x1, ym),
                             rect_sum8(table, pitch, x0, ym, xm, y1)));
        break;
      }
    }
    _mm512_storeu_si512(responses + i, r);
  }
  if (i < n) haar_response_scalar(feature, integral, wx + i, wy + i, n - i,
                                  responses + i);
}

#endif  // RIPPLE_SIMD_X86_AVX512

/// Deterministic committed workload for the gated startup autotune: one
/// noise scene, one four-rect feature (the most gather-heavy kind), a fixed
/// grid of window origins.
struct MicrobenchFixture {
  static const MicrobenchFixture& instance() {
    static const MicrobenchFixture fixture;
    return fixture;
  }

  IntegralImage integral;
  HaarFeature feature;
  std::vector<std::uint32_t> wx;
  std::vector<std::uint32_t> wy;
  mutable std::vector<std::int64_t> responses;

 private:
  MicrobenchFixture()
      : integral([] {
          dist::Xoshiro256 rng(0x5eedca5cu);
          return IntegralImage(noise_image(512, 512, rng));
        }()) {
    feature.kind = HaarFeature::Kind::kFourRectChecker;
    feature.x = 2;
    feature.y = 2;
    feature.width = 12;
    feature.height = 12;
    const std::uint32_t limit = 512 - 24;
    for (std::uint32_t y = 0; y < limit; y += 11) {
      for (std::uint32_t x = 0; x < limit; x += 13) {
        wx.push_back(x);
        wy.push_back(y);
      }
    }
    responses.resize(wx.size());
  }
};

std::uint64_t microbench_haar(device::AnyKernelFn variant) {
  const MicrobenchFixture& f = MicrobenchFixture::instance();
  reinterpret_cast<HaarResponseFn>(variant)(f.feature, f.integral, f.wx.data(),
                                            f.wy.data(), f.wx.size(),
                                            f.responses.data());
  return f.wx.size();
}

void register_all() {
  device::KernelRegistry& reg = device::KernelRegistry::instance();
  reg.register_variant("cascade.haar_response", "cascade",
                       device::SimdLevel::kScalar, 1,
                       reinterpret_cast<device::AnyKernelFn>(
                           static_cast<HaarResponseFn>(&haar_response_scalar)));
#if RIPPLE_SIMD_X86
  reg.register_variant("cascade.haar_response", "cascade",
                       device::SimdLevel::kAvx2, 4,
                       reinterpret_cast<device::AnyKernelFn>(
                           static_cast<HaarResponseFn>(&haar_response_avx2)));
#endif
#if RIPPLE_SIMD_X86_AVX512
  reg.register_variant("cascade.haar_response", "cascade",
                       device::SimdLevel::kAvx512, 8,
                       reinterpret_cast<device::AnyKernelFn>(
                           static_cast<HaarResponseFn>(&haar_response_avx512)));
#endif
  reg.set_microbench("cascade.haar_response", &microbench_haar);
}

}  // namespace

void register_kernels() {
  static const bool done = [] {
    register_all();
    return true;
  }();
  (void)done;
}

void haar_response_batch(const HaarFeature& feature,
                         const IntegralImage& integral,
                         const std::uint32_t* wx, const std::uint32_t* wy,
                         std::size_t n, std::int64_t* responses) {
  register_kernels();
  thread_local device::KernelHandle<HaarResponseFn> handle(
      "cascade.haar_response");
  reinterpret_cast<HaarResponseFn>(handle.variant().fn)(feature, integral, wx,
                                                        wy, n, responses);
}

void stage_votes_batch(const CascadeStage& stage, const IntegralImage& integral,
                       const std::uint32_t* wx, const std::uint32_t* wy,
                       std::size_t n, std::uint32_t* votes) {
  for (std::size_t i = 0; i < n; ++i) votes[i] = 0;
  thread_local std::vector<std::int64_t> responses;
  responses.resize(n);
  for (const Stump& stump : stage.stumps) {
    haar_response_batch(stump.feature, integral, wx, wy, n, responses.data());
    for (std::size_t i = 0; i < n; ++i) {
      votes[i] += stump.vote(responses[i]) ? 1u : 0u;
    }
  }
}

}  // namespace ripple::cascade::simd
