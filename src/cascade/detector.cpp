#include "cascade/detector.hpp"

#include <algorithm>
#include <cmath>

#include "cascade/simd_kernels.hpp"
#include "util/assert.hpp"

namespace ripple::cascade {

namespace {

/// Split window-origin pairs into the u32 coordinate columns the vectorized
/// kernels consume.
void split_origins(
    const std::vector<std::pair<std::size_t, std::size_t>>& origins,
    std::vector<std::uint32_t>& xs, std::vector<std::uint32_t>& ys) {
  xs.resize(origins.size());
  ys.resize(origins.size());
  for (std::size_t i = 0; i < origins.size(); ++i) {
    xs[i] = static_cast<std::uint32_t>(origins[i].first);
    ys[i] = static_cast<std::uint32_t>(origins[i].second);
  }
}

}  // namespace

bool CascadeStage::evaluate(const IntegralImage& integral, std::size_t wx,
                            std::size_t wy, std::uint64_t& ops) const {
  std::uint32_t votes = 0;
  for (const Stump& stump : stumps) {
    votes += stump.vote(stump.feature.evaluate(integral, wx, wy, ops));
  }
  return votes >= vote_threshold;
}

const CascadeStage& Detector::stage(std::size_t s) const {
  RIPPLE_REQUIRE(s < stages_.size(), "stage index out of range");
  return stages_[s];
}

bool Detector::stage_pass(std::size_t s, const IntegralImage& integral,
                          std::size_t wx, std::size_t wy,
                          std::uint64_t& ops) const {
  return stage(s).evaluate(integral, wx, wy, ops);
}

std::optional<std::size_t> Detector::first_rejecting_stage(
    const IntegralImage& integral, std::size_t wx, std::size_t wy,
    std::uint64_t& ops) const {
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    if (!stages_[s].evaluate(integral, wx, wy, ops)) return s;
  }
  return std::nullopt;
}

util::Result<Detector> Detector::train(const Scene& scene,
                                       const DetectorConfig& config,
                                       dist::Xoshiro256& rng) {
  using R = util::Result<Detector>;
  if (config.stage_sizes.empty() ||
      config.stage_sizes.size() != config.stage_pass_rates.size()) {
    return R::failure("bad_config",
                      "stage_sizes and stage_pass_rates must match and be "
                      "non-empty");
  }
  for (double rate : config.stage_pass_rates) {
    if (rate <= 0.0 || rate >= 1.0) {
      return R::failure("bad_config", "pass rates must be in (0, 1)");
    }
  }
  if (scene.image.width() < config.window ||
      scene.image.height() < config.window) {
    return R::failure("bad_config", "scene smaller than the window");
  }

  const IntegralImage integral(scene.image);
  const std::size_t max_x = scene.image.width() - config.window;
  const std::size_t max_y = scene.image.height() - config.window;

  // Calibration sample of background window origins.
  std::vector<std::pair<std::size_t, std::size_t>> sample;
  sample.reserve(config.calibration_windows);
  for (std::size_t i = 0; i < config.calibration_windows; ++i) {
    sample.emplace_back(rng.uniform_below(max_x + 1),
                        rng.uniform_below(max_y + 1));
  }

  Detector detector;
  detector.window_ = config.window;

  // Calibration is batch-wide: responses and votes run through the
  // vectorized Haar kernels (scalar or AVX2 per runtime dispatch, identical
  // results either way).
  std::vector<std::uint32_t> sample_x;
  std::vector<std::uint32_t> sample_y;
  std::vector<std::uint32_t> object_x;
  std::vector<std::uint32_t> object_y;
  split_origins(scene.object_origins, object_x, object_y);
  std::vector<std::int64_t> responses;

  for (std::size_t s = 0; s < config.stage_sizes.size(); ++s) {
    split_origins(sample, sample_x, sample_y);
    CascadeStage stage;
    stage.stumps.reserve(config.stage_sizes[s]);
    for (std::size_t f = 0; f < config.stage_sizes[s]; ++f) {
      Stump stump;
      stump.feature = random_feature(config.window, rng);
      // Stump threshold: the median background response, so each stump votes
      // on roughly half the background.
      responses.resize(sample.size());
      simd::haar_response_batch(stump.feature, integral, sample_x.data(),
                                sample_y.data(), sample.size(),
                                responses.data());
      std::nth_element(responses.begin(),
                       responses.begin() + responses.size() / 2,
                       responses.end());
      stump.threshold = responses[responses.size() / 2];
      // Orient the stump toward the planted objects: pick the polarity under
      // which more object windows vote (the median threshold keeps the
      // background rate near 1/2 either way).
      responses.resize(scene.object_origins.size());
      simd::haar_response_batch(stump.feature, integral, object_x.data(),
                                object_y.data(), scene.object_origins.size(),
                                responses.data());
      std::size_t object_votes_high = 0;
      for (const std::int64_t response : responses) {
        object_votes_high += response > stump.threshold;
      }
      stump.invert = 2 * object_votes_high < scene.object_origins.size();
      stage.stumps.push_back(std::move(stump));
    }

    // Stage vote threshold: smallest count whose background pass rate is at
    // or below the target.
    std::vector<std::uint32_t> votes(sample.size(), 0);
    simd::stage_votes_batch(stage, integral, sample_x.data(), sample_y.data(),
                            sample.size(), votes.data());
    const double target = config.stage_pass_rates[s];
    std::uint32_t chosen = 0;
    bool found = false;
    for (std::uint32_t candidate = 0; candidate <= stage.stumps.size() + 1;
         ++candidate) {
      std::size_t passing = 0;
      for (std::uint32_t v : votes) passing += (v >= candidate);
      const double rate =
          static_cast<double>(passing) / static_cast<double>(sample.size());
      if (rate <= target) {
        chosen = candidate;
        found = true;
        break;
      }
    }
    if (!found) {
      return R::failure("degenerate",
                        "stage " + std::to_string(s) +
                            " cannot reach its target pass rate");
    }
    stage.vote_threshold = chosen;

    // Survivors of this stage form the calibration sample for the next, so
    // later stages are calibrated on the conditional distribution they will
    // actually see.
    std::vector<std::pair<std::size_t, std::size_t>> survivors;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      if (votes[i] >= stage.vote_threshold) survivors.push_back(sample[i]);
    }
    // Top up with fresh windows if the sample is running thin, so threshold
    // estimates stay usable deep in the cascade (bounded effort: deep-stage
    // survivors are rare by design).
    std::size_t attempts = 0;
    while (survivors.size() < 256 && s + 1 < config.stage_sizes.size() &&
           attempts < 200000) {
      ++attempts;
      const std::size_t wx = rng.uniform_below(max_x + 1);
      const std::size_t wy = rng.uniform_below(max_y + 1);
      std::uint64_t ops = 0;
      bool pass = true;
      for (std::size_t ps = 0; ps <= s && pass; ++ps) {
        pass = (ps < detector.stages_.size() ? detector.stages_[ps] : stage)
                   .evaluate(integral, wx, wy, ops);
      }
      if (pass) survivors.emplace_back(wx, wy);
    }
    sample = std::move(survivors);
    if (sample.empty() && s + 1 < config.stage_sizes.size()) {
      return R::failure("degenerate",
                        "no calibration windows survive stage " +
                            std::to_string(s));
    }

    detector.stages_.push_back(std::move(stage));
  }
  return detector;
}

}  // namespace ripple::cascade
