// Haar-like rectangle features over integral images (Viola-Jones).
#pragma once

#include <cstdint>
#include <vector>

#include "cascade/image.hpp"
#include "dist/rng.hpp"

namespace ripple::cascade {

/// Classic two- and three-rectangle Haar features, defined relative to a
/// detection window's origin.
struct HaarFeature {
  enum class Kind : std::uint8_t {
    kTwoRectHorizontal,  ///< left rect minus right rect
    kTwoRectVertical,    ///< top rect minus bottom rect
    kThreeRectHorizontal,///< outer thirds minus center third
    kFourRectChecker,    ///< diagonal quadrants minus anti-diagonal
  };

  Kind kind = Kind::kTwoRectHorizontal;
  std::uint16_t x = 0;      ///< offset inside the window
  std::uint16_t y = 0;
  std::uint16_t width = 2;  ///< full feature extent
  std::uint16_t height = 2;

  /// Signed response at window origin (wx, wy). Also counts the abstract
  /// operations performed (rectangle sums) into `ops`.
  std::int64_t evaluate(const IntegralImage& integral, std::size_t wx,
                        std::size_t wy, std::uint64_t& ops) const;

  /// Number of rectangle sums this feature costs.
  std::uint32_t rect_count() const;
};

/// A random feature fitting in a window of the given size. Extents are kept
/// even (and divisible by 3 for three-rect kinds) so sub-rectangles tile
/// exactly.
HaarFeature random_feature(std::size_t window, dist::Xoshiro256& rng);

}  // namespace ripple::cascade
