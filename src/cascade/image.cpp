#include "cascade/image.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ripple::cascade {

Image::Image(std::size_t width, std::size_t height, Pixel fill)
    : width_(width), height_(height), pixels_(width * height, fill) {
  RIPPLE_REQUIRE(width > 0 && height > 0, "image must be non-empty");
}

Pixel Image::at(std::size_t x, std::size_t y) const {
  RIPPLE_REQUIRE(x < width_ && y < height_, "pixel out of range");
  return pixels_[y * width_ + x];
}

void Image::set(std::size_t x, std::size_t y, Pixel value) {
  RIPPLE_REQUIRE(x < width_ && y < height_, "pixel out of range");
  pixels_[y * width_ + x] = value;
}

Image noise_image(std::size_t width, std::size_t height,
                  dist::Xoshiro256& rng) {
  Image image(width, height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      image.set(x, y, static_cast<Pixel>(rng.uniform_below(256)));
    }
  }
  return image;
}

void plant_object(Image& image, std::size_t x, std::size_t y, std::size_t size,
                  std::uint32_t jitter, dist::Xoshiro256& rng) {
  RIPPLE_REQUIRE(x + size <= image.width() && y + size <= image.height(),
                 "object exceeds image bounds");
  RIPPLE_REQUIRE(size >= 2, "object must be at least 2x2");
  const std::size_t half = size / 2;
  for (std::size_t dy = 0; dy < size; ++dy) {
    for (std::size_t dx = 0; dx < size; ++dx) {
      const bool bright = (dx < half) == (dy < half);  // checker quadrants
      const int base = bright ? 208 : 48;
      const int noise =
          jitter == 0 ? 0
                      : static_cast<int>(rng.uniform_below(2 * jitter + 1)) -
                            static_cast<int>(jitter);
      image.set(x + dx, y + dy,
                static_cast<Pixel>(std::clamp(base + noise, 0, 255)));
    }
  }
}

IntegralImage::IntegralImage(const Image& image)
    : width_(image.width()), height_(image.height()),
      table_((image.width() + 1) * (image.height() + 1), 0) {
  for (std::size_t y = 0; y < height_; ++y) {
    std::int64_t row_sum = 0;
    for (std::size_t x = 0; x < width_; ++x) {
      row_sum += image.at(x, y);
      table_[(y + 1) * (width_ + 1) + (x + 1)] =
          cell(x + 1, y) + row_sum;
    }
  }
}

std::int64_t IntegralImage::rect_sum(std::size_t x0, std::size_t y0,
                                     std::size_t x1, std::size_t y1) const {
  RIPPLE_REQUIRE(x0 <= x1 && y0 <= y1, "rectangle must be ordered");
  RIPPLE_REQUIRE(x1 <= width_ && y1 <= height_, "rectangle out of range");
  return cell(x1, y1) - cell(x0, y1) - cell(x1, y0) + cell(x0, y0);
}

Scene make_scene(const SceneConfig& config, dist::Xoshiro256& rng) {
  Scene scene;
  scene.image = noise_image(config.width, config.height, rng);
  scene.object_size = config.object_size;
  for (std::size_t i = 0; i < config.object_count; ++i) {
    const std::size_t x = static_cast<std::size_t>(
        rng.uniform_below(config.width - config.object_size + 1));
    const std::size_t y = static_cast<std::size_t>(
        rng.uniform_below(config.height - config.object_size + 1));
    plant_object(scene.image, x, y, config.object_size, config.jitter, rng);
    scene.object_origins.emplace_back(x, y);
  }
  return scene;
}

}  // namespace ripple::cascade
