// Vector-wide Haar evaluation: one call scores a whole batch of detection
// windows against a feature or a cascade stage.
//
// The summed-area table makes a rectangle sum four corner lookups; the AVX2
// path turns those into _mm256_i32gather_epi64 gathers, four windows per
// vector, with the corner indices computed in 32-bit lanes (the table is at
// most a few million entries, so indices fit comfortably). The scalar path
// loops over HaarFeature::evaluate. Both produce identical int64 responses
// and identical votes; tests/test_cascade_simd.cpp pins the two dispatch
// levels against each other, and Detector::train calibrates through these
// kernels so training cost scales with the batch width too.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cascade/detector.hpp"
#include "cascade/features.hpp"
#include "cascade/image.hpp"

namespace ripple::cascade::simd {

/// Responses of `feature` at the `n` window origins (wx[i], wy[i]).
void haar_response_batch(const HaarFeature& feature,
                         const IntegralImage& integral,
                         const std::uint32_t* wx, const std::uint32_t* wy,
                         std::size_t n, std::int64_t* responses);

/// Per-window vote counts over all of `stage`'s stumps (the loop inside
/// CascadeStage::evaluate, batch-wide): votes[i] is how many stumps voted
/// for window i.
void stage_votes_batch(const CascadeStage& stage, const IntegralImage& integral,
                       const std::uint32_t* wx, const std::uint32_t* wy,
                       std::size_t n, std::uint32_t* votes);

}  // namespace ripple::cascade::simd
