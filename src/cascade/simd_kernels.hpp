// Vector-wide Haar evaluation: one call scores a whole batch of detection
// windows against a feature or a cascade stage.
//
// The summed-area table makes a rectangle sum four corner lookups; the
// vector paths turn those into i32gather_epi64 gathers — four windows per
// AVX2 vector, eight per AVX-512 vector — with the corner indices computed
// in 32-bit lanes (the table is at most a few million entries, so indices
// fit comfortably). The scalar path loops over HaarFeature::evaluate. The
// variants register with the device::KernelRegistry under
// "cascade.haar_response" (see docs/KERNELS.md) and produce identical int64
// responses and identical votes; tests/test_cascade_simd.cpp pins every
// compiled-and-supported level against scalar, and Detector::train
// calibrates through these kernels so training cost scales with the batch
// width too.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cascade/detector.hpp"
#include "cascade/features.hpp"
#include "cascade/image.hpp"

namespace ripple::cascade::simd {

/// Register the cascade kernels and their variants with the process-wide
/// device::KernelRegistry (idempotent). Called lazily by the batch wrappers.
void register_kernels();

/// Responses of `feature` at the `n` window origins (wx[i], wy[i]).
void haar_response_batch(const HaarFeature& feature,
                         const IntegralImage& integral,
                         const std::uint32_t* wx, const std::uint32_t* wy,
                         std::size_t n, std::int64_t* responses);

/// Per-window vote counts over all of `stage`'s stumps (the loop inside
/// CascadeStage::evaluate, batch-wide): votes[i] is how many stumps voted
/// for window i.
void stage_votes_batch(const CascadeStage& stage, const IntegralImage& integral,
                       const std::uint32_t* wx, const std::uint32_t* wy,
                       std::size_t n, std::uint32_t* votes);

}  // namespace ripple::cascade::simd
