// Measure the detection cascade as a streaming pipeline: per-stage pass
// rates (gains) and operation costs over a stream of image windows, and
// conversion into a schedulable sdf::PipelineSpec — the cascade analogue of
// blast/measure.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "cascade/detector.hpp"
#include "sdf/pipeline.hpp"
#include "util/result.hpp"

namespace ripple::cascade {

struct StageStats {
  std::uint64_t inputs = 0;
  std::uint64_t passed = 0;
  std::uint64_t total_ops = 0;

  double pass_rate() const {
    return inputs == 0 ? 0.0
                       : static_cast<double>(passed) / static_cast<double>(inputs);
  }
  double mean_ops() const {
    return inputs == 0
               ? 0.0
               : static_cast<double>(total_ops) / static_cast<double>(inputs);
  }
};

struct CascadeMeasurement {
  std::vector<StageStats> stages;
  std::uint64_t windows_streamed = 0;
  std::uint64_t detections = 0;

  /// Build a pipeline spec: gains are Bernoulli(pass rate) per stage (the
  /// cascade is a pure filter chain), service times are mean ops scaled by
  /// `cycles_per_op`. The final stage keeps its measured cost but reports
  /// deterministically (sink).
  util::Result<sdf::PipelineSpec> to_pipeline_spec(std::uint32_t simd_width,
                                                   double cycles_per_op = 1.0) const;
};

struct CascadeMeasureConfig {
  std::uint64_t window_count = 100000;
  std::uint64_t stride = 1;  ///< raster step between window origins
};

CascadeMeasurement measure_cascade(const Detector& detector, const Scene& scene,
                                   const CascadeMeasureConfig& config);

}  // namespace ripple::cascade
