// ripple.frame.v1 — the versioned binary frame format of the ingest front
// door (net/server.hpp) and, reusing the same CRC framing, of the arrival
// journal (net/journal.hpp).
//
// Every frame is a fixed 24-byte little-endian header followed by an opaque
// payload the header describes:
//
//   offset  size  field
//        0     4  magic        0x46504952 — the bytes "RIPF" on the wire
//        4     1  version      1
//        5     1  type         FrameType
//        6     2  flags        0 (reserved; non-zero rejected)
//        8     4  payload_len  bytes following the header (bounded)
//       12     4  payload_crc  CRC-32 (IEEE, reflected) of the payload
//       16     8  session      wire session id (connection-scoped, client-
//                              chosen; 0 for frames with no session)
//
// Frame types and payloads:
//
//   kOpenSession   client -> server   empty. Client picks the wire id.
//   kSessionOpened server -> client   u64: server-side session id (ack).
//   kCloseSession  client -> server   empty.
//   kItemBatch     client -> server   u32 count + count x u64 item payloads.
//   kBackpressure  server -> client   u64: items rejected by backpressure
//                                     from the batch just submitted.
//   kShed          server -> client   u64: items rejected because the
//                                     session is currently shed by admission.
//
// Decoding is zero-copy: decode_frame() validates the header + CRC against
// the caller's buffer and returns a FrameView pointing into it; the item
// batch accessor reads u64s straight out of the payload bytes. The decoder
// never reads past `len` and never allocates — malformed input yields a
// DecodeStatus, not UB (pinned by the fuzz test in tests/test_net_frame.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ripple::net {

inline constexpr std::uint32_t kFrameMagic = 0x46504952;  // "RIPF" on wire
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 24;
/// Default payload bound: a frame larger than this is a protocol error, not
/// a bigger allocation (1 MiB ~ 128k items per batch).
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 20;

enum class FrameType : std::uint8_t {
  kOpenSession = 1,
  kSessionOpened = 2,
  kCloseSession = 3,
  kItemBatch = 4,
  kBackpressure = 5,
  kShed = 6,
};

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kNeedMore,     ///< buffer ends mid-header or mid-payload: read more bytes
  kBadMagic,     ///< not a ripple.frame stream (desync or garbage)
  kBadVersion,   ///< version skew: only v1 is understood
  kBadType,      ///< type outside the catalog
  kBadFlags,     ///< reserved flags set
  kBadLength,    ///< payload_len exceeds the configured bound
  kBadCrc,       ///< payload corrupt in transit
};

/// A decoded frame, pointing into the caller's buffer (valid only while the
/// buffer is).
struct FrameView {
  FrameType type = FrameType::kOpenSession;
  std::uint64_t session = 0;
  const std::uint8_t* payload = nullptr;
  std::uint32_t payload_len = 0;
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  FrameView frame;           ///< valid iff status == kOk
  std::size_t consumed = 0;  ///< bytes to advance past (0 unless kOk)
};

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) — the checksum of
/// both the wire frames and the journal records.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len);

/// Decode one frame from the front of [data, data+len). Never reads past
/// len. kNeedMore means the buffer holds a valid prefix; every other
/// non-kOk status means the stream is unrecoverable at this position (the
/// server closes the connection rather than resynchronizing).
DecodeResult decode_frame(const std::uint8_t* data, std::size_t len,
                          std::size_t max_payload = kMaxFramePayload);

/// Append one encoded frame (header + payload copy) to `out`.
void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint64_t session, const std::uint8_t* payload,
                  std::size_t payload_len);

/// Append a payload-less frame (open/close session).
void append_control_frame(std::vector<std::uint8_t>& out, FrameType type,
                          std::uint64_t session);

/// Append a frame whose payload is a single u64 (session-opened ack,
/// backpressure and shed notifications).
void append_u64_frame(std::vector<std::uint8_t>& out, FrameType type,
                      std::uint64_t session, std::uint64_t value);

/// Append a kItemBatch frame: u32 count + count x u64.
void append_item_batch(std::vector<std::uint8_t>& out, std::uint64_t session,
                       const std::uint64_t* items, std::size_t count);

/// Zero-copy view over a kItemBatch payload.
struct ItemBatchView {
  const std::uint8_t* items = nullptr;  ///< count x u64, little-endian
  std::uint32_t count = 0;
  std::uint64_t item(std::uint32_t index) const;
};

/// Validate and view a kItemBatch payload (count consistent with the
/// payload length). Returns false on structural mismatch.
bool parse_item_batch(const FrameView& frame, ItemBatchView& out);

/// Extract the u64 payload of an ack/notification frame.
bool parse_u64_payload(const FrameView& frame, std::uint64_t& out);

// Little-endian scalar helpers, shared with the journal's record codec.
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value);
void put_f64(std::vector<std::uint8_t>& out, double value);
std::uint32_t get_u32(const std::uint8_t* data);
std::uint64_t get_u64(const std::uint8_t* data);
double get_f64(const std::uint8_t* data);

}  // namespace ripple::net
