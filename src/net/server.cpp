#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <any>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/assert.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  RIPPLE_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 "fcntl(O_NONBLOCK) failed");
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("net: bad IPv4 address: " + host);
  }
  return addr;
}

#if RIPPLE_OBS
void emit_instant(const char* name) {
  obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
  if (trace.active()) {
    trace.instant(obs::Domain::kHost, trace.track(), name,
                  obs::TraceSession::global().host_now_us(), 0.0);
  }
}
#endif

}  // namespace

IngestServer::IngestServer(service::PipelineService& service,
                           ServerConfig config)
    : service_(service), config_(std::move(config)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error("net: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(config_.bind_address, config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("net: bind failed: ") +
                             std::strerror(err));
  }
  if (::listen(listen_fd_, config_.listen_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("net: listen failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    throw std::runtime_error("net: epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

IngestServer::~IngestServer() {
  stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void IngestServer::start() {
  if (running_) return;
  stop_requested_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { loop(); });
  running_ = true;
}

void IngestServer::stop() {
  if (!running_) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  thread_.join();
  running_ = false;
  // Close every surviving connection (and its sessions) on the caller's
  // thread — the loop has exited, so the maps are no longer shared.
  while (!connections_.empty()) close_connection(connections_.begin()->first);
}

ServerStats IngestServer::stats() const {
  ServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_closed =
      connections_closed_.load(std::memory_order_relaxed);
  stats.frames_in = frames_in_.load(std::memory_order_relaxed);
  stats.items_in = items_in_.load(std::memory_order_relaxed);
  stats.items_rejected = items_rejected_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return stats;
}

void IngestServer::loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll set gone; nothing sane to do but exit
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) continue;  // stop flag re-checked by the loop
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this wake
      Connection& conn = *it->second;
      bool alive = true;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) alive = false;
      if (alive && (events[i].events & EPOLLIN)) alive = read_ready(conn);
      if (alive && (events[i].events & EPOLLOUT)) alive = write_ready(conn);
      if (!alive) close_connection(fd);
    }
  }
}

void IngestServer::accept_ready() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: wait for the next wake
    set_nonblocking(fd);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    connections_.emplace(fd, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
#if RIPPLE_OBS
    if (obs::enabled()) emit_instant("net.conn.open");
#endif
  }
}

bool IngestServer::read_ready(Connection& conn) {
  // Drain the socket first, then decode: an orderly EOF (half-close) must
  // still process every frame that arrived with it before the connection
  // goes down, or a send-and-shutdown client loses its tail. The read loop
  // stops (without disconnecting) once max_buffered_bytes are pending — a
  // fast streamer on a big loopback socket buffer is legitimate load, and
  // pacing here is what turns the cap into flow control: level-triggered
  // epoll re-delivers EPOLLIN for whatever stayed in the kernel queue.
  bool eof = false;
  char chunk[64 * 1024];
  while (conn.in.size() - conn.in_consumed < config_.max_buffered_bytes) {
    const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
    if (n == 0) {
      eof = true;
      break;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    conn.in.insert(conn.in.end(), chunk, chunk + n);
  }
  // Decode every complete frame in the buffer.
  while (true) {
    const DecodeResult result =
        decode_frame(conn.in.data() + conn.in_consumed,
                     conn.in.size() - conn.in_consumed,
                     config_.max_frame_payload);
    if (result.status == DecodeStatus::kNeedMore) break;
    if (result.status != DecodeStatus::kOk) {
      protocol_error(conn);
      return false;
    }
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    if (!handle_frame(conn, result.frame)) {
      protocol_error(conn);
      return false;
    }
    conn.in_consumed += result.consumed;
  }
  if (conn.in_consumed == conn.in.size()) {
    conn.in.clear();
    conn.in_consumed = 0;
  } else if (conn.in_consumed > (std::size_t{1} << 16)) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(
                                        conn.in_consumed));
    conn.in_consumed = 0;
  }
  // Undecodable residue at the cap means a frame the decoder can never
  // complete within max_buffered_bytes — unreachable while max_frame_payload
  // fits under the cap (decode_frame rejects bigger claims as kBadLength),
  // kept as a defensive bound against misconfiguration.
  if (conn.in.size() - conn.in_consumed >= config_.max_buffered_bytes) {
    protocol_error(conn);
    return false;
  }
  return !eof;
}

bool IngestServer::handle_frame(Connection& conn, const FrameView& frame) {
  switch (frame.type) {
    case FrameType::kOpenSession: {
      if (frame.payload_len != 0) return false;
      if (conn.sessions.count(frame.session)) return false;  // duplicate wire id
      const service::SessionId id = service_.open_session();
      conn.sessions.emplace(frame.session, id);
      std::vector<std::uint8_t> ack;
      append_u64_frame(ack, FrameType::kSessionOpened, frame.session, id);
      return queue_output(conn, std::move(ack));
    }
    case FrameType::kCloseSession: {
      if (frame.payload_len != 0) return false;
      auto it = conn.sessions.find(frame.session);
      if (it == conn.sessions.end()) return false;
      service_.close_session(it->second);
      conn.sessions.erase(it);
      return true;
    }
    case FrameType::kItemBatch: {
      ItemBatchView batch;
      if (!parse_item_batch(frame, batch)) return false;
      auto it = conn.sessions.find(frame.session);
      if (it == conn.sessions.end()) return false;
      std::vector<runtime::Item> items;
      items.reserve(batch.count);
      for (std::uint32_t i = 0; i < batch.count; ++i) {
        items.emplace_back(std::in_place_type<std::uint64_t>, batch.item(i));
      }
      const service::SubmitOutcome outcome =
          service_.submit(it->second, std::move(items));
      items_in_.fetch_add(outcome.accepted, std::memory_order_relaxed);
      if (outcome.rejected_backpressure > 0 || outcome.shed > 0) {
        items_rejected_.fetch_add(outcome.rejected_backpressure + outcome.shed,
                                  std::memory_order_relaxed);
        std::vector<std::uint8_t> reply;
        if (outcome.rejected_backpressure > 0) {
          append_u64_frame(reply, FrameType::kBackpressure, frame.session,
                           outcome.rejected_backpressure);
        }
        if (outcome.shed > 0) {
          append_u64_frame(reply, FrameType::kShed, frame.session,
                           outcome.shed);
        }
        return queue_output(conn, std::move(reply));
      }
      return true;
    }
    case FrameType::kSessionOpened:
    case FrameType::kBackpressure:
    case FrameType::kShed:
      return false;  // server->client types are invalid from a client
  }
  return false;
}

bool IngestServer::queue_output(Connection& conn,
                                std::vector<std::uint8_t> bytes) {
  if (conn.out.empty()) {
    conn.out = std::move(bytes);
    conn.out_sent = 0;
  } else {
    conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
  }
  // Optimistic immediate flush; leftovers arm EPOLLOUT.
  write_ready(conn);
  update_interest(conn);
  // A client that stops reading its notifications cannot pin server memory:
  // past the backlog bound the connection goes down instead of the buffer up.
  return conn.out.size() - conn.out_sent <= config_.max_buffered_bytes;
}

bool IngestServer::write_ready(Connection& conn) {
  while (conn.out_sent < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_sent,
                             conn.out.size() - conn.out_sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    conn.out_sent += static_cast<std::size_t>(n);
  }
  if (conn.out_sent == conn.out.size()) {
    conn.out.clear();
    conn.out_sent = 0;
  }
  update_interest(conn);
  return true;
}

void IngestServer::update_interest(Connection& conn) {
  const bool want_write = conn.out_sent < conn.out.size();
  if (want_write == conn.want_write) return;
  conn.want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void IngestServer::close_connection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  for (const auto& [wire_id, session_id] : it->second->sessions) {
    service_.close_session(session_id);
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
#if RIPPLE_OBS
  if (obs::enabled()) emit_instant("net.conn.close");
#endif
}

void IngestServer::protocol_error(Connection& conn) {
  (void)conn;
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
#if RIPPLE_OBS
  if (obs::enabled()) {
    emit_instant("net.protocol_error");
    obs::Registry::global().counter("net.protocol_errors")->increment();
  }
#endif
}

// ---------------------------------------------------------------------------
// IngestClient
// ---------------------------------------------------------------------------

IngestClient::IngestClient(const std::string& host, std::uint16_t port,
                           std::size_t max_frame_payload)
    : max_frame_payload_(max_frame_payload) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw std::runtime_error("net: client socket() failed");
  sockaddr_in addr = make_addr(host, port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(std::string("net: connect failed: ") +
                             std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

IngestClient::~IngestClient() {
  if (fd_ >= 0) ::close(fd_);
}

void IngestClient::send_all(const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("net: client send failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::uint64_t IngestClient::open_session(std::uint64_t wire_id) {
  scratch_.clear();
  append_control_frame(scratch_, FrameType::kOpenSession, wire_id);
  send_all(scratch_.data(), scratch_.size());
  saw_open_ack_ = false;
  while (!saw_open_ack_) {
    if (!pump(/*blocking=*/true)) {
      throw std::runtime_error("net: server closed before session ack");
    }
  }
  return last_ack_payload_;
}

void IngestClient::send_items(std::uint64_t wire_id,
                              const std::uint64_t* items, std::size_t count) {
  scratch_.clear();
  append_item_batch(scratch_, wire_id, items, count);
  send_all(scratch_.data(), scratch_.size());
}

void IngestClient::close_session(std::uint64_t wire_id) {
  scratch_.clear();
  append_control_frame(scratch_, FrameType::kCloseSession, wire_id);
  send_all(scratch_.data(), scratch_.size());
}

void IngestClient::poll_notifications() { pump(/*blocking=*/false); }

void IngestClient::finish() {
  ::shutdown(fd_, SHUT_WR);
  while (pump(/*blocking=*/true)) {
  }
}

bool IngestClient::pump(bool blocking) {
  while (true) {
    // Drain whatever is already decodable.
    bool decoded = false;
    while (true) {
      const DecodeResult result =
          decode_frame(in_.data() + in_consumed_, in_.size() - in_consumed_,
                       max_frame_payload_);
      if (result.status == DecodeStatus::kNeedMore) break;
      if (result.status != DecodeStatus::kOk || !handle_frame(result.frame)) {
        throw std::runtime_error("net: client received malformed frame");
      }
      in_consumed_ += result.consumed;
      decoded = true;
    }
    if (in_consumed_ == in_.size()) {
      in_.clear();
      in_consumed_ = 0;
    }
    if (decoded) return true;  // made progress; caller re-checks its state
    char chunk[16 * 1024];
    const int flags = blocking ? 0 : MSG_DONTWAIT;
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), flags);
    if (n == 0) return false;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      if (!blocking && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      throw std::runtime_error("net: client recv failed");
    }
    in_.insert(in_.end(), chunk, chunk + n);
  }
}

bool IngestClient::handle_frame(const FrameView& frame) {
  std::uint64_t value = 0;
  switch (frame.type) {
    case FrameType::kSessionOpened:
      if (!parse_u64_payload(frame, value)) return false;
      saw_open_ack_ = true;
      last_ack_payload_ = value;
      return true;
    case FrameType::kBackpressure:
      if (!parse_u64_payload(frame, value)) return false;
      backpressure_ += value;
      return true;
    case FrameType::kShed:
      if (!parse_u64_payload(frame, value)) return false;
      shed_ += value;
      return true;
    default:
      return false;
  }
}

}  // namespace ripple::net
