// Network ingest front door: a single-threaded non-blocking epoll loop that
// accepts TCP connections speaking ripple.frame.v1 (net/frame.hpp) and feeds
// their item batches straight into PipelineService::submit — i.e. into the
// per-shard lock-free MPSC ingest rings — with the service's backpressure
// and shedding decisions surfaced back to each client as frames.
//
// Protocol, per connection:
//
//   client                         server
//   ------                        -------
//   kOpenSession (wire id W)  ->   service.open_session() => S
//                             <-   kSessionOpened (session=W, payload=S)
//   kItemBatch  (session=W)   ->   service.submit(S, items)
//                             <-   kBackpressure (payload = rejected count),
//                                  only when submit rejected items
//                             <-   kShed (payload = shed count), only when
//                                  admission is currently shedding W
//   kCloseSession (W)         ->   service.close_session(S)
//
// Wire session ids are connection-scoped and client-chosen; the server keeps
// the W -> S map per connection and closes every still-open session when the
// connection drops, so a vanished client cannot pin admission state.
//
// Any malformed frame — bad magic, unknown version or type, reserved flags,
// oversized payload, CRC mismatch, or a server->client type arriving from a
// client — is a protocol error: the connection is closed immediately (no
// resynchronization; the stream is byte-framed, so after one bad header
// nothing downstream can be trusted). Errors are counted and visible as the
// net.protocol_error trace instant.
//
// Threading: one server thread owns the epoll set, every connection buffer,
// and the session maps; it is a *producer* from the service's point of view
// and only calls the any-thread session API. stop() wakes the loop via an
// eventfd and joins. The loop never blocks on a socket: reads drain until
// EAGAIN, writes buffer and flush under EPOLLOUT.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "service/service.hpp"

namespace ripple::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  std::size_t max_frame_payload = std::size_t{1} << 20;
  /// Per-connection buffer cap, both directions. Inbound it paces reading —
  /// the reader stops pulling from the kernel queue at this bound and lets
  /// level-triggered epoll re-deliver once frames have been decoded (TCP
  /// flow control then paces the sender; a fast client is load, not an
  /// error). Outbound it is a disconnect bound: a client that stops reading
  /// its notifications is closed rather than pinning server memory.
  std::size_t max_buffered_bytes = std::size_t{8} << 20;
  int listen_backlog = 64;
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t items_in = 0;      ///< items accepted by the service
  std::uint64_t items_rejected = 0;  ///< backpressure + shed, surfaced as frames
  std::uint64_t protocol_errors = 0;
};

class IngestServer {
 public:
  /// Binds and listens immediately (so port() is valid before start());
  /// throws std::runtime_error when the socket cannot be bound. The service
  /// must outlive the server.
  IngestServer(service::PipelineService& service, ServerConfig config);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Spawn the epoll loop thread. No-op when already running.
  void start();
  /// Wake the loop, close every connection (closing their sessions), join.
  /// Idempotent.
  void stop();

  /// The bound port (resolves port 0 to the kernel's choice).
  std::uint16_t port() const noexcept { return port_; }
  ServerStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::vector<std::uint8_t> in;    ///< unparsed inbound bytes
    std::size_t in_consumed = 0;     ///< decoded prefix of `in`
    std::vector<std::uint8_t> out;   ///< unsent outbound bytes
    std::size_t out_sent = 0;
    bool want_write = false;         ///< EPOLLOUT currently armed
    std::map<std::uint64_t, service::SessionId> sessions;  ///< wire -> service
  };

  void loop();
  void accept_ready();
  /// Returns false when the connection must be closed.
  bool read_ready(Connection& conn);
  bool write_ready(Connection& conn);
  bool handle_frame(Connection& conn, const FrameView& frame);
  /// Returns false when the out backlog exceeded max_buffered_bytes.
  bool queue_output(Connection& conn, std::vector<std::uint8_t> bytes);
  void update_interest(Connection& conn);
  void close_connection(int fd);
  void protocol_error(Connection& conn);

  service::PipelineService& service_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  bool running_ = false;
  std::atomic<bool> stop_requested_{false};

  std::map<int, std::unique_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> items_in_{0};
  std::atomic<std::uint64_t> items_rejected_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
};

/// Blocking loopback client for tests, the bench, and the CLI's producer
/// threads: connects, opens wire sessions, streams item batches, and tallies
/// the server's backpressure/shed notification frames. Single-threaded use
/// only.
class IngestClient {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  IngestClient(const std::string& host, std::uint16_t port,
               std::size_t max_frame_payload = std::size_t{1} << 20);
  ~IngestClient();

  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  /// Open a wire session and block until the server acks it. Returns the
  /// server-side session id from the ack.
  std::uint64_t open_session(std::uint64_t wire_id);
  /// Send one item batch (blocking write — a slow server paces the caller
  /// through TCP flow control, which is the loopback bench's rate limiter).
  void send_items(std::uint64_t wire_id, const std::uint64_t* items,
                  std::size_t count);
  void close_session(std::uint64_t wire_id);
  /// Drain any notification frames the server has sent without blocking.
  void poll_notifications();
  /// Shut down the write side and consume frames until the server closes —
  /// after this, every notification for every sent batch has been tallied.
  void finish();

  std::uint64_t backpressure_items() const noexcept { return backpressure_; }
  std::uint64_t shed_items() const noexcept { return shed_; }

 private:
  void send_all(const std::uint8_t* data, std::size_t len);
  /// Read until at least one frame is decodable (or the peer closes when
  /// `until_eof`); dispatches notification tallies. Returns false on EOF.
  bool pump(bool blocking);
  bool handle_frame(const FrameView& frame);

  int fd_ = -1;
  std::size_t max_frame_payload_;
  std::vector<std::uint8_t> in_;
  std::size_t in_consumed_ = 0;
  std::vector<std::uint8_t> scratch_;
  std::uint64_t backpressure_ = 0;
  std::uint64_t shed_ = 0;
  bool saw_open_ack_ = false;
  std::uint64_t last_ack_payload_ = 0;
};

}  // namespace ripple::net
