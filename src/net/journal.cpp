#include "net/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "net/frame.hpp"
#include "util/assert.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::net {

namespace {

// Journal record types ([u32 len][u32 crc][u8 type][payload] framing; the
// CRC covers type + payload, so a torn append is detected on recovery).
constexpr std::uint8_t kRecSessionOpen = 1;
constexpr std::uint8_t kRecSessionClose = 2;
constexpr std::uint8_t kRecDrain = 3;
constexpr std::uint8_t kRecLatency = 4;
constexpr std::size_t kRecordFrameSize = 9;  // len + crc + type
/// A record bigger than this is corruption, not data (largest legal DRAIN:
/// queue capacity 2^32 is impossible in one drain; 64 MiB is far beyond any
/// real drain and small enough to reject garbage lengths instantly).
constexpr std::uint32_t kMaxRecordLen = 64u << 20;

constexpr std::uint32_t kSnapshotMagic = 0x534A5052;  // "RPJS" on disk
constexpr std::uint8_t kSnapshotVersion = 1;

std::string journal_path(const std::string& dir) {
  return dir + "/journal.log";
}
std::string snapshot_path(const std::string& dir) {
  return dir + "/snapshot.bin";
}

void put_fingerprint(std::vector<std::uint8_t>& out,
                     const ControlFingerprint& fp) {
  put_f64(out, fp.deadline);
  put_f64(out, fp.initial_tau0);
  put_f64(out, fp.alpha);
  put_u64(out, fp.window);
  put_u64(out, fp.min_samples);
  put_f64(out, fp.drift_threshold);
  put_f64(out, fp.headroom);
  put_u64(out, fp.cooldown_ticks);
  put_f64(out, fp.boundary_margin);
  put_f64(out, fp.slack_trigger);
}

/// Cursor over a byte buffer; every read is bounds-checked so a corrupt
/// snapshot or record yields an exception, never an over-read.
struct Reader {
  const std::uint8_t* data;
  std::size_t len;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (len - pos < n) throw std::runtime_error("journal: truncated payload");
  }
  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = get_u32(data + pos);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    const std::uint64_t v = get_u64(data + pos);
    pos += 8;
    return v;
  }
  double f64() {
    need(8);
    const double v = get_f64(data + pos);
    pos += 8;
    return v;
  }
  std::uint8_t u8() {
    need(1);
    return data[pos++];
  }
};

ControlFingerprint read_fingerprint(Reader& in) {
  ControlFingerprint fp;
  fp.deadline = in.f64();
  fp.initial_tau0 = in.f64();
  fp.alpha = in.f64();
  fp.window = in.u64();
  fp.min_samples = in.u64();
  fp.drift_threshold = in.f64();
  fp.headroom = in.f64();
  fp.cooldown_ticks = in.u64();
  fp.boundary_margin = in.f64();
  fp.slack_trigger = in.f64();
  return fp;
}

void put_cycles_vector(std::vector<std::uint8_t>& out,
                       const std::vector<Cycles>& values) {
  put_u32(out, static_cast<std::uint32_t>(values.size()));
  for (const Cycles value : values) put_f64(out, value);
}

std::vector<Cycles> read_cycles_vector(Reader& in) {
  const std::uint32_t n = in.u32();
  if (n > (1u << 24)) throw std::runtime_error("journal: absurd vector size");
  std::vector<Cycles> values;
  values.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) values.push_back(in.f64());
  return values;
}

}  // namespace

ControlFingerprint ControlFingerprint::from(
    Cycles deadline, Cycles initial_tau0,
    const control::ControllerConfig& config) {
  ControlFingerprint fp;
  fp.deadline = deadline;
  fp.initial_tau0 = initial_tau0;
  fp.alpha = config.estimator.alpha;
  fp.window = config.estimator.window;
  fp.min_samples = config.estimator.min_samples;
  fp.drift_threshold = config.replanner.drift_threshold;
  fp.headroom = config.replanner.headroom;
  fp.cooldown_ticks = config.replanner.cooldown_ticks;
  fp.boundary_margin = config.replanner.boundary_margin;
  fp.slack_trigger = config.slack_trigger;
  return fp;
}

bool ControlFingerprint::operator==(const ControlFingerprint& other) const {
  return deadline == other.deadline && initial_tau0 == other.initial_tau0 &&
         alpha == other.alpha && window == other.window &&
         min_samples == other.min_samples &&
         drift_threshold == other.drift_threshold &&
         headroom == other.headroom &&
         cooldown_ticks == other.cooldown_ticks &&
         boundary_margin == other.boundary_margin &&
         slack_trigger == other.slack_trigger;
}

ArrivalJournal::ArrivalJournal(JournalConfig config,
                               const control::Controller* controller)
    : config_(std::move(config)), controller_(controller) {
  RIPPLE_REQUIRE(controller_ != nullptr, "journal needs a controller");
  RIPPLE_REQUIRE(!config_.dir.empty(), "journal dir must be set");
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec) {
    throw std::runtime_error("journal: cannot create " + config_.dir + ": " +
                             ec.message());
  }
  // One directory records one run: truncate any previous log and drop its
  // snapshot, so recovery never mixes two histories.
  std::filesystem::remove(snapshot_path(config_.dir), ec);
  fd_ = ::open(journal_path(config_.dir).c_str(),
               O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("journal: cannot open " +
                             journal_path(config_.dir) + ": " +
                             std::strerror(errno));
  }
}

ArrivalJournal::~ArrivalJournal() {
  try {
    flush();
  } catch (const std::exception&) {
    // Destructors must not throw; a failed final flush loses the buffered
    // tail, which recovery already tolerates (same as a crash).
  }
  if (fd_ >= 0) ::close(fd_);
}

void ArrivalJournal::append_record(std::uint8_t type,
                                   const std::vector<std::uint8_t>& payload) {
  // [u32 len][u32 crc][u8 type][payload]; crc covers type + payload.
  const auto len = static_cast<std::uint32_t>(1 + payload.size());
  scratch_.clear();
  scratch_.push_back(type);
  scratch_.insert(scratch_.end(), payload.begin(), payload.end());
  put_u32(buffer_, len);
  put_u32(buffer_, crc32(scratch_.data(), scratch_.size()));
  buffer_.insert(buffer_.end(), scratch_.begin(), scratch_.end());
  ++stats_.records;
  ++records_since_snapshot_;
}

void ArrivalJournal::on_session_open(service::SessionId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  open_sessions_.insert(id);
  scratch_.clear();
  std::vector<std::uint8_t> payload;
  put_u64(payload, id);
  append_record(kRecSessionOpen, payload);
}

void ArrivalJournal::on_session_close(service::SessionId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  open_sessions_.erase(id);
  std::vector<std::uint8_t> payload;
  put_u64(payload, id);
  append_record(kRecSessionClose, payload);
}

void ArrivalJournal::on_drain(
    const std::vector<service::ArrivalRecord>& admitted,
    const std::vector<Cycles>& shed_arrivals) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Snapshot boundary: the controller has exactly the already-appended
  // records applied (this drain's gaps have not been fed yet). Flush first
  // so the snapshot never covers records that are not on disk.
  if (config_.snapshot_records > 0 &&
      records_since_snapshot_ >= config_.snapshot_records) {
    flush_locked();
    snapshot_locked();
    records_since_snapshot_ = 0;
  }

  std::vector<std::uint8_t> payload;
  payload.reserve(8 + 33 * admitted.size() + 8 * shed_arrivals.size());
  put_u32(payload, static_cast<std::uint32_t>(admitted.size()));
  put_u32(payload, static_cast<std::uint32_t>(shed_arrivals.size()));
  for (const service::ArrivalRecord& record : admitted) {
    put_u64(payload, record.session);
    put_u64(payload, record.seq);
    put_f64(payload, record.arrival);
    put_u64(payload, record.payload);
    payload.push_back(record.has_payload ? 1 : 0);
    last_arrival_ = std::max(last_arrival_, record.arrival);
  }
  for (const Cycles shed : shed_arrivals) {
    put_f64(payload, shed);
    last_arrival_ = std::max(last_arrival_, shed);
  }
  append_record(kRecDrain, payload);
  ++stats_.drains;
  stats_.arrivals += admitted.size();
  ++drains_buffered_;

  if (buffer_.size() >= config_.commit_bytes ||
      drains_buffered_ >= config_.commit_drains) {
    flush_locked();
  }
}

void ArrivalJournal::on_batch_latency(Cycles worst) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint8_t> payload;
  put_f64(payload, worst);
  append_record(kRecLatency, payload);
}

void ArrivalJournal::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_locked();
}

void ArrivalJournal::flush_locked() {
  if (buffer_.empty()) return;
#if RIPPLE_OBS
  obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
  if (trace.active()) {
    trace.begin(obs::Domain::kHost, trace.track(), "journal.commit",
                obs::TraceSession::global().host_now_us());
  }
#endif
  std::size_t written = 0;
  while (written < buffer_.size()) {
    const ssize_t n = ::write(fd_, buffer_.data() + written,
                              buffer_.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("journal: write failed: ") +
                               std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  stats_.bytes += buffer_.size();
  ++stats_.commits;
  buffer_.clear();
  drains_buffered_ = 0;
#if RIPPLE_OBS
  if (trace.active()) {
    trace.end(obs::Domain::kHost, trace.track(), "journal.commit",
              obs::TraceSession::global().host_now_us());
    obs::Registry::global().counter("journal.commits")->increment();
  }
#endif
}

void ArrivalJournal::snapshot_locked() {
#if RIPPLE_OBS
  obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
  if (trace.active()) {
    trace.begin(obs::Domain::kHost, trace.track(), "journal.snapshot",
                obs::TraceSession::global().host_now_us());
  }
#endif
  const control::ControllerCheckpoint state = controller_->checkpoint();

  std::vector<std::uint8_t> body;
  put_fingerprint(body, config_.fingerprint);
  put_u64(body, stats_.records);  // records covered by this snapshot
  put_f64(body, last_arrival_);
  // Estimator.
  put_f64(body, state.estimator.prior);
  put_f64(body, state.estimator.ewma);
  put_u64(body, state.estimator.samples);
  put_cycles_vector(body, state.estimator.window);
  // Replanner + plan.
  put_u64(body, state.replanner.ticks);
  put_u64(body, state.replanner.last_replan_tick);
  put_u64(body, state.replanner.replans);
  put_u64(body, state.replanner.solve_failures);
  put_u64(body, state.replanner.plan_epoch);
  put_f64(body, state.replanner.planned_tau0);
  put_f64(body, state.replanner.plan_deadline);
  body.push_back(state.replanner.shedding ? 1 : 0);
  put_cycles_vector(body, state.replanner.waits);
  put_cycles_vector(body, state.replanner.firing_intervals);
  put_f64(body, state.replanner.predicted_active_fraction);
  put_f64(body, state.replanner.deadline_budget_used);
  // Controller.
  put_f64(body, state.worst_latency);
  put_u64(body, state.stats.ticks);
  put_u64(body, state.stats.replans);
  put_u64(body, state.stats.solve_failures);
  put_u64(body, state.stats.shed_ticks);
  put_u64(body, state.stats.slack_forced);
  // Session table.
  put_u32(body, static_cast<std::uint32_t>(open_sessions_.size()));
  for (const std::uint64_t id : open_sessions_) put_u64(body, id);

  std::vector<std::uint8_t> file;
  put_u32(file, kSnapshotMagic);
  file.push_back(kSnapshotVersion);
  put_u32(file, static_cast<std::uint32_t>(body.size()));
  put_u32(file, crc32(body.data(), body.size()));
  file.insert(file.end(), body.begin(), body.end());

  const std::string tmp = snapshot_path(config_.dir) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("journal: cannot write " + tmp);
    out.write(reinterpret_cast<const char*>(file.data()),
              static_cast<std::streamsize>(file.size()));
    if (!out) throw std::runtime_error("journal: short snapshot write");
  }
  if (std::rename(tmp.c_str(), snapshot_path(config_.dir).c_str()) != 0) {
    throw std::runtime_error("journal: snapshot rename failed");
  }
  ++stats_.snapshots;
#if RIPPLE_OBS
  if (trace.active()) {
    trace.end(obs::Domain::kHost, trace.track(), "journal.snapshot",
              obs::TraceSession::global().host_now_us());
  }
#endif
}

JournalStats ArrivalJournal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

namespace {

std::vector<std::uint8_t> read_file(const std::string& path, bool& exists) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    exists = false;
    return {};
  }
  exists = true;
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  return data;
}

struct SnapshotState {
  std::uint64_t records_covered = 0;
  Cycles last_arrival = 0.0;
  control::ControllerCheckpoint checkpoint;
  std::set<std::uint64_t> open_sessions;
};

SnapshotState load_snapshot(const std::vector<std::uint8_t>& file,
                            const ControlFingerprint& expected) {
  Reader in{file.data(), file.size()};
  if (in.u32() != kSnapshotMagic) {
    throw std::runtime_error("snapshot: bad magic");
  }
  if (in.u8() != kSnapshotVersion) {
    throw std::runtime_error("snapshot: unsupported version");
  }
  const std::uint32_t body_len = in.u32();
  const std::uint32_t body_crc = in.u32();
  in.need(body_len);
  if (crc32(file.data() + in.pos, body_len) != body_crc) {
    throw std::runtime_error("snapshot: CRC mismatch");
  }
  Reader body{file.data() + in.pos, body_len};
  const ControlFingerprint fp = read_fingerprint(body);
  if (!(fp == expected)) {
    throw std::runtime_error(
        "snapshot: control fingerprint mismatch — recover with the same "
        "deadline/tau0/controller flags the journal was recorded under");
  }
  SnapshotState state;
  state.records_covered = body.u64();
  state.last_arrival = body.f64();
  state.checkpoint.estimator.prior = body.f64();
  state.checkpoint.estimator.ewma = body.f64();
  state.checkpoint.estimator.samples = body.u64();
  state.checkpoint.estimator.window = read_cycles_vector(body);
  state.checkpoint.replanner.ticks = body.u64();
  state.checkpoint.replanner.last_replan_tick = body.u64();
  state.checkpoint.replanner.replans = body.u64();
  state.checkpoint.replanner.solve_failures = body.u64();
  state.checkpoint.replanner.plan_epoch = body.u64();
  state.checkpoint.replanner.planned_tau0 = body.f64();
  state.checkpoint.replanner.plan_deadline = body.f64();
  state.checkpoint.replanner.shedding = body.u8() != 0;
  state.checkpoint.replanner.waits = read_cycles_vector(body);
  state.checkpoint.replanner.firing_intervals = read_cycles_vector(body);
  state.checkpoint.replanner.predicted_active_fraction = body.f64();
  state.checkpoint.replanner.deadline_budget_used = body.f64();
  state.checkpoint.worst_latency = body.f64();
  state.checkpoint.stats.ticks = body.u64();
  state.checkpoint.stats.replans = body.u64();
  state.checkpoint.stats.solve_failures = body.u64();
  state.checkpoint.stats.shed_ticks = body.u64();
  state.checkpoint.stats.slack_forced = body.u64();
  const std::uint32_t session_count = body.u32();
  for (std::uint32_t i = 0; i < session_count; ++i) {
    state.open_sessions.insert(body.u64());
  }
  return state;
}

}  // namespace

RecoveryReport recover_journal(const std::string& dir,
                               const ControlFingerprint& fingerprint,
                               control::Controller& controller) {
  bool journal_exists = false;
  const std::vector<std::uint8_t> log =
      read_file(journal_path(dir), journal_exists);
  if (!journal_exists) {
    throw std::runtime_error("recover: no journal at " + journal_path(dir));
  }

  RecoveryReport report;
  std::set<std::uint64_t> open_sessions;
  Cycles last_arrival = 0.0;

  bool snapshot_exists = false;
  const std::vector<std::uint8_t> snap =
      read_file(snapshot_path(dir), snapshot_exists);
  if (snapshot_exists) {
    const SnapshotState state = load_snapshot(snap, fingerprint);
    controller.restore(state.checkpoint);
    open_sessions = state.open_sessions;
    last_arrival = state.last_arrival;
    report.snapshot_loaded = true;
    report.records_in_snapshot = state.records_covered;
  }

  // Replay the tail, skipping the records the snapshot already covers. The
  // cadence below mirrors PipelineService::drain_shard exactly: merge + sort
  // the drain's arrivals, feed max(gap, 1e-9) per arrival, tick; latency
  // records feed the *next* tick, as live.
  std::uint64_t record_index = 0;
  std::size_t pos = 0;
  std::vector<Cycles> arrivals;
  while (pos < log.size()) {
    const std::size_t remaining = log.size() - pos;
    if (remaining < kRecordFrameSize) {
      report.torn_bytes = remaining;
      break;
    }
    const std::uint32_t len = get_u32(log.data() + pos);
    if (len == 0 || len > kMaxRecordLen) {
      report.torn_bytes = remaining;
      break;
    }
    if (remaining < std::size_t{8} + len) {
      report.torn_bytes = remaining;
      break;
    }
    const std::uint32_t crc = get_u32(log.data() + pos + 4);
    const std::uint8_t* record = log.data() + pos + 8;
    if (crc32(record, len) != crc) {
      report.torn_bytes = remaining;
      break;
    }
    pos += std::size_t{8} + len;
    const std::uint64_t index = record_index++;
    if (index < report.records_in_snapshot) continue;  // folded into snapshot

    const std::uint8_t type = record[0];
    Reader payload{record + 1, len - 1};
    switch (type) {
      case kRecSessionOpen:
        open_sessions.insert(payload.u64());
        break;
      case kRecSessionClose:
        open_sessions.erase(payload.u64());
        break;
      case kRecDrain: {
        const std::uint32_t admitted = payload.u32();
        const std::uint32_t shed = payload.u32();
        arrivals.clear();
        arrivals.reserve(std::size_t{admitted} + shed);
        for (std::uint32_t i = 0; i < admitted; ++i) {
          payload.u64();  // session
          payload.u64();  // seq
          arrivals.push_back(payload.f64());
          payload.u64();  // item payload
          payload.u8();   // has_payload
        }
        for (std::uint32_t i = 0; i < shed; ++i) {
          arrivals.push_back(payload.f64());
        }
        std::sort(arrivals.begin(), arrivals.end());
        for (const Cycles arrival : arrivals) {
          controller.observe_gap(
              std::max(arrival - last_arrival, Cycles(1e-9)));
          last_arrival = arrival;
        }
        controller.tick();
        ++report.drains_replayed;
        report.arrivals_replayed += admitted;
        break;
      }
      case kRecLatency:
        controller.observe_worst_latency(payload.f64());
        break;
      default:
        throw std::runtime_error("recover: unknown record type " +
                                 std::to_string(type));
    }
    ++report.records_replayed;
  }

  report.last_arrival = last_arrival;
  report.open_sessions.assign(open_sessions.begin(), open_sessions.end());
  return report;
}

}  // namespace ripple::net
