#include "net/frame.hpp"

#include <cstring>

namespace ripple::net {

namespace {

struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

const Crc32Table& crc_table() {
  static const Crc32Table table;
  return table;
}

bool known_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kOpenSession) &&
         type <= static_cast<std::uint8_t>(FrameType::kShed);
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  const Crc32Table& table = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table.entries[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  put_u32(out, static_cast<std::uint32_t>(value));
  put_u32(out, static_cast<std::uint32_t>(value >> 32));
}

void put_f64(std::vector<std::uint8_t>& out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  put_u64(out, bits);
}

std::uint32_t get_u32(const std::uint8_t* data) {
  return static_cast<std::uint32_t>(data[0]) |
         static_cast<std::uint32_t>(data[1]) << 8 |
         static_cast<std::uint32_t>(data[2]) << 16 |
         static_cast<std::uint32_t>(data[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* data) {
  return static_cast<std::uint64_t>(get_u32(data)) |
         static_cast<std::uint64_t>(get_u32(data + 4)) << 32;
}

double get_f64(const std::uint8_t* data) {
  const std::uint64_t bits = get_u64(data);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

DecodeResult decode_frame(const std::uint8_t* data, std::size_t len,
                          std::size_t max_payload) {
  DecodeResult result;
  if (len < kFrameHeaderSize) {
    result.status = DecodeStatus::kNeedMore;
    return result;
  }
  if (get_u32(data) != kFrameMagic) {
    result.status = DecodeStatus::kBadMagic;
    return result;
  }
  if (data[4] != kFrameVersion) {
    result.status = DecodeStatus::kBadVersion;
    return result;
  }
  const std::uint8_t type = data[5];
  if (!known_type(type)) {
    result.status = DecodeStatus::kBadType;
    return result;
  }
  if (data[6] != 0 || data[7] != 0) {
    result.status = DecodeStatus::kBadFlags;
    return result;
  }
  const std::uint32_t payload_len = get_u32(data + 8);
  if (payload_len > max_payload) {
    result.status = DecodeStatus::kBadLength;
    return result;
  }
  if (len - kFrameHeaderSize < payload_len) {
    result.status = DecodeStatus::kNeedMore;
    return result;
  }
  const std::uint8_t* payload = data + kFrameHeaderSize;
  if (crc32(payload, payload_len) != get_u32(data + 12)) {
    result.status = DecodeStatus::kBadCrc;
    return result;
  }
  result.status = DecodeStatus::kOk;
  result.frame.type = static_cast<FrameType>(type);
  result.frame.session = get_u64(data + 16);
  result.frame.payload = payload;
  result.frame.payload_len = payload_len;
  result.consumed = kFrameHeaderSize + payload_len;
  return result;
}

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint64_t session, const std::uint8_t* payload,
                  std::size_t payload_len) {
  out.reserve(out.size() + kFrameHeaderSize + payload_len);
  put_u32(out, kFrameMagic);
  out.push_back(kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(0);
  out.push_back(0);
  put_u32(out, static_cast<std::uint32_t>(payload_len));
  put_u32(out, crc32(payload, payload_len));
  put_u64(out, session);
  out.insert(out.end(), payload, payload + payload_len);
}

void append_control_frame(std::vector<std::uint8_t>& out, FrameType type,
                          std::uint64_t session) {
  append_frame(out, type, session, nullptr, 0);
}

void append_u64_frame(std::vector<std::uint8_t>& out, FrameType type,
                      std::uint64_t session, std::uint64_t value) {
  std::uint8_t payload[8];
  for (int i = 0; i < 8; ++i) {
    payload[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  append_frame(out, type, session, payload, sizeof(payload));
}

void append_item_batch(std::vector<std::uint8_t>& out, std::uint64_t session,
                       const std::uint64_t* items, std::size_t count) {
  std::vector<std::uint8_t> payload;
  payload.reserve(4 + 8 * count);
  put_u32(payload, static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) put_u64(payload, items[i]);
  append_frame(out, FrameType::kItemBatch, session, payload.data(),
               payload.size());
}

std::uint64_t ItemBatchView::item(std::uint32_t index) const {
  return get_u64(items + std::size_t{8} * index);
}

bool parse_item_batch(const FrameView& frame, ItemBatchView& out) {
  if (frame.type != FrameType::kItemBatch) return false;
  if (frame.payload_len < 4) return false;
  const std::uint32_t count = get_u32(frame.payload);
  if (frame.payload_len != 4 + std::uint64_t{8} * count) return false;
  out.items = frame.payload + 4;
  out.count = count;
  return true;
}

bool parse_u64_payload(const FrameView& frame, std::uint64_t& out) {
  if (frame.payload_len != 8) return false;
  out = get_u64(frame.payload);
  return true;
}

}  // namespace ripple::net
