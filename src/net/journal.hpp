// Append-only arrival journal + snapshot recovery: the durable side of the
// ingest front door.
//
// The journal is a service::IngestObserver. Attached to a single-shard
// PipelineService it records, in the exact order the drain loop mutates the
// controller:
//
//   SESSION_OPEN / SESSION_CLOSE   one record per admission event
//   DRAIN                          one record per non-empty drain: every
//                                  admitted arrival (session, seq, arrival
//                                  stamp, u64 payload when the item carries
//                                  one) in executed order, plus the shed
//                                  arrival timestamps swapped out with them
//   LATENCY                        the worst end-to-end latency of each
//                                  executed batch that produced sink output
//
// Records are CRC-framed ([u32 len][u32 crc][u8 type][payload], the same
// CRC-32 as the wire frames) and group-committed: appends buffer in memory
// and one write() flushes the batch when the buffer crosses commit_bytes or
// commit_drains drains have accumulated. A crash loses at most the
// uncommitted tail; a torn final record (partial write) is detected by the
// CRC and discarded on recovery.
//
// Every snapshot_records records, the journal checkpoints the controller
// (control::ControllerCheckpoint — estimator window, EWMA, hysteresis
// counters, published plan with its epoch), the drain loop's last-arrival
// carry, and the open-session table into snapshot.bin (temp + rename, so a
// crash mid-snapshot leaves the previous one intact). The journal is always
// flushed before the snapshot is written, so a snapshot's records_covered
// records are all on disk.
//
// Recovery (recover_journal) = restore the snapshot, then replay the
// journal tail through the same controller cadence drain_shard uses: merge
// admitted + shed arrivals, sort, feed max(gap, 1e-9) per arrival, tick,
// then apply the batch latencies. Because the estimator, re-planner, and
// solver are deterministic, the recovered controller — its EWMA, quantile
// window, plan epoch, and firing intervals — is bit-identical to the
// uninterrupted run at the same record boundary (pinned by
// tests/test_net_journal.cpp). A killed server therefore converges to the
// same plan it would have been running, not an approximation of it.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "service/service.hpp"
#include "util/types.hpp"

namespace ripple::net {

/// The control-loop configuration the journal was recorded under. Recovery
/// must rebuild the controller with identical parameters (state replays,
/// configuration does not), so the snapshot embeds this fingerprint and
/// recover_journal refuses a mismatch instead of silently diverging.
struct ControlFingerprint {
  double deadline = 0.0;
  double initial_tau0 = 0.0;
  double alpha = 0.0;
  std::uint64_t window = 0;
  std::uint64_t min_samples = 0;
  double drift_threshold = 0.0;
  double headroom = 0.0;
  std::uint64_t cooldown_ticks = 0;
  double boundary_margin = 0.0;
  double slack_trigger = 0.0;

  static ControlFingerprint from(Cycles deadline, Cycles initial_tau0,
                                 const control::ControllerConfig& config);
  bool operator==(const ControlFingerprint& other) const;
};

struct JournalConfig {
  std::string dir;  ///< journal directory (created if missing)
  /// Group commit: flush the append buffer once it holds this many bytes...
  std::size_t commit_bytes = 64 * 1024;
  /// ...or this many DRAIN records, whichever comes first.
  std::size_t commit_drains = 8;
  /// Snapshot the controller every this many records (0 disables snapshots;
  /// recovery then replays the journal from the beginning).
  std::uint64_t snapshot_records = 4096;
  ControlFingerprint fingerprint;
};

struct JournalStats {
  std::uint64_t records = 0;    ///< records appended (buffered or flushed)
  std::uint64_t drains = 0;     ///< DRAIN records among them
  std::uint64_t arrivals = 0;   ///< admitted arrivals journaled
  std::uint64_t commits = 0;    ///< group-commit writes
  std::uint64_t bytes = 0;      ///< bytes written to the log
  std::uint64_t snapshots = 0;  ///< snapshots taken
};

class ArrivalJournal final : public service::IngestObserver {
 public:
  /// Opens (truncating) `config.dir`/journal.log and removes any stale
  /// snapshot — one journal directory records one run; recovery reads it,
  /// never appends. `controller` is the service's shard-0 controller, read
  /// only at snapshot boundaries (on the drain thread, where it is
  /// quiescent). Throws std::runtime_error on I/O failure.
  ArrivalJournal(JournalConfig config, const control::Controller* controller);
  ~ArrivalJournal() override;

  ArrivalJournal(const ArrivalJournal&) = delete;
  ArrivalJournal& operator=(const ArrivalJournal&) = delete;

  // service::IngestObserver
  void on_session_open(service::SessionId id) override;
  void on_session_close(service::SessionId id) override;
  void on_drain(const std::vector<service::ArrivalRecord>& admitted,
                const std::vector<Cycles>& shed_arrivals) override;
  void on_batch_latency(Cycles worst) override;

  /// Force a group commit of everything buffered (also done on destruction
  /// and before every snapshot).
  void flush();

  JournalStats stats() const;

 private:
  void append_record(std::uint8_t type, const std::vector<std::uint8_t>& payload);
  void flush_locked();
  void snapshot_locked();

  JournalConfig config_;
  const control::Controller* controller_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::vector<std::uint8_t> buffer_;
  std::vector<std::uint8_t> scratch_;
  std::set<std::uint64_t> open_sessions_;
  Cycles last_arrival_ = 0.0;  ///< mirrors the drain loop's carry
  std::size_t drains_buffered_ = 0;
  std::uint64_t records_since_snapshot_ = 0;
  JournalStats stats_;
};

struct RecoveryReport {
  bool snapshot_loaded = false;
  std::uint64_t records_in_snapshot = 0;  ///< records the snapshot covers
  std::uint64_t records_replayed = 0;     ///< journal-tail records applied
  std::uint64_t drains_replayed = 0;
  std::uint64_t arrivals_replayed = 0;
  std::uint64_t torn_bytes = 0;  ///< discarded unparseable tail (torn write)
  Cycles last_arrival = 0.0;
  std::vector<std::uint64_t> open_sessions;  ///< sessions open at the end
};

/// Rebuild `controller` from `dir`: load snapshot.bin when present (the
/// fingerprint must match), then replay the journal tail into the
/// controller. The controller must be freshly constructed with the
/// fingerprinted configuration. Throws std::runtime_error on missing/corrupt
/// journal or fingerprint mismatch; a torn tail is not an error (it is the
/// expected crash artifact) and is reported in torn_bytes.
RecoveryReport recover_journal(const std::string& dir,
                               const ControlFingerprint& fingerprint,
                               control::Controller& controller);

}  // namespace ripple::net
