// Input arrival processes.
//
// The paper assumes items arrive at a fixed rate rho0 (one per tau0 cycles);
// its future-work section names Poisson arrivals as the natural
// generalization. We provide both plus a two-state bursty (MMPP-style)
// process for the gamma-ray-burst example and a trace-driven process for
// replaying recorded streams.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dist/rng.hpp"
#include "util/types.hpp"

namespace ripple::arrivals {

/// Generator of inter-arrival gaps. Stateful: construct one per trial.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Time from the previous arrival to the next one (> 0 unless a trace says
  /// otherwise).
  virtual Cycles next_interarrival(dist::Xoshiro256& rng) = 0;

  /// Long-run mean inter-arrival time tau0 (1/rho0).
  virtual Cycles mean_interarrival() const = 0;

  /// The constant gap if the process is deterministic and never consumes RNG
  /// (the paper's fixed-rate model), else 0.0. Hot loops use this to hoist
  /// the per-arrival virtual dispatch; results are identical either way.
  virtual Cycles fixed_interarrival() const { return 0.0; }

  virtual std::string name() const = 0;
};

using ArrivalPtr = std::unique_ptr<ArrivalProcess>;

/// Exactly one item per tau0 cycles (the paper's model).
class FixedRateArrivals final : public ArrivalProcess {
 public:
  explicit FixedRateArrivals(Cycles tau0);
  Cycles next_interarrival(dist::Xoshiro256& rng) override;
  Cycles mean_interarrival() const override;
  Cycles fixed_interarrival() const override { return tau0_; }
  std::string name() const override;

 private:
  Cycles tau0_;
};

/// Poisson arrivals with mean gap tau0 (exponential inter-arrival).
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(Cycles tau0);
  Cycles next_interarrival(dist::Xoshiro256& rng) override;
  Cycles mean_interarrival() const override;
  std::string name() const override;

 private:
  Cycles tau0_;
};

/// Two-state Markov-modulated Poisson process: a "quiet" state with mean gap
/// tau_quiet and a "burst" state with mean gap tau_burst; state dwell times
/// are exponential with the given means. Models sensor streams with episodic
/// activity (e.g. gamma-ray bursts).
class BurstyArrivals final : public ArrivalProcess {
 public:
  struct Config {
    Cycles tau_quiet = 100.0;
    Cycles tau_burst = 5.0;
    Cycles mean_quiet_dwell = 1e5;
    Cycles mean_burst_dwell = 1e4;
  };
  explicit BurstyArrivals(const Config& config);

  Cycles next_interarrival(dist::Xoshiro256& rng) override;
  Cycles mean_interarrival() const override;
  std::string name() const override;

  bool in_burst() const noexcept { return in_burst_; }

 private:
  Config config_;
  bool in_burst_ = false;
  Cycles state_remaining_ = 0.0;
  bool state_initialized_ = false;
};

/// Replays a fixed gap sequence, then repeats it.
class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(std::vector<Cycles> gaps);
  Cycles next_interarrival(dist::Xoshiro256& rng) override;
  Cycles mean_interarrival() const override;
  std::string name() const override;

 private:
  std::vector<Cycles> gaps_;
  std::size_t next_ = 0;
  Cycles mean_ = 0.0;
};

/// Factory callback type: trial runners construct a fresh process per trial.
using ArrivalFactory = std::function<ArrivalPtr()>;

ArrivalFactory fixed_rate_factory(Cycles tau0);
ArrivalFactory poisson_factory(Cycles tau0);
ArrivalFactory bursty_factory(const BurstyArrivals::Config& config);

}  // namespace ripple::arrivals
