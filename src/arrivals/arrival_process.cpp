#include "arrivals/arrival_process.hpp"

#include <cmath>
#include <numeric>

#include "util/assert.hpp"
#include "util/string_utils.hpp"

namespace ripple::arrivals {

namespace {
/// Exponential variate with the given mean, from a uniform draw. Guards the
/// log against u == 0.
Cycles exponential(dist::Xoshiro256& rng, Cycles mean) {
  const double u = std::max(rng.uniform01(), 1e-300);
  return -mean * std::log(u);
}
}  // namespace

// ---------------------------------------------------------------- FixedRate

FixedRateArrivals::FixedRateArrivals(Cycles tau0) : tau0_(tau0) {
  RIPPLE_REQUIRE(tau0 > 0.0, "tau0 must be positive");
}
Cycles FixedRateArrivals::next_interarrival(dist::Xoshiro256&) { return tau0_; }
Cycles FixedRateArrivals::mean_interarrival() const { return tau0_; }
std::string FixedRateArrivals::name() const {
  return "fixed(tau0=" + util::format_double(tau0_, 6) + ")";
}

// ------------------------------------------------------------------ Poisson

PoissonArrivals::PoissonArrivals(Cycles tau0) : tau0_(tau0) {
  RIPPLE_REQUIRE(tau0 > 0.0, "tau0 must be positive");
}
Cycles PoissonArrivals::next_interarrival(dist::Xoshiro256& rng) {
  return exponential(rng, tau0_);
}
Cycles PoissonArrivals::mean_interarrival() const { return tau0_; }
std::string PoissonArrivals::name() const {
  return "poisson(tau0=" + util::format_double(tau0_, 6) + ")";
}

// ------------------------------------------------------------------- Bursty

BurstyArrivals::BurstyArrivals(const Config& config) : config_(config) {
  RIPPLE_REQUIRE(config.tau_quiet > 0.0 && config.tau_burst > 0.0,
                 "state rates must be positive");
  RIPPLE_REQUIRE(config.mean_quiet_dwell > 0.0 && config.mean_burst_dwell > 0.0,
                 "dwell times must be positive");
}

Cycles BurstyArrivals::next_interarrival(dist::Xoshiro256& rng) {
  if (!state_initialized_) {
    in_burst_ = false;
    state_remaining_ = exponential(rng, config_.mean_quiet_dwell);
    state_initialized_ = true;
  }
  Cycles gap = 0.0;
  while (true) {
    const Cycles tau = in_burst_ ? config_.tau_burst : config_.tau_quiet;
    const Cycles candidate = exponential(rng, tau);
    if (candidate <= state_remaining_) {
      state_remaining_ -= candidate;
      gap += candidate;
      return gap;
    }
    // The state switches before the candidate arrival happens: advance time
    // to the switch point and resample in the new state (memorylessness of
    // the exponential makes this exact).
    gap += state_remaining_;
    in_burst_ = !in_burst_;
    state_remaining_ = exponential(
        rng, in_burst_ ? config_.mean_burst_dwell : config_.mean_quiet_dwell);
  }
}

Cycles BurstyArrivals::mean_interarrival() const {
  // Long-run arrival rate: time-weighted mix of the two state rates.
  const double quiet_weight =
      config_.mean_quiet_dwell / (config_.mean_quiet_dwell + config_.mean_burst_dwell);
  const double rate = quiet_weight / config_.tau_quiet +
                      (1.0 - quiet_weight) / config_.tau_burst;
  return 1.0 / rate;
}

std::string BurstyArrivals::name() const {
  return "bursty(quiet=" + util::format_double(config_.tau_quiet, 4) +
         ", burst=" + util::format_double(config_.tau_burst, 4) + ")";
}

// -------------------------------------------------------------------- Trace

TraceArrivals::TraceArrivals(std::vector<Cycles> gaps) : gaps_(std::move(gaps)) {
  RIPPLE_REQUIRE(!gaps_.empty(), "trace must contain at least one gap");
  for (Cycles g : gaps_) RIPPLE_REQUIRE(g >= 0.0, "gaps must be non-negative");
  mean_ = std::accumulate(gaps_.begin(), gaps_.end(), 0.0) /
          static_cast<double>(gaps_.size());
  RIPPLE_REQUIRE(mean_ > 0.0, "trace mean gap must be positive");
}

Cycles TraceArrivals::next_interarrival(dist::Xoshiro256&) {
  const Cycles gap = gaps_[next_];
  next_ = (next_ + 1) % gaps_.size();
  return gap;
}
Cycles TraceArrivals::mean_interarrival() const { return mean_; }
std::string TraceArrivals::name() const {
  return "trace(n=" + std::to_string(gaps_.size()) + ")";
}

// ----------------------------------------------------------------- factories

ArrivalFactory fixed_rate_factory(Cycles tau0) {
  return [tau0] { return std::make_unique<FixedRateArrivals>(tau0); };
}
ArrivalFactory poisson_factory(Cycles tau0) {
  return [tau0] { return std::make_unique<PoissonArrivals>(tau0); };
}
ArrivalFactory bursty_factory(const BurstyArrivals::Config& config) {
  return [config] { return std::make_unique<BurstyArrivals>(config); };
}

}  // namespace ripple::arrivals
