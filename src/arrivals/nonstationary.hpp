// Non-homogeneous (time-varying-rate) arrival processes.
//
// The controller layer (src/control) adapts schedules to drifting arrival
// rates; validating it needs input streams whose true rate rho(t) is known
// exactly. A RateFunction describes rho(t); two processes drive items from
// it:
//
//   * VariableRateArrivals — deterministic: each gap is exactly 1/rho(t) at
//     the moment the previous item arrived. The empirical rate tracks rho(t)
//     with no sampling noise, which gives the controller convergence tests a
//     noise-free oracle.
//   * ThinningArrivals — a non-homogeneous Poisson process via Lewis-Shedler
//     thinning: candidate arrivals are drawn at the envelope rate max_rate()
//     and accepted with probability rho(t)/max_rate(). Exact for any bounded
//     rho(t), and deterministic given the RNG seed.
//
// Both processes track their own absolute clock (the ArrivalProcess
// interface deals only in gaps), so construct a fresh instance per trial.
#pragma once

#include <memory>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "util/types.hpp"

namespace ripple::arrivals {

/// Instantaneous arrival rate rho(t) in items per cycle, bounded and
/// strictly positive.
class RateFunction {
 public:
  virtual ~RateFunction() = default;
  /// rho(t) > 0 for t >= 0.
  virtual double rate_at(Cycles t) const = 0;
  /// A finite upper bound on rho(t) over t >= 0 (the thinning envelope).
  virtual double max_rate() const = 0;
  virtual std::string name() const = 0;
};

using RateFnPtr = std::shared_ptr<const RateFunction>;

/// Piecewise-constant rate: rho(t) = rates[k] for t in [knots[k], knots[k+1])
/// with knots[0] == 0 and an implicit final segment extending to infinity.
/// The controller's rate-step traces are built from this.
class PiecewiseConstantRate final : public RateFunction {
 public:
  /// `knots` are the segment start times (first must be 0, strictly
  /// increasing); `rates` are the per-segment rates (> 0), same length.
  PiecewiseConstantRate(std::vector<Cycles> knots, std::vector<double> rates);
  double rate_at(Cycles t) const override;
  double max_rate() const override { return max_rate_; }
  std::string name() const override;

 private:
  std::vector<Cycles> knots_;
  std::vector<double> rates_;
  double max_rate_ = 0.0;
};

/// Linear ramp: rho(t) interpolates rate0 -> rate1 over [0, ramp_duration],
/// then holds rate1. The controller's rate-ramp traces are built from this.
class LinearRampRate final : public RateFunction {
 public:
  LinearRampRate(double rate0, double rate1, Cycles ramp_duration);
  double rate_at(Cycles t) const override;
  double max_rate() const override;
  std::string name() const override;

 private:
  double rate0_;
  double rate1_;
  Cycles ramp_duration_;
};

/// Sinusoidal rate: rho(t) = base + amplitude * sin(2*pi*t/period + phase),
/// with amplitude < base so the rate stays positive.
class SinusoidalRate final : public RateFunction {
 public:
  SinusoidalRate(double base, double amplitude, Cycles period,
                 double phase = 0.0);
  double rate_at(Cycles t) const override;
  double max_rate() const override { return base_ + amplitude_; }
  std::string name() const override;

 private:
  double base_;
  double amplitude_;
  Cycles period_;
  double phase_;
};

/// Deterministic non-stationary arrivals: the gap after an item arriving at
/// time t is exactly 1/rho(t). Never consumes RNG.
class VariableRateArrivals final : public ArrivalProcess {
 public:
  explicit VariableRateArrivals(RateFnPtr rate);
  Cycles next_interarrival(dist::Xoshiro256& rng) override;
  /// Long-run mean gap is rate-path dependent; reports 1/rho(now) so hot
  /// loops treating it as a hint stay sane. fixed_interarrival() stays 0 (the
  /// gap varies), so simulators take the generic per-arrival path.
  Cycles mean_interarrival() const override;
  std::string name() const override;

  Cycles now() const noexcept { return now_; }

 private:
  RateFnPtr rate_;
  Cycles now_ = 0.0;
};

/// Non-homogeneous Poisson arrivals via Lewis-Shedler thinning against the
/// max_rate() envelope. Deterministic given the RNG stream.
class ThinningArrivals final : public ArrivalProcess {
 public:
  explicit ThinningArrivals(RateFnPtr rate);
  Cycles next_interarrival(dist::Xoshiro256& rng) override;
  /// Mean gap at the envelope's *current* rate (rate-path dependent overall);
  /// reported as 1/rho(now).
  Cycles mean_interarrival() const override;
  std::string name() const override;

  Cycles now() const noexcept { return now_; }

 private:
  RateFnPtr rate_;
  Cycles now_ = 0.0;
};

ArrivalFactory variable_rate_factory(RateFnPtr rate);
ArrivalFactory thinning_factory(RateFnPtr rate);

}  // namespace ripple::arrivals
