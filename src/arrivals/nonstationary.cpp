#include "arrivals/nonstationary.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/string_utils.hpp"

namespace ripple::arrivals {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;

Cycles exponential(dist::Xoshiro256& rng, Cycles mean) {
  const double u = std::max(rng.uniform01(), 1e-300);
  return -mean * std::log(u);
}
}  // namespace

// ------------------------------------------------------ PiecewiseConstantRate

PiecewiseConstantRate::PiecewiseConstantRate(std::vector<Cycles> knots,
                                             std::vector<double> rates)
    : knots_(std::move(knots)), rates_(std::move(rates)) {
  RIPPLE_REQUIRE(!knots_.empty() && knots_.size() == rates_.size(),
                 "one rate per knot required");
  RIPPLE_REQUIRE(knots_.front() == 0.0, "first knot must be t = 0");
  for (std::size_t k = 1; k < knots_.size(); ++k) {
    RIPPLE_REQUIRE(knots_[k] > knots_[k - 1], "knots must strictly increase");
  }
  for (double r : rates_) RIPPLE_REQUIRE(r > 0.0, "rates must be positive");
  max_rate_ = *std::max_element(rates_.begin(), rates_.end());
}

double PiecewiseConstantRate::rate_at(Cycles t) const {
  // First knot whose start exceeds t; the segment before it owns t.
  const auto it = std::upper_bound(knots_.begin(), knots_.end(), t);
  const std::size_t segment =
      static_cast<std::size_t>(std::max<std::ptrdiff_t>(
          0, std::distance(knots_.begin(), it) - 1));
  return rates_[segment];
}

std::string PiecewiseConstantRate::name() const {
  return "step(segments=" + std::to_string(rates_.size()) + ")";
}

// ------------------------------------------------------------ LinearRampRate

LinearRampRate::LinearRampRate(double rate0, double rate1,
                               Cycles ramp_duration)
    : rate0_(rate0), rate1_(rate1), ramp_duration_(ramp_duration) {
  RIPPLE_REQUIRE(rate0 > 0.0 && rate1 > 0.0, "rates must be positive");
  RIPPLE_REQUIRE(ramp_duration > 0.0, "ramp duration must be positive");
}

double LinearRampRate::rate_at(Cycles t) const {
  if (t <= 0.0) return rate0_;
  if (t >= ramp_duration_) return rate1_;
  return rate0_ + (rate1_ - rate0_) * (t / ramp_duration_);
}

double LinearRampRate::max_rate() const { return std::max(rate0_, rate1_); }

std::string LinearRampRate::name() const {
  return "ramp(" + util::format_double(rate0_, 6) + "->" +
         util::format_double(rate1_, 6) + ")";
}

// ------------------------------------------------------------ SinusoidalRate

SinusoidalRate::SinusoidalRate(double base, double amplitude, Cycles period,
                               double phase)
    : base_(base), amplitude_(amplitude), period_(period), phase_(phase) {
  RIPPLE_REQUIRE(base > 0.0, "base rate must be positive");
  RIPPLE_REQUIRE(amplitude >= 0.0 && amplitude < base,
                 "amplitude must be in [0, base) so the rate stays positive");
  RIPPLE_REQUIRE(period > 0.0, "period must be positive");
}

double SinusoidalRate::rate_at(Cycles t) const {
  return base_ + amplitude_ * std::sin(kTwoPi * t / period_ + phase_);
}

std::string SinusoidalRate::name() const {
  return "sine(base=" + util::format_double(base_, 6) +
         ", amp=" + util::format_double(amplitude_, 6) + ")";
}

// ------------------------------------------------------ VariableRateArrivals

VariableRateArrivals::VariableRateArrivals(RateFnPtr rate)
    : rate_(std::move(rate)) {
  RIPPLE_REQUIRE(rate_ != nullptr, "rate function required");
}

Cycles VariableRateArrivals::next_interarrival(dist::Xoshiro256&) {
  const Cycles gap = 1.0 / rate_->rate_at(now_);
  now_ += gap;
  return gap;
}

Cycles VariableRateArrivals::mean_interarrival() const {
  return 1.0 / rate_->rate_at(now_);
}

std::string VariableRateArrivals::name() const {
  return "variable[" + rate_->name() + "]";
}

// ---------------------------------------------------------- ThinningArrivals

ThinningArrivals::ThinningArrivals(RateFnPtr rate) : rate_(std::move(rate)) {
  RIPPLE_REQUIRE(rate_ != nullptr, "rate function required");
  RIPPLE_REQUIRE(rate_->max_rate() > 0.0, "thinning envelope must be positive");
}

Cycles ThinningArrivals::next_interarrival(dist::Xoshiro256& rng) {
  const double envelope = rate_->max_rate();
  const Cycles start = now_;
  // Candidate points at the envelope rate; accept with rho(t)/envelope. The
  // acceptance test uses the candidate's own timestamp, which makes the
  // construction exact (Lewis & Shedler 1979).
  while (true) {
    now_ += exponential(rng, 1.0 / envelope);
    const double accept = rate_->rate_at(now_) / envelope;
    if (rng.uniform01() < accept) return now_ - start;
  }
}

Cycles ThinningArrivals::mean_interarrival() const {
  return 1.0 / rate_->rate_at(now_);
}

std::string ThinningArrivals::name() const {
  return "thinning[" + rate_->name() + "]";
}

// ------------------------------------------------------------------ factories

ArrivalFactory variable_rate_factory(RateFnPtr rate) {
  return [rate] { return std::make_unique<VariableRateArrivals>(rate); };
}
ArrivalFactory thinning_factory(RateFnPtr rate) {
  return [rate] { return std::make_unique<ThinningArrivals>(rate); };
}

}  // namespace ripple::arrivals
