// Wall-clock stopwatch for harness progress reporting.
#pragma once

#include <chrono>

namespace ripple::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ripple::util
