#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace ripple::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

LogLevel parse_log_level(const std::string& name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  const auto now = std::chrono::system_clock::now();
  const auto secs = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%lld.%03lld] %-5s %s\n",
               static_cast<long long>(secs / 1000),
               static_cast<long long>(secs % 1000), level_name(level),
               message.c_str());
}
}  // namespace detail

}  // namespace ripple::util
