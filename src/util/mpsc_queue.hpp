// Bounded lock-free multi-producer single-consumer queue (Vyukov-style
// sequence ring).
//
// The sharded service replaced its per-session ring-scan merge with one of
// these per shard: producers enqueue pending items directly and the shard
// worker pops them in enqueue order, so a drain costs O(items popped)
// instead of O(open sessions). Each cell carries a sequence stamp; a push
// claims a cell with one CAS on the tail and publishes the payload with a
// release store of the stamp, a pop (single consumer only) acquires the
// stamp, moves the payload out, and recycles the cell one lap ahead. No
// locks anywhere, and full/empty are detected from the stamp alone, so the
// queue stays bounded: try_push on a full ring returns false and the caller
// counts the rejection (backpressure) rather than blocking or dropping.
//
// Progress note: a producer that claimed a cell but has not yet published it
// stalls the consumer at that cell (try_pop sees the stale stamp and returns
// false). Items are conserved — the pop simply succeeds once the store
// lands. ThreadSanitizer sees every edge because the protocol is plain
// acquire/release atomics (validated by tests/test_mpsc_queue.cpp and the
// multi-shard service soak in the TSan CI job).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace ripple::util {

template <typename T>
class MpscQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 8, maximum 2^32 —
  /// a ring bigger than that is a configuration error, and the unchecked
  /// doubling loop would overflow to zero and spin forever past 2^63).
  explicit MpscQueue(std::size_t capacity) {
    RIPPLE_REQUIRE(capacity <= kMaxCapacity,
                   "MpscQueue capacity exceeds the 2^32 ring bound");
    std::size_t rounded = kMinCapacity;
    while (rounded < capacity) rounded *= 2;
    cells_ = std::make_unique<Cell[]>(rounded);
    mask_ = rounded - 1;
    for (std::size_t i = 0; i < rounded; ++i) {
      cells_[i].stamp.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Racy occupancy estimate (any thread): exact when quiescent. Both loads
  /// are relaxed and unordered, so a reader racing the consumer can observe
  /// head ahead of tail; that underflow is clamped to zero rather than
  /// wrapping — the estimate may jitter downward transiently, it is *not*
  /// monotone between concurrent reads.
  std::size_t approx_size() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  /// Enqueue (any thread). Returns false when the ring is full — the caller
  /// owns the rejection accounting; nothing is ever silently dropped.
  bool try_push(T value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t stamp = cell.stamp.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(stamp) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.stamp.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS refreshed pos; retry against the new tail.
      } else if (diff < 0) {
        return false;  // the cell is still occupied one lap behind: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Dequeue (the single consumer thread only). Returns false when empty or
  /// when the head cell's producer has not published yet.
  bool try_pop(T& out) {
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t stamp = cell.stamp.load(std::memory_order_acquire);
    const auto diff = static_cast<std::intptr_t>(stamp) -
                      static_cast<std::intptr_t>(pos + 1);
    if (diff < 0) return false;
    RIPPLE_REQUIRE(diff == 0, "MpscQueue: concurrent consumers detected");
    out = std::move(cell.value);
    cell.value = T();  // release payload resources one lap early
    cell.stamp.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Pop everything currently published into `out` (consumer thread only).
  /// Returns the number of items appended.
  std::size_t drain(std::vector<T>& out) {
    std::size_t popped = 0;
    T value;
    while (try_pop(value)) {
      out.push_back(std::move(value));
      ++popped;
    }
    return popped;
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;
  static constexpr std::size_t kMaxCapacity = std::size_t{1} << 32;

  struct Cell {
    std::atomic<std::size_t> stamp{0};
    T value{};
  };

  // Producers contend on tail_; the consumer owns head_. Keep them on
  // separate cache lines so pushes don't invalidate the consumer's line.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
};

}  // namespace ripple::util
