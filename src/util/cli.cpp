#include "util/cli.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/string_utils.hpp"

namespace ripple::util {

void CliParser::add_flag(const std::string& name, bool default_value,
                         const std::string& help) {
  Option opt;
  opt.kind = Kind::kFlag;
  opt.help = help;
  opt.flag_value = default_value;
  options_[name] = std::move(opt);
}

void CliParser::add_int(const std::string& name, long long default_value,
                        const std::string& help) {
  Option opt;
  opt.kind = Kind::kInt;
  opt.help = help;
  opt.int_value = default_value;
  options_[name] = std::move(opt);
}

void CliParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  Option opt;
  opt.kind = Kind::kDouble;
  opt.help = help;
  opt.double_value = default_value;
  options_[name] = std::move(opt);
}

void CliParser::add_string(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  Option opt;
  opt.kind = Kind::kString;
  opt.help = help;
  opt.string_value = default_value;
  options_[name] = std::move(opt);
}

Result<bool> CliParser::assign(const std::string& name, const std::string& value) {
  auto it = options_.find(name);
  if (it == options_.end()) {
    return Result<bool>::failure("unknown_option", "unknown option --" + name);
  }
  Option& opt = it->second;
  switch (opt.kind) {
    case Kind::kFlag: {
      if (value == "true" || value == "1" || value.empty()) {
        opt.flag_value = true;
      } else if (value == "false" || value == "0") {
        opt.flag_value = false;
      } else {
        return Result<bool>::failure("bad_value",
                                     "--" + name + " expects true/false, got '" + value + "'");
      }
      return true;
    }
    case Kind::kInt: {
      long long parsed = 0;
      if (!parse_int64(value, parsed)) {
        return Result<bool>::failure("bad_value",
                                     "--" + name + " expects an integer, got '" + value + "'");
      }
      opt.int_value = parsed;
      return true;
    }
    case Kind::kDouble: {
      double parsed = 0.0;
      if (!parse_double(value, parsed)) {
        return Result<bool>::failure("bad_value",
                                     "--" + name + " expects a number, got '" + value + "'");
      }
      opt.double_value = parsed;
      return true;
    }
    case Kind::kString:
      opt.string_value = value;
      return true;
  }
  return Result<bool>::failure("internal", "unreachable option kind");
}

Result<bool> CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      auto res = assign(body.substr(0, eq), body.substr(eq + 1));
      if (!res.ok()) return res;
      continue;
    }
    // --no-flag form for booleans.
    if (starts_with(body, "no-")) {
      const std::string name = body.substr(3);
      auto it = options_.find(name);
      if (it != options_.end() && it->second.kind == Kind::kFlag) {
        it->second.flag_value = false;
        continue;
      }
    }
    // Bare boolean flag, or option taking the next argv entry as value.
    auto it = options_.find(body);
    if (it == options_.end()) {
      return Result<bool>::failure("unknown_option", "unknown option --" + body);
    }
    if (it->second.kind == Kind::kFlag) {
      it->second.flag_value = true;
      continue;
    }
    if (i + 1 >= argc) {
      return Result<bool>::failure("missing_value", "--" + body + " requires a value");
    }
    auto res = assign(body, argv[++i]);
    if (!res.ok()) return res;
  }
  return true;
}

std::string CliParser::usage(const std::string& program_description) const {
  std::ostringstream os;
  os << program_description << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    switch (opt.kind) {
      case Kind::kFlag: os << " (flag, default " << (opt.flag_value ? "true" : "false") << ")"; break;
      case Kind::kInt: os << "=<int> (default " << opt.int_value << ")"; break;
      case Kind::kDouble: os << "=<num> (default " << format_double(opt.double_value) << ")"; break;
      case Kind::kString: os << "=<str> (default '" << opt.string_value << "')"; break;
    }
    os << "\n      " << opt.help << "\n";
  }
  return os.str();
}

const CliParser::Option& CliParser::require(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  RIPPLE_REQUIRE(it != options_.end(), "option not declared: " + name);
  RIPPLE_REQUIRE(it->second.kind == kind, "option kind mismatch: " + name);
  return it->second;
}

bool CliParser::get_flag(const std::string& name) const {
  return require(name, Kind::kFlag).flag_value;
}
long long CliParser::get_int(const std::string& name) const {
  return require(name, Kind::kInt).int_value;
}
double CliParser::get_double(const std::string& name) const {
  return require(name, Kind::kDouble).double_value;
}
const std::string& CliParser::get_string(const std::string& name) const {
  return require(name, Kind::kString).string_value;
}

}  // namespace ripple::util
