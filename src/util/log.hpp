// Minimal leveled, thread-safe logger writing to stderr.
#pragma once

#include <sstream>
#include <string>

namespace ripple::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Defaults to kWarn so
/// library code stays quiet unless a tool opts in.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parse "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
/// Unknown strings map to kWarn.
LogLevel parse_log_level(const std::string& name) noexcept;

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: LOG(kInfo) << "cells: " << n;
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() { detail::emit(level_, stream_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace ripple::util

#define RIPPLE_LOG(level)                                              \
  if (static_cast<int>(level) < static_cast<int>(::ripple::util::log_level())) \
    ;                                                                  \
  else                                                                 \
    ::ripple::util::LogStatement(level)
