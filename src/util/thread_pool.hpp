// Fixed-size thread pool used to fan out independent (tau0, D) sweep cells
// and simulation trials. All work items must be independent; results are
// deterministic because every trial derives its RNG seed from its own
// coordinates, never from scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ripple::util {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future resolves when it completes.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::logic_error("submit() on stopped ThreadPool");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Run fn(i) for i in [0, count) across the pool and wait for completion.
  /// Exceptions from tasks propagate out of parallel_for (first one wins).
  ///
  /// `grain` is the number of consecutive indices a worker claims per fetch
  /// on the shared counter. Scheduling stays dynamic (uneven costs still
  /// balance); larger grains amortize the atomic and cache-line traffic when
  /// individual items are cheap. Results must not depend on execution order,
  /// so the grain never affects outputs — only throughput. grain == 0 is
  /// treated as 1.
  ///
  /// Must NOT be called from a worker thread of the same pool: the nested
  /// call would block on its helper lanes while those lanes wait in the task
  /// queue behind blocked workers (deadlock). Debug builds assert on this.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace ripple::util
