// Fundamental types shared across all RIPPLE modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace ripple {

/// Simulated time, in device cycles. The paper's service times t_i are integer
/// cycle counts, but optimal wait times w_i are real-valued, so all scheduling
/// math runs over the reals.
using Cycles = double;

/// Index of a pipeline node (0 = head).
using NodeIndex = std::size_t;

/// Count of data items.
using ItemCount = std::uint64_t;

/// A value representing "no limit" for cycle quantities.
inline constexpr Cycles kUnboundedCycles = std::numeric_limits<Cycles>::infinity();

/// Relative tolerance used when comparing cycle quantities produced by
/// different code paths (optimizer vs. simulator).
inline constexpr double kCycleTolerance = 1e-9;

}  // namespace ripple
