// Aligned console tables, used by the bench harnesses to print the paper's
// tables and figure series in human-readable form.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ripple::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Right-pads each column to its widest cell and writes with a separator
  /// rule under the header.
  void print(std::ostream& out) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ripple::util
