// Chase-Lev work-stealing deque (single owner, many thieves).
//
// The owner pushes and pops at the bottom; any other thread steals from the
// top. This is the classic lock-free structure from Chase & Lev, "Dynamic
// Circular Work-Stealing Deque" (SPAA '05), with the C11 memory orderings
// from Lê et al., "Correct and Efficient Work-Stealing for Weak Memory
// Models" (PPoPP '13). The runtime's stage scheduler gives each execution
// participant one of these; idle workers scan the others' deques and steal
// the oldest task, so the firing backlog balances without a shared lock on
// the hot path.
//
// Values are trivially copyable (the scheduler stores raw task pointers).
// Capacity grows by doubling; retired rings are kept alive until the deque
// is destroyed so a concurrent thief holding a stale ring pointer can still
// read through it (its CAS on top_ will fail and discard the stale value —
// the standard leak-on-grow trick, bounded at 2x the peak ring size).
//
// One deviation from the paper: every owner store to bottom_ is release
// rather than relaxed. In the paper the payload edge from push to a thief
// rides push's release *fence* — a thief's acquire load of bottom_ may read
// a value stored later by pop (relaxed in the paper), which still
// synchronizes with the fence under [atomics.fences]p2. That is correct
// C++, but ThreadSanitizer does not model standalone fences and reports the
// stolen task's payload as racing with the owner's pre-push writes.
// Release-storing bottom_ gives every delivery a per-operation edge TSan
// understands; on x86 a release store is an ordinary store, and in pop the
// cost is dominated by the seq_cst fence that is still required for the
// pop/steal mutual exclusion on the last element.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace ripple::util {

template <typename T>
class WorkStealingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "WorkStealingDeque stores trivially copyable values "
                "(task pointers)");

 public:
  explicit WorkStealingDeque(std::size_t capacity = 64) {
    std::size_t cap = 8;
    while (cap < capacity) cap *= 2;
    rings_.push_back(std::make_unique<Ring>(cap));
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only: append a task at the bottom.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(ring->capacity)) {
      ring = grow(ring, t, b);
    }
    ring->put(b, value);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: take the most recently pushed task. Returns false when the
  /// deque is empty (including losing the race for the last task to a
  /// thief).
  bool pop(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Already empty: undo the reservation.
      bottom_.store(b + 1, std::memory_order_release);
      return false;
    }
    out = ring->get(b);
    if (t == b) {
      // Last element: race thieves for it through top_.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_release);
        return false;
      }
      bottom_.store(b + 1, std::memory_order_release);
    }
    return true;
  }

  /// Any thread: steal the oldest task. Returns false when empty or when the
  /// steal raced another thief or the owner's pop (callers retry or move on
  /// to the next victim; spurious false is allowed).
  bool steal(T& out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    Ring* ring = ring_.load(std::memory_order_acquire);
    const T value = ring->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    out = value;
    return true;
  }

  /// Approximate size (owner's view is exact between its own operations).
  std::size_t size() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty() const noexcept { return size() == 0; }

 private:
  struct Ring {
    explicit Ring(std::size_t cap)
        : capacity(cap), mask(cap - 1), cells(new std::atomic<T>[cap]) {}
    const std::size_t capacity;
    const std::size_t mask;
    // Cells are relaxed atomics: a thief may read a cell the owner is
    // concurrently overwriting after wraparound; the thief's CAS on top_
    // rejects such torn-in-time reads, but the reads themselves must be
    // data-race-free.
    std::unique_ptr<std::atomic<T>[]> cells;

    void put(std::int64_t i, T value) {
      cells[static_cast<std::size_t>(i) & mask].store(
          value, std::memory_order_relaxed);
    }
    T get(std::int64_t i) const {
      return cells[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
  };

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    auto fresh = std::make_unique<Ring>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) fresh->put(i, old->get(i));
    Ring* raw = fresh.get();
    rings_.push_back(std::move(fresh));  // owner-only; old rings stay alive
    ring_.store(raw, std::memory_order_release);
    return raw;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Ring*> ring_{nullptr};
  std::vector<std::unique_ptr<Ring>> rings_;  // owner-only (retired + live)
};

}  // namespace ripple::util
