#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace ripple::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ && drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Dynamic scheduling: workers pull the next index from a shared counter, so
  // uneven cell costs (infeasible cells return instantly) balance naturally.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto body = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count || failed.load()) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) first_error = std::current_exception();
        return;
      }
    }
  };

  const std::size_t lanes = std::min(count, thread_count());
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  // Keep one lane on the calling thread so a single-threaded pool still makes
  // progress even if the pool is busy elsewhere.
  for (std::size_t i = 1; i < lanes; ++i) futures.push_back(submit(body));
  body();
  for (auto& f : futures) f.get();

  if (failed.load() && first_error) std::rethrow_exception(first_error);
}

}  // namespace ripple::util
