#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <exception>

namespace ripple::util {

namespace {
// Which pool (if any) the current thread is a worker of. Used to catch
// reentrant parallel_for, which would deadlock: the nested caller blocks on
// its helper lanes while those lanes sit in tasks_ behind blocked workers.
thread_local const ThreadPool* g_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  g_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ && drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  assert(g_worker_pool != this &&
         "parallel_for must not be called from a worker of the same pool "
         "(nested use deadlocks; see thread_pool.hpp)");
  if (count == 0) return;
  if (grain == 0) grain = 1;

  // Dynamic scheduling: workers claim the next *range* of `grain` indices
  // from a shared counter, so uneven item costs (infeasible sweep cells
  // return instantly) still balance while cheap items pay one atomic per
  // chunk instead of one per index.
  struct ForState {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    // Completion latch for the helper lanes (no per-lane packaged_task /
    // future heap traffic — the lanes share this one stack-allocated state).
    // lanes_left is guarded by done_mutex, NOT atomic: the decrement-to-zero
    // and the notify must form one critical section, or the waiting caller
    // could observe zero, return, and destroy this state while the notifier
    // still holds references to done_mutex / done_cv.
    std::size_t lanes_left = 0;
    std::mutex done_mutex;
    std::condition_variable done_cv;
  } state;

  auto body = [&state, &fn, count, grain] {
    while (true) {
      const std::size_t begin = state.next.fetch_add(grain);
      if (begin >= count || state.failed.load()) return;
      const std::size_t end = std::min(begin + grain, count);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.error_mutex);
        if (!state.failed.exchange(true)) {
          state.first_error = std::current_exception();
        }
        return;
      }
    }
  };

  const std::size_t chunks = (count + grain - 1) / grain;
  const std::size_t lanes = std::min(chunks, thread_count());
  // Written before the helper tasks are enqueued; the queue mutex handoff
  // publishes it to the workers.
  state.lanes_left = lanes > 0 ? lanes - 1 : 0;

  // Keep one lane on the calling thread so a single-threaded pool still makes
  // progress even if the pool is busy elsewhere.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::logic_error("parallel_for on stopped ThreadPool");
    for (std::size_t i = 1; i < lanes; ++i) {
      tasks_.emplace([&state, body] {
        body();
        std::lock_guard<std::mutex> done_lock(state.done_mutex);
        if (--state.lanes_left == 0) state.done_cv.notify_one();
      });
    }
  }
  if (lanes > 1) cv_.notify_all();

  body();

  std::unique_lock<std::mutex> done_lock(state.done_mutex);
  state.done_cv.wait(done_lock, [&state] { return state.lanes_left == 0; });
  done_lock.unlock();

  if (state.failed.load() && state.first_error) {
    std::rethrow_exception(state.first_error);
  }
}

}  // namespace ripple::util
