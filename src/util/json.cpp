#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace ripple::util {

void JsonWriter::write_string(std::string_view text) {
  out_ << '"';
  for (char c : text) {
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\r': out_ << "\\r"; break;
      case '\t': out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ << buffer;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

void JsonWriter::pre_value() {
  RIPPLE_REQUIRE(!done_, "JSON document already complete");
  if (stack_.empty()) return;  // top-level single value
  if (stack_.back() == Frame::kObject) {
    RIPPLE_REQUIRE(expecting_value_, "object members need a key first");
    expecting_value_ = false;
    return;
  }
  if (has_items_.back()) out_ << ',';
  has_items_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ << '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  RIPPLE_REQUIRE(!stack_.empty() && stack_.back() == Frame::kObject,
                 "end_object without matching begin_object");
  RIPPLE_REQUIRE(!expecting_value_, "dangling key before end_object");
  out_ << '}';
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ << '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  RIPPLE_REQUIRE(!stack_.empty() && stack_.back() == Frame::kArray,
                 "end_array without matching begin_array");
  out_ << ']';
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  RIPPLE_REQUIRE(!stack_.empty() && stack_.back() == Frame::kObject,
                 "keys only belong inside objects");
  RIPPLE_REQUIRE(!expecting_value_, "two keys in a row");
  if (has_items_.back()) out_ << ',';
  has_items_.back() = true;
  write_string(name);
  out_ << ':';
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  pre_value();
  write_string(text);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  pre_value();
  if (std::isfinite(number)) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", number);
    out_ << buffer;
  } else {
    out_ << "null";  // JSON has no inf/nan
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  pre_value();
  out_ << number;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  pre_value();
  out_ << number;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  pre_value();
  out_ << (flag ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ << "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

bool JsonWriter::complete() const { return done_ && stack_.empty(); }

}  // namespace ripple::util
