#include "util/table.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ripple::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RIPPLE_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  RIPPLE_REQUIRE(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ripple::util
