#include "util/string_utils.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace ripple::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  std::string text(buffer);
  if (text.find('.') != std::string::npos) {
    std::size_t last = text.find_last_not_of('0');
    if (text[last] == '.') --last;
    text.erase(last + 1);
  }
  if (text == "-0") text = "0";
  return text;
}

std::string with_commas(unsigned long long value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

bool parse_double(std::string_view text, double& out) noexcept {
  // std::from_chars for double is available in libstdc++ 11+.
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) return false;
  const char* begin = trimmed.data();
  const char* end = begin + trimmed.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_int64(std::string_view text, long long& out) noexcept {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) return false;
  const char* begin = trimmed.data();
  const char* end = begin + trimmed.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

}  // namespace ripple::util
