// JSON value tree + recursive-descent parser (RFC 8259 subset).
//
// Counterpart to the streaming writer in json.hpp: pipeline specs and tool
// configurations are read back through this. The parser handles objects,
// arrays, strings (with escapes), numbers, booleans and null; it rejects
// trailing garbage and reports errors with byte offsets.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/result.hpp"

namespace ripple::util {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  JsonValue() : data_(nullptr) {}
  JsonValue(std::nullptr_t) : data_(nullptr) {}          // NOLINT
  JsonValue(bool b) : data_(b) {}                        // NOLINT
  JsonValue(double d) : data_(d) {}                      // NOLINT
  JsonValue(std::string s) : data_(std::move(s)) {}      // NOLINT
  JsonValue(const char* s) : data_(std::string(s)) {}    // NOLINT
  JsonValue(JsonArray a) : data_(std::move(a)) {}        // NOLINT
  JsonValue(JsonObject o) : data_(std::move(o)) {}       // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(data_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(data_); }

  /// Typed accessors; throw std::logic_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Convenience typed getters with defaults (no throw on absence).
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key, std::string fallback) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      data_;
};

/// Parse a complete JSON document. Error code "parse_error" carries the
/// offset and a short description.
Result<JsonValue> parse_json(std::string_view text);

}  // namespace ripple::util
