// Result<T>: a lightweight expected-style return type.
//
// Solvers and simulators report recoverable failures (infeasible problem,
// invalid configuration) through Result rather than exceptions, keeping
// exceptions for programmer errors only (see assert.hpp).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace ripple::util {

/// Error payload: a machine-readable code plus a human-readable message.
struct Error {
  std::string code;     ///< e.g. "infeasible", "no_convergence"
  std::string message;  ///< free-form detail

  friend bool operator==(const Error&, const Error&) = default;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Result failure(std::string code, std::string message) {
    return Result(Error{std::move(code), std::move(message)});
  }

  bool ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  /// Access the value; throws if this holds an error (programmer error).
  const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error_->message);
    return *value_;
  }
  T& value() & {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error_->message);
    return *value_;
  }
  T&& take() && {
    if (!ok()) throw std::logic_error("Result::take() on error: " + error_->message);
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const& noexcept {
    return ok() ? *value_ : fallback;
  }

  /// Access the error; throws if this holds a value.
  const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() on success");
    return *error_;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

}  // namespace ripple::util
