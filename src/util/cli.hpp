// Tiny command-line option parser for the bench harnesses and examples.
//
// Supports --name=value, --name value, and boolean --flag / --no-flag forms.
// Unknown options are an error so typos in sweep parameters can't silently
// run the wrong experiment.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace ripple::util {

class CliParser {
 public:
  /// Declare options before parse(). `help` is shown by usage().
  void add_flag(const std::string& name, bool default_value, const std::string& help);
  void add_int(const std::string& name, long long default_value, const std::string& help);
  void add_double(const std::string& name, double default_value, const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parse argv; on failure returns an Error describing the bad argument.
  /// "--help" sets help_requested() without failing.
  Result<bool> parse(int argc, const char* const* argv);

  bool help_requested() const noexcept { return help_requested_; }
  std::string usage(const std::string& program_description) const;

  bool get_flag(const std::string& name) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// Positional arguments left over after option parsing.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Option {
    Kind kind;
    std::string help;
    bool flag_value = false;
    long long int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };

  Result<bool> assign(const std::string& name, const std::string& value);
  const Option& require(const std::string& name, Kind kind) const;

  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace ripple::util
