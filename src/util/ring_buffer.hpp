// Reusable power-of-two ring buffer (FIFO).
//
// The simulators keep one queue per pipeline node and push/pop root ids tens
// of millions of times per sweep; std::deque pays a pointer-chasing block map
// and per-block allocation on that path. This buffer keeps one contiguous
// power-of-two array, masks instead of wrapping branches, and only touches
// the allocator when it grows (capacity is retained across trials when the
// buffer is reused).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace ripple::util {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  /// Pre-size the backing store (rounded up to a power of two).
  explicit RingBuffer(std::size_t capacity) { reserve(capacity); }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return data_.size(); }

  /// Ensure room for at least `capacity` elements without regrowing.
  void reserve(std::size_t capacity) {
    if (capacity > data_.size()) grow_to(round_up_pow2(capacity));
  }

  void push_back(T value) {
    if (size_ == data_.size()) grow_to(data_.empty() ? kMinCapacity : data_.size() * 2);
    data_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  const T& front() const {
    RIPPLE_REQUIRE(size_ > 0, "front() on empty RingBuffer");
    return data_[head_];
  }

  T pop_front() {
    RIPPLE_REQUIRE(size_ > 0, "pop_front() on empty RingBuffer");
    T value = std::move(data_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    return value;
  }

  /// Element i positions from the front (0 = front()).
  const T& operator[](std::size_t i) const { return data_[(head_ + i) & mask_]; }

  /// Drop the first n elements in one step (batch consumers read via
  /// operator[] and then discard, skipping per-element pop bookkeeping).
  void discard_front(std::size_t n) {
    RIPPLE_REQUIRE(n <= size_, "discard_front() past end of RingBuffer");
    head_ = (head_ + n) & mask_;
    size_ -= n;
  }

  /// Drop all elements; capacity is retained.
  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = kMinCapacity;
    while (p < n) p *= 2;
    return p;
  }

  void grow_to(std::size_t new_capacity) {
    std::vector<T> fresh(new_capacity);
    for (std::size_t i = 0; i < size_; ++i) {
      fresh[i] = std::move(data_[(head_ + i) & mask_]);
    }
    data_ = std::move(fresh);
    head_ = 0;
    mask_ = data_.size() - 1;
  }

  std::vector<T> data_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace ripple::util
