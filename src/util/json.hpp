// Minimal streaming JSON writer for experiment artifacts.
//
// Schedules and sweep surfaces are exported as JSON so plotting/automation
// tooling can consume them without parsing console tables. The writer is
// strictly streaming (no DOM), enforces well-formedness with a state stack,
// and escapes strings per RFC 8259.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ripple::util {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  /// Containers. Every begin_* must be matched by the corresponding end_*;
  /// violations throw std::logic_error (programmer error).
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be directly followed by a value or container.
  JsonWriter& key(std::string_view name);

  /// Scalar values.
  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Convenience: key + scalar in one call.
  template <typename T>
  JsonWriter& member(std::string_view name, T&& scalar) {
    key(name);
    return value(std::forward<T>(scalar));
  }

  /// True once all containers are closed and at least one value was written.
  bool complete() const;

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void pre_value();   // comma/context handling before any value/container
  void write_string(std::string_view text);

  std::ostream& out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;  // parallel to stack_
  bool expecting_value_ = false; // a key was just written
  bool done_ = false;
};

}  // namespace ripple::util
