// Small string helpers used by the CLI parser and table/CSV writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ripple::util {

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text) noexcept;

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Format a double compactly: fixed with `precision` digits, trailing zeros
/// trimmed ("1.25", "3", "0.0004").
std::string format_double(double value, int precision = 6);

/// Render a count with thousands separators ("1,234,567").
std::string with_commas(unsigned long long value);

/// Parse helpers returning false on malformed input (no exceptions).
bool parse_double(std::string_view text, double& out) noexcept;
bool parse_int64(std::string_view text, long long& out) noexcept;

}  // namespace ripple::util
