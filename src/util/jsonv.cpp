#include "util/jsonv.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace ripple::util {

bool JsonValue::as_bool() const {
  if (!is_bool()) throw std::logic_error("JSON value is not a bool");
  return std::get<bool>(data_);
}

double JsonValue::as_number() const {
  if (!is_number()) throw std::logic_error("JSON value is not a number");
  return std::get<double>(data_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw std::logic_error("JSON value is not a string");
  return std::get<std::string>(data_);
}

const JsonArray& JsonValue::as_array() const {
  if (!is_array()) throw std::logic_error("JSON value is not an array");
  return std::get<JsonArray>(data_);
}

const JsonObject& JsonValue::as_object() const {
  if (!is_object()) throw std::logic_error("JSON value is not an object");
  return std::get<JsonObject>(data_);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const JsonObject& object = std::get<JsonObject>(data_);
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* member = find(key);
  return (member != nullptr && member->is_number()) ? member->as_number()
                                                    : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 std::string fallback) const {
  const JsonValue* member = find(key);
  return (member != nullptr && member->is_string()) ? member->as_string()
                                                    : std::move(fallback);
}

namespace {

// GCC 12 emits a -Wmaybe-uninitialized false positive when it inlines the
// std::variant destructor of a moved-from JsonValue inside the recursive
// parser (the "value" NRVO slot in parse_object); the code paths are fully
// initialized before any read. Suppress for this translation unit's parser.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse() {
    skip_whitespace();
    auto value = parse_value();
    if (!value.ok()) return value;
    skip_whitespace();
    if (pos_ != text_.size()) {
      return fail("trailing characters after document");
    }
    return value;
  }

 private:
  Result<JsonValue> fail(const std::string& what) {
    return Result<JsonValue>::failure(
        "parse_error", what + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> parse_value() {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto text = parse_string();
        if (!text.ok()) {
          return Result<JsonValue>::failure(text.error().code,
                                            text.error().message);
        }
        return JsonValue(std::move(text).take());
      }
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        return fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        return fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        return fail("bad literal");
      default:
        return parse_number();
    }
  }

  Result<std::string> parse_string() {
    if (!consume('"')) {
      return Result<std::string>::failure(
          "parse_error", "expected string at offset " + std::to_string(pos_));
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Result<std::string>::failure("parse_error",
                                                  "truncated \\u escape");
            }
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return Result<std::string>::failure("parse_error",
                                                    "bad \\u escape digit");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs are passed through
            // as two 3-byte sequences, adequate for our ASCII-heavy data).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Result<std::string>::failure("parse_error",
                                                "unknown escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return Result<std::string>::failure("parse_error", "unterminated string");
  }

  Result<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      pos_ = start;
      return fail("malformed number");
    }
    return JsonValue(value);
  }

  Result<JsonValue> parse_array() {
    consume('[');
    JsonArray array;
    skip_whitespace();
    if (consume(']')) return JsonValue(std::move(array));
    while (true) {
      skip_whitespace();
      auto element = parse_value();
      if (!element.ok()) return element;
      array.push_back(std::move(element).take());
      skip_whitespace();
      if (consume(']')) return JsonValue(std::move(array));
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> parse_object() {
    consume('{');
    JsonObject object;
    skip_whitespace();
    if (consume('}')) return JsonValue(std::move(object));
    while (true) {
      skip_whitespace();
      auto key = parse_string();
      if (!key.ok()) {
        return Result<JsonValue>::failure(key.error().code, key.error().message);
      }
      std::string key_text = std::move(key).take();
      skip_whitespace();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_whitespace();
      auto value = parse_value();
      if (!value.ok()) return value;
      object.emplace(std::move(key_text), std::move(value).take());
      skip_whitespace();
      if (consume('}')) return JsonValue(std::move(object));
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace

Result<JsonValue> parse_json(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace ripple::util
