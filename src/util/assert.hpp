// Precondition checking for programmer errors.
//
// RIPPLE_REQUIRE is always on (construction/validation paths only — never in
// per-event simulator hot loops). Violations indicate a bug in the caller and
// throw std::logic_error so tests can assert on them.
//
// RIPPLE_ASSERT is the hot-loop variant: a standard assert() that vanishes
// in NDEBUG builds, for per-item invariants the release path cannot afford
// to branch on.
#pragma once

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ripple::util {

[[noreturn]] inline void requirement_failed(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace ripple::util

#define RIPPLE_REQUIRE(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::ripple::util::requirement_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)

#define RIPPLE_ASSERT(expr, msg) assert((expr) && (msg))
