#include "util/csv.hpp"

#include "util/string_utils.hpp"

namespace ripple::util {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::emit(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::header(const std::vector<std::string>& names) { emit(names); }

void CsvWriter::row(const std::vector<std::string>& fields) {
  emit(fields);
  ++rows_;
}

void CsvWriter::row_numeric(const std::vector<double>& values, int precision) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(format_double(v, precision));
  row(fields);
}

}  // namespace ripple::util
