// CSV emission for experiment outputs (figures are regenerated from these).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ripple::util {

/// Streams rows of a CSV file. Fields containing commas/quotes/newlines are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void header(const std::vector<std::string>& names);
  void row(const std::vector<std::string>& fields);

  /// Convenience: numeric row.
  void row_numeric(const std::vector<double>& values, int precision = 6);

  std::size_t rows_written() const noexcept { return rows_; }

 private:
  static std::string escape(const std::string& field);
  void emit(const std::vector<std::string>& fields);

  std::ostream& out_;
  std::size_t rows_ = 0;
};

}  // namespace ripple::util
