// Bulk-service queue with deterministic service intervals: the queueing
// model behind an enforced-waits pipeline node.
//
// A node fires every x cycles and serves up to v queued items per firing
// (the paper's SIMD bulk service, refs Bailey '54 and Briere & Chaudhry '89).
// Observing the queue just before each firing gives the embedded Markov
// chain
//
//     q_{k+1} = max(q_k - v, 0) + A_k,
//
// where A_k is the number of arrivals during one service interval (iid, pmf
// supplied by the caller). This module computes the chain's stationary
// distribution numerically on a truncated state space, from which queue
// quantiles — and hence the paper's worst-case multipliers b_i — follow.
#pragma once

#include <cstdint>

#include "queueing/pmf.hpp"
#include "util/result.hpp"

namespace ripple::queueing {

struct BulkQueueConfig {
  std::uint32_t batch_size = 1;  ///< v: items served per firing
  Pmf arrivals_per_interval;     ///< pmf of A

  std::size_t max_states = 1 << 18;     ///< truncation bound on queue length
  double convergence_tolerance = 1e-12; ///< L1 change per iteration to stop
  std::size_t max_iterations = 200000;

  /// Loads above this are rejected as "critical": the embedded chain mixes
  /// arbitrarily slowly and its stationary queue diverges as E[A]/v -> 1, so
  /// any b predicted there would be meaningless. (Zero-variance arrivals are
  /// exempt — a deterministic queue is stable up to and including full load.)
  double utilization_threshold = 0.999;
};

struct BulkQueueAnalysis {
  Pmf stationary;          ///< queue length just before a firing
  double utilization = 0;  ///< E[A] / v
  double mean_queue = 0;
  std::size_t iterations = 0;

  /// Smallest q with P(queue <= q) >= p.
  std::uint32_t queue_quantile(double p) const { return pmf_quantile(stationary, p); }

  /// Firings needed before an item that arrives when the queue holds its
  /// (1-epsilon)-quantile gets served: ceil((q + 1) / v). This is the
  /// analytic analogue of the paper's b multiplier.
  double firings_to_drain_quantile(double p, std::uint32_t batch_size) const;
};

/// Solve for the stationary distribution. Failure codes:
///   "unstable"       — E[A] >= v (queue grows without bound)
///   "no_convergence" — iteration budget exhausted
///   "truncated"      — needed more states than max_states allows
util::Result<BulkQueueAnalysis> analyze_bulk_queue(const BulkQueueConfig& config);

}  // namespace ripple::queueing
