// Probability mass functions over small non-negative integer supports.
//
// The queueing analysis (bulk_queue.hpp) works with per-service-interval
// arrival-count distributions; this module provides the pmf algebra to build
// them: Poisson counts, pmfs extracted from gain distributions, convolution
// (sums of independent counts), compounding, and moments/quantiles.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/gain.hpp"

namespace ripple::queueing {

/// pmf[k] = P(X = k); entries sum to 1 within numerical tolerance.
using Pmf = std::vector<double>;

/// Point mass at k.
Pmf delta_pmf(std::uint32_t k);

/// Poisson(lambda), truncated where the tail mass drops below `tail_epsilon`
/// (remaining mass is folded into the last bin so the pmf still sums to 1).
Pmf poisson_pmf(double lambda, double tail_epsilon = 1e-12);

/// pmf of a GainDistribution (exact for the finite-support families).
Pmf gain_pmf(const dist::GainDistribution& gain);

/// Distribution of X + Y for independent X, Y.
Pmf convolve(const Pmf& a, const Pmf& b);

/// Distribution of the sum of `n` independent copies (fast by doubling).
Pmf convolve_power(const Pmf& base, std::uint32_t n);

/// Mixture p * a + (1-p) * b (supports of different lengths allowed).
Pmf mix(const Pmf& a, const Pmf& b, double weight_a);

/// A fractional count n = floor(n) w.p. (1 - frac), floor(n)+1 w.p. frac —
/// used for "x / x_up firings per interval" with non-integer ratios.
Pmf fractional_count_pmf(double n);

double pmf_mean(const Pmf& pmf);
double pmf_variance(const Pmf& pmf);

/// Smallest k with P(X <= k) >= p.
std::uint32_t pmf_quantile(const Pmf& pmf, double p);

/// Drop a negligible tail (mass < epsilon) to keep supports small; the
/// removed mass is folded into the new last bin.
Pmf truncate_tail(Pmf pmf, double epsilon = 1e-12);

}  // namespace ripple::queueing
