#include "queueing/bulk_queue.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ripple::queueing {

double BulkQueueAnalysis::firings_to_drain_quantile(
    double p, std::uint32_t batch_size) const {
  const std::uint32_t q = queue_quantile(p);
  return std::ceil(static_cast<double>(q + 1) / static_cast<double>(batch_size));
}

util::Result<BulkQueueAnalysis> analyze_bulk_queue(const BulkQueueConfig& config) {
  using R = util::Result<BulkQueueAnalysis>;
  RIPPLE_REQUIRE(config.batch_size >= 1, "batch size must be positive");
  RIPPLE_REQUIRE(!config.arrivals_per_interval.empty(),
                 "arrival pmf must be non-empty");

  const Pmf arrivals = truncate_tail(config.arrivals_per_interval, 1e-15);
  const double mean_arrivals = pmf_mean(arrivals);
  const double arrival_variance = pmf_variance(arrivals);
  const double v = static_cast<double>(config.batch_size);

  // Deterministic arrivals: the queue is a fixed cycle, stable whenever the
  // per-interval count fits one batch (even at exactly full load). Solve in
  // closed form.
  if (arrival_variance < 1e-12) {
    const auto count = static_cast<std::uint32_t>(std::lround(mean_arrivals));
    if (static_cast<double>(count) > v) {
      return R::failure("unstable", "deterministic arrivals exceed the batch");
    }
    BulkQueueAnalysis analysis;
    analysis.stationary = delta_pmf(count);  // queue just before each firing
    analysis.utilization = mean_arrivals / v;
    analysis.mean_queue = mean_arrivals;
    analysis.iterations = 0;
    return analysis;
  }

  if (mean_arrivals >= v) {
    return R::failure("unstable",
                      "mean arrivals per interval (" +
                          std::to_string(mean_arrivals) +
                          ") meet or exceed the batch size");
  }
  if (mean_arrivals / v > config.utilization_threshold) {
    return R::failure("critical",
                      "utilization " + std::to_string(mean_arrivals / v) +
                          " above threshold; stationary queue diverges");
  }

  // Tail decay ratio: for q large the stationary distribution decays like
  // r^q with r = 1/z*, z* the real root > 1 of z^v = A(z) (Bailey's
  // generating-function analysis). We use it to (a) size the state space and
  // (b) warm-start the power iteration, which otherwise mixes very slowly at
  // high load.
  const double tail_ratio = [&] {
    auto characteristic = [&](double z) {
      // log A(z) - v log z, negative between 1 and the root.
      double az = 0.0;
      double zk = 1.0;
      for (double p : arrivals) {
        az += p * zk;
        zk *= z;
      }
      return std::log(az) - v * std::log(z);
    };
    double lo = 1.0;
    double hi = 1.0 + 1.0 / std::max(1.0, pmf_mean(arrivals));
    // Grow hi until the characteristic turns positive (it must: the arrival
    // support reaches past... if it never does, arrivals are bounded by v
    // and the tail is effectively zero).
    bool found = false;
    for (int grow = 0; grow < 60; ++grow) {
      if (characteristic(hi) > 0.0) {
        found = true;
        break;
      }
      hi = 1.0 + 2.0 * (hi - 1.0);
      if (hi > 1e6) break;
    }
    if (!found) return 0.0;  // sub-batch arrivals: no geometric tail needed
    for (int iter = 0; iter < 200; ++iter) {
      const double mid = 0.5 * (lo + hi);
      (characteristic(mid) > 0.0 ? hi : lo) = mid;
    }
    return 1.0 / hi;
  }();

  // Pick a state-space bound: generous relative to the arrival support and
  // the tail length at which r^q falls below numerical noise.
  std::size_t tail_reach = 0;
  if (tail_ratio > 0.0 && tail_ratio < 1.0) {
    tail_reach = static_cast<std::size_t>(std::log(1e-14) / std::log(tail_ratio));
  }
  std::size_t states = std::max<std::size_t>(
      {4 * (arrivals.size() + config.batch_size), 256, tail_reach + arrivals.size()});

  for (int attempt = 0; attempt < 8; ++attempt) {
    if (states > config.max_states) {
      return R::failure("truncated", "state space exceeds max_states");
    }
    // Power iteration on pi' = pi P, warm-started from the geometric tail.
    Pmf pi(states, 0.0);
    if (tail_ratio > 0.0 && tail_ratio < 1.0) {
      double mass = 0.0;
      for (std::size_t q = 0; q < states; ++q) {
        pi[q] = std::pow(tail_ratio, static_cast<double>(q));
        mass += pi[q];
      }
      for (double& p : pi) p /= mass;
    } else {
      pi[0] = 1.0;
    }
    Pmf next(states, 0.0);
    std::size_t iterations = 0;
    double change = 1.0;
    while (iterations < config.max_iterations &&
           change > config.convergence_tolerance) {
      std::fill(next.begin(), next.end(), 0.0);
      for (std::size_t q = 0; q < states; ++q) {
        const double mass = pi[q];
        if (mass == 0.0) continue;
        const std::size_t base =
            q > config.batch_size ? q - config.batch_size : 0;
        for (std::size_t a = 0; a < arrivals.size(); ++a) {
          const double p = arrivals[a];
          if (p == 0.0) continue;
          const std::size_t target = std::min(base + a, states - 1);
          next[target] += mass * p;
        }
      }
      change = 0.0;
      for (std::size_t q = 0; q < states; ++q) {
        change += std::fabs(next[q] - pi[q]);
      }
      pi.swap(next);
      ++iterations;
    }
    if (change > config.convergence_tolerance) {
      return R::failure("no_convergence", "power iteration did not settle");
    }
    // Check truncation: if the top 1% of states carry visible mass, retry
    // with a bigger space.
    double edge_mass = 0.0;
    for (std::size_t q = states - std::max<std::size_t>(states / 100, 1);
         q < states; ++q) {
      edge_mass += pi[q];
    }
    if (edge_mass > 1e-9) {
      states *= 4;
      continue;
    }

    BulkQueueAnalysis analysis;
    analysis.stationary = truncate_tail(std::move(pi), 1e-15);
    analysis.utilization = mean_arrivals / v;
    analysis.mean_queue = pmf_mean(analysis.stationary);
    analysis.iterations = iterations;
    return analysis;
  }
  return R::failure("truncated", "state space kept hitting the edge");
}

}  // namespace ripple::queueing
