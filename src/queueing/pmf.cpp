#include "queueing/pmf.hpp"

#include <algorithm>
#include <cmath>

#include "dist/rng.hpp"
#include "util/assert.hpp"

namespace ripple::queueing {

Pmf delta_pmf(std::uint32_t k) {
  Pmf pmf(k + 1, 0.0);
  pmf[k] = 1.0;
  return pmf;
}

Pmf poisson_pmf(double lambda, double tail_epsilon) {
  RIPPLE_REQUIRE(lambda >= 0.0, "Poisson rate must be non-negative");
  if (lambda == 0.0) return delta_pmf(0);
  Pmf pmf;
  double pk = std::exp(-lambda);
  double cumulative = 0.0;
  // Walk out at least past the mean; stop when the remaining tail is tiny.
  const std::size_t hard_cap =
      static_cast<std::size_t>(lambda + 12.0 * std::sqrt(lambda) + 64.0);
  for (std::size_t k = 0; k <= hard_cap; ++k) {
    pmf.push_back(pk);
    cumulative += pk;
    if (static_cast<double>(k) > lambda && 1.0 - cumulative < tail_epsilon) break;
    pk *= lambda / static_cast<double>(k + 1);
  }
  pmf.back() += std::max(0.0, 1.0 - cumulative);
  return pmf;
}

Pmf gain_pmf(const dist::GainDistribution& gain) {
  // Exact extraction for the finite families: evaluate P(X = k) by
  // differencing the CDF implied by repeated sampling is wasteful; instead
  // use the distribution's own structure where possible.
  //
  // All GainDistribution implementations in this repo have finite
  // max_outputs(), so Monte Carlo is unnecessary: we reconstruct the pmf by
  // sampling-free means for the known families and fall back to a large
  // deterministic sample for anything exotic.
  const std::uint32_t cap = gain.max_outputs();
  Pmf pmf(cap + 1, 0.0);
  if (const auto* deterministic =
          dynamic_cast<const dist::DeterministicGain*>(&gain)) {
    (void)deterministic;
    pmf[cap] = 1.0;
    return pmf;
  }
  if (gain.variance() == 0.0) {
    // Degenerate: all mass at the mean.
    const auto k = static_cast<std::uint32_t>(std::lround(gain.mean()));
    RIPPLE_REQUIRE(k <= cap, "degenerate gain above its own cap");
    pmf.assign(cap + 1, 0.0);
    pmf[k] = 1.0;
    return pmf;
  }
  if (cap == 1) {
    // Bernoulli-like.
    pmf[1] = gain.mean();
    pmf[0] = 1.0 - pmf[1];
    return pmf;
  }
  if (const auto* poisson =
          dynamic_cast<const dist::CensoredPoissonGain*>(&gain)) {
    Pmf raw = poisson_pmf(poisson->lambda());
    pmf.assign(cap + 1, 0.0);
    for (std::size_t k = 0; k < raw.size(); ++k) {
      pmf[std::min<std::size_t>(k, cap)] += raw[k];
    }
    return pmf;
  }
  // Fallback: large deterministic-seed sample (exotic families only).
  dist::Xoshiro256 rng(0x9E3779B97F4A7C15ULL);
  constexpr int kSamples = 2'000'000;
  std::vector<std::uint64_t> counts(cap + 1, 0);
  for (int s = 0; s < kSamples; ++s) {
    ++counts[std::min<std::uint32_t>(gain.sample(rng), cap)];
  }
  for (std::uint32_t k = 0; k <= cap; ++k) {
    pmf[k] = static_cast<double>(counts[k]) / kSamples;
  }
  return pmf;
}

Pmf convolve(const Pmf& a, const Pmf& b) {
  RIPPLE_REQUIRE(!a.empty() && !b.empty(), "convolve needs non-empty pmfs");
  Pmf out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

Pmf convolve_power(const Pmf& base, std::uint32_t n) {
  Pmf result = delta_pmf(0);
  Pmf power = base;
  std::uint32_t remaining = n;
  while (remaining > 0) {
    if (remaining & 1u) result = truncate_tail(convolve(result, power), 1e-14);
    remaining >>= 1;
    if (remaining > 0) power = truncate_tail(convolve(power, power), 1e-14);
  }
  return result;
}

Pmf mix(const Pmf& a, const Pmf& b, double weight_a) {
  RIPPLE_REQUIRE(weight_a >= 0.0 && weight_a <= 1.0, "weight must be in [0,1]");
  Pmf out(std::max(a.size(), b.size()), 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) out[i] += weight_a * a[i];
  for (std::size_t i = 0; i < b.size(); ++i) out[i] += (1.0 - weight_a) * b[i];
  return out;
}

Pmf fractional_count_pmf(double n) {
  RIPPLE_REQUIRE(n >= 0.0, "count must be non-negative");
  const double floor_n = std::floor(n);
  const double frac = n - floor_n;
  const auto lo = static_cast<std::uint32_t>(floor_n);
  if (frac < 1e-12) return delta_pmf(lo);
  return mix(delta_pmf(lo + 1), delta_pmf(lo), frac);
}

double pmf_mean(const Pmf& pmf) {
  double mean = 0.0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    mean += static_cast<double>(k) * pmf[k];
  }
  return mean;
}

double pmf_variance(const Pmf& pmf) {
  const double mean = pmf_mean(pmf);
  double second = 0.0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    second += static_cast<double>(k) * static_cast<double>(k) * pmf[k];
  }
  return second - mean * mean;
}

std::uint32_t pmf_quantile(const Pmf& pmf, double p) {
  RIPPLE_REQUIRE(p >= 0.0 && p <= 1.0, "quantile level must be in [0,1]");
  double cumulative = 0.0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    cumulative += pmf[k];
    if (cumulative >= p - 1e-15) return static_cast<std::uint32_t>(k);
  }
  return static_cast<std::uint32_t>(pmf.size() - 1);
}

Pmf truncate_tail(Pmf pmf, double epsilon) {
  // Find the last index where the remaining tail is still significant.
  double tail = 0.0;
  std::size_t cut = pmf.size();
  for (std::size_t k = pmf.size(); k-- > 0;) {
    tail += pmf[k];
    if (tail > epsilon) {
      cut = k + 1;
      break;
    }
  }
  if (cut < pmf.size()) {
    double removed = 0.0;
    for (std::size_t k = cut; k < pmf.size(); ++k) removed += pmf[k];
    pmf.resize(cut);
    pmf.back() += removed;
  }
  return pmf;
}

}  // namespace ripple::queueing
