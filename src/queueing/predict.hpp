// Analytic prediction of the paper's worst-case queue multipliers b_i.
//
// The paper chooses the b_i empirically (Section 6.2) and names the analytic
// route as future work: "estimating the likely maximum time before an item
// exits the pipeline is an application of queueing theory ... the SIMD
// processing characteristic of nodes corresponds to a queue with bulk or
// batch service" (Section 3), with Poisson/Jacksonian approximations as the
// tractable option (Section 7). This module implements that route: each node
// is modeled as a bulk-service queue (bulk_queue.hpp) whose per-interval
// arrival distribution comes from one of three approximations, and
// b_i = max(1, ceil((q_i(1 - eps) + 1) / v)) where q_i(p) is the stationary
// queue quantile.
#pragma once

#include <string>
#include <vector>

#include "queueing/bulk_queue.hpp"
#include "sdf/pipeline.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace ripple::queueing {

enum class ArrivalModel {
  /// Node 0 sees the paper's deterministic arrivals; downstream nodes see
  /// independent Poisson streams at the mean rate (Jackson-style, the
  /// paper's suggested approximation). Ignores batch correlation, so it
  /// tends to under-predict the b_i.
  kPoisson,
  /// Downstream nodes see arrivals in upstream-firing-sized batches: per
  /// upstream firing a batch of (mean consumed) gain draws lands at once.
  /// Captures the bulk structure the Poisson model loses.
  kBatch,
};

std::string to_string(ArrivalModel model);

struct BPrediction {
  ArrivalModel model;
  double epsilon = 0.0;               ///< tail level used for the quantiles
  std::vector<double> b;              ///< predicted multipliers, >= 1
  std::vector<std::uint32_t> queue_quantiles;  ///< q_i(1 - eps), items
  std::vector<double> utilization;    ///< per-node E[A]/v
  Cycles predicted_worst_latency = 0; ///< sum_i b_i x_i
};

/// Predict the b_i for a pipeline running enforced waits with firing
/// intervals `x` (x_i = t_i + w_i) under inter-arrival time tau0.
/// Failure codes: "unstable" (some node cannot keep up on average),
/// "no_convergence" / "truncated" from the chain solver.
util::Result<BPrediction> predict_b(const sdf::PipelineSpec& pipeline,
                                    const std::vector<Cycles>& firing_intervals,
                                    Cycles tau0, double epsilon = 1e-4,
                                    ArrivalModel model = ArrivalModel::kBatch);

}  // namespace ripple::queueing
