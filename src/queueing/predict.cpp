#include "queueing/predict.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ripple::queueing {

std::string to_string(ArrivalModel model) {
  switch (model) {
    case ArrivalModel::kPoisson: return "poisson";
    case ArrivalModel::kBatch: return "batch";
  }
  return "?";
}

namespace {

/// Cap a count distribution at `cap` (mass above folds onto cap) — a node
/// consumes at most v items per firing.
Pmf cap_pmf(const Pmf& pmf, std::uint32_t cap) {
  if (pmf.size() <= cap + 1) return pmf;
  Pmf out(cap + 1, 0.0);
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    out[std::min<std::size_t>(k, cap)] += pmf[k];
  }
  return out;
}

/// Distribution of sum_{j=1..K} X_j with K ~ count_pmf and X_j iid item_pmf
/// (a compound distribution), built incrementally so each K-fold convolution
/// is computed once.
Pmf compound_pmf(const Pmf& count_pmf, const Pmf& item_pmf) {
  Pmf total{0.0};
  Pmf running = delta_pmf(0);  // item_pmf^{(0)}
  for (std::size_t k = 0; k < count_pmf.size(); ++k) {
    const double weight = count_pmf[k];
    if (weight > 0.0) {
      if (total.size() < running.size()) total.resize(running.size(), 0.0);
      for (std::size_t j = 0; j < running.size(); ++j) {
        total[j] += weight * running[j];
      }
    }
    if (k + 1 < count_pmf.size()) {
      running = truncate_tail(convolve(running, item_pmf), 1e-14);
    }
  }
  return truncate_tail(std::move(total), 1e-15);
}

/// Per-interval arrival pmfs for every node under the chosen approximation.
///
/// kBatch cascades exactly: A_0 is the periodic source; node i-1 consumes
/// min(A_{i-1}, v) per firing (valid when its queue drains most firings,
/// i.e. away from saturation), each consumed item spawns gain_{i-1} outputs,
/// and node i sees x_i / x_{i-1} such firing batches per interval. This
/// propagates the full compounded variance downstream, which the
/// Jackson-style Poisson model deliberately discards.
std::vector<Pmf> arrival_pmfs(const sdf::PipelineSpec& pipeline,
                              const std::vector<Cycles>& x, Cycles tau0,
                              ArrivalModel model) {
  const std::size_t n = pipeline.size();
  const std::uint32_t v = pipeline.simd_width();
  std::vector<Pmf> pmfs(n);
  pmfs[0] = fractional_count_pmf(x[0] / tau0);

  for (NodeIndex i = 1; i < n; ++i) {
    const double rate_in = pipeline.total_gain_into(i) / tau0;
    if (rate_in <= 0.0) {
      pmfs[i] = delta_pmf(0);
      continue;
    }
    switch (model) {
      case ArrivalModel::kPoisson:
        pmfs[i] = poisson_pmf(rate_in * x[i]);
        break;
      case ArrivalModel::kBatch: {
        const Pmf consumed = cap_pmf(pmfs[i - 1], v);
        const Pmf per_item = gain_pmf(*pipeline.node(i - 1).gain);
        const Pmf batch = compound_pmf(consumed, per_item);

        const double firings = x[i] / x[i - 1];
        const auto whole_firings = static_cast<std::uint32_t>(firings);
        const double firing_frac = firings - whole_firings;
        Pmf total = convolve_power(batch, whole_firings);
        if (firing_frac > 1e-12) {
          total = mix(truncate_tail(convolve(total, batch), 1e-14), total,
                      firing_frac);
        }
        pmfs[i] = std::move(total);
        break;
      }
    }
  }
  return pmfs;
}

}  // namespace

util::Result<BPrediction> predict_b(const sdf::PipelineSpec& pipeline,
                                    const std::vector<Cycles>& firing_intervals,
                                    Cycles tau0, double epsilon,
                                    ArrivalModel model) {
  using R = util::Result<BPrediction>;
  const std::size_t n = pipeline.size();
  RIPPLE_REQUIRE(firing_intervals.size() == n, "one firing interval per node");
  RIPPLE_REQUIRE(tau0 > 0.0, "tau0 must be positive");
  RIPPLE_REQUIRE(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");

  BPrediction prediction;
  prediction.model = model;
  prediction.epsilon = epsilon;
  prediction.b.resize(n);
  prediction.queue_quantiles.resize(n);
  prediction.utilization.resize(n);

  const std::vector<Pmf> per_node_arrivals =
      arrival_pmfs(pipeline, firing_intervals, tau0, model);
  for (NodeIndex i = 0; i < n; ++i) {
    const Pmf& arrivals = per_node_arrivals[i];

    BulkQueueConfig config;
    config.batch_size = pipeline.simd_width();
    config.arrivals_per_interval = arrivals;
    auto analysis = analyze_bulk_queue(config);
    if (!analysis.ok()) {
      return R::failure(analysis.error().code,
                        "node " + std::to_string(i) + ": " +
                            analysis.error().message);
    }
    const BulkQueueAnalysis& queue = analysis.value();
    prediction.utilization[i] = queue.utilization;
    prediction.queue_quantiles[i] = queue.queue_quantile(1.0 - epsilon);
    prediction.b[i] = std::max(
        1.0, queue.firings_to_drain_quantile(1.0 - epsilon,
                                             pipeline.simd_width()));
    prediction.predicted_worst_latency +=
        prediction.b[i] * firing_intervals[i];
  }
  return prediction;
}

}  // namespace ripple::queueing
