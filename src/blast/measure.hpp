// Empirical measurement of per-stage gains and service costs by streaming
// subject windows through the mini-BLAST stages — the analogue of the
// paper's Table 1 measurement pass (theirs ran on a GTX 2080 under
// MERCATOR; ours runs the same logical pipeline in software and counts
// abstract operations).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "blast/stages.hpp"
#include "sdf/pipeline.hpp"
#include "util/result.hpp"

namespace ripple::blast {

inline constexpr std::size_t kStageCount = 4;

struct StageMeasurement {
  std::uint64_t inputs = 0;
  std::uint64_t outputs = 0;
  std::uint64_t total_ops = 0;
  /// Histogram of outputs-per-input (index = output count).
  std::vector<std::uint64_t> gain_histogram;

  double mean_gain() const {
    return inputs == 0 ? 0.0
                       : static_cast<double>(outputs) / static_cast<double>(inputs);
  }
  double mean_ops() const {
    return inputs == 0 ? 0.0
                       : static_cast<double>(total_ops) / static_cast<double>(inputs);
  }
};

struct PipelineMeasurement {
  std::array<StageMeasurement, kStageCount> stages;
  std::uint64_t windows_streamed = 0;
  std::uint64_t alignments_reported = 0;

  /// Convert to a schedulable PipelineSpec: gains become EmpiricalGain over
  /// the measured histograms; service times are mean ops per input scaled by
  /// `cycles_per_op` (one SIMD vector firing is charged the per-item serial
  /// work, the lanes covering the vector width in parallel).
  util::Result<sdf::PipelineSpec> to_pipeline_spec(std::uint32_t simd_width,
                                                   double cycles_per_op = 1.0) const;
};

struct MeasureConfig {
  std::uint64_t window_count = 200000;  ///< subject windows to stream
  std::uint64_t stride = 1;             ///< step between windows
  std::uint64_t start_offset = 0;
};

/// Stream windows through all four stages, collecting measurements.
PipelineMeasurement measure_pipeline(const BlastStages& stages,
                                     const MeasureConfig& config);

}  // namespace ripple::blast
