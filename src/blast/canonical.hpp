// The canonical BLAST pipeline of the paper's Table 1.
#pragma once

#include "sdf/pipeline.hpp"

namespace ripple::blast {

/// Table 1 constants (measured by the paper on an NVidia GTX 2080 under the
/// MERCATOR framework, human genome vs. 64-kilobase microbial query).
struct Table1 {
  static constexpr std::uint32_t kSimdWidth = 128;  ///< v
  static constexpr std::uint32_t kMaxExpansion = 16;  ///< u (stage 1 cap)
  static constexpr double kServiceTimes[4] = {287.0, 955.0, 402.0, 2753.0};
  static constexpr double kGains[3] = {0.379, 1.920, 0.0332};  ///< g_0..g_2
};

/// The paper's stochastic model of the pipeline (Section 6.1): stages 0 and 2
/// produce one output with probability g_i (Bernoulli), stage 1 is Poisson
/// with mean g_1 censored at u = 16, and the sink's gain is N/A
/// (deterministic 1 here, unused by scheduling).
sdf::PipelineSpec canonical_blast_pipeline();

/// The paper's calibrated worst-case multipliers b = {1, 3, 9, 6}
/// (Section 6.2).
std::vector<double> paper_calibrated_b();

}  // namespace ripple::blast
