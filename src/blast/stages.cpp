#include "blast/stages.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ripple::blast {

BlastStages::BlastStages(const SequencePair& pair, const Config& config)
    : pair_(pair), config_(config), index_(pair.query, config.k) {
  RIPPLE_REQUIRE(config.max_hits_per_seed >= 1, "u must be at least 1");
  RIPPLE_REQUIRE(config.match_score > 0, "match score must be positive");
  RIPPLE_REQUIRE(config.mismatch_penalty < 0, "mismatch must be a penalty");
  RIPPLE_REQUIRE(config.gap_penalty < 0, "gap must be a penalty");
  RIPPLE_REQUIRE(pair.subject.size() >= config.k, "subject shorter than k");
}

std::size_t BlastStages::input_count() const noexcept {
  return pair_.subject.size() - config_.k + 1;
}

bool BlastStages::seed_match(std::uint32_t subject_pos, StageCost& cost) const {
  RIPPLE_REQUIRE(subject_pos < input_count(), "subject position out of range");
  // Encode (k ops) plus one index probe.
  const KmerCode code = encode_kmer(pair_.subject, subject_pos, config_.k);
  cost.ops += config_.k + 1;
  return index_.contains(code);
}

std::vector<HitItem> BlastStages::expand_seed(std::uint32_t subject_pos,
                                              StageCost& cost) const {
  RIPPLE_REQUIRE(subject_pos < input_count(), "subject position out of range");
  const KmerCode code = encode_kmer(pair_.subject, subject_pos, config_.k);
  cost.ops += config_.k + 1;
  std::size_t count = 0;
  const std::uint32_t* query_positions = index_.positions(code, count);
  const std::size_t emitted =
      std::min<std::size_t>(count, config_.max_hits_per_seed);
  std::vector<HitItem> hits;
  hits.reserve(emitted);
  for (std::size_t i = 0; i < emitted; ++i) {
    hits.push_back(HitItem{subject_pos, query_positions[i]});
    ++cost.ops;
  }
  return hits;
}

int BlastStages::extend_direction(std::int64_t subject_start,
                                  std::int64_t query_start, int direction,
                                  StageCost& cost) const {
  // Greedy ungapped walk: accumulate match/mismatch score until it falls
  // more than xdrop below the best seen (or a sequence end).
  int score = 0;
  int best = 0;
  std::int64_t s = subject_start;
  std::int64_t q = query_start;
  while (s >= 0 && q >= 0 &&
         s < static_cast<std::int64_t>(pair_.subject.size()) &&
         q < static_cast<std::int64_t>(pair_.query.size())) {
    ++cost.ops;
    score += (pair_.subject[static_cast<std::size_t>(s)] ==
              pair_.query[static_cast<std::size_t>(q)])
                 ? config_.match_score
                 : config_.mismatch_penalty;
    best = std::max(best, score);
    if (best - score > config_.xdrop) break;
    s += direction;
    q += direction;
  }
  return best;
}

std::optional<ExtendedHit> BlastStages::ungapped_extend(const HitItem& hit,
                                                        StageCost& cost) const {
  const std::int64_t sp = hit.subject_pos;
  const std::int64_t qp = hit.query_pos;
  const int seed_score =
      static_cast<int>(config_.k) * config_.match_score;  // exact k-mer match
  const int right = extend_direction(sp + static_cast<std::int64_t>(config_.k),
                                     qp + static_cast<std::int64_t>(config_.k),
                                     +1, cost);
  const int left = extend_direction(sp - 1, qp - 1, -1, cost);
  const int total = seed_score + right + left;
  if (total < config_.ungapped_threshold) return std::nullopt;
  return ExtendedHit{hit.subject_pos, hit.query_pos, total};
}

Alignment BlastStages::gapped_extend(const ExtendedHit& hit,
                                     StageCost& cost) const {
  // Banded global-ish DP over a window centered on the hit: rows index the
  // subject window, columns the query window, and only cells within
  // band_radius of the diagonal are evaluated.
  const std::int64_t w = static_cast<std::int64_t>(config_.gapped_window);
  const std::int64_t band = static_cast<std::int64_t>(config_.band_radius);

  const std::int64_t s_begin =
      std::max<std::int64_t>(0, static_cast<std::int64_t>(hit.subject_pos) - w);
  const std::int64_t s_end = std::min<std::int64_t>(
      static_cast<std::int64_t>(pair_.subject.size()),
      static_cast<std::int64_t>(hit.subject_pos) + w);
  const std::int64_t q_begin =
      std::max<std::int64_t>(0, static_cast<std::int64_t>(hit.query_pos) - w);
  const std::int64_t q_end = std::min<std::int64_t>(
      static_cast<std::int64_t>(pair_.query.size()),
      static_cast<std::int64_t>(hit.query_pos) + w);

  const std::int64_t rows = s_end - s_begin;
  const std::int64_t cols = q_end - q_begin;
  // Offset between the windows so the seed sits on the band's center
  // diagonal.
  const std::int64_t diag_shift =
      (static_cast<std::int64_t>(hit.query_pos) - q_begin) -
      (static_cast<std::int64_t>(hit.subject_pos) - s_begin);

  constexpr int kMinScore = -(1 << 28);
  // Two rolling rows of width cols+1: DP over full width, band enforced by
  // sentinel values outside it. The band advances one column per row, so
  // after the initial fill each row only needs two sentinel writes — one
  // below its band (the stale left neighbor from two rows ago) and one just
  // above it (the cell the next row reads as its upper "gap from above"
  // neighbor) — instead of refilling the whole row. Rows are thread-local
  // scratch, so per-alignment calls touch the allocator only on growth.
  thread_local std::vector<int> previous;
  thread_local std::vector<int> current;
  previous.assign(static_cast<std::size_t>(cols + 1), kMinScore);
  current.assign(static_cast<std::size_t>(cols + 1), kMinScore);
  previous[0] = 0;
  int best = 0;
  for (std::int64_t j = 1; j <= cols; ++j) {
    if (j - diag_shift > band) break;
    previous[static_cast<std::size_t>(j)] =
        static_cast<int>(j) * config_.gap_penalty;
  }

  for (std::int64_t i = 1; i <= rows; ++i) {
    const std::int64_t center = i + diag_shift;
    const std::int64_t j_lo = std::max<std::int64_t>(center - band, 0);
    const std::int64_t j_hi = std::min<std::int64_t>(center + band, cols);
    if (j_lo > cols || j_hi < 0) break;
    if (j_lo == 0) {
      current[0] = static_cast<int>(i) * config_.gap_penalty;
    } else {
      current[static_cast<std::size_t>(j_lo - 1)] = kMinScore;
    }
    for (std::int64_t j = std::max<std::int64_t>(j_lo, 1); j <= j_hi; ++j) {
      ++cost.ops;
      const bool match =
          pair_.subject[static_cast<std::size_t>(s_begin + i - 1)] ==
          pair_.query[static_cast<std::size_t>(q_begin + j - 1)];
      const int diagonal =
          previous[static_cast<std::size_t>(j - 1)] +
          (match ? config_.match_score : config_.mismatch_penalty);
      const int up = previous[static_cast<std::size_t>(j)] + config_.gap_penalty;
      const int leftv = current[static_cast<std::size_t>(j - 1)] + config_.gap_penalty;
      const int cell = std::max({diagonal, up, leftv});
      current[static_cast<std::size_t>(j)] = cell;
      best = std::max(best, cell);
    }
    if (j_hi + 1 <= cols) current[static_cast<std::size_t>(j_hi + 1)] = kMinScore;
    std::swap(previous, current);
  }

  return Alignment{hit.subject_pos, hit.query_pos, std::max(best, hit.ungapped_score)};
}

}  // namespace ripple::blast
