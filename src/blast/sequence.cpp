#include "blast/sequence.hpp"

#include "util/assert.hpp"

namespace ripple::blast {

Sequence random_sequence(std::size_t length, dist::Xoshiro256& rng) {
  Sequence sequence(length);
  for (Base& base : sequence) {
    base = static_cast<Base>(rng.uniform_below(kAlphabetSize));
  }
  return sequence;
}

void plant_homology(const Sequence& source, std::size_t source_offset,
                    Sequence& target, std::size_t target_offset,
                    std::size_t segment_length, double mutation_rate,
                    dist::Xoshiro256& rng) {
  RIPPLE_REQUIRE(source_offset + segment_length <= source.size(),
                 "homology exceeds source length");
  RIPPLE_REQUIRE(target_offset + segment_length <= target.size(),
                 "homology exceeds target length");
  RIPPLE_REQUIRE(mutation_rate >= 0.0 && mutation_rate <= 1.0,
                 "mutation rate must be a probability");
  for (std::size_t i = 0; i < segment_length; ++i) {
    Base base = source[source_offset + i];
    if (rng.uniform01() < mutation_rate) {
      // Substitute with one of the three other bases.
      base = static_cast<Base>((base + 1 + rng.uniform_below(3)) % kAlphabetSize);
    }
    target[target_offset + i] = base;
  }
}

SequencePair make_sequence_pair(const SequencePairConfig& config,
                                dist::Xoshiro256& rng) {
  RIPPLE_REQUIRE(config.homology_length <= config.query_length &&
                     config.homology_length <= config.subject_length,
                 "homology longer than a sequence");
  SequencePair pair;
  pair.subject = random_sequence(config.subject_length, rng);
  pair.query = random_sequence(config.query_length, rng);
  for (std::size_t h = 0; h < config.homology_count; ++h) {
    const std::size_t subject_offset = static_cast<std::size_t>(
        rng.uniform_below(config.subject_length - config.homology_length + 1));
    const std::size_t query_offset = static_cast<std::size_t>(
        rng.uniform_below(config.query_length - config.homology_length + 1));
    plant_homology(pair.subject, subject_offset, pair.query, query_offset,
                   config.homology_length, config.mutation_rate, rng);
  }
  return pair;
}

std::string to_string(const Sequence& sequence) {
  static constexpr char kLetters[] = {'A', 'C', 'G', 'T'};
  std::string text;
  text.reserve(sequence.size());
  for (Base base : sequence) {
    text.push_back(base < kAlphabetSize ? kLetters[base] : '?');
  }
  return text;
}

}  // namespace ripple::blast
