#include "blast/measure.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ripple::blast {

namespace {
void record_gain(StageMeasurement& stage, std::uint64_t outputs) {
  if (stage.gain_histogram.size() <= outputs) {
    stage.gain_histogram.resize(outputs + 1, 0);
  }
  ++stage.gain_histogram[outputs];
}
}  // namespace

PipelineMeasurement measure_pipeline(const BlastStages& stages,
                                     const MeasureConfig& config) {
  RIPPLE_REQUIRE(config.window_count > 0, "need at least one window");
  RIPPLE_REQUIRE(config.stride >= 1, "stride must be positive");

  PipelineMeasurement m;
  const std::size_t limit = stages.input_count();

  std::uint64_t offset = config.start_offset;
  for (std::uint64_t w = 0; w < config.window_count; ++w, offset += config.stride) {
    const std::uint32_t subject_pos =
        static_cast<std::uint32_t>(offset % limit);
    ++m.windows_streamed;

    // Stage 0: seed filter.
    StageMeasurement& s0 = m.stages[0];
    ++s0.inputs;
    StageCost c0;
    const bool matched = stages.seed_match(subject_pos, c0);
    s0.total_ops += c0.ops;
    record_gain(s0, matched ? 1 : 0);
    if (!matched) continue;
    ++s0.outputs;

    // Stage 1: seed expansion (the u-bounded expanding stage).
    StageMeasurement& s1 = m.stages[1];
    ++s1.inputs;
    StageCost c1;
    const std::vector<HitItem> hits = stages.expand_seed(subject_pos, c1);
    s1.total_ops += c1.ops;
    record_gain(s1, hits.size());
    s1.outputs += hits.size();

    for (const HitItem& hit : hits) {
      // Stage 2: ungapped extension filter.
      StageMeasurement& s2 = m.stages[2];
      ++s2.inputs;
      StageCost c2;
      const std::optional<ExtendedHit> extended =
          stages.ungapped_extend(hit, c2);
      s2.total_ops += c2.ops;
      record_gain(s2, extended.has_value() ? 1 : 0);
      if (!extended.has_value()) continue;
      ++s2.outputs;

      // Stage 3: gapped extension (sink).
      StageMeasurement& s3 = m.stages[3];
      ++s3.inputs;
      StageCost c3;
      const Alignment alignment = stages.gapped_extend(*extended, c3);
      s3.total_ops += c3.ops;
      record_gain(s3, 1);
      ++s3.outputs;
      (void)alignment;
      ++m.alignments_reported;
    }
  }
  return m;
}

util::Result<sdf::PipelineSpec> PipelineMeasurement::to_pipeline_spec(
    std::uint32_t simd_width, double cycles_per_op) const {
  RIPPLE_REQUIRE(cycles_per_op > 0.0, "cycle scale must be positive");
  static const char* kStageNames[kStageCount] = {
      "seed_filter", "seed_expand", "ungapped_extend", "gapped_extend"};

  sdf::PipelineBuilder builder("mini-blast(measured)");
  builder.simd_width(simd_width);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const StageMeasurement& stage = stages[i];
    if (stage.inputs == 0) {
      return util::Result<sdf::PipelineSpec>::failure(
          "no_data", std::string("stage ") + kStageNames[i] +
                         " received no inputs; stream more windows");
    }
    dist::GainPtr gain;
    if (i + 1 == kStageCount) {
      gain = dist::make_deterministic(1);  // sink
    } else {
      std::vector<double> weights(stage.gain_histogram.size());
      for (std::size_t k = 0; k < weights.size(); ++k) {
        weights[k] = static_cast<double>(stage.gain_histogram[k]);
      }
      gain = std::make_shared<const dist::EmpiricalGain>(std::move(weights));
    }
    // Guard against degenerate zero-cost stages (can't happen with the real
    // stages, but keeps the spec valid for any measurement source).
    const double service = std::max(1.0, stage.mean_ops() * cycles_per_op);
    builder.add_node(kStageNames[i], service, std::move(gain));
  }
  return builder.build();
}

}  // namespace ripple::blast
