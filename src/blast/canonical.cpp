#include "blast/canonical.hpp"

#include "dist/gain.hpp"
#include "util/assert.hpp"

namespace ripple::blast {

sdf::PipelineSpec canonical_blast_pipeline() {
  auto spec =
      sdf::PipelineBuilder("blast(table1)")
          .simd_width(Table1::kSimdWidth)
          .add_node("seed_filter", Table1::kServiceTimes[0],
                    dist::make_bernoulli(Table1::kGains[0]))
          .add_node("seed_expand", Table1::kServiceTimes[1],
                    dist::make_censored_poisson(Table1::kGains[1],
                                                Table1::kMaxExpansion))
          .add_node("ungapped_extend", Table1::kServiceTimes[2],
                    dist::make_bernoulli(Table1::kGains[2]))
          .add_node("gapped_extend", Table1::kServiceTimes[3],
                    dist::make_deterministic(1))
          .build();
  RIPPLE_REQUIRE(spec.ok(), "canonical pipeline must validate");
  return std::move(spec).take();
}

std::vector<double> paper_calibrated_b() { return {1.0, 3.0, 9.0, 6.0}; }

}  // namespace ripple::blast
