// Bindings from the mini-BLAST computation to the vector-wide pipeline
// executor: one BatchStage per paper stage, lanes carrying SoA columns
//
//   stage 0  (subject_pos)                    -> (subject_pos)
//   stage 1  (subject_pos)                    -> (subject_pos, query_pos)
//   stage 2  (subject_pos, query_pos)         -> (subject_pos, query_pos, score)
//   stage 3  (subject_pos, query_pos, score)  -> (subject_pos, query_pos, score)
//
// with scores bit-cast through the u32 column (runtime::field_from_i32).
// The stage bodies are the vectorized kernels of blast/simd_kernels.hpp, so
// a pipeline built from make_batch_stages() runs AVX2 when the host and the
// build allow it and the scalar fallbacks otherwise, producing identical
// results either way. make_item_stages() exposes the same computation as
// classic per-item StageFns for the reference engine and golden tests.
#pragma once

#include <string>
#include <vector>

#include "blast/stages.hpp"
#include "runtime/pipeline_executor.hpp"

namespace ripple::blast {

/// Registry kernel name pricing each batch stage, aligned with
/// make_batch_stages() order. Stage 1 (seed expansion) is dominated by the
/// scalar CSR walk, so its entry is empty: its t_i does not move with the
/// resolved ISA. Feed to calib::stage_scales to reprice a measured pipeline
/// for a different dispatch level.
std::vector<std::string> stage_kernel_names();

/// Vector-wide stages over `stages` (which must outlive the executor). The
/// sink materializes collected results as blast::Alignment.
std::vector<runtime::BatchStage> make_batch_stages(const BlastStages& stages);

/// The same computation as classic per-item StageFns (std::any payloads:
/// u32 -> HitItem -> ExtendedHit -> Alignment), for ReferenceExecutor runs
/// and adapter-path comparisons.
std::vector<runtime::StageFn> make_item_stages(const BlastStages& stages);

/// The first `count` subject windows as typed pipeline inputs (position
/// column only), wrapping around like the measurement pass when `count`
/// exceeds input_count().
runtime::BatchInputs make_batch_inputs(const BlastStages& stages,
                                       std::size_t count);

}  // namespace ripple::blast
