#include "blast/batch_stages.hpp"

#include "blast/simd_kernels.hpp"

namespace ripple::blast {

using runtime::BatchEmitter;
using runtime::BatchStage;
using runtime::Item;
using runtime::LaneView;
using runtime::StageFn;

std::vector<std::string> stage_kernel_names() {
  return {"blast.seed_probe", "", "blast.xdrop_extend", "blast.banded_dp"};
}

std::vector<BatchStage> make_batch_stages(const BlastStages& stages) {
  std::vector<BatchStage> out(4);

  out[0].input_fields = 1;
  out[0].output_fields = 1;
  out[0].fn = [&stages](const LaneView& in, BatchEmitter& emit) {
    simd::seed_filter_batch(stages, in.field[0], in.lanes, emit);
  };

  out[1].input_fields = 1;
  out[1].output_fields = 2;
  out[1].fn = [&stages](const LaneView& in, BatchEmitter& emit) {
    simd::expand_seed_batch(stages, in.field[0], in.lanes, emit);
  };

  out[2].input_fields = 2;
  out[2].output_fields = 3;
  out[2].fn = [&stages](const LaneView& in, BatchEmitter& emit) {
    simd::ungapped_extend_batch(stages, in.field[0], in.field[1], in.lanes,
                                emit);
  };

  out[3].input_fields = 3;
  out[3].output_fields = 3;
  out[3].fn = [&stages](const LaneView& in, BatchEmitter& emit) {
    simd::gapped_extend_batch(stages, in.field[0], in.field[1], in.field[2],
                              in.lanes, emit);
  };
  out[3].materialize = [](const std::uint32_t* fields) {
    return Item(Alignment{fields[0], fields[1],
                          runtime::field_to_i32(fields[2])});
  };

  return out;
}

std::vector<StageFn> make_item_stages(const BlastStages& stages) {
  std::vector<StageFn> fns;
  fns.push_back([&stages](Item&& input, std::vector<Item>& outputs) {
    const auto pos = std::any_cast<std::uint32_t>(input);
    StageCost cost;
    if (stages.seed_match(pos, cost)) outputs.emplace_back(pos);
  });
  fns.push_back([&stages](Item&& input, std::vector<Item>& outputs) {
    const auto pos = std::any_cast<std::uint32_t>(input);
    StageCost cost;
    for (const HitItem& hit : stages.expand_seed(pos, cost)) {
      outputs.emplace_back(hit);
    }
  });
  fns.push_back([&stages](Item&& input, std::vector<Item>& outputs) {
    const auto hit = std::any_cast<HitItem>(input);
    StageCost cost;
    if (auto extended = stages.ungapped_extend(hit, cost)) {
      outputs.emplace_back(*extended);
    }
  });
  fns.push_back([&stages](Item&& input, std::vector<Item>& outputs) {
    const auto extended = std::any_cast<ExtendedHit>(input);
    StageCost cost;
    outputs.emplace_back(stages.gapped_extend(extended, cost));
  });
  return fns;
}

runtime::BatchInputs make_batch_inputs(const BlastStages& stages,
                                       std::size_t count) {
  runtime::BatchInputs inputs;
  const std::size_t windows = stages.input_count();
  for (std::size_t w = 0; w < count; ++w) {
    inputs.push(static_cast<std::uint32_t>(w % windows));
  }
  return inputs;
}

}  // namespace ripple::blast
