// Internal surface of the BLAST kernel variants: the concrete per-ISA bodies
// that simd_kernels.cpp registers with the device::KernelRegistry, plus the
// shared signatures and helpers. Tests include this to drive a specific body
// directly (e.g. the lanes4/NEON port through its portable backend on x86);
// everything else should go through the public wrappers in simd_kernels.hpp.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "blast/stages.hpp"
#include "device/dispatch.hpp"
#include "runtime/lane_batch.hpp"

namespace ripple::blast::simd {

// Concrete signatures shared by every variant of a kernel; the registry
// stores them type-erased and the wrappers cast back through these.
using EncodeKmersFn = void (*)(const Sequence& subject, std::size_t k,
                               const std::uint32_t* pos, std::size_t n,
                               std::uint32_t* codes);
using SeedFilterFn = void (*)(const BlastStages& stages,
                              const std::uint32_t* pos, std::size_t n,
                              runtime::BatchEmitter& out);
using UngappedExtendFn = void (*)(const BlastStages& stages,
                                  const std::uint32_t* sp,
                                  const std::uint32_t* qp, std::size_t n,
                                  runtime::BatchEmitter& out);
using GappedExtendFn = void (*)(const BlastStages& stages,
                                const std::uint32_t* sp,
                                const std::uint32_t* qp,
                                const std::uint32_t* score, std::size_t n,
                                runtime::BatchEmitter& out);

namespace detail {

/// Gapped DP sentinel shared by every vector variant: low enough that no
/// in-band score can reach it, high enough that adding a gap penalty cannot
/// underflow int32.
inline constexpr int kGappedMinScore = -(1 << 28);

// Scalar baselines: always compiled, the only bodies on RIPPLE_SIMD=OFF
// builds. These reuse the per-item BlastStages logic so any fix there is
// inherited.
void encode_kmers_scalar(const Sequence& subject, std::size_t k,
                         const std::uint32_t* pos, std::size_t n,
                         std::uint32_t* codes);
void seed_filter_scalar(const BlastStages& stages, const std::uint32_t* pos,
                        std::size_t n, runtime::BatchEmitter& out);
void ungapped_extend_scalar(const BlastStages& stages, const std::uint32_t* sp,
                            const std::uint32_t* qp, std::size_t n,
                            runtime::BatchEmitter& out);
void gapped_extend_scalar(const BlastStages& stages, const std::uint32_t* sp,
                          const std::uint32_t* qp, const std::uint32_t* score,
                          std::size_t n, runtime::BatchEmitter& out);

/// BlastStages::extend_direction resumed from mid-walk state: identical
/// recurrence, but score/best start from the values a partially-run vector
/// walk accumulated. Used by every vector variant to finish worklist tails
/// narrower than a vector.
inline int extend_scalar_from(const Base* subject, int subject_size,
                              const Base* query, int query_size, int s, int q,
                              int score, int best, int direction, int match,
                              int mismatch, int xdrop) {
  while (s >= 0 && q >= 0 && s < subject_size && q < query_size) {
    score += (subject[s] == query[q]) ? match : mismatch;
    best = std::max(best, score);
    if (best - score > xdrop) break;
    s += direction;
    q += direction;
  }
  return best;
}

#if RIPPLE_SIMD_X86
void encode_kmers_avx2(const Sequence& subject, std::size_t k,
                       const std::uint32_t* pos, std::size_t n,
                       std::uint32_t* codes);
void seed_filter_avx2(const BlastStages& stages, const std::uint32_t* pos,
                      std::size_t n, runtime::BatchEmitter& out);
void ungapped_extend_avx2(const BlastStages& stages, const std::uint32_t* sp,
                          const std::uint32_t* qp, std::size_t n,
                          runtime::BatchEmitter& out);
void gapped_extend_avx2(const BlastStages& stages, const std::uint32_t* sp,
                        const std::uint32_t* qp, const std::uint32_t* score,
                        std::size_t n, runtime::BatchEmitter& out);
#endif

#if RIPPLE_SIMD_X86_AVX512
void encode_kmers_avx512(const Sequence& subject, std::size_t k,
                         const std::uint32_t* pos, std::size_t n,
                         std::uint32_t* codes);
void seed_filter_avx512(const BlastStages& stages, const std::uint32_t* pos,
                        std::size_t n, runtime::BatchEmitter& out);
void ungapped_extend_avx512(const BlastStages& stages, const std::uint32_t* sp,
                            const std::uint32_t* qp, std::size_t n,
                            runtime::BatchEmitter& out);
void gapped_extend_avx512(const BlastStages& stages, const std::uint32_t* sp,
                          const std::uint32_t* qp, const std::uint32_t* score,
                          std::size_t n, runtime::BatchEmitter& out);
#endif

// The lanes4 (NEON) ports of the two hottest kernels are always compiled:
// on AArch64 they lower to NEON intrinsics and register as kNeon variants;
// elsewhere they run the portable 4-lane backend so their arithmetic is
// golden-tested on every host (see device/lanes4.hpp).
void ungapped_extend_lanes4(const BlastStages& stages, const std::uint32_t* sp,
                            const std::uint32_t* qp, std::size_t n,
                            runtime::BatchEmitter& out);
void gapped_extend_lanes4(const BlastStages& stages, const std::uint32_t* sp,
                          const std::uint32_t* qp, const std::uint32_t* score,
                          std::size_t n, runtime::BatchEmitter& out);

}  // namespace detail

/// Shape gates for the word-gather x86 variants: the k-mer kernels need
/// k % 4 == 0 (word-exact gathers) and every kernel needs at least one full
/// word in each sequence (clamped extension gathers). The lanes4 variants
/// read per lane and need no gate.
inline bool word_kmer_eligible(const BlastStages& stages) {
  return stages.config().k % 4 == 0 && stages.pair().subject.size() >= 4 &&
         stages.pair().query.size() >= 4;
}
inline bool word_extend_eligible(const BlastStages& stages) {
  return stages.pair().subject.size() >= 4 && stages.pair().query.size() >= 4;
}
inline bool needs_word_gates(device::SimdLevel level) {
  return level == device::SimdLevel::kAvx2 ||
         level == device::SimdLevel::kAvx512;
}

}  // namespace ripple::blast::simd
