#include "blast/index.hpp"

#include "util/assert.hpp"

namespace ripple::blast {

KmerCode encode_kmer(const Sequence& sequence, std::size_t offset,
                     std::size_t k) {
  RIPPLE_REQUIRE(k >= 1 && k <= kMaxK, "k out of range");
  RIPPLE_REQUIRE(offset + k <= sequence.size(), "k-mer exceeds sequence");
  KmerCode code = 0;
  for (std::size_t i = 0; i < k; ++i) {
    code = (code << 2) | sequence[offset + i];
  }
  return code;
}

KmerIndex::KmerIndex(const Sequence& query, std::size_t k)
    : k_(k), query_length_(query.size()) {
  RIPPLE_REQUIRE(k >= 1 && k <= 12, "index k must be in [1, 12]");
  RIPPLE_REQUIRE(query.size() >= k, "query shorter than k");

  const std::size_t buckets = std::size_t{1} << (2 * k);
  const std::size_t kmer_count = query.size() - k + 1;

  // Counting sort into CSR: count occurrences per code, prefix-sum, fill.
  std::vector<std::uint32_t> counts(buckets, 0);
  // Rolling code: shift in one base at a time.
  const KmerCode mask = static_cast<KmerCode>(buckets - 1);
  KmerCode code = encode_kmer(query, 0, k);
  ++counts[code];
  for (std::size_t pos = 1; pos < kmer_count; ++pos) {
    code = ((code << 2) | query[pos + k - 1]) & mask;
    ++counts[code];
  }

  offsets_.resize(buckets + 1, 0);
  for (std::size_t c = 0; c < buckets; ++c) {
    offsets_[c + 1] = offsets_[c] + counts[c];
  }
  positions_.resize(kmer_count);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  code = encode_kmer(query, 0, k);
  positions_[cursor[code]++] = 0;
  for (std::size_t pos = 1; pos < kmer_count; ++pos) {
    code = ((code << 2) | query[pos + k - 1]) & mask;
    positions_[cursor[code]++] = static_cast<std::uint32_t>(pos);
  }
}

const std::uint32_t* KmerIndex::positions(KmerCode code,
                                          std::size_t& count) const {
  RIPPLE_REQUIRE(static_cast<std::size_t>(code) + 1 < offsets_.size(),
                 "k-mer code out of range");
  count = offsets_[code + 1] - offsets_[code];
  return positions_.data() + offsets_[code];
}

bool KmerIndex::contains(KmerCode code) const {
  std::size_t count = 0;
  (void)positions(code, count);
  return count > 0;
}

std::size_t KmerIndex::distinct_kmers() const {
  std::size_t distinct = 0;
  for (std::size_t c = 0; c + 1 < offsets_.size(); ++c) {
    if (offsets_[c + 1] > offsets_[c]) ++distinct;
  }
  return distinct;
}

}  // namespace ripple::blast
