// Four-lane ports of the two hottest BLAST kernels (X-drop ungapped
// extension and banded gapped DP), written against device/lanes4.hpp: NEON
// intrinsics on AArch64, the portable backend elsewhere. Same lane-parallel
// structure as the AVX2/AVX-512 bodies, but memory access is per-lane masked
// byte loads instead of clamped word gathers — NEON has no gather — so these
// carry no word-alignment shape gates. Bit-identical to the scalar baselines
// on every backend (tests/test_blast_simd.cpp drives the portable backend
// directly on x86).
#include <algorithm>
#include <cstdint>
#include <vector>

#include "blast/simd_kernels_detail.hpp"
#include "device/lanes4.hpp"

namespace ripple::blast::simd {

using device::I32x4;
using runtime::BatchEmitter;
using runtime::field_from_i32;
using runtime::field_to_i32;

namespace {

/// Four-lane twin of the x86 extend chunks: advance the in-flight walks for
/// up to `steps` steps. Active lanes always hold in-range (s, s + d), so the
/// masked byte loads never clamp. Returns the still-active mask.
inline I32x4 extend4_chunk(const Base* subject, const Base* query, I32x4 bound,
                           I32x4 d, int direction, I32x4 match_v,
                           I32x4 mismatch_v, I32x4 xdrop_v, I32x4& s,
                           I32x4& score, I32x4& best, I32x4 active,
                           int steps) {
  const I32x4 step_v = device::x4_dup(direction);
  for (int t = 0; t < steps; ++t) {
    const I32x4 q_pos = device::x4_add(s, d);
    const I32x4 sb = device::x4_bytes_at(subject, s, active);
    const I32x4 qb = device::x4_bytes_at(query, q_pos, active);
    const I32x4 eq = device::x4_cmpeq(sb, qb);
    const I32x4 delta = device::x4_and(
        device::x4_blend(eq, mismatch_v, match_v), active);
    score = device::x4_add(score, delta);
    best = device::x4_max(best, score);
    const I32x4 dropped =
        device::x4_cmpgt(device::x4_sub(best, score), xdrop_v);
    active = device::x4_andnot(active, dropped);
    s = device::x4_add(s, device::x4_and(step_v, active));
    const I32x4 in_range = direction > 0 ? device::x4_cmpgt(bound, s)
                                         : device::x4_cmpgt(s, bound);
    active = device::x4_and(active, in_range);
    if (!device::x4_any(active)) return active;
  }
  return active;
}

/// SoA worklist of in-flight walks (four-lane edition of the x86 ones).
struct WalkList4 {
  std::vector<std::int32_t> index;
  std::vector<std::int32_t> s;
  std::vector<std::int32_t> d;
  std::vector<std::int32_t> score;
  std::vector<std::int32_t> best;

  void reserve(std::size_t n) {
    index.reserve(n);
    s.reserve(n);
    d.reserve(n);
    score.reserve(n);
    best.reserve(n);
  }
  void clear() {
    index.clear();
    s.clear();
    d.clear();
    score.clear();
    best.clear();
  }
  void push(std::int32_t idx, std::int32_t s_pos, std::int32_t delta,
            std::int32_t sc, std::int32_t bst) {
    index.push_back(idx);
    s.push_back(s_pos);
    d.push_back(delta);
    score.push_back(sc);
    best.push_back(bst);
  }
  std::size_t size() const { return index.size(); }
};

void extend_lanes4_direction(const BlastStages& stages, const std::uint32_t* sp,
                             const std::uint32_t* qp, std::size_t n,
                             int start_offset, int direction,
                             std::int32_t* out_best) {
  const BlastStages::Config& config = stages.config();
  const Base* subject = stages.pair().subject.data();
  const Base* query = stages.pair().query.data();
  const int subject_size = static_cast<int>(stages.pair().subject.size());
  const int query_size = static_cast<int>(stages.pair().query.size());
  const I32x4 match_v = device::x4_dup(config.match_score);
  const I32x4 mismatch_v = device::x4_dup(config.mismatch_penalty);
  const I32x4 xdrop_v = device::x4_dup(config.xdrop);
  const I32x4 subject_size_v = device::x4_dup(subject_size);
  const I32x4 query_size_v = device::x4_dup(query_size);
  const I32x4 zero = device::x4_dup(0);
  constexpr int kChunkSteps = 32;  // steps between worklist re-packs

  thread_local WalkList4 live;
  thread_local WalkList4 next;
  live.clear();
  live.reserve(n);
  next.clear();
  next.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    const int s0 = static_cast<int>(sp[i]) + start_offset;
    const int q0 = static_cast<int>(qp[i]) + start_offset;
    out_best[i] = 0;
    if (s0 >= 0 && q0 >= 0 && s0 < subject_size && q0 < query_size) {
      live.push(static_cast<std::int32_t>(i), s0, q0 - s0, 0, 0);
    }
  }

  std::int32_t s_a[4];
  std::int32_t score_a[4];
  std::int32_t best_a[4];
  while (live.size() >= 4) {
    next.clear();
    std::size_t g = 0;
    for (; g + 4 <= live.size(); g += 4) {
      I32x4 s = device::x4_load(live.s.data() + g);
      const I32x4 d = device::x4_load(live.d.data() + g);
      I32x4 score = device::x4_load(live.score.data() + g);
      I32x4 best = device::x4_load(live.best.data() + g);
      // First out-of-range s: forward stops when either sequence ends,
      // backward when either hits -1.
      const I32x4 bound =
          direction > 0
              ? device::x4_min(subject_size_v,
                               device::x4_sub(query_size_v, d))
              : device::x4_sub(device::x4_max(zero, device::x4_sub(zero, d)),
                               device::x4_dup(1));
      const I32x4 active = extend4_chunk(
          subject, query, bound, d, direction, match_v, mismatch_v, xdrop_v, s,
          score, best, device::x4_dup(-1), kChunkSteps);
      device::x4_store(s_a, s);
      device::x4_store(score_a, score);
      device::x4_store(best_a, best);
      const int live_bits = device::x4_mask_bits(active);
      for (int r = 0; r < 4; ++r) {
        const std::int32_t idx = live.index[g + static_cast<std::size_t>(r)];
        if (live_bits & (1 << r)) {
          next.push(idx, s_a[r], live.d[g + static_cast<std::size_t>(r)],
                    score_a[r], best_a[r]);
        } else {
          out_best[idx] = best_a[r];
        }
      }
    }
    for (; g < live.size(); ++g) {
      const int s0 = live.s[g];
      out_best[live.index[g]] = detail::extend_scalar_from(
          subject, subject_size, query, query_size, s0, s0 + live.d[g],
          live.score[g], live.best[g], direction, config.match_score,
          config.mismatch_penalty, config.xdrop);
    }
    std::swap(live, next);
  }
  for (std::size_t g = 0; g < live.size(); ++g) {
    const int s0 = live.s[g];
    out_best[live.index[g]] = detail::extend_scalar_from(
        subject, subject_size, query, query_size, s0, s0 + live.d[g],
        live.score[g], live.best[g], direction, config.match_score,
        config.mismatch_penalty, config.xdrop);
  }
}

}  // namespace

namespace detail {

void ungapped_extend_lanes4(const BlastStages& stages, const std::uint32_t* sp,
                            const std::uint32_t* qp, std::size_t n,
                            BatchEmitter& out) {
  const BlastStages::Config& config = stages.config();
  const int k = static_cast<int>(config.k);
  const int seed_score = k * config.match_score;

  thread_local std::vector<std::int32_t> right_best;
  thread_local std::vector<std::int32_t> left_best;
  right_best.resize(n);
  left_best.resize(n);
  extend_lanes4_direction(stages, sp, qp, n, k, +1, right_best.data());
  extend_lanes4_direction(stages, sp, qp, n, -1, -1, left_best.data());

  for (std::size_t lane = 0; lane < n; ++lane) {
    const int total = seed_score + right_best[lane] + left_best[lane];
    if (total >= config.ungapped_threshold) {
      out.emit(lane, sp[lane], qp[lane], field_from_i32(total));
    }
  }
}

/// Four-lane banded gapped DP — the x86 band-relative SoA scheme (see the
/// AVX2 body's comment for the derivation) at lane stride 4, with clamped
/// per-lane byte loads for the query row: a clamped read only happens in
/// lanes whose cell is rejected by the band gate or boundary logic anyway.
void gapped_extend_lanes4(const BlastStages& stages, const std::uint32_t* sp,
                          const std::uint32_t* qp, const std::uint32_t* score,
                          std::size_t n, BatchEmitter& out) {
  const BlastStages::Config& config = stages.config();
  const Base* subject = stages.pair().subject.data();
  const Base* query = stages.pair().query.data();
  const int subject_size = static_cast<int>(stages.pair().subject.size());
  const int query_size = static_cast<int>(stages.pair().query.size());
  const std::int64_t w = static_cast<std::int64_t>(config.gapped_window);
  const int band = static_cast<int>(config.band_radius);
  const int width = 2 * band + 1;
  constexpr int kMinScore = kGappedMinScore;

  const I32x4 zero = device::x4_dup(0);
  const I32x4 one = device::x4_dup(1);
  const I32x4 band_v = device::x4_dup(band);
  const I32x4 gap_v = device::x4_dup(config.gap_penalty);
  const I32x4 match_v = device::x4_dup(config.match_score);
  const I32x4 mismatch_v = device::x4_dup(config.mismatch_penalty);
  const I32x4 kmin_v = device::x4_dup(kMinScore);
  const I32x4 lane_id = {{0, 1, 2, 3}};

  thread_local std::vector<std::int32_t> band_rows;
  band_rows.resize(static_cast<std::size_t>(width + 1) * 4 * 2);
  std::int32_t* previous = band_rows.data();
  std::int32_t* current = band_rows.data() + (width + 1) * 4;

  std::int32_t ds_a[4];
  std::int32_t cols_a[4];
  std::int32_t rows_limit_a[4];
  std::int32_t s_begin_a[4];
  std::int32_t q_begin_a[4];
  std::int32_t best_a[4];

  std::size_t lane0 = 0;
  for (; lane0 + 4 <= n; lane0 += 4) {
    int max_rows = 0;
    for (int r = 0; r < 4; ++r) {
      const std::int64_t hsp = sp[lane0 + static_cast<std::size_t>(r)];
      const std::int64_t hqp = qp[lane0 + static_cast<std::size_t>(r)];
      const int s_begin = static_cast<int>(std::max<std::int64_t>(0, hsp - w));
      const int s_end =
          static_cast<int>(std::min<std::int64_t>(subject_size, hsp + w));
      const int q_begin = static_cast<int>(std::max<std::int64_t>(0, hqp - w));
      const int q_end =
          static_cast<int>(std::min<std::int64_t>(query_size, hqp + w));
      const int rows = s_end - s_begin;
      const int cols = q_end - q_begin;
      const int ds = static_cast<int>((hqp - q_begin) - (hsp - s_begin));
      s_begin_a[r] = s_begin;
      q_begin_a[r] = q_begin;
      ds_a[r] = ds;
      cols_a[r] = cols;
      // Rows the scalar loop actually processes before its early break.
      const int limit =
          (1 + ds + band < 0) ? 0 : std::min(rows, cols - ds + band);
      rows_limit_a[r] = std::max(limit, 0);
      max_rows = std::max(max_rows, rows_limit_a[r]);
      // Row 0 in band coordinates (gap ladder / kMinScore sentinels); slot
      // `width` stays kMinScore in both buffers for good.
      const int j_lo0 = std::max(ds - band, 0);
      for (int t = 0; t <= width; ++t) {
        const int j = j_lo0 + t;
        int value = kMinScore;
        if (j == 0) {
          value = 0;
        } else if (j <= ds + band && j <= cols) {
          value = j * config.gap_penalty;
        }
        previous[t * 4 + r] = value;
        current[t * 4 + r] = kMinScore;
      }
    }

    const I32x4 ds_v = device::x4_load(ds_a);
    const I32x4 cols_v = device::x4_load(cols_a);
    const I32x4 rows_limit_v = device::x4_load(rows_limit_a);
    const I32x4 s_begin_v = device::x4_load(s_begin_a);
    const I32x4 q_begin_v = device::x4_load(q_begin_a);
    I32x4 best = zero;
    I32x4 j_lo_prev = device::x4_max(device::x4_sub(ds_v, band_v), zero);

    for (int i = 1; i <= max_rows; ++i) {
      const I32x4 row_active =
          device::x4_cmpgt(rows_limit_v, device::x4_dup(i - 1));
      const I32x4 center = device::x4_add(device::x4_dup(i), ds_v);
      const I32x4 j_lo =
          device::x4_max(device::x4_sub(center, band_v), zero);
      const I32x4 j_hi =
          device::x4_min(device::x4_add(center, band_v), cols_v);
      const I32x4 dlo = device::x4_sub(j_lo, j_lo_prev);
      j_lo_prev = j_lo;
      const int active_mask = device::x4_mask_bits(row_active);
      const int shifted_mask = device::x4_mask_bits(
          device::x4_and(device::x4_cmpeq(dlo, one), row_active));
      const bool uniform = shifted_mask == 0 || shifted_mask == active_mask;
      const int shift_common = shifted_mask != 0 ? 1 : 0;

      // The row's subject base: i <= rows_limit keeps s_idx in range for
      // every active lane, so no clamp is needed.
      const I32x4 s_idx =
          device::x4_add(s_begin_v, device::x4_dup(i - 1));
      const I32x4 sb = device::x4_bytes_at(subject, s_idx, row_active);
      const I32x4 row_gap = device::x4_dup(i * config.gap_penalty);

      // Gate 0 on retired rows rejects every j (see the AVX2 comment).
      const I32x4 band_gate =
          device::x4_and(device::x4_add(j_hi, one), row_active);

      // t = 0, peeled (j == 0 gap ladder / below-band column). q_idx can be
      // q_begin - 1 == -1 when j_lo == 0; that lane's cell is overwritten by
      // the boundary store, so the clamped read is harmless.
      const I32x4 prev_jm1_seed = device::x4_load(previous);
      I32x4 prev_j;
      if (uniform) {
        prev_j = device::x4_load(previous + shift_common * 4);
      } else {
        const I32x4 d2 = device::x4_add(dlo, dlo);
        const I32x4 slot = device::x4_add(device::x4_add(d2, d2), lane_id);
        prev_j = device::x4_gather_i32(previous, slot);
      }
      const I32x4 q_idx0 =
          device::x4_sub(device::x4_add(q_begin_v, j_lo), one);
      I32x4 left;
      {
        const I32x4 qb = device::x4_bytes_clamped(query, q_idx0,
                                                  query_size - 1, row_active);
        const I32x4 eq = device::x4_cmpeq(sb, qb);
        const I32x4 diag = device::x4_add(
            prev_jm1_seed, device::x4_blend(eq, mismatch_v, match_v));
        const I32x4 up = device::x4_add(prev_j, gap_v);
        const I32x4 from_left = device::x4_add(kmin_v, gap_v);
        const I32x4 cell =
            device::x4_max(device::x4_max(diag, up), from_left);
        const I32x4 is_dp =
            device::x4_and(device::x4_cmpgt(j_lo, zero),
                           device::x4_cmpgt(band_gate, j_lo));
        const I32x4 is_boundary =
            device::x4_and(row_active, device::x4_cmpeq(j_lo, zero));
        I32x4 stored = device::x4_blend(is_dp, kmin_v, cell);
        stored = device::x4_blend(is_boundary, stored, row_gap);
        device::x4_store(current, stored);
        best = device::x4_max(best, stored);
        left = stored;
      }
      I32x4 prev_jm1 = prev_j;
      I32x4 j_v = device::x4_add(j_lo, one);
      for (int t = 1; t < width; ++t) {
        // Query byte for column j; j > j_hi lanes read clamped garbage that
        // the band gate rejects.
        const I32x4 q_idx =
            device::x4_sub(device::x4_add(q_begin_v, j_v), one);
        const I32x4 qb = device::x4_bytes_clamped(query, q_idx, query_size - 1,
                                                  row_active);

        if (uniform) {
          prev_j = device::x4_load(previous + (t + shift_common) * 4);
        } else {
          const I32x4 td = device::x4_add(device::x4_dup(t), dlo);
          const I32x4 td2 = device::x4_add(td, td);
          const I32x4 slot =
              device::x4_add(device::x4_add(td2, td2), lane_id);
          prev_j = device::x4_gather_i32(previous, slot);
        }

        const I32x4 eq = device::x4_cmpeq(sb, qb);
        const I32x4 diag = device::x4_add(
            prev_jm1, device::x4_blend(eq, mismatch_v, match_v));
        const I32x4 up = device::x4_add(prev_j, gap_v);
        const I32x4 from_left = device::x4_add(left, gap_v);
        const I32x4 cell =
            device::x4_max(device::x4_max(diag, up), from_left);

        // j >= 1 holds for every t >= 1, so the band gate is the whole test.
        const I32x4 stored = device::x4_blend(
            device::x4_cmpgt(band_gate, j_v), kmin_v, cell);
        device::x4_store(current + t * 4, stored);
        best = device::x4_max(best, stored);
        prev_jm1 = prev_j;
        left = stored;
        j_v = device::x4_add(j_v, one);
      }
      std::swap(previous, current);
    }

    device::x4_store(best_a, best);
    for (int r = 0; r < 4; ++r) {
      const std::size_t lane = lane0 + static_cast<std::size_t>(r);
      const int result = std::max(best_a[r], field_to_i32(score[lane]));
      out.emit(lane, sp[lane], qp[lane], field_from_i32(result));
    }
  }
  if (lane0 < n) {
    StageCost cost;
    for (; lane0 < n; ++lane0) {
      const Alignment alignment = stages.gapped_extend(
          ExtendedHit{sp[lane0], qp[lane0], field_to_i32(score[lane0])}, cost);
      out.emit(lane0, alignment.subject_pos, alignment.query_pos,
               field_from_i32(alignment.score));
    }
  }
}

}  // namespace detail

}  // namespace ripple::blast::simd
