// K-mer index of the query sequence: the lookup structure behind BLAST's
// seed-matching stage.
#pragma once

#include <cstdint>
#include <vector>

#include "blast/sequence.hpp"

namespace ripple::blast {

/// Packed 2-bit k-mer code; k is limited to 16 so codes fit in 32 bits.
using KmerCode = std::uint32_t;

inline constexpr std::size_t kMaxK = 16;

/// Code of the k-mer starting at `offset` (caller guarantees it fits).
KmerCode encode_kmer(const Sequence& sequence, std::size_t offset, std::size_t k);

/// Direct-addressed k-mer index: for each possible k-mer code, the sorted
/// list of query positions where it occurs. Memory is 4^k buckets, so k <= 12
/// is practical; BLAST-style seeding uses k in [8, 12] for DNA.
class KmerIndex {
 public:
  KmerIndex(const Sequence& query, std::size_t k);

  std::size_t k() const noexcept { return k_; }
  std::size_t query_length() const noexcept { return query_length_; }

  /// Positions in the query where this code occurs (may be empty).
  /// The returned span stays valid for the index's lifetime.
  const std::uint32_t* positions(KmerCode code, std::size_t& count) const;

  bool contains(KmerCode code) const;

  /// Total number of indexed k-mer occurrences.
  std::size_t total_occurrences() const noexcept { return positions_.size(); }

  /// Raw CSR arrays for vectorized probing (blast/simd_kernels.cpp): gathers
  /// on offsets_data()[code] / [code + 1] replace per-code positions() calls.
  const std::uint32_t* offsets_data() const noexcept { return offsets_.data(); }
  const std::uint32_t* positions_data() const noexcept {
    return positions_.data();
  }

  /// Number of distinct k-mer codes present.
  std::size_t distinct_kmers() const;

 private:
  std::size_t k_;
  std::size_t query_length_;
  // CSR layout: positions_ holds all occurrence positions grouped by code;
  // offsets_[code]..offsets_[code+1] delimit a code's run.
  std::vector<std::uint32_t> positions_;
  std::vector<std::uint32_t> offsets_;
};

}  // namespace ripple::blast
