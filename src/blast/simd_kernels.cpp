// Scalar baselines, AVX2 bodies, registry wiring, and the public batch
// wrappers for the BLAST kernels. The AVX-512 bodies live in
// simd_kernels_avx512.cpp and the lanes4/NEON ports in
// simd_kernels_lanes4.cpp; all of them register here, through
// register_kernels(), under the names in docs/KERNELS.md.
#include "blast/simd_kernels.hpp"

#include <algorithm>
#include <vector>

#include "blast/simd_kernels_detail.hpp"
#include "device/dispatch.hpp"
#include "device/kernel_registry.hpp"
#include "dist/rng.hpp"
#include "util/assert.hpp"

#if RIPPLE_SIMD_X86
#include <immintrin.h>
#endif

namespace ripple::blast::simd {

using runtime::BatchEmitter;
using runtime::field_from_i32;
using runtime::field_to_i32;

namespace detail {

// ---------------------------------------------------------------------------
// Scalar bodies: always compiled, the only bodies on RIPPLE_SIMD=OFF builds.
// These reuse the per-item BlastStages logic so any fix there is inherited.
// ---------------------------------------------------------------------------

void encode_kmers_scalar(const Sequence& subject, std::size_t k,
                         const std::uint32_t* pos, std::size_t n,
                         std::uint32_t* codes) {
  for (std::size_t i = 0; i < n; ++i) {
    codes[i] = encode_kmer(subject, pos[i], k);
  }
}

void seed_filter_scalar(const BlastStages& stages, const std::uint32_t* pos,
                        std::size_t n, BatchEmitter& out) {
  const KmerIndex& index = stages.index();
  const std::uint32_t* offsets = index.offsets_data();
  const std::size_t k = stages.config().k;
  const Sequence& subject = stages.pair().subject;
  for (std::size_t lane = 0; lane < n; ++lane) {
    const KmerCode code = encode_kmer(subject, pos[lane], k);
    if (offsets[code + 1] > offsets[code]) out.emit(lane, pos[lane]);
  }
}

void ungapped_extend_scalar(const BlastStages& stages, const std::uint32_t* sp,
                            const std::uint32_t* qp, std::size_t n,
                            BatchEmitter& out) {
  StageCost cost;
  for (std::size_t lane = 0; lane < n; ++lane) {
    const auto hit = stages.ungapped_extend(HitItem{sp[lane], qp[lane]}, cost);
    if (hit.has_value()) {
      out.emit(lane, hit->subject_pos, hit->query_pos,
               field_from_i32(hit->ungapped_score));
    }
  }
}

void gapped_extend_scalar(const BlastStages& stages, const std::uint32_t* sp,
                          const std::uint32_t* qp, const std::uint32_t* score,
                          std::size_t n, BatchEmitter& out) {
  StageCost cost;
  for (std::size_t lane = 0; lane < n; ++lane) {
    const Alignment alignment = stages.gapped_extend(
        ExtendedHit{sp[lane], qp[lane], field_to_i32(score[lane])}, cost);
    out.emit(lane, alignment.subject_pos, alignment.query_pos,
             field_from_i32(alignment.score));
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// AVX2 bodies. Guarded at compile time by RIPPLE_SIMD_X86 and at run time by
// registry resolution; arithmetic is integer-for-integer identical to the
// scalar bodies.
// ---------------------------------------------------------------------------
#if RIPPLE_SIMD_X86

namespace {

/// Pack one gathered 32-bit word (4 consecutive bases, little-endian, so the
/// lowest-addressed base sits in the low byte) into 8 code bits with the
/// first base most significant — the bit order encode_kmer() produces.
__attribute__((target("avx2"))) inline __m256i pack_word_to_code_bits(
    __m256i w) {
  const __m256i b0 = _mm256_slli_epi32(_mm256_and_si256(w, _mm256_set1_epi32(3)), 6);
  const __m256i b1 = _mm256_and_si256(_mm256_srli_epi32(w, 4),
                                      _mm256_set1_epi32(3 << 4));
  const __m256i b2 = _mm256_and_si256(_mm256_srli_epi32(w, 14),
                                      _mm256_set1_epi32(3 << 2));
  const __m256i b3 = _mm256_and_si256(_mm256_srli_epi32(w, 24),
                                      _mm256_set1_epi32(3));
  return _mm256_or_si256(_mm256_or_si256(b0, b1), _mm256_or_si256(b2, b3));
}

/// Codes of 8 windows starting at the byte offsets in `idx`. Requires
/// k % 4 == 0: the gathers then read exactly the k window bytes, never past
/// them.
__attribute__((target("avx2"))) inline __m256i encode8(const Base* subject,
                                                       __m256i idx,
                                                       std::size_t k) {
  __m256i code = _mm256_setzero_si256();
  for (std::size_t word = 0; word * 4 < k; ++word) {
    const __m256i addr = _mm256_add_epi32(
        idx, _mm256_set1_epi32(static_cast<int>(4 * word)));
    const __m256i w = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(subject), addr, 1);
    code = _mm256_or_si256(_mm256_slli_epi32(code, 8),
                           pack_word_to_code_bits(w));
  }
  return code;
}

/// Run 8 in-flight ungapped walks for up to `blocks` four-step gather blocks.
/// One masked 32-bit word gather per sequence covers the next four bases of
/// each lane's walk (forward words start at the position, backward words end
/// there; addresses clamp to the sequence so active lanes never read past
/// it), and the four inner steps shift their byte out per lane — a lane
/// still active at a step provably sits inside its block word. The query
/// tracks the subject at constant per-lane offset `d = q - s`, so bounds
/// collapse to a single per-lane limit on s (`bound`: first out-of-range s
/// for the walk's direction, precomputed by the caller) and the query byte
/// shift is the subject shift plus a block constant. Updates s/score/best in
/// place and returns the still-active mask.
__attribute__((target("avx2"))) inline __m256i extend8_chunk(
    const Base* subject, const Base* query, __m256i s_last_word,
    __m256i q_last_word, __m256i bound, __m256i d, int direction,
    __m256i match_v, __m256i mismatch_v, __m256i xdrop_v, __m256i& s,
    __m256i& score, __m256i& best, __m256i active, int blocks) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i three = _mm256_set1_epi32(3);
  const __m256i byte_mask = _mm256_set1_epi32(0xFF);
  const __m256i step = _mm256_set1_epi32(direction);

  for (int block = 0; block < blocks; ++block) {
    const __m256i q_pos = _mm256_add_epi32(s, d);
    const __m256i s_addr =
        direction > 0 ? _mm256_min_epi32(s, s_last_word)
                      : _mm256_max_epi32(_mm256_sub_epi32(s, three), zero);
    const __m256i q_addr =
        direction > 0 ? _mm256_min_epi32(q_pos, q_last_word)
                      : _mm256_max_epi32(_mm256_sub_epi32(q_pos, three), zero);
    const __m256i sword = _mm256_mask_i32gather_epi32(
        zero, reinterpret_cast<const int*>(subject), s_addr, active, 1);
    const __m256i qword = _mm256_mask_i32gather_epi32(
        zero, reinterpret_cast<const int*>(query), q_addr, active, 1);
    // q_shift = s_shift + 8 * (s_addr + d - q_addr), constant per block.
    const __m256i q_shift_delta = _mm256_slli_epi32(
        _mm256_sub_epi32(_mm256_add_epi32(s_addr, d), q_addr), 3);
    for (int t = 0; t < 4; ++t) {
      // Per-lane byte extraction at the lane's CURRENT position (retired
      // lanes compute garbage, masked out of delta; their shift may even be
      // negative, which srlv maps to zero).
      const __m256i s_shift =
          _mm256_slli_epi32(_mm256_sub_epi32(s, s_addr), 3);
      const __m256i sb =
          _mm256_and_si256(_mm256_srlv_epi32(sword, s_shift), byte_mask);
      const __m256i qb = _mm256_and_si256(
          _mm256_srlv_epi32(qword, _mm256_add_epi32(s_shift, q_shift_delta)),
          byte_mask);
      const __m256i eq = _mm256_cmpeq_epi32(sb, qb);
      // delta = match/mismatch on active lanes, 0 (no-op) on retired ones.
      const __m256i delta = _mm256_and_si256(
          _mm256_blendv_epi8(mismatch_v, match_v, eq), active);
      score = _mm256_add_epi32(score, delta);
      best = _mm256_max_epi32(best, score);
      const __m256i dropped =
          _mm256_cmpgt_epi32(_mm256_sub_epi32(best, score), xdrop_v);
      active = _mm256_andnot_si256(dropped, active);
      s = _mm256_add_epi32(s, _mm256_and_si256(step, active));
      const __m256i in_range = direction > 0 ? _mm256_cmpgt_epi32(bound, s)
                                             : _mm256_cmpgt_epi32(s, bound);
      active = _mm256_and_si256(active, in_range);
      if (_mm256_movemask_ps(_mm256_castsi256_ps(active)) == 0) return active;
    }
  }
  return active;
}

/// In-flight ungapped walks awaiting more vector chunks: SoA state of the
/// compacted worklist.
struct WalkList {
  std::vector<std::int32_t> index;  ///< originating hit index
  std::vector<std::int32_t> s;      ///< current subject position
  std::vector<std::int32_t> d;      ///< query minus subject position
  std::vector<std::int32_t> score;
  std::vector<std::int32_t> best;

  void reserve(std::size_t n) {
    index.reserve(n);
    s.reserve(n);
    d.reserve(n);
    score.reserve(n);
    best.reserve(n);
  }
  void clear() {
    index.clear();
    s.clear();
    d.clear();
    score.clear();
    best.clear();
  }
  void push(std::int32_t idx, std::int32_t s_pos, std::int32_t delta,
            std::int32_t sc, std::int32_t bst) {
    index.push_back(idx);
    s.push_back(s_pos);
    d.push_back(delta);
    score.push_back(sc);
    best.push_back(bst);
  }
  std::size_t size() const { return index.size(); }
};

/// One extension direction for all hits, worklist-style: walks run in capped
/// vector chunks, retired lanes drop out, and survivors are re-packed into
/// dense groups for the next round — so a handful of long walks (e.g.
/// through a planted homology) end up sharing vectors with each other
/// instead of pinning seven retired lanes each. Regrouping cannot change
/// results: each lane's recurrence touches only its own state. Remainders
/// narrower than a vector resume scalar from the accumulated state.
__attribute__((target("avx2"))) void extend_avx2_direction(
    const BlastStages& stages, const std::uint32_t* sp, const std::uint32_t* qp,
    std::size_t n, int start_offset, int direction, std::int32_t* out_best) {
  const BlastStages::Config& config = stages.config();
  const Base* subject = stages.pair().subject.data();
  const Base* query = stages.pair().query.data();
  const int subject_size = static_cast<int>(stages.pair().subject.size());
  const int query_size = static_cast<int>(stages.pair().query.size());
  const __m256i s_last_word = _mm256_set1_epi32(subject_size - 4);
  const __m256i q_last_word = _mm256_set1_epi32(query_size - 4);
  const __m256i match_v = _mm256_set1_epi32(config.match_score);
  const __m256i mismatch_v = _mm256_set1_epi32(config.mismatch_penalty);
  const __m256i xdrop_v = _mm256_set1_epi32(config.xdrop);
  const __m256i subject_size_v = _mm256_set1_epi32(subject_size);
  const __m256i query_size_v = _mm256_set1_epi32(query_size);
  const __m256i zero = _mm256_setzero_si256();
  constexpr int kChunkBlocks = 8;  // 32 steps between re-packs

  thread_local WalkList live;
  thread_local WalkList next;
  live.clear();
  live.reserve(n);
  next.clear();
  next.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    const int s0 = static_cast<int>(sp[i]) + start_offset;
    const int q0 = static_cast<int>(qp[i]) + start_offset;
    out_best[i] = 0;
    if (s0 >= 0 && q0 >= 0 && s0 < subject_size && q0 < query_size) {
      live.push(static_cast<std::int32_t>(i), s0, q0 - s0, 0, 0);
    }
  }

  alignas(32) std::int32_t s_a[8];
  alignas(32) std::int32_t score_a[8];
  alignas(32) std::int32_t best_a[8];
  while (live.size() >= 8) {
    next.clear();
    std::size_t g = 0;
    for (; g + 8 <= live.size(); g += 8) {
      __m256i s = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(live.s.data() + g));
      const __m256i d = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(live.d.data() + g));
      __m256i score = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(live.score.data() + g));
      __m256i best = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(live.best.data() + g));
      // First out-of-range s for this walk: forward stops when either
      // sequence ends, backward when either hits -1.
      const __m256i bound =
          direction > 0
              ? _mm256_min_epi32(subject_size_v,
                                 _mm256_sub_epi32(query_size_v, d))
              : _mm256_sub_epi32(_mm256_max_epi32(zero, _mm256_sub_epi32(
                                                            zero, d)),
                                 _mm256_set1_epi32(1));
      const __m256i all = _mm256_set1_epi32(-1);
      const __m256i active = extend8_chunk(
          subject, query, s_last_word, q_last_word, bound, d, direction,
          match_v, mismatch_v, xdrop_v, s, score, best, all, kChunkBlocks);
      _mm256_store_si256(reinterpret_cast<__m256i*>(s_a), s);
      _mm256_store_si256(reinterpret_cast<__m256i*>(score_a), score);
      _mm256_store_si256(reinterpret_cast<__m256i*>(best_a), best);
      const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(active));
      for (int r = 0; r < 8; ++r) {
        const std::int32_t idx = live.index[g + static_cast<std::size_t>(r)];
        if (mask & (1 << r)) {
          next.push(idx, s_a[r], live.d[g + static_cast<std::size_t>(r)],
                    score_a[r], best_a[r]);
        } else {
          out_best[idx] = best_a[r];
        }
      }
    }
    for (; g < live.size(); ++g) {
      const int s0 = live.s[g];
      out_best[live.index[g]] = detail::extend_scalar_from(
          subject, subject_size, query, query_size, s0, s0 + live.d[g],
          live.score[g], live.best[g], direction, config.match_score,
          config.mismatch_penalty, config.xdrop);
    }
    std::swap(live, next);
  }
  for (std::size_t g = 0; g < live.size(); ++g) {
    const int s0 = live.s[g];
    out_best[live.index[g]] = detail::extend_scalar_from(
        subject, subject_size, query, query_size, s0, s0 + live.d[g],
        live.score[g], live.best[g], direction, config.match_score,
        config.mismatch_penalty, config.xdrop);
  }
}

}  // namespace

namespace detail {

__attribute__((target("avx2"))) void encode_kmers_avx2(
    const Sequence& subject, std::size_t k, const std::uint32_t* pos,
    std::size_t n, std::uint32_t* codes) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pos + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(codes + i),
                        encode8(subject.data(), idx, k));
  }
  for (; i < n; ++i) codes[i] = encode_kmer(subject, pos[i], k);
}

__attribute__((target("avx2"))) void seed_filter_avx2(const BlastStages& stages,
                                                      const std::uint32_t* pos,
                                                      std::size_t n,
                                                      BatchEmitter& out) {
  const std::uint32_t* offsets = stages.index().offsets_data();
  const Base* subject = stages.pair().subject.data();
  const std::size_t k = stages.config().k;
  std::size_t lane = 0;
  for (; lane + 8 <= n; lane += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pos + lane));
    const __m256i code = encode8(subject, idx, k);
    // CSR probe: a code is present iff its offsets run is non-empty.
    const __m256i off0 = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(offsets), code, 4);
    const __m256i off1 = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(offsets),
        _mm256_add_epi32(code, _mm256_set1_epi32(1)), 4);
    const __m256i hit = _mm256_cmpgt_epi32(off1, off0);
    int mask = _mm256_movemask_ps(_mm256_castsi256_ps(hit));
    while (mask != 0) {
      const int bit = __builtin_ctz(static_cast<unsigned>(mask));
      out.emit(lane + static_cast<std::size_t>(bit),
               pos[lane + static_cast<std::size_t>(bit)]);
      mask &= mask - 1;
    }
  }
  for (; lane < n; ++lane) {
    const KmerCode code = encode_kmer(stages.pair().subject, pos[lane], k);
    if (offsets[code + 1] > offsets[code]) out.emit(lane, pos[lane]);
  }
}

__attribute__((target("avx2"))) void ungapped_extend_avx2(
    const BlastStages& stages, const std::uint32_t* sp, const std::uint32_t* qp,
    std::size_t n, BatchEmitter& out) {
  const BlastStages::Config& config = stages.config();
  const int k = static_cast<int>(config.k);
  const int seed_score = k * config.match_score;

  thread_local std::vector<std::int32_t> right_best;
  thread_local std::vector<std::int32_t> left_best;
  right_best.resize(n);
  left_best.resize(n);
  extend_avx2_direction(stages, sp, qp, n, k, +1, right_best.data());
  extend_avx2_direction(stages, sp, qp, n, -1, -1, left_best.data());

  for (std::size_t lane = 0; lane < n; ++lane) {
    const int total = seed_score + right_best[lane] + left_best[lane];
    if (total >= config.ungapped_threshold) {
      out.emit(lane, sp[lane], qp[lane], field_from_i32(total));
    }
  }
}

/// 8-lane banded gapped DP: each lane runs its own alignment's recurrence.
/// Rows are stored band-relative — (W + 1) SoA slots of 8 lanes each, where
/// W = 2 * band_radius + 1 and slot t of row i holds logical column
/// j = j_lo(i) + t — so the rolling-row reads of the scalar code become a
/// one-slot-shifted walk over the previous row: the band advances by
/// dlo = j_lo(i) - j_lo(i-1) ∈ {0, 1} columns per row, uniformly across
/// lanes except while some lanes are still clamped at column 0, so
/// previous-row access is a plain vector load on the (overwhelmingly common)
/// uniform rows and an index gather otherwise. Sentinels materialize as
/// masked kMinScore stores, the j == 0 gap-ladder boundary as a masked
/// i*gap store, and slot W is kMinScore forever — exactly the cells the
/// scalar rolling rows expose, so every read sees the identical value and
/// the integer recurrence is bit-identical. Query bases come one gathered
/// word per four columns (same amortization as extend8); the subject base is
/// one gather per row.
__attribute__((target("avx2"))) void gapped_extend_avx2(
    const BlastStages& stages, const std::uint32_t* sp, const std::uint32_t* qp,
    const std::uint32_t* score, std::size_t n, BatchEmitter& out) {
  const BlastStages::Config& config = stages.config();
  const Base* subject = stages.pair().subject.data();
  const Base* query = stages.pair().query.data();
  const int subject_size = static_cast<int>(stages.pair().subject.size());
  const int query_size = static_cast<int>(stages.pair().query.size());
  const std::int64_t w = static_cast<std::int64_t>(config.gapped_window);
  const int band = static_cast<int>(config.band_radius);
  const int width = 2 * band + 1;
  constexpr int kMinScore = detail::kGappedMinScore;

  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i band_v = _mm256_set1_epi32(band);
  const __m256i gap_v = _mm256_set1_epi32(config.gap_penalty);
  const __m256i match_v = _mm256_set1_epi32(config.match_score);
  const __m256i mismatch_v = _mm256_set1_epi32(config.mismatch_penalty);
  const __m256i kmin_v = _mm256_set1_epi32(kMinScore);
  const __m256i byte_mask = _mm256_set1_epi32(0xFF);
  const __m256i lane_id = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i s_last_word = _mm256_set1_epi32(subject_size - 4);
  const __m256i q_last_word = _mm256_set1_epi32(query_size - 4);

  thread_local std::vector<std::int32_t> band_rows;
  band_rows.resize(static_cast<std::size_t>(width + 1) * 8 * 2);
  std::int32_t* previous = band_rows.data();
  std::int32_t* current = band_rows.data() + (width + 1) * 8;

  alignas(32) std::int32_t s_begin_a[8];
  alignas(32) std::int32_t q_begin_a[8];
  alignas(32) std::int32_t ds_a[8];
  alignas(32) std::int32_t cols_a[8];
  alignas(32) std::int32_t rows_limit_a[8];
  alignas(32) std::int32_t best_a[8];

  std::size_t lane0 = 0;
  for (; lane0 + 8 <= n; lane0 += 8) {
    int max_rows = 0;
    for (int r = 0; r < 8; ++r) {
      const std::int64_t hsp = sp[lane0 + static_cast<std::size_t>(r)];
      const std::int64_t hqp = qp[lane0 + static_cast<std::size_t>(r)];
      const int s_begin = static_cast<int>(std::max<std::int64_t>(0, hsp - w));
      const int s_end = static_cast<int>(
          std::min<std::int64_t>(subject_size, hsp + w));
      const int q_begin = static_cast<int>(std::max<std::int64_t>(0, hqp - w));
      const int q_end = static_cast<int>(
          std::min<std::int64_t>(query_size, hqp + w));
      const int rows = s_end - s_begin;
      const int cols = q_end - q_begin;
      const int ds = static_cast<int>((hqp - q_begin) - (hsp - s_begin));
      s_begin_a[r] = s_begin;
      q_begin_a[r] = q_begin;
      ds_a[r] = ds;
      cols_a[r] = cols;
      // Rows the scalar loop actually processes before its early break:
      // none if the first row's band tops out below column 0, and no row
      // whose band starts past the last column.
      const int limit =
          (1 + ds + band < 0) ? 0 : std::min(rows, cols - ds + band);
      rows_limit_a[r] = std::max(limit, 0);
      max_rows = std::max(max_rows, rows_limit_a[r]);
      // Row 0 in band coordinates: the gap ladder j*gap up to band+ds (and
      // cols), kMinScore beyond, j == 0 pinned to 0. Slot `width` stays
      // kMinScore in both buffers for good: it is the above-band sentinel
      // the scalar code writes at current[j_hi + 1] on unclamped rows.
      const int j_lo0 = std::max(ds - band, 0);
      for (int t = 0; t <= width; ++t) {
        const int j = j_lo0 + t;
        int value = kMinScore;
        if (j == 0) {
          value = 0;
        } else if (j <= ds + band && j <= cols) {
          value = j * config.gap_penalty;
        }
        previous[t * 8 + r] = value;
        current[t * 8 + r] = kMinScore;
      }
    }

    const __m256i ds_v =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(ds_a));
    const __m256i cols_v =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(cols_a));
    const __m256i rows_limit_v =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(rows_limit_a));
    const __m256i s_begin_v =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(s_begin_a));
    const __m256i q_begin_v =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(q_begin_a));
    __m256i best = zero;
    __m256i j_lo_prev = _mm256_max_epi32(_mm256_sub_epi32(ds_v, band_v), zero);

    for (int i = 1; i <= max_rows; ++i) {
      const __m256i row_active =
          _mm256_cmpgt_epi32(rows_limit_v, _mm256_set1_epi32(i - 1));
      const __m256i center = _mm256_add_epi32(_mm256_set1_epi32(i), ds_v);
      const __m256i j_lo =
          _mm256_max_epi32(_mm256_sub_epi32(center, band_v), zero);
      const __m256i j_hi =
          _mm256_min_epi32(_mm256_add_epi32(center, band_v), cols_v);
      const __m256i dlo = _mm256_sub_epi32(j_lo, j_lo_prev);
      j_lo_prev = j_lo;
      const int active_mask = _mm256_movemask_ps(_mm256_castsi256_ps(row_active));
      const int shifted_mask = _mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(dlo, one))) & active_mask;
      const bool uniform = shifted_mask == 0 || shifted_mask == active_mask;
      const int shift_common = shifted_mask != 0 ? 1 : 0;

      // The row's subject base, byte-extracted from one clamped word gather.
      const __m256i s_idx =
          _mm256_add_epi32(s_begin_v, _mm256_set1_epi32(i - 1));
      const __m256i s_addr =
          _mm256_max_epi32(_mm256_min_epi32(s_idx, s_last_word), zero);
      const __m256i s_word = _mm256_mask_i32gather_epi32(
          zero, reinterpret_cast<const int*>(subject), s_addr, row_active, 1);
      const __m256i sb = _mm256_and_si256(
          _mm256_srlv_epi32(s_word,
                            _mm256_slli_epi32(_mm256_sub_epi32(s_idx, s_addr),
                                              3)),
          byte_mask);
      const __m256i row_gap = _mm256_set1_epi32(i * config.gap_penalty);

      // First j at-or-past the band's top, with retired rows gated shut
      // (gate 0 rejects every j). Folds the row_active test out of the
      // per-column loop; best accumulates through `stored` directly since
      // boundary values (i*gap <= 0 <= best) and kMinScore can never win.
      const __m256i band_gate = _mm256_blendv_epi8(
          zero, _mm256_add_epi32(j_hi, one), row_active);

      // t = 0, peeled: the only column that can be the j == 0 gap ladder or
      // fall below j = 1. prev[j-1] here is band slot dlo - 1 of the
      // previous row — slot 0 for shifted lanes; unshifted lanes only reach
      // t = 0 with j == 0, which never reads it, so slot 0 serves every
      // lane.
      const __m256i prev_jm1_seed = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(previous));
      __m256i prev_j;
      if (uniform) {
        prev_j = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            previous + shift_common * 8));
      } else {
        const __m256i slot =
            _mm256_add_epi32(_mm256_slli_epi32(dlo, 3), lane_id);
        prev_j = _mm256_i32gather_epi32(previous, slot, 4);
      }
      const __m256i q_idx0 =
          _mm256_sub_epi32(_mm256_add_epi32(q_begin_v, j_lo), one);
      __m256i q_addr =
          _mm256_max_epi32(_mm256_min_epi32(q_idx0, q_last_word), zero);
      __m256i q_word = _mm256_mask_i32gather_epi32(
          zero, reinterpret_cast<const int*>(query), q_addr, row_active, 1);
      __m256i q_shift =
          _mm256_slli_epi32(_mm256_sub_epi32(q_idx0, q_addr), 3);
      __m256i left;
      {
        const __m256i qb = _mm256_and_si256(
            _mm256_srlv_epi32(q_word, q_shift), byte_mask);
        const __m256i eq = _mm256_cmpeq_epi32(sb, qb);
        const __m256i diag = _mm256_add_epi32(
            prev_jm1_seed, _mm256_blendv_epi8(mismatch_v, match_v, eq));
        const __m256i up = _mm256_add_epi32(prev_j, gap_v);
        const __m256i from_left = _mm256_add_epi32(kmin_v, gap_v);
        const __m256i cell =
            _mm256_max_epi32(_mm256_max_epi32(diag, up), from_left);
        const __m256i is_dp =
            _mm256_and_si256(_mm256_cmpgt_epi32(j_lo, zero),
                             _mm256_cmpgt_epi32(band_gate, j_lo));
        const __m256i is_boundary =
            _mm256_and_si256(row_active, _mm256_cmpeq_epi32(j_lo, zero));
        __m256i stored = _mm256_blendv_epi8(kmin_v, cell, is_dp);
        stored = _mm256_blendv_epi8(stored, row_gap, is_boundary);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(current), stored);
        best = _mm256_max_epi32(best, stored);
        left = stored;
      }
      __m256i prev_jm1 = prev_j;
      __m256i j_v = _mm256_add_epi32(j_lo, one);
      const __m256i eight = _mm256_set1_epi32(8);
      for (int t = 1; t < width; ++t) {
        if ((t & 3) == 0) {
          // One word gather of query bases covers this and the next three
          // columns (consecutive j → consecutive bytes).
          const __m256i q_idx =
              _mm256_sub_epi32(_mm256_add_epi32(q_begin_v, j_v), one);
          q_addr = _mm256_max_epi32(_mm256_min_epi32(q_idx, q_last_word),
                                    zero);
          q_word = _mm256_mask_i32gather_epi32(
              zero, reinterpret_cast<const int*>(query), q_addr, row_active,
              1);
          q_shift = _mm256_slli_epi32(_mm256_sub_epi32(q_idx, q_addr), 3);
        } else {
          q_shift = _mm256_add_epi32(q_shift, eight);
        }
        const __m256i qb = _mm256_and_si256(
            _mm256_srlv_epi32(q_word, q_shift), byte_mask);

        if (uniform) {
          prev_j = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
              previous + (t + shift_common) * 8));
        } else {
          const __m256i slot = _mm256_add_epi32(
              _mm256_slli_epi32(_mm256_add_epi32(_mm256_set1_epi32(t), dlo),
                                3),
              lane_id);
          prev_j = _mm256_i32gather_epi32(previous, slot, 4);
        }

        const __m256i eq = _mm256_cmpeq_epi32(sb, qb);
        const __m256i diag = _mm256_add_epi32(
            prev_jm1, _mm256_blendv_epi8(mismatch_v, match_v, eq));
        const __m256i up = _mm256_add_epi32(prev_j, gap_v);
        const __m256i from_left = _mm256_add_epi32(left, gap_v);
        const __m256i cell =
            _mm256_max_epi32(_mm256_max_epi32(diag, up), from_left);

        // j >= 1 holds for every t >= 1, so the band gate is the whole test.
        const __m256i stored = _mm256_blendv_epi8(
            kmin_v, cell, _mm256_cmpgt_epi32(band_gate, j_v));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(current + t * 8),
                            stored);
        best = _mm256_max_epi32(best, stored);
        prev_jm1 = prev_j;
        left = stored;
        j_v = _mm256_add_epi32(j_v, one);
      }
      std::swap(previous, current);
    }

    _mm256_store_si256(reinterpret_cast<__m256i*>(best_a), best);
    for (int r = 0; r < 8; ++r) {
      const std::size_t lane = lane0 + static_cast<std::size_t>(r);
      const int result =
          std::max(best_a[r], field_to_i32(score[lane]));
      out.emit(lane, sp[lane], qp[lane], field_from_i32(result));
    }
  }
  if (lane0 < n) {
    StageCost cost;
    for (; lane0 < n; ++lane0) {
      const Alignment alignment = stages.gapped_extend(
          ExtendedHit{sp[lane0], qp[lane0], field_to_i32(score[lane0])}, cost);
      out.emit(lane0, alignment.subject_pos, alignment.query_pos,
               field_from_i32(alignment.score));
    }
  }
}

}  // namespace detail

#endif  // RIPPLE_SIMD_X86

// ---------------------------------------------------------------------------
// Registry wiring: kernel registration and the deterministic autotune
// microbenches (fixed-seed committed fixtures — see docs/KERNELS.md).
// ---------------------------------------------------------------------------

namespace {

/// Fixed-seed inputs the autotune microbenches replay: a small sequence pair
/// with planted homologies, plus the exact survivor sets each downstream
/// kernel would see. Built once, lazily; ~4k windows keeps a full autotune
/// pass in the low milliseconds.
struct MicrobenchFixture {
  SequencePair pair;
  BlastStages stages;
  std::vector<std::uint32_t> positions;
  std::vector<std::uint32_t> hit_sp, hit_qp;
  std::vector<std::uint32_t> ext_sp, ext_qp, ext_score;
  BatchEmitter emitter;

  static MicrobenchFixture& instance() {
    static MicrobenchFixture fixture;
    return fixture;
  }

 private:
  static SequencePair make_pair() {
    dist::Xoshiro256 rng(0x5eed0301u);
    SequencePairConfig config;
    config.subject_length = 1 << 12;
    config.query_length = 1 << 10;
    config.homology_count = 4;
    config.homology_length = 128;
    return make_sequence_pair(config, rng);
  }

  static BlastStages::Config make_config() {
    BlastStages::Config config;
    config.k = 8;  // word-aligned so every ISA variant is exercisable
    return config;
  }

  MicrobenchFixture() : pair(make_pair()), stages(pair, make_config()) {
    positions.resize(stages.input_count());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      positions[i] = static_cast<std::uint32_t>(i);
    }
    StageCost cost;
    for (const std::uint32_t pos : positions) {
      for (const HitItem& hit : stages.expand_seed(pos, cost)) {
        hit_sp.push_back(hit.subject_pos);
        hit_qp.push_back(hit.query_pos);
      }
    }
    for (std::size_t i = 0; i < hit_sp.size(); ++i) {
      const auto ext =
          stages.ungapped_extend(HitItem{hit_sp[i], hit_qp[i]}, cost);
      if (ext.has_value()) {
        ext_sp.push_back(ext->subject_pos);
        ext_qp.push_back(ext->query_pos);
        ext_score.push_back(field_from_i32(ext->ungapped_score));
      }
    }
  }
};

std::uint64_t microbench_encode_kmers(device::AnyKernelFn fn) {
  MicrobenchFixture& f = MicrobenchFixture::instance();
  thread_local std::vector<std::uint32_t> codes;
  codes.resize(f.positions.size());
  reinterpret_cast<EncodeKmersFn>(fn)(f.pair.subject, f.stages.config().k,
                                      f.positions.data(), f.positions.size(),
                                      codes.data());
  return f.positions.size();
}

std::uint64_t microbench_seed_probe(device::AnyKernelFn fn) {
  MicrobenchFixture& f = MicrobenchFixture::instance();
  f.emitter.reset(f.positions.size(), 1, false);
  reinterpret_cast<SeedFilterFn>(fn)(f.stages, f.positions.data(),
                                     f.positions.size(), f.emitter);
  return f.positions.size();
}

std::uint64_t microbench_xdrop_extend(device::AnyKernelFn fn) {
  MicrobenchFixture& f = MicrobenchFixture::instance();
  f.emitter.reset(f.hit_sp.size(), 3, false);
  reinterpret_cast<UngappedExtendFn>(fn)(f.stages, f.hit_sp.data(),
                                         f.hit_qp.data(), f.hit_sp.size(),
                                         f.emitter);
  return f.hit_sp.size();
}

std::uint64_t microbench_banded_dp(device::AnyKernelFn fn) {
  MicrobenchFixture& f = MicrobenchFixture::instance();
  f.emitter.reset(f.ext_sp.size(), 3, false);
  reinterpret_cast<GappedExtendFn>(fn)(f.stages, f.ext_sp.data(),
                                       f.ext_qp.data(), f.ext_score.data(),
                                       f.ext_sp.size(), f.emitter);
  return f.ext_sp.size();
}

template <typename Fn>
device::AnyKernelFn erase(Fn* fn) {
  return reinterpret_cast<device::AnyKernelFn>(fn);
}

void register_all() {
  device::KernelRegistry& reg = device::KernelRegistry::instance();
  using device::SimdLevel;

  reg.register_variant("blast.encode_kmers", "blast", SimdLevel::kScalar, 1,
                       erase(&detail::encode_kmers_scalar));
  reg.register_variant("blast.seed_probe", "blast", SimdLevel::kScalar, 1,
                       erase(&detail::seed_filter_scalar));
  reg.register_variant("blast.xdrop_extend", "blast", SimdLevel::kScalar, 1,
                       erase(&detail::ungapped_extend_scalar));
  reg.register_variant("blast.banded_dp", "blast", SimdLevel::kScalar, 1,
                       erase(&detail::gapped_extend_scalar));

#if RIPPLE_SIMD_X86
  reg.register_variant("blast.encode_kmers", "blast", SimdLevel::kAvx2, 8,
                       erase(&detail::encode_kmers_avx2));
  reg.register_variant("blast.seed_probe", "blast", SimdLevel::kAvx2, 8,
                       erase(&detail::seed_filter_avx2));
  reg.register_variant("blast.xdrop_extend", "blast", SimdLevel::kAvx2, 8,
                       erase(&detail::ungapped_extend_avx2));
  reg.register_variant("blast.banded_dp", "blast", SimdLevel::kAvx2, 8,
                       erase(&detail::gapped_extend_avx2));
#endif

#if RIPPLE_SIMD_X86_AVX512
  reg.register_variant("blast.encode_kmers", "blast", SimdLevel::kAvx512, 16,
                       erase(&detail::encode_kmers_avx512));
  reg.register_variant("blast.seed_probe", "blast", SimdLevel::kAvx512, 16,
                       erase(&detail::seed_filter_avx512));
  reg.register_variant("blast.xdrop_extend", "blast", SimdLevel::kAvx512, 16,
                       erase(&detail::ungapped_extend_avx512));
  reg.register_variant("blast.banded_dp", "blast", SimdLevel::kAvx512, 16,
                       erase(&detail::gapped_extend_avx512));
#endif

#if RIPPLE_SIMD_NEON_ARM
  reg.register_variant("blast.xdrop_extend", "blast", SimdLevel::kNeon, 4,
                       erase(&detail::ungapped_extend_lanes4));
  reg.register_variant("blast.banded_dp", "blast", SimdLevel::kNeon, 4,
                       erase(&detail::gapped_extend_lanes4));
#endif

  reg.set_microbench("blast.encode_kmers", &microbench_encode_kmers);
  reg.set_microbench("blast.seed_probe", &microbench_seed_probe);
  reg.set_microbench("blast.xdrop_extend", &microbench_xdrop_extend);
  reg.set_microbench("blast.banded_dp", &microbench_banded_dp);
}

}  // namespace

void register_kernels() {
  static const bool once = [] {
    register_all();
    return true;
  }();
  (void)once;
}

// ---------------------------------------------------------------------------
// Public batch wrappers: resolve through a cached handle (one generation
// check per call), apply the word-gather shape gates only when the resolved
// variant needs them, and fall back to the scalar baseline otherwise.
// ---------------------------------------------------------------------------

void encode_kmers_batch(const Sequence& subject, std::size_t k,
                        const std::uint32_t* pos, std::size_t n,
                        std::uint32_t* codes) {
  register_kernels();
  thread_local device::KernelHandle<EncodeKmersFn> handle(
      "blast.encode_kmers");
  const device::KernelVariant& variant = handle.variant();
  if (needs_word_gates(variant.level) &&
      (k % 4 != 0 || subject.size() < 4)) {
    detail::encode_kmers_scalar(subject, k, pos, n, codes);
    return;
  }
  reinterpret_cast<EncodeKmersFn>(variant.fn)(subject, k, pos, n, codes);
}

void seed_filter_batch(const BlastStages& stages, const std::uint32_t* pos,
                       std::size_t n, runtime::BatchEmitter& out) {
  register_kernels();
  thread_local device::KernelHandle<SeedFilterFn> handle("blast.seed_probe");
  const device::KernelVariant& variant = handle.variant();
  if (needs_word_gates(variant.level) && !word_kmer_eligible(stages)) {
    detail::seed_filter_scalar(stages, pos, n, out);
    return;
  }
  reinterpret_cast<SeedFilterFn>(variant.fn)(stages, pos, n, out);
}

void expand_seed_batch(const BlastStages& stages, const std::uint32_t* pos,
                       std::size_t n, runtime::BatchEmitter& out) {
  // Codes vector-wide; the CSR run walk is irregular (variable count per
  // code) and stays scalar.
  thread_local std::vector<std::uint32_t> codes;
  codes.resize(n);
  encode_kmers_batch(stages.pair().subject, stages.config().k, pos, n,
                     codes.data());
  const KmerIndex& index = stages.index();
  const std::uint32_t* offsets = index.offsets_data();
  const std::uint32_t* positions = index.positions_data();
  const std::uint32_t u = stages.config().max_hits_per_seed;
  for (std::size_t lane = 0; lane < n; ++lane) {
    const std::uint32_t begin = offsets[codes[lane]];
    const std::uint32_t count = offsets[codes[lane] + 1] - begin;
    const std::uint32_t emitted = std::min(count, u);
    for (std::uint32_t i = 0; i < emitted; ++i) {
      out.emit(lane, pos[lane], positions[begin + i]);
    }
  }
}

void ungapped_extend_batch(const BlastStages& stages, const std::uint32_t* sp,
                           const std::uint32_t* qp, std::size_t n,
                           runtime::BatchEmitter& out) {
  register_kernels();
  thread_local device::KernelHandle<UngappedExtendFn> handle(
      "blast.xdrop_extend");
  const device::KernelVariant& variant = handle.variant();
  if (needs_word_gates(variant.level) && !word_extend_eligible(stages)) {
    detail::ungapped_extend_scalar(stages, sp, qp, n, out);
    return;
  }
  reinterpret_cast<UngappedExtendFn>(variant.fn)(stages, sp, qp, n, out);
}

void gapped_extend_batch(const BlastStages& stages, const std::uint32_t* sp,
                         const std::uint32_t* qp, const std::uint32_t* score,
                         std::size_t n, runtime::BatchEmitter& out) {
  register_kernels();
  thread_local device::KernelHandle<GappedExtendFn> handle("blast.banded_dp");
  const device::KernelVariant& variant = handle.variant();
  if (needs_word_gates(variant.level) && !word_extend_eligible(stages)) {
    detail::gapped_extend_scalar(stages, sp, qp, score, n, out);
    return;
  }
  reinterpret_cast<GappedExtendFn>(variant.fn)(stages, sp, qp, score, n, out);
}

}  // namespace ripple::blast::simd
