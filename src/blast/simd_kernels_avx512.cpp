// AVX-512 variants of the BLAST kernels: the AVX2 bodies re-expressed at 16
// i32 lanes with mask registers. Same techniques (word-gather k-mer codes,
// CSR probe gathers, clamped-word X-drop walks, band-relative SoA DP rows),
// same integer arithmetic — predication moves from blendv/andnot vectors to
// __mmask16, which is the only structural difference. Bit-identical to the
// scalar baselines under tests/test_blast_simd.cpp.
//
// Bodies are compiled via function target attributes (no per-file flags) and
// registered by blast/simd_kernels.cpp only when RIPPLE_SIMD_X86_AVX512; the
// registry never resolves them on hosts missing the feature set.
#include <algorithm>
#include <vector>

#include "blast/simd_kernels_detail.hpp"

#if RIPPLE_SIMD_X86_AVX512

#include <immintrin.h>

#define RIPPLE_AVX512_TARGET "avx2,avx512f,avx512bw,avx512dq,avx512vl"

namespace ripple::blast::simd {

using runtime::BatchEmitter;
using runtime::field_from_i32;
using runtime::field_to_i32;

namespace {

/// Pack one gathered 32-bit word (4 consecutive bases, little-endian) into 8
/// code bits with the first base most significant — the bit order
/// encode_kmer() produces (16-lane twin of the AVX2 pack).
__attribute__((target(RIPPLE_AVX512_TARGET))) inline __m512i
pack_word_to_code_bits16(__m512i w) {
  const __m512i b0 =
      _mm512_slli_epi32(_mm512_and_si512(w, _mm512_set1_epi32(3)), 6);
  const __m512i b1 =
      _mm512_and_si512(_mm512_srli_epi32(w, 4), _mm512_set1_epi32(3 << 4));
  const __m512i b2 =
      _mm512_and_si512(_mm512_srli_epi32(w, 14), _mm512_set1_epi32(3 << 2));
  const __m512i b3 =
      _mm512_and_si512(_mm512_srli_epi32(w, 24), _mm512_set1_epi32(3));
  return _mm512_or_si512(_mm512_or_si512(b0, b1), _mm512_or_si512(b2, b3));
}

/// Codes of 16 windows starting at the byte offsets in `idx`; requires
/// k % 4 == 0 (gathers read exactly the window bytes).
__attribute__((target(RIPPLE_AVX512_TARGET))) inline __m512i encode16(
    const Base* subject, __m512i idx, std::size_t k) {
  __m512i code = _mm512_setzero_si512();
  for (std::size_t word = 0; word * 4 < k; ++word) {
    const __m512i addr =
        _mm512_add_epi32(idx, _mm512_set1_epi32(static_cast<int>(4 * word)));
    const __m512i w = _mm512_i32gather_epi32(addr, subject, 1);
    code = _mm512_or_si512(_mm512_slli_epi32(code, 8),
                           pack_word_to_code_bits16(w));
  }
  return code;
}

/// 16-lane twin of extend8_chunk: run the in-flight walks for up to `blocks`
/// four-step gather blocks, predicated on a lane mask instead of a -1/0
/// vector. Updates s/score/best in place, returns the still-active mask.
__attribute__((target(RIPPLE_AVX512_TARGET))) inline __mmask16 extend16_chunk(
    const Base* subject, const Base* query, __m512i s_last_word,
    __m512i q_last_word, __m512i bound, __m512i d, int direction,
    __m512i match_v, __m512i mismatch_v, __m512i xdrop_v, __m512i& s,
    __m512i& score, __m512i& best, __mmask16 active, int blocks) {
  const __m512i zero = _mm512_setzero_si512();
  const __m512i three = _mm512_set1_epi32(3);
  const __m512i byte_mask = _mm512_set1_epi32(0xFF);
  const __m512i step = _mm512_set1_epi32(direction);

  for (int block = 0; block < blocks; ++block) {
    const __m512i q_pos = _mm512_add_epi32(s, d);
    const __m512i s_addr =
        direction > 0 ? _mm512_min_epi32(s, s_last_word)
                      : _mm512_max_epi32(_mm512_sub_epi32(s, three), zero);
    const __m512i q_addr =
        direction > 0 ? _mm512_min_epi32(q_pos, q_last_word)
                      : _mm512_max_epi32(_mm512_sub_epi32(q_pos, three), zero);
    const __m512i sword =
        _mm512_mask_i32gather_epi32(zero, active, s_addr, subject, 1);
    const __m512i qword =
        _mm512_mask_i32gather_epi32(zero, active, q_addr, query, 1);
    // q_shift = s_shift + 8 * (s_addr + d - q_addr), constant per block.
    const __m512i q_shift_delta = _mm512_slli_epi32(
        _mm512_sub_epi32(_mm512_add_epi32(s_addr, d), q_addr), 3);
    for (int t = 0; t < 4; ++t) {
      // Retired lanes compute garbage bytes; their delta is zeroed by the
      // maskz move (negative shifts map to zero under srlv, as on AVX2).
      const __m512i s_shift = _mm512_slli_epi32(_mm512_sub_epi32(s, s_addr), 3);
      const __m512i sb =
          _mm512_and_si512(_mm512_srlv_epi32(sword, s_shift), byte_mask);
      const __m512i qb = _mm512_and_si512(
          _mm512_srlv_epi32(qword, _mm512_add_epi32(s_shift, q_shift_delta)),
          byte_mask);
      const __mmask16 eq = _mm512_cmpeq_epi32_mask(sb, qb);
      const __m512i delta = _mm512_maskz_mov_epi32(
          active, _mm512_mask_blend_epi32(eq, mismatch_v, match_v));
      score = _mm512_add_epi32(score, delta);
      best = _mm512_max_epi32(best, score);
      const __mmask16 dropped =
          _mm512_cmpgt_epi32_mask(_mm512_sub_epi32(best, score), xdrop_v);
      active = active & static_cast<__mmask16>(~dropped);
      s = _mm512_mask_add_epi32(s, active, s, step);
      const __mmask16 in_range = direction > 0
                                     ? _mm512_cmpgt_epi32_mask(bound, s)
                                     : _mm512_cmpgt_epi32_mask(s, bound);
      active = active & in_range;
      if (active == 0) return active;
    }
  }
  return active;
}

/// SoA worklist of in-flight walks (same layout as the AVX2 TU's).
struct WalkList16 {
  std::vector<std::int32_t> index;
  std::vector<std::int32_t> s;
  std::vector<std::int32_t> d;
  std::vector<std::int32_t> score;
  std::vector<std::int32_t> best;

  void reserve(std::size_t n) {
    index.reserve(n);
    s.reserve(n);
    d.reserve(n);
    score.reserve(n);
    best.reserve(n);
  }
  void clear() {
    index.clear();
    s.clear();
    d.clear();
    score.clear();
    best.clear();
  }
  void push(std::int32_t idx, std::int32_t s_pos, std::int32_t delta,
            std::int32_t sc, std::int32_t bst) {
    index.push_back(idx);
    s.push_back(s_pos);
    d.push_back(delta);
    score.push_back(sc);
    best.push_back(bst);
  }
  std::size_t size() const { return index.size(); }
};

/// One extension direction, worklist-style at 16 lanes (see the AVX2 twin
/// for the compaction argument; regrouping cannot change per-lane results).
__attribute__((target(RIPPLE_AVX512_TARGET))) void extend_avx512_direction(
    const BlastStages& stages, const std::uint32_t* sp, const std::uint32_t* qp,
    std::size_t n, int start_offset, int direction, std::int32_t* out_best) {
  const BlastStages::Config& config = stages.config();
  const Base* subject = stages.pair().subject.data();
  const Base* query = stages.pair().query.data();
  const int subject_size = static_cast<int>(stages.pair().subject.size());
  const int query_size = static_cast<int>(stages.pair().query.size());
  const __m512i s_last_word = _mm512_set1_epi32(subject_size - 4);
  const __m512i q_last_word = _mm512_set1_epi32(query_size - 4);
  const __m512i match_v = _mm512_set1_epi32(config.match_score);
  const __m512i mismatch_v = _mm512_set1_epi32(config.mismatch_penalty);
  const __m512i xdrop_v = _mm512_set1_epi32(config.xdrop);
  const __m512i subject_size_v = _mm512_set1_epi32(subject_size);
  const __m512i query_size_v = _mm512_set1_epi32(query_size);
  const __m512i zero = _mm512_setzero_si512();
  constexpr int kChunkBlocks = 8;  // 32 steps between re-packs

  thread_local WalkList16 live;
  thread_local WalkList16 next;
  live.clear();
  live.reserve(n);
  next.clear();
  next.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    const int s0 = static_cast<int>(sp[i]) + start_offset;
    const int q0 = static_cast<int>(qp[i]) + start_offset;
    out_best[i] = 0;
    if (s0 >= 0 && q0 >= 0 && s0 < subject_size && q0 < query_size) {
      live.push(static_cast<std::int32_t>(i), s0, q0 - s0, 0, 0);
    }
  }

  alignas(64) std::int32_t s_a[16];
  alignas(64) std::int32_t score_a[16];
  alignas(64) std::int32_t best_a[16];
  while (live.size() >= 16) {
    next.clear();
    std::size_t g = 0;
    for (; g + 16 <= live.size(); g += 16) {
      __m512i s = _mm512_loadu_si512(live.s.data() + g);
      const __m512i d = _mm512_loadu_si512(live.d.data() + g);
      __m512i score = _mm512_loadu_si512(live.score.data() + g);
      __m512i best = _mm512_loadu_si512(live.best.data() + g);
      // First out-of-range s: forward stops when either sequence ends,
      // backward when either hits -1.
      const __m512i bound =
          direction > 0
              ? _mm512_min_epi32(subject_size_v,
                                 _mm512_sub_epi32(query_size_v, d))
              : _mm512_sub_epi32(
                    _mm512_max_epi32(zero, _mm512_sub_epi32(zero, d)),
                    _mm512_set1_epi32(1));
      const __mmask16 active = extend16_chunk(
          subject, query, s_last_word, q_last_word, bound, d, direction,
          match_v, mismatch_v, xdrop_v, s, score, best, 0xFFFF, kChunkBlocks);
      _mm512_store_si512(s_a, s);
      _mm512_store_si512(score_a, score);
      _mm512_store_si512(best_a, best);
      for (int r = 0; r < 16; ++r) {
        const std::int32_t idx = live.index[g + static_cast<std::size_t>(r)];
        if (active & (1u << r)) {
          next.push(idx, s_a[r], live.d[g + static_cast<std::size_t>(r)],
                    score_a[r], best_a[r]);
        } else {
          out_best[idx] = best_a[r];
        }
      }
    }
    for (; g < live.size(); ++g) {
      const int s0 = live.s[g];
      out_best[live.index[g]] = detail::extend_scalar_from(
          subject, subject_size, query, query_size, s0, s0 + live.d[g],
          live.score[g], live.best[g], direction, config.match_score,
          config.mismatch_penalty, config.xdrop);
    }
    std::swap(live, next);
  }
  for (std::size_t g = 0; g < live.size(); ++g) {
    const int s0 = live.s[g];
    out_best[live.index[g]] = detail::extend_scalar_from(
        subject, subject_size, query, query_size, s0, s0 + live.d[g],
        live.score[g], live.best[g], direction, config.match_score,
        config.mismatch_penalty, config.xdrop);
  }
}

}  // namespace

namespace detail {

__attribute__((target(RIPPLE_AVX512_TARGET))) void encode_kmers_avx512(
    const Sequence& subject, std::size_t k, const std::uint32_t* pos,
    std::size_t n, std::uint32_t* codes) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i idx = _mm512_loadu_si512(pos + i);
    _mm512_storeu_si512(codes + i, encode16(subject.data(), idx, k));
  }
  for (; i < n; ++i) codes[i] = encode_kmer(subject, pos[i], k);
}

__attribute__((target(RIPPLE_AVX512_TARGET))) void seed_filter_avx512(
    const BlastStages& stages, const std::uint32_t* pos, std::size_t n,
    BatchEmitter& out) {
  const std::uint32_t* offsets = stages.index().offsets_data();
  const Base* subject = stages.pair().subject.data();
  const std::size_t k = stages.config().k;
  std::size_t lane = 0;
  for (; lane + 16 <= n; lane += 16) {
    const __m512i idx = _mm512_loadu_si512(pos + lane);
    const __m512i code = encode16(subject, idx, k);
    // CSR probe: a code is present iff its offsets run is non-empty.
    const __m512i off0 = _mm512_i32gather_epi32(code, offsets, 4);
    const __m512i off1 = _mm512_i32gather_epi32(
        _mm512_add_epi32(code, _mm512_set1_epi32(1)), offsets, 4);
    unsigned mask = _mm512_cmpgt_epi32_mask(off1, off0);
    while (mask != 0) {
      const int bit = __builtin_ctz(mask);
      out.emit(lane + static_cast<std::size_t>(bit),
               pos[lane + static_cast<std::size_t>(bit)]);
      mask &= mask - 1;
    }
  }
  for (; lane < n; ++lane) {
    const KmerCode code = encode_kmer(stages.pair().subject, pos[lane], k);
    if (offsets[code + 1] > offsets[code]) out.emit(lane, pos[lane]);
  }
}

__attribute__((target(RIPPLE_AVX512_TARGET))) void ungapped_extend_avx512(
    const BlastStages& stages, const std::uint32_t* sp, const std::uint32_t* qp,
    std::size_t n, BatchEmitter& out) {
  const BlastStages::Config& config = stages.config();
  const int k = static_cast<int>(config.k);
  const int seed_score = k * config.match_score;

  thread_local std::vector<std::int32_t> right_best;
  thread_local std::vector<std::int32_t> left_best;
  right_best.resize(n);
  left_best.resize(n);
  extend_avx512_direction(stages, sp, qp, n, k, +1, right_best.data());
  extend_avx512_direction(stages, sp, qp, n, -1, -1, left_best.data());

  for (std::size_t lane = 0; lane < n; ++lane) {
    const int total = seed_score + right_best[lane] + left_best[lane];
    if (total >= config.ungapped_threshold) {
      out.emit(lane, sp[lane], qp[lane], field_from_i32(total));
    }
  }
}

/// 16-lane banded gapped DP — the AVX2 band-relative SoA scheme (see that
/// body's comment for the full derivation) with lane stride 16 and mask-
/// register predication. The recurrence, sentinels, and boundary stores are
/// identical cell for cell.
__attribute__((target(RIPPLE_AVX512_TARGET))) void gapped_extend_avx512(
    const BlastStages& stages, const std::uint32_t* sp, const std::uint32_t* qp,
    const std::uint32_t* score, std::size_t n, BatchEmitter& out) {
  const BlastStages::Config& config = stages.config();
  const Base* subject = stages.pair().subject.data();
  const Base* query = stages.pair().query.data();
  const int subject_size = static_cast<int>(stages.pair().subject.size());
  const int query_size = static_cast<int>(stages.pair().query.size());
  const std::int64_t w = static_cast<std::int64_t>(config.gapped_window);
  const int band = static_cast<int>(config.band_radius);
  const int width = 2 * band + 1;
  constexpr int kMinScore = kGappedMinScore;

  const __m512i zero = _mm512_setzero_si512();
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i band_v = _mm512_set1_epi32(band);
  const __m512i gap_v = _mm512_set1_epi32(config.gap_penalty);
  const __m512i match_v = _mm512_set1_epi32(config.match_score);
  const __m512i mismatch_v = _mm512_set1_epi32(config.mismatch_penalty);
  const __m512i kmin_v = _mm512_set1_epi32(kMinScore);
  const __m512i byte_mask = _mm512_set1_epi32(0xFF);
  const __m512i lane_id = _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6,
                                           5, 4, 3, 2, 1, 0);
  const __m512i s_last_word = _mm512_set1_epi32(subject_size - 4);
  const __m512i q_last_word = _mm512_set1_epi32(query_size - 4);

  thread_local std::vector<std::int32_t> band_rows;
  band_rows.resize(static_cast<std::size_t>(width + 1) * 16 * 2);
  std::int32_t* previous = band_rows.data();
  std::int32_t* current = band_rows.data() + (width + 1) * 16;

  alignas(64) std::int32_t s_begin_a[16];
  alignas(64) std::int32_t q_begin_a[16];
  alignas(64) std::int32_t ds_a[16];
  alignas(64) std::int32_t cols_a[16];
  alignas(64) std::int32_t rows_limit_a[16];
  alignas(64) std::int32_t best_a[16];

  std::size_t lane0 = 0;
  for (; lane0 + 16 <= n; lane0 += 16) {
    int max_rows = 0;
    for (int r = 0; r < 16; ++r) {
      const std::int64_t hsp = sp[lane0 + static_cast<std::size_t>(r)];
      const std::int64_t hqp = qp[lane0 + static_cast<std::size_t>(r)];
      const int s_begin = static_cast<int>(std::max<std::int64_t>(0, hsp - w));
      const int s_end =
          static_cast<int>(std::min<std::int64_t>(subject_size, hsp + w));
      const int q_begin = static_cast<int>(std::max<std::int64_t>(0, hqp - w));
      const int q_end =
          static_cast<int>(std::min<std::int64_t>(query_size, hqp + w));
      const int rows = s_end - s_begin;
      const int cols = q_end - q_begin;
      const int ds = static_cast<int>((hqp - q_begin) - (hsp - s_begin));
      s_begin_a[r] = s_begin;
      q_begin_a[r] = q_begin;
      ds_a[r] = ds;
      cols_a[r] = cols;
      // Rows the scalar loop actually processes before its early break.
      const int limit =
          (1 + ds + band < 0) ? 0 : std::min(rows, cols - ds + band);
      rows_limit_a[r] = std::max(limit, 0);
      max_rows = std::max(max_rows, rows_limit_a[r]);
      // Row 0 in band coordinates (gap ladder / kMinScore sentinels); slot
      // `width` stays kMinScore in both buffers for good.
      const int j_lo0 = std::max(ds - band, 0);
      for (int t = 0; t <= width; ++t) {
        const int j = j_lo0 + t;
        int value = kMinScore;
        if (j == 0) {
          value = 0;
        } else if (j <= ds + band && j <= cols) {
          value = j * config.gap_penalty;
        }
        previous[t * 16 + r] = value;
        current[t * 16 + r] = kMinScore;
      }
    }

    const __m512i ds_v = _mm512_load_si512(ds_a);
    const __m512i cols_v = _mm512_load_si512(cols_a);
    const __m512i rows_limit_v = _mm512_load_si512(rows_limit_a);
    const __m512i s_begin_v = _mm512_load_si512(s_begin_a);
    const __m512i q_begin_v = _mm512_load_si512(q_begin_a);
    __m512i best = zero;
    __m512i j_lo_prev = _mm512_max_epi32(_mm512_sub_epi32(ds_v, band_v), zero);

    for (int i = 1; i <= max_rows; ++i) {
      const __mmask16 row_active =
          _mm512_cmpgt_epi32_mask(rows_limit_v, _mm512_set1_epi32(i - 1));
      const __m512i center = _mm512_add_epi32(_mm512_set1_epi32(i), ds_v);
      const __m512i j_lo =
          _mm512_max_epi32(_mm512_sub_epi32(center, band_v), zero);
      const __m512i j_hi =
          _mm512_min_epi32(_mm512_add_epi32(center, band_v), cols_v);
      const __m512i dlo = _mm512_sub_epi32(j_lo, j_lo_prev);
      j_lo_prev = j_lo;
      const unsigned active_mask = row_active;
      const unsigned shifted_mask =
          _mm512_cmpeq_epi32_mask(dlo, one) & active_mask;
      const bool uniform = shifted_mask == 0 || shifted_mask == active_mask;
      const int shift_common = shifted_mask != 0 ? 1 : 0;

      // The row's subject base, byte-extracted from one clamped word gather.
      const __m512i s_idx =
          _mm512_add_epi32(s_begin_v, _mm512_set1_epi32(i - 1));
      const __m512i s_addr =
          _mm512_max_epi32(_mm512_min_epi32(s_idx, s_last_word), zero);
      const __m512i s_word =
          _mm512_mask_i32gather_epi32(zero, row_active, s_addr, subject, 1);
      const __m512i sb = _mm512_and_si512(
          _mm512_srlv_epi32(
              s_word, _mm512_slli_epi32(_mm512_sub_epi32(s_idx, s_addr), 3)),
          byte_mask);
      const __m512i row_gap = _mm512_set1_epi32(i * config.gap_penalty);

      // Gate 0 on retired rows rejects every j (see the AVX2 comment).
      const __m512i band_gate =
          _mm512_maskz_mov_epi32(row_active, _mm512_add_epi32(j_hi, one));

      // t = 0, peeled (j == 0 gap ladder / below-band column).
      const __m512i prev_jm1_seed = _mm512_loadu_si512(previous);
      __m512i prev_j;
      if (uniform) {
        prev_j = _mm512_loadu_si512(previous + shift_common * 16);
      } else {
        const __m512i slot =
            _mm512_add_epi32(_mm512_slli_epi32(dlo, 4), lane_id);
        prev_j = _mm512_i32gather_epi32(slot, previous, 4);
      }
      const __m512i q_idx0 =
          _mm512_sub_epi32(_mm512_add_epi32(q_begin_v, j_lo), one);
      __m512i q_addr =
          _mm512_max_epi32(_mm512_min_epi32(q_idx0, q_last_word), zero);
      __m512i q_word =
          _mm512_mask_i32gather_epi32(zero, row_active, q_addr, query, 1);
      __m512i q_shift = _mm512_slli_epi32(_mm512_sub_epi32(q_idx0, q_addr), 3);
      __m512i left;
      {
        const __m512i qb =
            _mm512_and_si512(_mm512_srlv_epi32(q_word, q_shift), byte_mask);
        const __mmask16 eq = _mm512_cmpeq_epi32_mask(sb, qb);
        const __m512i diag = _mm512_add_epi32(
            prev_jm1_seed, _mm512_mask_blend_epi32(eq, mismatch_v, match_v));
        const __m512i up = _mm512_add_epi32(prev_j, gap_v);
        const __m512i from_left = _mm512_add_epi32(kmin_v, gap_v);
        const __m512i cell =
            _mm512_max_epi32(_mm512_max_epi32(diag, up), from_left);
        const __mmask16 is_dp = _mm512_cmpgt_epi32_mask(j_lo, zero) &
                                _mm512_cmpgt_epi32_mask(band_gate, j_lo);
        const __mmask16 is_boundary =
            row_active & _mm512_cmpeq_epi32_mask(j_lo, zero);
        __m512i stored = _mm512_mask_blend_epi32(is_dp, kmin_v, cell);
        stored = _mm512_mask_blend_epi32(is_boundary, stored, row_gap);
        _mm512_storeu_si512(current, stored);
        best = _mm512_max_epi32(best, stored);
        left = stored;
      }
      __m512i prev_jm1 = prev_j;
      __m512i j_v = _mm512_add_epi32(j_lo, one);
      const __m512i eight = _mm512_set1_epi32(8);
      for (int t = 1; t < width; ++t) {
        if ((t & 3) == 0) {
          // One word gather of query bases covers this and the next three
          // columns (consecutive j → consecutive bytes).
          const __m512i q_idx =
              _mm512_sub_epi32(_mm512_add_epi32(q_begin_v, j_v), one);
          q_addr = _mm512_max_epi32(_mm512_min_epi32(q_idx, q_last_word), zero);
          q_word =
              _mm512_mask_i32gather_epi32(zero, row_active, q_addr, query, 1);
          q_shift = _mm512_slli_epi32(_mm512_sub_epi32(q_idx, q_addr), 3);
        } else {
          q_shift = _mm512_add_epi32(q_shift, eight);
        }
        const __m512i qb =
            _mm512_and_si512(_mm512_srlv_epi32(q_word, q_shift), byte_mask);

        if (uniform) {
          prev_j = _mm512_loadu_si512(previous + (t + shift_common) * 16);
        } else {
          const __m512i slot = _mm512_add_epi32(
              _mm512_slli_epi32(_mm512_add_epi32(_mm512_set1_epi32(t), dlo),
                                4),
              lane_id);
          prev_j = _mm512_i32gather_epi32(slot, previous, 4);
        }

        const __mmask16 eq = _mm512_cmpeq_epi32_mask(sb, qb);
        const __m512i diag = _mm512_add_epi32(
            prev_jm1, _mm512_mask_blend_epi32(eq, mismatch_v, match_v));
        const __m512i up = _mm512_add_epi32(prev_j, gap_v);
        const __m512i from_left = _mm512_add_epi32(left, gap_v);
        const __m512i cell =
            _mm512_max_epi32(_mm512_max_epi32(diag, up), from_left);

        // j >= 1 holds for every t >= 1, so the band gate is the whole test.
        const __m512i stored = _mm512_mask_blend_epi32(
            _mm512_cmpgt_epi32_mask(band_gate, j_v), kmin_v, cell);
        _mm512_storeu_si512(current + t * 16, stored);
        best = _mm512_max_epi32(best, stored);
        prev_jm1 = prev_j;
        left = stored;
        j_v = _mm512_add_epi32(j_v, one);
      }
      std::swap(previous, current);
    }

    _mm512_store_si512(best_a, best);
    for (int r = 0; r < 16; ++r) {
      const std::size_t lane = lane0 + static_cast<std::size_t>(r);
      const int result = std::max(best_a[r], field_to_i32(score[lane]));
      out.emit(lane, sp[lane], qp[lane], field_from_i32(result));
    }
  }
  if (lane0 < n) {
    StageCost cost;
    for (; lane0 < n; ++lane0) {
      const Alignment alignment = stages.gapped_extend(
          ExtendedHit{sp[lane0], qp[lane0], field_to_i32(score[lane0])}, cost);
      out.emit(lane0, alignment.subject_pos, alignment.query_pos,
               field_from_i32(alignment.score));
    }
  }
}

}  // namespace detail

}  // namespace ripple::blast::simd

#endif  // RIPPLE_SIMD_X86_AVX512
