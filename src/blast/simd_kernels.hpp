// Vector-wide kernels for the BLAST stages: one call processes a whole lane
// batch (runtime/lane_batch.hpp) instead of one item.
//
// Each kernel dispatches per function through the device::KernelRegistry
// (see docs/KERNELS.md): a portable scalar baseline is always present, and
// AVX2 (8-lane), AVX-512 (16-lane), and NEON (4-lane, AArch64) variants
// register when compiled in, each executed only when the host CPU supports
// it. Every variant uses identical integer arithmetic, so their outputs —
// survivor sets, scores, and emission order — are bit-identical; tests/
// test_blast_simd.cpp holds them to that.
//
// The x86 bodies lean on three techniques:
//   * k-mer encoding by 32-bit word gathers: for k % 4 == 0 the code of the
//     window at `pos` is assembled from k/4 gathered words, 4 bases per
//     word, instead of k byte loads (seed filter + expansion).
//   * CSR probing by gathers on the index's offsets array: a seed matches
//     iff offsets[code + 1] > offsets[code], a vector of codes per compare.
//   * active-mask X-drop walks: one vector of (subject, query) extensions
//     advances in lock step, lanes retiring as their score drops xdrop below
//     their best; out-of-range byte reads are avoided by clamping gather
//     addresses to the last full word and variable-shifting the byte out.
// The NEON ports (via device/lanes4.hpp) replace the gather tricks with
// masked per-lane byte loads, so they carry no word-alignment shape gates.
#pragma once

#include <cstddef>
#include <cstdint>

#include "blast/stages.hpp"
#include "runtime/lane_batch.hpp"

namespace ripple::blast::simd {

/// Register the BLAST kernels and their variants with the process-wide
/// device::KernelRegistry (idempotent). The batch wrappers below call it
/// lazily; tooling that wants to autotune or dump the catalog before any
/// batch runs calls it explicitly.
void register_kernels();

/// Stage 0, vector-wide: emit (pass through) each subject position whose
/// k-mer occurs in the query index. One output column (subject_pos).
void seed_filter_batch(const BlastStages& stages, const std::uint32_t* pos,
                       std::size_t n, runtime::BatchEmitter& out);

/// K-mer codes of the subject windows at `pos[0..n)`, vectorized when
/// k % 4 == 0. Helper for the expansion stage and tests.
void encode_kmers_batch(const Sequence& subject, std::size_t k,
                        const std::uint32_t* pos, std::size_t n,
                        std::uint32_t* codes);

/// Stage 1, vector-wide: for each subject position, emit up to
/// config().max_hits_per_seed (subject_pos, query_pos) pairs from the index.
/// Two output columns. Codes are computed vector-wide; the irregular CSR
/// walk stays scalar per lane.
void expand_seed_batch(const BlastStages& stages, const std::uint32_t* pos,
                       std::size_t n, runtime::BatchEmitter& out);

/// Stage 2, vector-wide: X-drop ungapped extension of (subject_pos,
/// query_pos) hits; emit (subject_pos, query_pos, score) for hits reaching
/// config().ungapped_threshold, score bit-cast via field_from_i32. Three
/// output columns.
void ungapped_extend_batch(const BlastStages& stages, const std::uint32_t* sp,
                           const std::uint32_t* qp, std::size_t n,
                           runtime::BatchEmitter& out);

/// Stage 3 (sink), vector-wide: banded gapped alignment of each extended
/// hit; emits (subject_pos, query_pos, score). The within-row dependence is
/// not vectorized; instead the AVX2 path runs 8 independent alignments
/// lane-parallel over band-relative SoA rows, bit-identical to the scalar
/// rolling-row DP.
void gapped_extend_batch(const BlastStages& stages, const std::uint32_t* sp,
                         const std::uint32_t* qp, const std::uint32_t* score,
                         std::size_t n, runtime::BatchEmitter& out);

}  // namespace ripple::blast::simd
