// The four computational stages of the (mini-)BLAST pipeline, matching the
// structure of the paper's Section 6.1 test application:
//
//   stage 0  seed filter      — does the subject window's k-mer occur in the
//                               query index? (gain <= 1)
//   stage 1  seed expansion   — enumerate up to u = 16 query positions for a
//                               matching k-mer (the expanding stage)
//   stage 2  ungapped extend  — X-drop extension; keep hits scoring above a
//                               threshold (strong filter, gain << 1)
//   stage 3  gapped extend    — banded gapped alignment of survivors (sink)
//
// Every stage also counts the abstract operations it performs so per-stage
// service costs can be *measured* from real computation rather than assumed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "blast/index.hpp"
#include "blast/sequence.hpp"

namespace ripple::blast {

/// Abstract work counter (base comparisons, DP cells, index probes).
struct StageCost {
  std::uint64_t ops = 0;
};

struct HitItem {
  std::uint32_t subject_pos = 0;
  std::uint32_t query_pos = 0;
};

struct ExtendedHit {
  std::uint32_t subject_pos = 0;
  std::uint32_t query_pos = 0;
  int ungapped_score = 0;
};

struct Alignment {
  std::uint32_t subject_pos = 0;
  std::uint32_t query_pos = 0;
  int score = 0;
};

class BlastStages {
 public:
  struct Config {
    std::size_t k = 8;                    ///< seed length
    std::uint32_t max_hits_per_seed = 16; ///< the paper's u
    int match_score = 1;
    int mismatch_penalty = -2;
    int xdrop = 10;                       ///< ungapped X-drop threshold
    int ungapped_threshold = 18;          ///< min score to pass stage 2
    int gap_penalty = -3;
    std::size_t band_radius = 6;          ///< gapped DP band half-width
    std::size_t gapped_window = 64;       ///< gapped extension reach each way
  };

  /// Keeps a reference to `pair`; the caller owns the sequences.
  BlastStages(const SequencePair& pair, const Config& config);

  const Config& config() const noexcept { return config_; }
  const KmerIndex& index() const noexcept { return index_; }
  /// The subject/query pair the stages read (for the vectorized kernels).
  const SequencePair& pair() const noexcept { return pair_; }

  /// Number of valid subject windows (inputs to stage 0).
  std::size_t input_count() const noexcept;

  /// Stage 0: true if the subject k-mer at `subject_pos` occurs in the query.
  bool seed_match(std::uint32_t subject_pos, StageCost& cost) const;

  /// Stage 1: matching query positions, truncated to u.
  std::vector<HitItem> expand_seed(std::uint32_t subject_pos,
                                   StageCost& cost) const;

  /// Stage 2: X-drop ungapped extension; engaged iff the score passes the
  /// threshold.
  std::optional<ExtendedHit> ungapped_extend(const HitItem& hit,
                                             StageCost& cost) const;

  /// Stage 3: banded gapped alignment around the extended hit.
  Alignment gapped_extend(const ExtendedHit& hit, StageCost& cost) const;

 private:
  int extend_direction(std::int64_t subject_start, std::int64_t query_start,
                       int direction, StageCost& cost) const;

  const SequencePair& pair_;
  Config config_;
  KmerIndex index_;
};

}  // namespace ripple::blast
