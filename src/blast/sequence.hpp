// Synthetic DNA sequences for the mini-BLAST substrate.
//
// The paper measured its pipeline on the human genome vs. a 64-kilobase
// microbial query — data we substitute with random DNA carrying planted
// homologous segments, which reproduces the statistical structure the
// pipeline stages respond to (background k-mer hit rate plus bursts of
// related sequence).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/rng.hpp"

namespace ripple::blast {

/// Bases are coded 0..3 (A, C, G, T).
using Base = std::uint8_t;
using Sequence = std::vector<Base>;

inline constexpr std::uint32_t kAlphabetSize = 4;

/// Uniform random DNA of the given length.
Sequence random_sequence(std::size_t length, dist::Xoshiro256& rng);

/// Copy `segment_length` bases from `source` starting at `source_offset`
/// into `target` at `target_offset`, mutating each base independently with
/// probability `mutation_rate`. Models a homologous (evolutionarily related)
/// region between subject and query.
void plant_homology(const Sequence& source, std::size_t source_offset,
                    Sequence& target, std::size_t target_offset,
                    std::size_t segment_length, double mutation_rate,
                    dist::Xoshiro256& rng);

/// Convenience: a subject/query pair with several planted homologies.
struct SequencePair {
  Sequence subject;
  Sequence query;
};

struct SequencePairConfig {
  std::size_t subject_length = 1 << 20;  ///< stand-in for a genome chunk
  std::size_t query_length = 64 * 1024;  ///< the paper's 64-kilobase query
  std::size_t homology_count = 24;
  std::size_t homology_length = 512;
  double mutation_rate = 0.08;
};

SequencePair make_sequence_pair(const SequencePairConfig& config,
                                dist::Xoshiro256& rng);

/// Text rendering ("ACGT...") for debugging and tests.
std::string to_string(const Sequence& sequence);

}  // namespace ripple::blast
