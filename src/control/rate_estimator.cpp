#include "control/rate_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ripple::control {

RateEstimator::RateEstimator(Cycles prior_tau0, RateEstimatorConfig config)
    : config_(config) {
  RIPPLE_REQUIRE(prior_tau0 > 0.0, "prior tau0 must be positive");
  RIPPLE_REQUIRE(config_.alpha > 0.0 && config_.alpha <= 1.0,
                 "EWMA alpha must be in (0, 1]");
  RIPPLE_REQUIRE(config_.window > 0, "quantile window must be non-empty");
  window_.reserve(config_.window);
  reset(prior_tau0);
}

Cycles RateEstimator::gap_quantile(double q) const {
  RIPPLE_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const std::size_t n = window_.size();
  if (n == 0) return prior_;
  scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i) scratch_[i] = window_[i];
  // Rank r = ceil(q * n) observations <= result (matching the histogram
  // quantile convention in obs/metrics.hpp), clamped to [1, n].
  const auto rank = static_cast<std::size_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(n))));
  const std::size_t index = std::min(rank, n) - 1;
  std::nth_element(scratch_.begin(),
                   scratch_.begin() + static_cast<std::ptrdiff_t>(index),
                   scratch_.end());
  return scratch_[index];
}

void RateEstimator::reset(Cycles prior_tau0) {
  RIPPLE_REQUIRE(prior_tau0 > 0.0, "prior tau0 must be positive");
  prior_ = prior_tau0;
  ewma_ = prior_tau0;
  samples_ = 0;
  window_.clear();
}

}  // namespace ripple::control
