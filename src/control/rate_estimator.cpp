#include "control/rate_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ripple::control {

RateEstimator::RateEstimator(Cycles prior_tau0, RateEstimatorConfig config)
    : config_(config) {
  RIPPLE_REQUIRE(prior_tau0 > 0.0, "prior tau0 must be positive");
  RIPPLE_REQUIRE(config_.alpha > 0.0 && config_.alpha <= 1.0,
                 "EWMA alpha must be in (0, 1]");
  RIPPLE_REQUIRE(config_.window > 0, "quantile window must be non-empty");
  window_ = std::make_unique<std::atomic<Cycles>[]>(config_.window);
  reset(prior_tau0);
}

Cycles RateEstimator::gap_quantile(double q) const {
  RIPPLE_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  // Acquire pairs with observe_gap's release bump: every slot counted below
  // was fully stored before the count we read. A slot overwritten after the
  // load still yields a whole (old or new) observation — never a torn one.
  const std::uint64_t observed = samples_.load(std::memory_order_acquire);
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(observed, config_.window));
  if (n == 0) return prior_;
  // Local buffer: the old implementation sorted a `mutable` member scratch
  // vector, which raced when a stats reader polled quantiles while the shard
  // worker observed gaps.
  std::vector<Cycles> local(n);
  for (std::size_t i = 0; i < n; ++i) {
    local[i] = window_[i].load(std::memory_order_relaxed);
  }
  // Rank r = ceil(q * n) observations <= result (matching the histogram
  // quantile convention in obs/metrics.hpp), clamped to [1, n].
  const auto rank = static_cast<std::size_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(n))));
  const std::size_t index = std::min(rank, n) - 1;
  std::nth_element(local.begin(),
                   local.begin() + static_cast<std::ptrdiff_t>(index),
                   local.end());
  return local[index];
}

void RateEstimator::reset(Cycles prior_tau0) {
  RIPPLE_REQUIRE(prior_tau0 > 0.0, "prior tau0 must be positive");
  prior_ = prior_tau0;
  ewma_ = prior_tau0;
  write_idx_ = 0;
  samples_.store(0, std::memory_order_release);
}

RateEstimatorCheckpoint RateEstimator::checkpoint() const {
  RateEstimatorCheckpoint state;
  state.prior = prior_;
  state.ewma = ewma_;
  state.samples = samples_.load(std::memory_order_relaxed);
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(state.samples, config_.window));
  state.window.reserve(n);
  // Oldest-to-newest: when the window has wrapped, write_idx_ points at the
  // oldest retained gap (the next one to be overwritten).
  const std::size_t start = state.samples >= config_.window ? write_idx_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    state.window.push_back(
        window_[(start + i) % config_.window].load(std::memory_order_relaxed));
  }
  return state;
}

void RateEstimator::restore(const RateEstimatorCheckpoint& state) {
  RIPPLE_REQUIRE(state.prior > 0.0, "checkpoint prior must be positive");
  RIPPLE_REQUIRE(state.window.size() <= config_.window,
                 "checkpoint window larger than the configured window");
  RIPPLE_REQUIRE(
      state.window.size() ==
          static_cast<std::size_t>(
              std::min<std::uint64_t>(state.samples, config_.window)),
      "checkpoint window size inconsistent with its sample count");
  prior_ = state.prior;
  ewma_ = state.ewma;
  // Re-place each retained gap in the slot it occupied live: observation m
  // lives in slot m mod window, so a restored estimator continues the same
  // rotation the live one would have.
  const std::uint64_t first =
      state.samples - static_cast<std::uint64_t>(state.window.size());
  for (std::size_t i = 0; i < state.window.size(); ++i) {
    window_[static_cast<std::size_t>((first + i) % config_.window)].store(
        state.window[i], std::memory_order_relaxed);
  }
  write_idx_ = static_cast<std::size_t>(state.samples % config_.window);
  samples_.store(state.samples, std::memory_order_release);
}

}  // namespace ripple::control
