#include "control/replanner.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/warm_start.hpp"
#include "util/assert.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::control {

Replanner::Replanner(sdf::PipelineSpec pipeline,
                     core::EnforcedWaitsConfig config, Cycles deadline,
                     Cycles initial_tau0, ReplannerConfig replan)
    : strategy_(std::move(pipeline), std::move(config)),
      deadline_(deadline),
      config_(replan) {
  RIPPLE_REQUIRE(deadline_ > 0.0, "deadline must be positive");
  RIPPLE_REQUIRE(initial_tau0 > 0.0, "initial tau0 must be positive");
  RIPPLE_REQUIRE(config_.drift_threshold > 0.0,
                 "drift threshold must be positive");
  RIPPLE_REQUIRE(config_.headroom > 0.0 && config_.headroom <= 1.0,
                 "headroom must be in (0, 1]");
  floor_tau0_ = strategy_.min_feasible_tau0(deadline_);
  if (floor_tau0_ == kUnboundedCycles) {
    throw std::logic_error(
        "deadline below the minimal enforced-waits budget: no arrival rate "
        "is ever feasible");
  }
  bool shedding = false;
  const Cycles target = clamp_target(initial_tau0, shedding);
  if (solve_and_publish(target, shedding) != ReplanOutcome::kReplanned) {
    throw std::logic_error("initial enforced-waits solve failed");
  }
}

Cycles Replanner::clamp_target(Cycles tau0_hat, bool& shedding) const {
  const Cycles target = config_.headroom * tau0_hat;
  const Cycles floor = floor_tau0_ * (1.0 + config_.boundary_margin);
  if (target < floor) {
    shedding = true;
    return floor;
  }
  shedding = false;
  return target;
}

ReplanOutcome Replanner::solve_and_publish(Cycles target, bool shedding) {
  const PlanPtr previous = store_.load();
  core::WarmStart warm;
  const core::WarmStart* hint = nullptr;
  if (previous != nullptr) {
    warm = core::WarmStart::from_intervals(previous->schedule.firing_intervals);
    hint = &warm;
  }
#if RIPPLE_OBS
  obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
  const double t0 = obs::TraceSession::global().host_now_us();
  if (trace.active()) {
    trace.begin(obs::Domain::kHost, trace.track(), "control.replan", t0);
  }
#endif
  auto solved = strategy_.solve(target, deadline_, hint);
#if RIPPLE_OBS
  if (trace.active()) {
    const double t1 = obs::TraceSession::global().host_now_us();
    trace.end(obs::Domain::kHost, trace.track(), "control.replan", t1);
    obs::Registry::global().histogram("control.replan_wall_us")->record(t1 - t0);
  }
#endif
  if (!solved.ok()) {
    ++solve_failures_;
    return ReplanOutcome::kSolveFailed;
  }
  store_.publish(std::move(solved.value()), target, deadline_, shedding);
  ++replans_;
  last_replan_tick_ = ticks_;
#if RIPPLE_OBS
  if (trace.active()) {
    obs::Registry::global().counter("control.replans")->increment();
  }
#endif
  return ReplanOutcome::kReplanned;
}

ReplannerCheckpoint Replanner::checkpoint() const {
  ReplannerCheckpoint state;
  state.ticks = ticks_;
  state.last_replan_tick = last_replan_tick_;
  state.replans = replans_;
  state.solve_failures = solve_failures_;
  const PlanPtr plan = store_.load();
  state.plan_epoch = plan->epoch;
  state.planned_tau0 = plan->planned_tau0;
  state.plan_deadline = plan->deadline;
  state.shedding = plan->shedding;
  state.waits = plan->schedule.waits;
  state.firing_intervals = plan->schedule.firing_intervals;
  state.predicted_active_fraction = plan->schedule.predicted_active_fraction;
  state.deadline_budget_used = plan->schedule.deadline_budget_used;
  return state;
}

void Replanner::restore(const ReplannerCheckpoint& state) {
  RIPPLE_REQUIRE(state.plan_epoch > 0, "checkpoint carries no published plan");
  RIPPLE_REQUIRE(state.firing_intervals.size() ==
                     strategy_.pipeline().size(),
                 "checkpoint plan arity does not match this pipeline");
  ticks_ = state.ticks;
  last_replan_tick_ = state.last_replan_tick;
  replans_ = state.replans;
  solve_failures_ = state.solve_failures;
  auto plan = std::make_shared<ActivePlan>();
  plan->epoch = state.plan_epoch;
  plan->planned_tau0 = state.planned_tau0;
  plan->deadline = state.plan_deadline;
  plan->shedding = state.shedding;
  plan->schedule.waits = state.waits;
  plan->schedule.firing_intervals = state.firing_intervals;
  plan->schedule.predicted_active_fraction = state.predicted_active_fraction;
  plan->schedule.deadline_budget_used = state.deadline_budget_used;
  store_.restore(std::move(plan));
}

ReplanDecision Replanner::consider(Cycles tau0_hat, bool force) {
  ++ticks_;
  ReplanDecision decision;
  decision.target_tau0 = clamp_target(tau0_hat, decision.shedding);

  const PlanPtr current = store_.load();
  const bool feasibility_flip = current->shedding != decision.shedding;
  const double drift =
      std::abs(decision.target_tau0 - current->planned_tau0) /
      current->planned_tau0;
  const bool drifted = drift > config_.drift_threshold;
  const bool cooled =
      ticks_ - last_replan_tick_ >= config_.cooldown_ticks;

  if ((force || feasibility_flip || (drifted && cooled))) {
    decision.outcome = solve_and_publish(decision.target_tau0,
                                         decision.shedding);
  } else {
    decision.outcome = ReplanOutcome::kKept;
  }
  decision.plan = store_.load();
  return decision;
}

}  // namespace ripple::control
