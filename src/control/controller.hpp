// The closed-loop controller: rate estimation -> re-planning -> admission.
//
// One Controller sits between the service's ingest side and its executor:
//
//              gaps                     tick()
//   producers ------> RateEstimator ----------> Replanner ---> PlanStore
//                          |                        |             |
//                          | tau0_hat               | shedding    | load()
//                          v                        v             v
//                    admitted_sessions()      (admission cut)   worker
//
// The worker thread owns the write side: it feeds observed inter-arrival
// gaps and per-batch worst latencies, and calls tick() once per ingest
// batch. Readers (producer threads checking admission, tests) only touch
// the PlanStore snapshot and the published admission watermark — the
// estimator itself is single-writer and never shared.
//
// Admission: sessions are assumed symmetric (each contributes offered_rate /
// open_sessions). When the re-planner flags shedding, the controller admits
// the largest k with k * offered_rate / open <= feasible_rate — newest
// sessions (highest admission sequence) are cut first, deterministically.
#pragma once

#include <cstdint>

#include "control/plan_store.hpp"
#include "control/rate_estimator.hpp"
#include "control/replanner.hpp"
#include "util/types.hpp"

namespace ripple::control {

struct ControllerConfig {
  RateEstimatorConfig estimator;
  ReplannerConfig replanner;
  /// Force a re-plan (bypassing drift hysteresis) when a batch's worst
  /// observed latency exceeds this fraction of the deadline — the rate
  /// estimate lags reality exactly when queues are building, and eroding
  /// slack is the earliest symptom. <= 0 disables the trigger.
  double slack_trigger = 0.9;
};

struct ControlDecision {
  ReplanOutcome outcome = ReplanOutcome::kKept;
  bool shedding = false;
  bool slack_forced = false;  ///< this tick was forced by the slack trigger
  Cycles tau0_estimate = 0.0;
  Cycles target_tau0 = 0.0;
  PlanPtr plan;
};

struct ControllerStats {
  std::uint64_t ticks = 0;
  std::uint64_t replans = 0;
  std::uint64_t solve_failures = 0;
  std::uint64_t shed_ticks = 0;     ///< ticks spent in shedding state
  std::uint64_t slack_forced = 0;   ///< replans forced by the slack trigger
};

/// The controller's entire mutable state: restoring it and replaying the
/// same observe_gap / observe_worst_latency / tick sequence reproduces the
/// uninterrupted run's plans bit for bit. This is the unit the arrival
/// journal (net/journal) snapshots and the kill-and-recover path restores.
struct ControllerCheckpoint {
  RateEstimatorCheckpoint estimator;
  ReplannerCheckpoint replanner;
  Cycles worst_latency = 0.0;  ///< pending worst latency since the last tick
  ControllerStats stats;
};

class Controller {
 public:
  /// Throws std::logic_error when the deadline admits no feasible rate.
  Controller(sdf::PipelineSpec pipeline, core::EnforcedWaitsConfig config,
             Cycles deadline, Cycles initial_tau0,
             ControllerConfig controller = {});

  // --- worker-thread (single-writer) side ---------------------------------

  /// Observe one inter-arrival gap of the *offered* stream (shed arrivals
  /// included — admission must track the load it is rejecting).
  void observe_gap(Cycles gap) { estimator_.observe_gap(gap); }

  /// Observe a completed batch's worst end-to-end latency.
  void observe_worst_latency(Cycles latency);

  /// One control interval: decide whether to re-plan / shed at the current
  /// estimate. Call between ingest batches.
  ControlDecision tick();

  // --- any-thread side ----------------------------------------------------

  PlanPtr plan() const noexcept { return replanner_.plan(); }
  std::uint64_t epoch() const noexcept { return replanner_.epoch(); }

  /// How many of `open_sessions` are admitted at the current estimate;
  /// sessions beyond the returned count (newest first) are shed. Equals
  /// open_sessions whenever the estimated rate is feasible.
  std::size_t admitted_sessions(std::size_t open_sessions) const;

  /// The operating point admission is judged at: headroom * tau0_hat. Safe
  /// from any thread only in the estimator's quiescent windows; the service
  /// publishes it to the AdmissionLedger from the worker instead of letting
  /// readers touch the estimator.
  Cycles admission_target_tau0() const noexcept {
    return config_.replanner.headroom * estimator_.tau0();
  }

  const RateEstimator& estimator() const noexcept { return estimator_; }
  const Replanner& replanner() const noexcept { return replanner_; }
  Cycles deadline() const noexcept { return replanner_.deadline(); }
  ControllerStats stats() const noexcept { return stats_; }

  /// Snapshot the full controller state (worker thread, or quiescent).
  ControllerCheckpoint checkpoint() const;
  /// Rebuild from a checkpoint (worker thread, or before start). The
  /// controller must have been constructed with the same pipeline, deadline,
  /// and config as the one that produced the checkpoint — the checkpoint
  /// carries state, not configuration.
  void restore(const ControllerCheckpoint& state);

 private:
  ControllerConfig config_;
  RateEstimator estimator_;
  Replanner replanner_;
  Cycles worst_latency_ = 0.0;  ///< since the last tick
  ControllerStats stats_;
};

}  // namespace ripple::control
