// Hot-swap storage for the live wait schedule.
//
// The service worker executes batches against whatever plan is current when
// the batch starts; the controller publishes a new plan without stopping the
// world. The store is an epoch-stamped RCU-style pointer swap over a
// shared_ptr<const ActivePlan>:
//
//   * readers load() the pointer once per batch and keep the shared_ptr for
//     the batch's lifetime — an in-flight batch finishes under the schedule
//     it started with, even if the controller swaps mid-batch;
//   * the writer publish()es a fully built plan; the swap is one pointer
//     copy under a mutex, and the superseded plan is reclaimed by the last
//     reader that still holds it (shared_ptr refcount — no reader ever
//     observes a torn or freed plan).
//
// The swap is guarded by a plain mutex rather than
// std::atomic<std::shared_ptr>: the critical section is a single pointer
// copy, readers take it once per batch (never per item), and libstdc++'s
// lock-bit _Sp_atomic protocol is invisible to ThreadSanitizer, which would
// flag every publish/load pair as a race in the TSan CI leg.
//
// Epochs increase monotonically, so tests and metrics can tell "same plan"
// from "re-solved to an identical schedule".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "core/enforced_waits.hpp"
#include "util/types.hpp"

namespace ripple::control {

/// One published wait schedule plus the operating point it was solved for.
struct ActivePlan {
  std::uint64_t epoch = 0;       ///< publish sequence number (1-based)
  Cycles planned_tau0 = 0.0;     ///< the inter-arrival time it was solved at
  Cycles deadline = 0.0;         ///< D it was solved against
  bool shedding = false;         ///< published while admission was cutting load
  core::EnforcedWaitsSchedule schedule;
};

using PlanPtr = std::shared_ptr<const ActivePlan>;

class PlanStore {
 public:
  /// Current plan; never null once the first plan is published. Safe from
  /// any thread; the critical section is one shared_ptr copy.
  PlanPtr load() const noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return plan_;
  }

  /// Swap in a new plan, stamping the next epoch. Single-writer (the
  /// controller); readers see either the old or the new plan, never a mix.
  PlanPtr publish(core::EnforcedWaitsSchedule schedule, Cycles planned_tau0,
                  Cycles deadline, bool shedding) {
    auto plan = std::make_shared<ActivePlan>();
    plan->epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
    plan->planned_tau0 = planned_tau0;
    plan->deadline = deadline;
    plan->shedding = shedding;
    plan->schedule = std::move(schedule);
    PlanPtr published = std::move(plan);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      plan_ = published;
    }
    return published;
  }

  /// Epoch of the most recently published plan (0 = nothing published yet).
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Recovery path (net/journal): install a reconstructed plan and resume
  /// the epoch sequence from it, so plans published after a crash-recovery
  /// carry the same epochs an uninterrupted run would have stamped.
  /// Single-writer, like publish.
  void restore(PlanPtr plan) {
    epoch_.store(plan->epoch, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    plan_ = std::move(plan);
  }

 private:
  mutable std::mutex mutex_;
  PlanPtr plan_;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace ripple::control
