#include "control/admission.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ripple::control {

AdmissionLedger::AdmissionLedger(std::size_t shards) : shard_count_(shards) {
  RIPPLE_REQUIRE(shards > 0, "AdmissionLedger needs at least one shard");
  slots_ = std::make_unique<Slot[]>(shards);
}

void AdmissionLedger::publish(std::size_t shard, const ShardLoad& load) {
  RIPPLE_REQUIRE(shard < shard_count_, "publish: shard out of range");
  Slot& slot = slots_[shard];
  slot.open.store(load.open_sessions, std::memory_order_relaxed);
  slot.offered.store(load.offered_rate, std::memory_order_relaxed);
  slot.feasible.store(load.feasible_rate, std::memory_order_relaxed);
  slot.depth.store(load.queue_depth, std::memory_order_relaxed);
  slot.latency.store(load.worst_latency, std::memory_order_relaxed);
  slot.deadline.store(load.deadline, std::memory_order_relaxed);
}

std::size_t AdmissionLedger::apportion(std::size_t shard,
                                       std::size_t local_admitted) const {
  RIPPLE_REQUIRE(shard < shard_count_, "apportion: shard out of range");
  // One shard: the local controller IS the global view. Returning the local
  // count untouched is the determinism contract the shards=1 golden tests
  // rely on.
  if (shard_count_ == 1) return local_admitted;

  double offered = 0.0;
  double feasible = 0.0;
  std::size_t depth_sum = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    offered += slots_[s].offered.load(std::memory_order_relaxed);
    feasible += slots_[s].feasible.load(std::memory_order_relaxed);
    depth_sum += slots_[s].depth.load(std::memory_order_relaxed);
  }
  if (offered <= feasible || offered <= 0.0) return local_admitted;

  // Global overload: cap at this shard's proportional share of the
  // aggregate feasible rate.
  const Slot& slot = slots_[shard];
  const double fraction = feasible / offered;
  const auto open =
      static_cast<double>(slot.open.load(std::memory_order_relaxed));
  auto admitted = std::min(
      local_admitted, static_cast<std::size_t>(std::floor(open * fraction)));

  // Pressure relief: the hot shard gives up one extra session when its
  // ingest queue or its observed latency says it is the one falling behind.
  const double mean_depth =
      static_cast<double>(depth_sum) / static_cast<double>(shard_count_);
  const auto depth =
      static_cast<double>(slot.depth.load(std::memory_order_relaxed));
  const double latency = slot.latency.load(std::memory_order_relaxed);
  const double deadline = slot.deadline.load(std::memory_order_relaxed);
  const bool queue_hot = mean_depth > 0.0 && depth > 2.0 * mean_depth;
  const bool latency_hot = deadline > 0.0 && latency > deadline;
  if ((queue_hot || latency_hot) && admitted > 0) --admitted;
  return admitted;
}

AdmissionLedger::Totals AdmissionLedger::totals() const {
  Totals totals;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    totals.open_sessions += slots_[s].open.load(std::memory_order_relaxed);
    totals.offered_rate += slots_[s].offered.load(std::memory_order_relaxed);
    totals.feasible_rate += slots_[s].feasible.load(std::memory_order_relaxed);
    totals.queue_depth += slots_[s].depth.load(std::memory_order_relaxed);
    totals.worst_latency =
        std::max(totals.worst_latency,
                 slots_[s].latency.load(std::memory_order_relaxed));
  }
  return totals;
}

ShardLoad AdmissionLedger::load(std::size_t shard) const {
  RIPPLE_REQUIRE(shard < shard_count_, "load: shard out of range");
  const Slot& slot = slots_[shard];
  ShardLoad load;
  load.open_sessions = slot.open.load(std::memory_order_relaxed);
  load.offered_rate = slot.offered.load(std::memory_order_relaxed);
  load.feasible_rate = slot.feasible.load(std::memory_order_relaxed);
  load.queue_depth = slot.depth.load(std::memory_order_relaxed);
  load.worst_latency = slot.latency.load(std::memory_order_relaxed);
  load.deadline = slot.deadline.load(std::memory_order_relaxed);
  return load;
}

}  // namespace ripple::control
