#include "control/controller.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::control {

Controller::Controller(sdf::PipelineSpec pipeline,
                       core::EnforcedWaitsConfig config, Cycles deadline,
                       Cycles initial_tau0, ControllerConfig controller)
    : config_(controller),
      estimator_(initial_tau0, controller.estimator),
      replanner_(std::move(pipeline), std::move(config), deadline,
                 initial_tau0, controller.replanner) {}

void Controller::observe_worst_latency(Cycles latency) {
  worst_latency_ = std::max(worst_latency_, latency);
}

ControlDecision Controller::tick() {
  const bool slack_forced =
      config_.slack_trigger > 0.0 &&
      worst_latency_ > config_.slack_trigger * replanner_.deadline();
  worst_latency_ = 0.0;

  const Cycles tau0_hat = estimator_.tau0();
  ReplanDecision replan = replanner_.consider(tau0_hat, slack_forced);

  ++stats_.ticks;
  if (replan.outcome == ReplanOutcome::kReplanned) ++stats_.replans;
  if (replan.outcome == ReplanOutcome::kSolveFailed) ++stats_.solve_failures;
  if (replan.shedding) ++stats_.shed_ticks;
  if (slack_forced && replan.outcome == ReplanOutcome::kReplanned) {
    ++stats_.slack_forced;
  }

#if RIPPLE_OBS
  {
    obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
    if (trace.active()) {
      trace.counter(obs::Domain::kHost, trace.track(), "control.tau0_est",
                    obs::TraceSession::global().host_now_us(), tau0_hat);
    }
  }
#endif

  ControlDecision decision;
  decision.outcome = replan.outcome;
  decision.shedding = replan.shedding;
  decision.slack_forced = slack_forced;
  decision.tau0_estimate = tau0_hat;
  decision.target_tau0 = replan.target_tau0;
  decision.plan = std::move(replan.plan);
  return decision;
}

ControllerCheckpoint Controller::checkpoint() const {
  ControllerCheckpoint state;
  state.estimator = estimator_.checkpoint();
  state.replanner = replanner_.checkpoint();
  state.worst_latency = worst_latency_;
  state.stats = stats_;
  return state;
}

void Controller::restore(const ControllerCheckpoint& state) {
  estimator_.restore(state.estimator);
  replanner_.restore(state.replanner);
  worst_latency_ = state.worst_latency;
  stats_ = state.stats;
}

std::size_t Controller::admitted_sessions(std::size_t open_sessions) const {
  if (open_sessions == 0) return 0;
  const Cycles target =
      config_.replanner.headroom * estimator_.tau0();
  const Cycles floor = replanner_.floor_tau0();
  if (target >= floor) return open_sessions;
  // Offered rate 1/target exceeds the feasible 1/floor: admit the largest
  // session count whose proportional share of the offered rate still fits.
  const double fraction = target / floor;
  const auto admitted = static_cast<std::size_t>(
      std::floor(static_cast<double>(open_sessions) * fraction));
  return std::min(admitted, open_sessions);
}

}  // namespace ripple::control
