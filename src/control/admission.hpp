// Global admission tier for the sharded service.
//
// Each shard runs the full closed loop locally — its own RateEstimator,
// Replanner, PlanStore epoch, and admission count over the sessions hashed
// to it. That is correct in isolation (each shard owns one executor, so one
// shard's feasible rate is the executor's feasible rate), but it cannot see
// *aggregate* pressure: hash imbalance or a correlated load swing can leave
// one shard drowning while the others coast, and each local controller only
// knows its own substream. The AdmissionLedger is the thin global layer on
// top: every shard publishes a small load summary after its control tick
// (open sessions, offered/feasible rate, ingest queue depth, worst batch
// latency), and apportion() clamps the shard's locally computed
// admitted-session count against the aggregate picture:
//
//   * aggregate-feasibility clamp — when the summed offered rate across all
//     shards exceeds the summed feasible rate, every shard's admitted count
//     is capped at floor(open_s * F/R) (F = aggregate feasible, R =
//     aggregate offered), so a shard whose local estimate lags a global
//     swing still sheds its proportional share;
//   * pressure relief — while globally overloaded, a shard whose ingest
//     queue depth is more than twice the per-shard mean, or whose last
//     batch's worst latency blew through its deadline, gives up one more
//     session than the proportional cut. Queue depth and latency are the
//     two signals that lead the rate estimate exactly when a shard is the
//     hot one.
//
// Determinism contract: with one shard the ledger is the identity —
// apportion() returns the local count untouched, bit-identical to the
// unsharded service (the aggregate equals the local view, and re-deriving
// it through reciprocals would perturb the floating-point path the golden
// replay tests pin down).
//
// Thread model: publish() writes the caller shard's slot (relaxed atomics,
// single writer per slot); apportion()/totals() read every slot relaxed —
// the same consistent-enough snapshot discipline as ServiceStats.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/types.hpp"

namespace ripple::control {

/// One shard's load summary, published after each control tick.
struct ShardLoad {
  std::size_t open_sessions = 0;
  double offered_rate = 0.0;   ///< 1 / (headroom * tau0_hat), this shard
  double feasible_rate = 0.0;  ///< 1 / floor_tau0 of this shard's executor
  std::size_t queue_depth = 0; ///< pending ingest items at the last drain
  Cycles worst_latency = 0.0;  ///< worst end-to-end latency, last interval
  Cycles deadline = 0.0;       ///< the deadline that latency is judged by
};

class AdmissionLedger {
 public:
  explicit AdmissionLedger(std::size_t shards);

  std::size_t shards() const noexcept { return shard_count_; }

  /// Publish `shard`'s current load (that shard's worker only).
  void publish(std::size_t shard, const ShardLoad& load);

  /// Clamp `local_admitted` (the shard controller's own admitted-session
  /// count) against the aggregate load. Identity when shards() == 1.
  std::size_t apportion(std::size_t shard, std::size_t local_admitted) const;

  /// Aggregate snapshot across shards (for stats/CLI introspection).
  struct Totals {
    std::size_t open_sessions = 0;
    double offered_rate = 0.0;
    double feasible_rate = 0.0;
    std::size_t queue_depth = 0;
    Cycles worst_latency = 0.0;  ///< max across shards
  };
  Totals totals() const;

  /// Last published load of one shard (read side; relaxed snapshot).
  ShardLoad load(std::size_t shard) const;

 private:
  // One cache line per shard: slots sit in one contiguous array and each is
  // written by its own shard worker on every batch, so without the alignment
  // two shards' publishes would false-share a line and the admission
  // hot path would pay coherence misses (see BM_MetricsContention).
  struct alignas(64) Slot {
    std::atomic<std::size_t> open{0};
    std::atomic<double> offered{0.0};
    std::atomic<double> feasible{0.0};
    std::atomic<std::size_t> depth{0};
    std::atomic<double> latency{0.0};
    std::atomic<double> deadline{0.0};
  };

  std::size_t shard_count_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace ripple::control
