// Hysteresis-gated online re-planning of the enforced-waits schedule.
//
// The re-planner owns the EnforcedWaitsStrategy and the PlanStore. Each
// control tick it is handed the current inter-arrival estimate tau0_hat and
// decides:
//
//   1. Target operating point: solve at headroom * tau0_hat (headroom <= 1
//      plans for a slightly higher rate than estimated, absorbing estimator
//      lag). If that target is below the strategy's feasibility floor
//      min_feasible_tau0(D), the offered rate cannot be served — the target
//      is clamped just above the floor and the decision is flagged
//      `shedding`, telling the admission controller to cut sessions until
//      the admitted rate fits under the plan.
//   2. Hysteresis: re-solve only when the target drifts more than
//      drift_threshold (relative) from the operating point of the published
//      plan, a cooldown of consider() calls has elapsed, the feasibility
//      state flipped, or the caller forces it (observed-slack trigger).
//      Everything else keeps the published plan — steady state costs two
//      compares, no solver work.
//   3. Warm start: each re-solve is seeded with the published plan's firing
//      intervals via core::WarmStart, the same mechanism run_sweep uses
//      between grid-adjacent cells; solve latency drops accordingly (see
//      bench/bench_service.cpp) and results are bit-identical to cold
//      solves.
//
// Solved plans are published through the PlanStore's atomic swap; in-flight
// batches keep executing under the plan they loaded.
#pragma once

#include <cstdint>

#include "control/plan_store.hpp"
#include "core/enforced_waits.hpp"
#include "util/types.hpp"

namespace ripple::control {

struct ReplannerConfig {
  /// Relative |target - planned| / planned drift that triggers a re-solve.
  double drift_threshold = 0.05;
  /// Solve at headroom * tau0_hat, headroom in (0, 1].
  double headroom = 1.0;
  /// consider() calls that must elapse between re-solves (feasibility flips
  /// and forced calls bypass the cooldown).
  std::uint64_t cooldown_ticks = 1;
  /// Relative margin above min_feasible_tau0 when clamped to the floor in
  /// shed mode (solving exactly on the boundary is numerically hostile).
  double boundary_margin = 1e-6;
};

enum class ReplanOutcome : std::uint8_t {
  kKept,         ///< hysteresis held; published plan unchanged
  kReplanned,    ///< new plan solved and published
  kSolveFailed,  ///< solver rejected the target; published plan unchanged
};

struct ReplanDecision {
  ReplanOutcome outcome = ReplanOutcome::kKept;
  /// True when the offered rate exceeds the feasibility floor: the plan
  /// serves the maximum feasible rate and admission must shed the excess.
  bool shedding = false;
  /// The tau0 the decision targeted (after headroom and floor clamping).
  Cycles target_tau0 = 0.0;
  /// The plan in force after the decision.
  PlanPtr plan;
};

/// The re-planner's full decision state plus the published plan, for journal
/// snapshots (net/journal). The plan's KKT certificate is *not* captured —
/// nothing downstream of publish reads it (warm starts use the firing
/// intervals, hysteresis uses planned_tau0/shedding), so a restored plan has
/// a default certificate until the next re-solve replaces it.
struct ReplannerCheckpoint {
  std::uint64_t ticks = 0;
  std::uint64_t last_replan_tick = 0;
  std::uint64_t replans = 0;
  std::uint64_t solve_failures = 0;
  std::uint64_t plan_epoch = 0;
  Cycles planned_tau0 = 0.0;
  Cycles plan_deadline = 0.0;
  bool shedding = false;
  std::vector<Cycles> waits;
  std::vector<Cycles> firing_intervals;
  double predicted_active_fraction = 1.0;
  Cycles deadline_budget_used = 0.0;
};

class Replanner {
 public:
  /// Solves and publishes the initial plan at initial_tau0 (clamped to the
  /// feasibility floor like any other target). Throws std::logic_error when
  /// the deadline is below the minimal budget — no rate is ever feasible,
  /// which is a configuration error, not a load condition.
  Replanner(sdf::PipelineSpec pipeline, core::EnforcedWaitsConfig config,
            Cycles deadline, Cycles initial_tau0, ReplannerConfig replan);

  /// One control tick at estimate tau0_hat. `force` bypasses drift
  /// hysteresis and cooldown (slack trigger).
  ReplanDecision consider(Cycles tau0_hat, bool force = false);

  const core::EnforcedWaitsStrategy& strategy() const noexcept {
    return strategy_;
  }
  Cycles deadline() const noexcept { return deadline_; }
  /// Feasibility floor min_feasible_tau0(deadline), cached.
  Cycles floor_tau0() const noexcept { return floor_tau0_; }

  /// Thread-safe plan access (the store's atomic load).
  PlanPtr plan() const noexcept { return store_.load(); }
  std::uint64_t epoch() const noexcept { return store_.epoch(); }

  std::uint64_t replans() const noexcept { return replans_; }
  std::uint64_t solve_failures() const noexcept { return solve_failures_; }

  /// Snapshot the decision state + published plan (worker thread).
  ReplannerCheckpoint checkpoint() const;
  /// Rebuild from a checkpoint: hysteresis counters and the published plan
  /// (epoch included) continue exactly where the checkpointed run left off.
  void restore(const ReplannerCheckpoint& state);

 private:
  /// Clamp headroom * tau0_hat to the feasibility floor; sets `shedding`.
  Cycles clamp_target(Cycles tau0_hat, bool& shedding) const;
  /// Solve at target (warm-started from the published plan) and publish.
  ReplanOutcome solve_and_publish(Cycles target, bool shedding);

  core::EnforcedWaitsStrategy strategy_;
  Cycles deadline_;
  ReplannerConfig config_;
  Cycles floor_tau0_ = 0.0;
  PlanStore store_;
  std::uint64_t ticks_ = 0;
  std::uint64_t last_replan_tick_ = 0;
  std::uint64_t replans_ = 0;
  std::uint64_t solve_failures_ = 0;
};

}  // namespace ripple::control
