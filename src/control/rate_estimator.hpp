// Online arrival-rate estimation from observed inter-arrival gaps.
//
// The service worker feeds every observed gap into one estimator; the
// re-planner reads two views of it:
//
//   * an EWMA of the gaps — the smoothed inter-arrival estimate tau0_hat the
//     re-planner solves against. One multiply-add per arrival, O(1) state.
//   * windowed order statistics — quantiles over the last `window` gaps,
//     which expose burstiness that the mean hides (a p10 gap far below the
//     EWMA flags rate spikes the admission controller may need to act on).
//
// Everything is deterministic: the same gap sequence produces bit-identical
// estimates, which is what lets the closed-loop convergence tests compare
// the controller against an offline oracle. The estimator is single-writer
// (the service worker). gap_quantile() is additionally safe to call from a
// concurrent stats reader: the window is a circular array of atomic slots
// (relaxed stores on the write side — a plain store on x86) published by a
// release bump of the sample count, and the quantile copies the slots into a
// local buffer before selecting. A racing reader may see a slot mid-rotation
// — it reads either the old or the new gap, both real observations — so the
// concurrent quantile is sane-but-approximate; quiescent reads (the tests,
// the worker itself) are exact and bit-identical to the single-threaded
// history. The EWMA/tau0 view stays worker-only, as before.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/types.hpp"

namespace ripple::control {

struct RateEstimatorConfig {
  /// EWMA weight per observed gap: tau <- (1-alpha)*tau + alpha*gap.
  double alpha = 0.05;
  /// Gap window for quantiles: exactly this many most-recent gaps are
  /// retained (any positive size; no power-of-two rounding).
  std::size_t window = 256;
  /// Below this many observations the estimate stays pinned to the prior —
  /// a cold EWMA over two or three gaps is noise, not signal.
  std::size_t min_samples = 16;
};

/// Everything needed to rebuild an estimator bit-identically: the prior, the
/// EWMA, the total observation count, and the retained window in logical
/// (oldest-to-newest) order. Serialized into journal snapshots (net/journal).
struct RateEstimatorCheckpoint {
  Cycles prior = 0.0;
  Cycles ewma = 0.0;
  std::uint64_t samples = 0;
  std::vector<Cycles> window;
};

class RateEstimator {
 public:
  /// `prior_tau0` seeds the EWMA and is reported until min_samples gaps have
  /// been observed.
  RateEstimator(Cycles prior_tau0, RateEstimatorConfig config);

  /// Observe one inter-arrival gap (> 0; non-positive gaps are clamped to a
  /// tiny epsilon so simultaneous arrivals cannot poison the estimate).
  /// Inline: the service worker calls this once per offered arrival, and the
  /// call itself must stay negligible next to executing the item. The slot
  /// store is relaxed and the count bump is a release — both plain stores on
  /// x86, so this costs the same as the old ring push.
  void observe_gap(Cycles gap) {
    if (!(gap > 0.0)) gap = 1e-9;  // simultaneous arrivals
    ewma_ = (1.0 - config_.alpha) * ewma_ + config_.alpha * gap;
    window_[write_idx_].store(gap, std::memory_order_relaxed);
    if (++write_idx_ == config_.window) write_idx_ = 0;
    samples_.store(samples_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

  /// Smoothed inter-arrival estimate tau0_hat (the prior until warm).
  /// Worker-only, like observe_gap.
  Cycles tau0() const noexcept { return warm() ? ewma_ : prior_; }
  /// Estimated arrival rate rho0_hat = 1 / tau0_hat. Worker-only.
  double rate() const noexcept { return 1.0 / tau0(); }

  /// q-quantile (q in [0, 1]) of the windowed gaps: the value v such that at
  /// least ceil(q * n) of the retained gaps are <= v. Returns the prior
  /// while the window is empty. Deterministic given the same gap sequence
  /// when quiescent; safe (approximate) against a concurrent observe_gap —
  /// the snapshot is taken into a buffer local to the call.
  Cycles gap_quantile(double q) const;

  std::uint64_t samples() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }
  bool warm() const noexcept { return samples() >= config_.min_samples; }

  void reset(Cycles prior_tau0);

  /// Snapshot the full estimator state (worker thread, or quiescent).
  RateEstimatorCheckpoint checkpoint() const;
  /// Rebuild from a checkpoint: the restored estimator is bit-identical to
  /// one that observed the checkpointed history directly (same future
  /// estimates, quantiles, and warm() transitions).
  void restore(const RateEstimatorCheckpoint& state);

 private:
  RateEstimatorConfig config_;
  Cycles prior_ = 0.0;
  Cycles ewma_ = 0.0;
  std::size_t write_idx_ = 0;  ///< next slot to overwrite (worker-only)
  std::atomic<std::uint64_t> samples_{0};
  /// Circular gap window. Slots are atomic so a stats reader polling
  /// gap_quantile never races the worker's overwrites (each slot value is a
  /// whole observation, never torn).
  std::unique_ptr<std::atomic<Cycles>[]> window_;
};

}  // namespace ripple::control
