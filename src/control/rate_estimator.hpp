// Online arrival-rate estimation from observed inter-arrival gaps.
//
// The service worker feeds every observed gap into one estimator; the
// re-planner reads two views of it:
//
//   * an EWMA of the gaps — the smoothed inter-arrival estimate tau0_hat the
//     re-planner solves against. One multiply-add per arrival, O(1) state.
//   * windowed order statistics — quantiles over the last `window` gaps,
//     which expose burstiness that the mean hides (a p10 gap far below the
//     EWMA flags rate spikes the admission controller may need to act on).
//
// Everything is deterministic: the same gap sequence produces bit-identical
// estimates, which is what lets the closed-loop convergence tests compare
// the controller against an offline oracle. The estimator is single-writer
// (the service worker); readers go through the controller, which publishes
// snapshots.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ring_buffer.hpp"
#include "util/types.hpp"

namespace ripple::control {

struct RateEstimatorConfig {
  /// EWMA weight per observed gap: tau <- (1-alpha)*tau + alpha*gap.
  double alpha = 0.05;
  /// Gap window for quantiles (rounded up to a power of two by the ring).
  std::size_t window = 256;
  /// Below this many observations the estimate stays pinned to the prior —
  /// a cold EWMA over two or three gaps is noise, not signal.
  std::size_t min_samples = 16;
};

class RateEstimator {
 public:
  /// `prior_tau0` seeds the EWMA and is reported until min_samples gaps have
  /// been observed.
  RateEstimator(Cycles prior_tau0, RateEstimatorConfig config);

  /// Observe one inter-arrival gap (> 0; non-positive gaps are clamped to a
  /// tiny epsilon so simultaneous arrivals cannot poison the estimate).
  /// Inline: the service worker calls this once per offered arrival, and the
  /// call itself must stay negligible next to executing the item.
  void observe_gap(Cycles gap) {
    if (!(gap > 0.0)) gap = 1e-9;  // simultaneous arrivals
    ewma_ = (1.0 - config_.alpha) * ewma_ + config_.alpha * gap;
    if (window_.size() == config_.window) window_.discard_front(1);
    window_.push_back(gap);
    ++samples_;
  }

  /// Smoothed inter-arrival estimate tau0_hat (the prior until warm).
  Cycles tau0() const noexcept { return warm() ? ewma_ : prior_; }
  /// Estimated arrival rate rho0_hat = 1 / tau0_hat.
  double rate() const noexcept { return 1.0 / tau0(); }

  /// q-quantile (q in [0, 1]) of the windowed gaps: the value v such that at
  /// least ceil(q * n) of the retained gaps are <= v. Returns the prior
  /// while the window is empty. Deterministic given the same gap sequence.
  Cycles gap_quantile(double q) const;

  std::uint64_t samples() const noexcept { return samples_; }
  bool warm() const noexcept { return samples_ >= config_.min_samples; }

  void reset(Cycles prior_tau0);

 private:
  RateEstimatorConfig config_;
  Cycles prior_ = 0.0;
  Cycles ewma_ = 0.0;
  std::uint64_t samples_ = 0;
  util::RingBuffer<Cycles> window_;
  mutable std::vector<Cycles> scratch_;  ///< quantile sort buffer, reused
};

}  // namespace ripple::control
