#include "core/report.hpp"

#include "util/json.hpp"

namespace ripple::core {

namespace {

void pipeline_body(util::JsonWriter& json, const sdf::PipelineSpec& pipeline) {
  json.member("name", pipeline.name());
  json.member("simd_width", static_cast<std::uint64_t>(pipeline.simd_width()));
  json.key("nodes").begin_array();
  for (NodeIndex i = 0; i < pipeline.size(); ++i) {
    json.begin_object();
    json.member("name", pipeline.node(i).name);
    json.member("service_time", pipeline.service_time(i));
    if (pipeline.node(i).gain) {
      json.member("mean_gain", pipeline.mean_gain(i));
      json.member("gain_model", pipeline.node(i).gain->name());
    } else {
      json.key("mean_gain").null();
    }
    json.end_object();
  }
  json.end_array();
}

void vector_member(util::JsonWriter& json, std::string_view name,
                   const std::vector<double>& values) {
  json.key(name).begin_array();
  for (double v : values) json.value(v);
  json.end_array();
}

}  // namespace

void write_pipeline_json(std::ostream& out, const sdf::PipelineSpec& pipeline) {
  util::JsonWriter json(out);
  json.begin_object();
  pipeline_body(json, pipeline);
  json.end_object();
  out << '\n';
}

void write_enforced_schedule_json(std::ostream& out,
                                  const sdf::PipelineSpec& pipeline,
                                  const EnforcedWaitsConfig& config,
                                  const EnforcedWaitsSchedule& schedule,
                                  Cycles tau0, Cycles deadline) {
  util::JsonWriter json(out);
  json.begin_object();
  json.member("strategy", "enforced_waits");
  json.member("tau0", tau0);
  json.member("deadline", deadline);
  json.key("pipeline").begin_object();
  pipeline_body(json, pipeline);
  json.end_object();
  vector_member(json, "b", config.b);
  vector_member(json, "waits", schedule.waits);
  vector_member(json, "firing_intervals", schedule.firing_intervals);
  json.member("predicted_active_fraction", schedule.predicted_active_fraction);
  json.member("deadline_budget_used", schedule.deadline_budget_used);
  json.member("kkt_satisfied", schedule.kkt.satisfied(1e-4));
  json.end_object();
  out << '\n';
}

void write_monolithic_schedule_json(std::ostream& out,
                                    const sdf::PipelineSpec& pipeline,
                                    const MonolithicConfig& config,
                                    const MonolithicSchedule& schedule,
                                    Cycles tau0, Cycles deadline) {
  util::JsonWriter json(out);
  json.begin_object();
  json.member("strategy", "monolithic");
  json.member("tau0", tau0);
  json.member("deadline", deadline);
  json.key("pipeline").begin_object();
  pipeline_body(json, pipeline);
  json.end_object();
  json.member("b", config.b);
  json.member("S", config.S);
  json.member("block_size", static_cast<std::int64_t>(schedule.block_size));
  json.member("predicted_active_fraction", schedule.predicted_active_fraction);
  json.member("mean_block_service", schedule.mean_block_service);
  json.member("worst_case_latency", schedule.worst_case_latency);
  json.end_object();
  out << '\n';
}

void write_surface_json(std::ostream& out, const SweepSurface& surface) {
  util::JsonWriter json(out);
  json.begin_object();
  vector_member(json, "tau0_values", surface.grid().tau0_values);
  vector_member(json, "deadline_values", surface.grid().deadline_values);
  json.key("cells").begin_array();
  for (const SweepCell& cell : surface.cells()) {
    json.begin_object();
    json.member("tau0", cell.tau0);
    json.member("deadline", cell.deadline);
    json.member("enforced_feasible", cell.enforced_feasible);
    json.member("enforced_active_fraction", cell.enforced_active_fraction);
    json.member("monolithic_feasible", cell.monolithic_feasible);
    json.member("monolithic_active_fraction", cell.monolithic_active_fraction);
    json.member("monolithic_block", static_cast<std::int64_t>(cell.monolithic_block));
    json.member("difference", cell.difference());
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

}  // namespace ripple::core
