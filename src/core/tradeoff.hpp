// Deadline / utilization trade-off curves.
//
// For a fixed arrival rate, sweeping the deadline from the feasibility floor
// upward traces the Pareto frontier between responsiveness (small D) and
// processor yield (small active fraction): T*(D) is convex and decreasing
// (Figure 1's optimum as a function of its right-hand side), flattening to
// the rate/chain-limited floor. The knee of that curve — where the marginal
// value of deadline collapses — is where a designer stops paying for
// deadline slack; this module computes the curve and locates the knee.
#pragma once

#include <vector>

#include "core/enforced_waits.hpp"
#include "core/monolithic.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace ripple::core {

struct TradeoffPoint {
  Cycles deadline = 0.0;
  double enforced_active_fraction = 1.0;   ///< 1.0 when infeasible
  bool enforced_feasible = false;
  double monolithic_active_fraction = 1.0;
  bool monolithic_feasible = false;
};

struct TradeoffCurve {
  Cycles tau0 = 0.0;
  std::vector<TradeoffPoint> points;  ///< ascending in deadline

  /// Floor the enforced-waits fraction approaches as D -> inf (rate/chain
  /// limited; see sdf::unconstrained_active_fraction).
  double enforced_floor = 0.0;

  /// Knee of the enforced-waits curve: the point maximizing distance from
  /// the chord between the first and last feasible points (the standard
  /// Kneedle-style criterion on a convex decreasing curve). Index into
  /// `points`; -1 when fewer than three feasible points exist.
  std::ptrdiff_t knee_index = -1;

  const TradeoffPoint* knee() const {
    return knee_index < 0 ? nullptr : &points[static_cast<std::size_t>(knee_index)];
  }
};

struct TradeoffConfig {
  std::size_t samples = 48;      ///< deadline grid resolution
  Cycles max_deadline = 0.0;     ///< 0 = auto: extend until within
                                 ///< `floor_tolerance` of the floor
  double floor_tolerance = 0.02; ///< auto-stop when AF - floor < this
};

/// Trace the curve at fixed tau0. Failure code "infeasible" when not even
/// the largest deadline admits an enforced-waits schedule (rate-bound tau0).
util::Result<TradeoffCurve> trace_tradeoff(const sdf::PipelineSpec& pipeline,
                                           const EnforcedWaitsConfig& enforced_config,
                                           const MonolithicConfig& monolithic_config,
                                           Cycles tau0,
                                           const TradeoffConfig& config = {});

}  // namespace ripple::core
