#include "core/waterfill.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ripple::core {

namespace {

/// One merged run of chain-linked nodes [first, last] with representative
/// y = x_last; member j has x_j = ratio[j - first] * y.
struct Block {
  std::size_t first = 0;
  std::size_t last = 0;
  std::vector<double> ratio;  ///< r_j, with r_last = 1
  double t = 0.0;             ///< T_B = sum t_j / r_j
  double b = 0.0;             ///< B_B = sum b_j r_j
  double lower = 0.0;         ///< max_j t_j / r_j
  double upper = 0.0;         ///< rate cap folded through r_first, or inf
};

}  // namespace

util::Result<WaterfillSolution> waterfill_solve_chained(
    const sdf::PipelineSpec& pipeline, const std::vector<double>& b,
    Cycles tau0, Cycles deadline,
    const std::vector<std::uint8_t>& chain_active) {
  using R = util::Result<WaterfillSolution>;
  const std::size_t n = pipeline.size();
  RIPPLE_REQUIRE(b.size() == n, "one b multiplier per node");
  RIPPLE_REQUIRE(chain_active.size() == n, "one chain flag per node");
  RIPPLE_REQUIRE(tau0 > 0.0 && deadline > 0.0, "parameters must be positive");

  const double rate_cap = static_cast<double>(pipeline.simd_width()) * tau0;

  // Merge nodes into blocks along the active chain edges. Edge i couples
  // x_{i-1} = g_{i-1} x_i and only exists for positive gain.
  std::vector<Block> blocks;
  for (std::size_t i = 0; i < n;) {
    std::size_t last = i;
    while (last + 1 < n && chain_active[last + 1] != 0 &&
           pipeline.mean_gain(last) > 0.0) {
      ++last;
    }
    Block block;
    block.first = i;
    block.last = last;
    block.ratio.assign(last - i + 1, 1.0);
    for (std::size_t j = last; j-- > i;) {
      block.ratio[j - i] = pipeline.mean_gain(j) * block.ratio[j - i + 1];
    }
    for (std::size_t j = i; j <= last; ++j) {
      const double r = block.ratio[j - i];
      block.t += pipeline.service_time(j) / r;
      block.b += b[j] * r;
      block.lower = std::max(block.lower, pipeline.service_time(j) / r);
    }
    block.upper = block.first == 0 ? rate_cap / block.ratio[0] : kUnboundedCycles;
    blocks.push_back(std::move(block));
    i = last + 1;
  }

  // Relaxed feasibility: y = l must fit the rate cap and the budget.
  double budget_at_lower = 0.0;
  for (const Block& block : blocks) {
    if (block.lower > block.upper) {
      return R::failure("infeasible", "service time exceeds the rate cap");
    }
    budget_at_lower += block.b * block.lower;
  }
  if (budget_at_lower > deadline) {
    return R::failure("infeasible", "deadline below the minimal budget");
  }

  const std::size_t k = blocks.size();
  auto y_of_lambda = [&](double lambda, std::vector<double>& y) {
    double budget = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const double unclamped = std::sqrt(blocks[j].t / (lambda * blocks[j].b));
      y[j] = std::clamp(unclamped, blocks[j].lower, blocks[j].upper);
      budget += blocks[j].b * y[j];
    }
    return budget;
  };

  // Bracket lambda: budget usage is strictly decreasing in lambda between
  // the clamps. Find lo with usage > D and hi with usage <= D.
  std::vector<double> y(k);
  double lambda_lo = 1e-30;
  double lambda_hi = 1.0;
  while (y_of_lambda(lambda_hi, y) > deadline) lambda_hi *= 16.0;
  double lambda = lambda_hi;
  if (y_of_lambda(lambda_lo, y) <= deadline) {
    // Degenerate: even lambda -> 0 keeps usage <= D (every y at its upper
    // clamp; only possible when all bounds are finite, i.e. a single block
    // containing node 0). The budget constraint is slack and y is already
    // set to the clamps.
    lambda = 0.0;
  } else {
    for (int iter = 0; iter < 500; ++iter) {
      const double mid = std::sqrt(lambda_lo * lambda_hi);  // geometric mean
      if (y_of_lambda(mid, y) > deadline) lambda_lo = mid;
      else lambda_hi = mid;
      if (lambda_hi / lambda_lo < 1.0 + 1e-15) break;
    }
    lambda = lambda_hi;
    (void)y_of_lambda(lambda, y);
  }

  WaterfillSolution solution;
  solution.firing_intervals.resize(n);
  for (std::size_t j = 0; j < k; ++j) {
    const Block& block = blocks[j];
    for (std::size_t i = block.first; i <= block.last; ++i) {
      solution.firing_intervals[i] = block.ratio[i - block.first] * y[j];
    }
  }
  solution.lambda = lambda;

  double objective = 0.0;
  for (NodeIndex i = 0; i < n; ++i) {
    objective += pipeline.service_time(i) / solution.firing_intervals[i];
  }
  solution.active_fraction = objective / static_cast<double>(n);

  const std::vector<Cycles>& x = solution.firing_intervals;
  solution.chain_feasible = true;
  for (NodeIndex i = 1; i < n; ++i) {
    const double g = pipeline.mean_gain(i - 1);
    if (g > 0.0 && x[i] * g > x[i - 1] * (1.0 + 1e-12)) {
      solution.chain_feasible = false;
      break;
    }
  }
  return solution;
}

util::Result<WaterfillSolution> waterfill_solve(const sdf::PipelineSpec& pipeline,
                                                const std::vector<double>& b,
                                                Cycles tau0, Cycles deadline) {
  // All chain constraints inactive: every block is a singleton with ratio 1,
  // so the chained solve reduces to the original closed form exactly
  // (multiplying and dividing by r = 1.0 is bit-exact).
  return waterfill_solve_chained(
      pipeline, b, tau0, deadline,
      std::vector<std::uint8_t>(pipeline.size(), 0));
}

}  // namespace ripple::core
