#include "core/waterfill.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ripple::core {

util::Result<WaterfillSolution> waterfill_solve(const sdf::PipelineSpec& pipeline,
                                                const std::vector<double>& b,
                                                Cycles tau0, Cycles deadline) {
  using R = util::Result<WaterfillSolution>;
  const std::size_t n = pipeline.size();
  RIPPLE_REQUIRE(b.size() == n, "one b multiplier per node");
  RIPPLE_REQUIRE(tau0 > 0.0 && deadline > 0.0, "parameters must be positive");

  std::vector<Cycles> lower(n);
  std::vector<Cycles> upper(n, kUnboundedCycles);
  for (NodeIndex i = 0; i < n; ++i) lower[i] = pipeline.service_time(i);
  upper[0] = static_cast<double>(pipeline.simd_width()) * tau0;

  // Relaxed feasibility: x = l must fit the rate cap and the budget.
  if (lower[0] > upper[0]) {
    return R::failure("infeasible", "service time exceeds the rate cap");
  }
  double budget_at_lower = 0.0;
  for (NodeIndex i = 0; i < n; ++i) budget_at_lower += b[i] * lower[i];
  if (budget_at_lower > deadline) {
    return R::failure("infeasible", "deadline below the minimal budget");
  }

  auto x_of_lambda = [&](double lambda, std::vector<Cycles>& x) {
    double budget = 0.0;
    for (NodeIndex i = 0; i < n; ++i) {
      const double unclamped =
          std::sqrt(pipeline.service_time(i) / (lambda * b[i]));
      x[i] = std::clamp(unclamped, lower[i], upper[i]);
      budget += b[i] * x[i];
    }
    return budget;
  };

  // Bracket lambda: budget usage is strictly decreasing in lambda between
  // the clamps. Find lo with usage > D and hi with usage <= D.
  std::vector<Cycles> x(n);
  double lambda_lo = 1e-30;
  double lambda_hi = 1.0;
  while (x_of_lambda(lambda_hi, x) > deadline) lambda_hi *= 16.0;
  double lambda = lambda_hi;
  if (x_of_lambda(lambda_lo, x) <= deadline) {
    // Degenerate: even lambda -> 0 keeps usage <= D (every x at its upper
    // clamp; only possible when all bounds are finite, i.e. n == 1). The
    // budget constraint is slack and x is already set to the clamps.
    lambda = 0.0;
  } else {
    for (int iter = 0; iter < 500; ++iter) {
      const double mid = std::sqrt(lambda_lo * lambda_hi);  // geometric mean
      if (x_of_lambda(mid, x) > deadline) lambda_lo = mid;
      else lambda_hi = mid;
      if (lambda_hi / lambda_lo < 1.0 + 1e-15) break;
    }
    lambda = lambda_hi;
    (void)x_of_lambda(lambda, x);
  }

  WaterfillSolution solution;
  solution.firing_intervals = x;
  solution.lambda = lambda;

  double objective = 0.0;
  for (NodeIndex i = 0; i < n; ++i) {
    objective += pipeline.service_time(i) / x[i];
  }
  solution.active_fraction = objective / static_cast<double>(n);

  solution.chain_feasible = true;
  for (NodeIndex i = 1; i < n; ++i) {
    const double g = pipeline.mean_gain(i - 1);
    if (g > 0.0 && x[i] * g > x[i - 1] * (1.0 + 1e-12)) {
      solution.chain_feasible = false;
      break;
    }
  }
  return solution;
}

}  // namespace ripple::core
