#include "core/sweep.hpp"

#include <algorithm>
#include <ostream>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/string_utils.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::core {

SweepGrid SweepGrid::linear(Cycles tau0_lo, Cycles tau0_hi,
                            std::size_t tau0_points, Cycles d_lo, Cycles d_hi,
                            std::size_t deadline_points) {
  RIPPLE_REQUIRE(tau0_points >= 1 && deadline_points >= 1,
                 "grid needs at least one point per axis");
  RIPPLE_REQUIRE(tau0_hi >= tau0_lo && d_hi >= d_lo, "ranges must be ordered");
  SweepGrid grid;
  grid.tau0_values.reserve(tau0_points);
  grid.deadline_values.reserve(deadline_points);
  for (std::size_t i = 0; i < tau0_points; ++i) {
    const double f = tau0_points == 1
                         ? 0.0
                         : static_cast<double>(i) / static_cast<double>(tau0_points - 1);
    grid.tau0_values.push_back(tau0_lo + f * (tau0_hi - tau0_lo));
  }
  for (std::size_t i = 0; i < deadline_points; ++i) {
    const double f = deadline_points == 1
                         ? 0.0
                         : static_cast<double>(i) / static_cast<double>(deadline_points - 1);
    grid.deadline_values.push_back(d_lo + f * (d_hi - d_lo));
  }
  return grid;
}

SweepGrid SweepGrid::paper_ranges(std::size_t tau0_points,
                                  std::size_t deadline_points) {
  return linear(1.0, 100.0, tau0_points, 2e4, 3.5e5, deadline_points);
}

SweepSurface::SweepSurface(SweepGrid grid, std::vector<SweepCell> cells)
    : grid_(std::move(grid)), cells_(std::move(cells)) {
  RIPPLE_REQUIRE(cells_.size() == grid_.cell_count(),
                 "cell vector must match grid size");
}

const SweepCell& SweepSurface::cell(std::size_t tau0_index,
                                    std::size_t deadline_index) const {
  RIPPLE_REQUIRE(tau0_index < grid_.tau0_values.size(), "tau0 index range");
  RIPPLE_REQUIRE(deadline_index < grid_.deadline_values.size(), "D index range");
  return cells_[tau0_index * grid_.deadline_values.size() + deadline_index];
}

void SweepSurface::write_csv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.header({"tau0", "deadline", "enforced_feasible", "enforced_active_fraction",
              "monolithic_feasible", "monolithic_active_fraction",
              "monolithic_block", "difference"});
  for (const SweepCell& cell : cells_) {
    csv.row({util::format_double(cell.tau0, 6),
             util::format_double(cell.deadline, 6),
             cell.enforced_feasible ? "1" : "0",
             util::format_double(cell.enforced_active_fraction, 6),
             cell.monolithic_feasible ? "1" : "0",
             util::format_double(cell.monolithic_active_fraction, 6),
             std::to_string(cell.monolithic_block),
             util::format_double(cell.difference(), 6)});
  }
}

SweepSurface run_sweep(const sdf::PipelineSpec& pipeline,
                       const EnforcedWaitsConfig& enforced_config,
                       const MonolithicConfig& monolithic_config,
                       const SweepGrid& grid, const SweepOptions& options) {
  const EnforcedWaitsStrategy enforced(pipeline, enforced_config);
  const MonolithicStrategy monolithic(pipeline, monolithic_config);

  const std::size_t d_count = grid.deadline_values.size();
  const std::size_t t_count = grid.tau0_values.size();
  std::vector<SweepCell> cells(grid.cell_count());

#if RIPPLE_OBS
  // Handles resolved once per sweep; workers only touch atomics. The gauge
  // tracks thread-pool occupancy (tiles currently being solved).
  struct ObsHandles {
    obs::Counter* cells_solved = nullptr;
    obs::Counter* warm_hinted = nullptr;
    obs::Counter* cold = nullptr;
    obs::LatencyHistogram* cell_solve_us = nullptr;
    obs::Gauge* active_workers = nullptr;
  };
  ObsHandles obs_handles;
  if (obs::enabled()) {
    auto& registry = obs::Registry::global();
    obs_handles.cells_solved = registry.counter("sweep.cells_solved");
    obs_handles.warm_hinted = registry.counter("sweep.warm_hinted_solves");
    obs_handles.cold = registry.counter("sweep.cold_solves");
    obs_handles.cell_solve_us = registry.histogram("sweep.cell_solve_us");
    obs_handles.active_workers = registry.gauge("sweep.active_workers");
  }
#endif

  // Solve one cell, optionally warm-started, and refresh the carried hint
  // with this cell's solution when feasible. A stale hint (left over from
  // the last feasible cell before an infeasible stretch) is harmless: the
  // solvers certify or reject it, they never trust it.
  auto solve_cell = [&](std::size_t ti, std::size_t di, WarmStart* warm) {
    SweepCell cell;
    cell.tau0 = grid.tau0_values[ti];
    cell.deadline = grid.deadline_values[di];

#if RIPPLE_OBS
    obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
    double solve_begin_us = 0.0;
    if (trace.active()) {
      solve_begin_us = obs::TraceSession::global().host_now_us();
      trace.begin(obs::Domain::kHost, trace.track(), "cell_solve",
                  solve_begin_us);
    }
    if (obs_handles.cells_solved != nullptr) {
      const bool hinted = warm != nullptr && (warm->has_enforced_hint() ||
                                              warm->has_monolithic_hint());
      obs_handles.cells_solved->increment();
      (hinted ? obs_handles.warm_hinted : obs_handles.cold)->increment();
    }
#endif

    if (auto solved = enforced.solve(cell.tau0, cell.deadline, warm);
        solved.ok()) {
      cell.enforced_feasible = true;
      cell.enforced_active_fraction = solved.value().predicted_active_fraction;
      if (warm != nullptr) {
        warm->firing_intervals = std::move(solved.value().firing_intervals);
      }
    }
    if (auto solved = monolithic.solve(cell.tau0, cell.deadline, warm);
        solved.ok()) {
      cell.monolithic_feasible = true;
      cell.monolithic_active_fraction = solved.value().predicted_active_fraction;
      cell.monolithic_block = solved.value().block_size;
      if (warm != nullptr) warm->block_size = solved.value().block_size;
    }
    cells[ti * d_count + di] = cell;

#if RIPPLE_OBS
    if (trace.active()) {
      const double solve_end_us = obs::TraceSession::global().host_now_us();
      trace.end(obs::Domain::kHost, trace.track(), "cell_solve", solve_end_us);
      if (obs_handles.cell_solve_us != nullptr) {
        obs_handles.cell_solve_us->record(solve_end_us - solve_begin_us);
      }
    }
#endif
  };

  // One work item per tile of consecutive tau0 rows, walked in snake order
  // so consecutive solves are always grid neighbors. Tiles share nothing,
  // which keeps parallel_for's grain-independence contract intact.
  const std::size_t tile_rows = std::max<std::size_t>(1, options.tile_rows);
  const std::size_t tile_count = (t_count + tile_rows - 1) / tile_rows;
  auto solve_tile = [&](std::size_t tile) {
#if RIPPLE_OBS
    obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
    if (trace.active()) {
      auto& session = obs::TraceSession::global();
      session.set_track_name(obs::Domain::kHost, trace.track(),
                             "sweep worker " + std::to_string(trace.track()));
      trace.begin(obs::Domain::kHost, trace.track(), "tile",
                  session.host_now_us());
    }
    if (obs_handles.active_workers != nullptr) {
      obs_handles.active_workers->add(1.0);
    }
#endif
    const std::size_t t_begin = tile * tile_rows;
    const std::size_t t_end = std::min(t_begin + tile_rows, t_count);
    WarmStart carry;
    WarmStart* warm = options.warm_start ? &carry : nullptr;
    for (std::size_t ti = t_begin; ti < t_end; ++ti) {
      const bool reversed = (ti - t_begin) % 2 == 1;
      for (std::size_t k = 0; k < d_count; ++k) {
        const std::size_t di = reversed ? d_count - 1 - k : k;
        solve_cell(ti, di, warm);
      }
    }
#if RIPPLE_OBS
    if (obs_handles.active_workers != nullptr) {
      obs_handles.active_workers->add(-1.0);
    }
    if (trace.active()) {
      trace.end(obs::Domain::kHost, trace.track(), "tile",
                obs::TraceSession::global().host_now_us());
    }
#endif
  };

  if (options.pool != nullptr) {
    options.pool->parallel_for(tile_count, solve_tile, options.grain);
  } else {
    for (std::size_t tile = 0; tile < tile_count; ++tile) solve_tile(tile);
  }
  return SweepSurface(grid, std::move(cells));
}

SweepSurface run_sweep(const sdf::PipelineSpec& pipeline,
                       const EnforcedWaitsConfig& enforced_config,
                       const MonolithicConfig& monolithic_config,
                       const SweepGrid& grid, util::ThreadPool* pool,
                       std::size_t grain) {
  SweepOptions options;
  options.pool = pool;
  options.grain = grain;
  return run_sweep(pipeline, enforced_config, monolithic_config, grid, options);
}

DominanceSummary summarize_dominance(const SweepSurface& surface) {
  DominanceSummary summary;
  for (const SweepCell& cell : surface.cells()) {
    ++summary.cells_total;
    if (cell.enforced_feasible && cell.monolithic_feasible) ++summary.both_feasible;
    else if (cell.enforced_feasible) ++summary.enforced_only;
    else if (cell.monolithic_feasible) ++summary.monolithic_only;
    else ++summary.neither;

    const double diff = cell.difference();
    if (diff > 0.0) {
      ++summary.enforced_wins;
      if (diff > summary.max_enforced_advantage) {
        summary.max_enforced_advantage = diff;
        summary.argmax_enforced_tau0 = cell.tau0;
        summary.argmax_enforced_deadline = cell.deadline;
      }
    } else if (diff < 0.0) {
      ++summary.monolithic_wins;
      if (-diff > summary.max_monolithic_advantage) {
        summary.max_monolithic_advantage = -diff;
        summary.argmax_monolithic_tau0 = cell.tau0;
        summary.argmax_monolithic_deadline = cell.deadline;
      }
    }
  }
  return summary;
}

}  // namespace ripple::core
