// Warm-start hints threaded through the strategy solvers by run_sweep.
//
// A sweep cell's optimum is nearly identical to its grid neighbor's, so the
// solvers accept an optional hint carrying the neighbor's solution:
//
//   * EnforcedWaitsStrategy::solve uses the hinted firing intervals to guess
//     which chain constraints are active and solves that active set exactly
//     with the chained water-filling closed form; a KKT certificate on the
//     full problem gates acceptance, so a wrong guess just falls through to
//     the cold path. Accepted or not, the result is bit-identical to the
//     cold solve (both paths canonicalize through the same active-set
//     machinery).
//   * MonolithicStrategy::solve rings a scan around the hinted block size to
//     prime a branch-and-bound incumbent, replacing the full linear scan;
//     the relaxation bound then proves global (lexicographic) optimality,
//     again bit-identical to the cold scan.
//
// Hints are advisory: a stale, infeasible, or absent hint never changes the
// result, only the time to reach it.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace ripple::core {

struct WarmStart {
  /// Neighbor's enforced-waits firing intervals; empty = no enforced hint.
  std::vector<Cycles> firing_intervals;
  /// Neighbor's monolithic optimal block size; <= 0 = no monolithic hint.
  std::int64_t block_size = 0;

  bool has_enforced_hint() const noexcept { return !firing_intervals.empty(); }
  bool has_monolithic_hint() const noexcept { return block_size > 0; }

  /// Hint built from a previously solved schedule's firing intervals — the
  /// online re-planner seeds each solve with the plan it is replacing, the
  /// same way run_sweep seeds a cell with its grid neighbor.
  static WarmStart from_intervals(std::vector<Cycles> intervals) {
    WarmStart warm;
    warm.firing_intervals = std::move(intervals);
    return warm;
  }
};

}  // namespace ripple::core
