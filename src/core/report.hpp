// JSON export of scheduling artifacts: pipelines, schedules, sweep surfaces.
//
// Output schema (stable; consumed by plotting/automation tooling):
//   pipeline: { name, simd_width, nodes: [{name, service_time, mean_gain}] }
//   enforced: { tau0, deadline, b, waits, firing_intervals,
//               predicted_active_fraction, deadline_budget_used }
//   monolithic: { tau0, deadline, b, S, block_size,
//                 predicted_active_fraction, mean_block_service,
//                 worst_case_latency }
//   surface:  { tau0_values, deadline_values, cells: [...] }
#pragma once

#include <ostream>

#include "core/enforced_waits.hpp"
#include "core/monolithic.hpp"
#include "core/sweep.hpp"
#include "sdf/pipeline.hpp"
#include "util/types.hpp"

namespace ripple::core {

void write_pipeline_json(std::ostream& out, const sdf::PipelineSpec& pipeline);

void write_enforced_schedule_json(std::ostream& out,
                                  const sdf::PipelineSpec& pipeline,
                                  const EnforcedWaitsConfig& config,
                                  const EnforcedWaitsSchedule& schedule,
                                  Cycles tau0, Cycles deadline);

void write_monolithic_schedule_json(std::ostream& out,
                                    const sdf::PipelineSpec& pipeline,
                                    const MonolithicConfig& config,
                                    const MonolithicSchedule& schedule,
                                    Cycles tau0, Cycles deadline);

void write_surface_json(std::ostream& out, const SweepSurface& surface);

}  // namespace ripple::core
