// Parameter-space sweeps over (tau0, D): the machinery behind the paper's
// Figures 3 and 4.
//
// For every grid cell both strategies are optimized analytically; cells where
// a strategy is infeasible are recorded as such and, for difference plots,
// charged an active fraction of 1.0 (an infeasible strategy cannot yield any
// processor time because it cannot even keep up).
//
// On RIPPLE_OBS builds with recording enabled, the sweep emits host-domain
// "cell_solve" and per-worker "tile" trace spans and feeds the `sweep.*`
// metrics — cells solved, warm-hinted vs cold solve counts, per-cell solve
// latency, and thread-pool occupancy (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/enforced_waits.hpp"
#include "core/monolithic.hpp"
#include "sdf/pipeline.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace ripple::core {

struct SweepGrid {
  std::vector<Cycles> tau0_values;
  std::vector<Cycles> deadline_values;

  /// Evenly spaced grid over the paper's ranges: tau0 in [1, 100],
  /// D in [2e4, 3.5e5].
  static SweepGrid paper_ranges(std::size_t tau0_points, std::size_t deadline_points);

  /// Evenly spaced over arbitrary ranges.
  static SweepGrid linear(Cycles tau0_lo, Cycles tau0_hi, std::size_t tau0_points,
                          Cycles d_lo, Cycles d_hi, std::size_t deadline_points);

  std::size_t cell_count() const noexcept {
    return tau0_values.size() * deadline_values.size();
  }
};

struct SweepCell {
  Cycles tau0 = 0.0;
  Cycles deadline = 0.0;

  bool enforced_feasible = false;
  double enforced_active_fraction = 1.0;  ///< 1.0 when infeasible

  bool monolithic_feasible = false;
  double monolithic_active_fraction = 1.0;  ///< 1.0 when infeasible
  std::int64_t monolithic_block = 0;

  /// Figure 4's quantity: monolithic minus enforced-waits active fraction.
  /// Positive = enforced waits better.
  double difference() const noexcept {
    return monolithic_active_fraction - enforced_active_fraction;
  }
};

/// Row-major surface: cell(ti, di) for tau0 index ti and deadline index di.
class SweepSurface {
 public:
  SweepSurface(SweepGrid grid, std::vector<SweepCell> cells);

  const SweepGrid& grid() const noexcept { return grid_; }
  const SweepCell& cell(std::size_t tau0_index, std::size_t deadline_index) const;
  const std::vector<SweepCell>& cells() const noexcept { return cells_; }

  /// CSV with one row per cell.
  void write_csv(std::ostream& out) const;

 private:
  SweepGrid grid_;
  std::vector<SweepCell> cells_;
};

/// Dominance-region statistics summarizing Figure 4.
struct DominanceSummary {
  std::size_t cells_total = 0;
  std::size_t both_feasible = 0;
  std::size_t enforced_only = 0;
  std::size_t monolithic_only = 0;
  std::size_t neither = 0;

  std::size_t enforced_wins = 0;    ///< difference > 0 (any feasibility)
  std::size_t monolithic_wins = 0;  ///< difference < 0

  double max_enforced_advantage = 0.0;
  Cycles argmax_enforced_tau0 = 0.0;
  Cycles argmax_enforced_deadline = 0.0;

  double max_monolithic_advantage = 0.0;
  Cycles argmax_monolithic_tau0 = 0.0;
  Cycles argmax_monolithic_deadline = 0.0;
};

/// Execution knobs for run_sweep.
struct SweepOptions {
  /// Thread WarmStart hints between neighboring cells. Each worker owns a
  /// tile of consecutive tau0 rows and walks it in snake order (alternating
  /// deadline direction per row), so every solve's hint comes from the
  /// grid-adjacent cell just visited and tiles never share state across
  /// threads. Hints are certificate-gated in the solvers, so the surface is
  /// bit-identical to a cold sweep — warm starting only changes the time to
  /// compute it (see the golden-surface test and BENCH_sweep.json).
  bool warm_start = true;
  /// tau0 rows per tile (the unit of parallel work). More rows per tile
  /// means longer warm-start chains but fewer parallel work items.
  std::size_t tile_rows = 4;
  /// Null = serial.
  util::ThreadPool* pool = nullptr;
  /// Consecutive tiles a worker claims per atomic fetch (cell outputs are
  /// index-addressed and hints never change results, so neither the grain
  /// nor the thread count changes the surface).
  std::size_t grain = 1;
};

/// Optimize both strategies over every grid cell.
SweepSurface run_sweep(const sdf::PipelineSpec& pipeline,
                       const EnforcedWaitsConfig& enforced_config,
                       const MonolithicConfig& monolithic_config,
                       const SweepGrid& grid, const SweepOptions& options);

/// Back-compat wrapper: warm-started defaults with the given pool/grain.
SweepSurface run_sweep(const sdf::PipelineSpec& pipeline,
                       const EnforcedWaitsConfig& enforced_config,
                       const MonolithicConfig& monolithic_config,
                       const SweepGrid& grid, util::ThreadPool* pool = nullptr,
                       std::size_t grain = 1);

DominanceSummary summarize_dominance(const SweepSurface& surface);

}  // namespace ripple::core
