// The monolithic batch-processing baseline (paper Section 5, Figure 2).
//
// The pipeline is scheduled as a unit: accumulate a block of M inputs
// (taking M/rho0 cycles), then run the whole throughput-oriented pipeline on
// the block. With average total gain G_i into node i, a block of M inputs
// costs mean service
//
//     Tbar(M) = sum_i ceil(M * G_i / v) * t_i
//
// and the active fraction is rho0 * Tbar(M) / M. Block size M is chosen to
// minimize that subject to
//
//     Tbar(M)              <= M / rho0        (stability)
//     b * M/rho0 + S*Tbar(M) <= D             (deadline, worst-case scaled)
//
// where b counts whole blocks that may queue ahead of an item and S scales
// mean to worst-case block service time.
#pragma once

#include <cstdint>

#include "core/warm_start.hpp"
#include "sdf/pipeline.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace ripple::core {

struct MonolithicConfig {
  double b = 1.0;  ///< queue-depth multiplier (blocks ahead of a new item)
  double S = 1.0;  ///< worst-case/mean service scale: That(M) = S * Tbar(M)
};

struct MonolithicSchedule {
  std::int64_t block_size = 0;            ///< M
  double predicted_active_fraction = 1.0; ///< rho0 * Tbar(M) / M
  Cycles mean_block_service = 0.0;        ///< Tbar(M)
  Cycles worst_block_service = 0.0;       ///< S * Tbar(M)
  Cycles worst_case_latency = 0.0;        ///< b*M*tau0 + S*Tbar(M)
  std::uint64_t candidates_scanned = 0;
};

class EnforcedWaitsStrategy;  // for cross-references in docs only

class MonolithicStrategy {
 public:
  MonolithicStrategy(sdf::PipelineSpec pipeline, MonolithicConfig config);

  const sdf::PipelineSpec& pipeline() const noexcept { return pipeline_; }
  const MonolithicConfig& config() const noexcept { return config_; }

  /// Tbar(M): mean service time for a block of M inputs.
  Cycles mean_block_service(std::int64_t block_size) const;

  /// Both Figure 2 constraints at a specific M.
  bool is_block_feasible(std::int64_t block_size, Cycles tau0,
                         Cycles deadline) const;

  /// Objective rho0 * Tbar(M)/M at a specific M.
  double active_fraction(std::int64_t block_size, Cycles tau0) const;

  /// Any feasible M at all?
  bool is_feasible(Cycles tau0, Cycles deadline) const;

  /// Largest M the deadline can possibly admit. The deadline constraint is
  /// b*M*tau0 + S*Tbar(M) <= D and Tbar(M) >= M * c with c the per-input
  /// service floor sum_i G_i t_i / v (every ceil() rounded down), so
  /// M <= D / (b*tau0 + S*c). This is far tighter than the old b*M*tau0
  /// bound alone, which let the scans walk millions of blocks that could
  /// never pass is_block_feasible; since every excluded M is infeasible,
  /// no argmin ever changes.
  std::int64_t max_block_size(Cycles tau0, Cycles deadline) const;

  /// Exact optimizer: exhaustive scan over [1, max_block_size].
  ///
  /// `warm` optionally carries a neighboring cell's block size (see
  /// warm_start.hpp): a ringed scan around the hint primes a
  /// branch-and-bound incumbent, and the relaxation bound then proves
  /// global optimality with the scan's lexicographic (value, argmin)
  /// tie-break — so the warm result is bit-identical to the cold scan, and
  /// any incomplete proof falls back to the scan itself. Only
  /// `candidates_scanned` may differ between warm and cold.
  util::Result<MonolithicSchedule> solve(Cycles tau0, Cycles deadline,
                                         const WarmStart* warm = nullptr) const;

  /// Same optimum via interval branch-and-bound (the BONMIN-style driver);
  /// exists to cross-validate the scan and exercise the MINLP substrate.
  /// Failure code "incomplete" when the node budget was exhausted before
  /// optimality was proven — the incumbent, if any, is reported in the
  /// message but never returned as if it were optimal.
  util::Result<MonolithicSchedule> solve_branch_and_bound(Cycles tau0,
                                                          Cycles deadline) const;

 private:
  MonolithicSchedule make_schedule(std::int64_t block_size, Cycles tau0,
                                   std::uint64_t evaluations) const;

  /// Lower bound on the active fraction over block sizes in [lo, hi].
  /// Tbar is non-decreasing, so Tbar(M)/(M*tau0) >= Tbar(lo)/(hi*tau0) on the
  /// interval; combined with the asymptotic relaxation sum_i G_i t_i / v this
  /// is tight enough on narrow intervals for a near-optimal incumbent to
  /// prune nearly everything.
  double interval_bound(std::int64_t lo, std::int64_t hi, Cycles tau0) const;

  sdf::PipelineSpec pipeline_;
  MonolithicConfig config_;
  std::vector<double> total_gains_;  // G_i
  double service_per_input_floor_ = 0.0;  // c = sum_i G_i t_i / v
};

}  // namespace ripple::core
