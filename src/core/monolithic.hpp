// The monolithic batch-processing baseline (paper Section 5, Figure 2).
//
// The pipeline is scheduled as a unit: accumulate a block of M inputs
// (taking M/rho0 cycles), then run the whole throughput-oriented pipeline on
// the block. With average total gain G_i into node i, a block of M inputs
// costs mean service
//
//     Tbar(M) = sum_i ceil(M * G_i / v) * t_i
//
// and the active fraction is rho0 * Tbar(M) / M. Block size M is chosen to
// minimize that subject to
//
//     Tbar(M)              <= M / rho0        (stability)
//     b * M/rho0 + S*Tbar(M) <= D             (deadline, worst-case scaled)
//
// where b counts whole blocks that may queue ahead of an item and S scales
// mean to worst-case block service time.
#pragma once

#include <cstdint>

#include "sdf/pipeline.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace ripple::core {

struct MonolithicConfig {
  double b = 1.0;  ///< queue-depth multiplier (blocks ahead of a new item)
  double S = 1.0;  ///< worst-case/mean service scale: That(M) = S * Tbar(M)
};

struct MonolithicSchedule {
  std::int64_t block_size = 0;            ///< M
  double predicted_active_fraction = 1.0; ///< rho0 * Tbar(M) / M
  Cycles mean_block_service = 0.0;        ///< Tbar(M)
  Cycles worst_block_service = 0.0;       ///< S * Tbar(M)
  Cycles worst_case_latency = 0.0;        ///< b*M*tau0 + S*Tbar(M)
  std::uint64_t candidates_scanned = 0;
};

class EnforcedWaitsStrategy;  // for cross-references in docs only

class MonolithicStrategy {
 public:
  MonolithicStrategy(sdf::PipelineSpec pipeline, MonolithicConfig config);

  const sdf::PipelineSpec& pipeline() const noexcept { return pipeline_; }
  const MonolithicConfig& config() const noexcept { return config_; }

  /// Tbar(M): mean service time for a block of M inputs.
  Cycles mean_block_service(std::int64_t block_size) const;

  /// Both Figure 2 constraints at a specific M.
  bool is_block_feasible(std::int64_t block_size, Cycles tau0,
                         Cycles deadline) const;

  /// Objective rho0 * Tbar(M)/M at a specific M.
  double active_fraction(std::int64_t block_size, Cycles tau0) const;

  /// Any feasible M at all?
  bool is_feasible(Cycles tau0, Cycles deadline) const;

  /// Largest M the deadline alone admits: b*M*tau0 <= D.
  std::int64_t max_block_size(Cycles tau0, Cycles deadline) const;

  /// Exact optimizer: exhaustive scan over [1, max_block_size].
  util::Result<MonolithicSchedule> solve(Cycles tau0, Cycles deadline) const;

  /// Same optimum via interval branch-and-bound (the BONMIN-style driver);
  /// exists to cross-validate the scan and exercise the MINLP substrate.
  util::Result<MonolithicSchedule> solve_branch_and_bound(Cycles tau0,
                                                          Cycles deadline) const;

 private:
  MonolithicSchedule make_schedule(std::int64_t block_size, Cycles tau0,
                                   std::uint64_t evaluations) const;

  sdf::PipelineSpec pipeline_;
  MonolithicConfig config_;
  std::vector<double> total_gains_;  // G_i
};

}  // namespace ripple::core
