#include "core/enforced_waits.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/waterfill.hpp"
#include "opt/barrier.hpp"
#include "sdf/analysis.hpp"
#include "util/assert.hpp"
#include "util/string_utils.hpp"

namespace ripple::core {

EnforcedWaitsConfig EnforcedWaitsConfig::optimistic(
    const sdf::PipelineSpec& pipeline) {
  EnforcedWaitsConfig config;
  config.b.reserve(pipeline.size());
  for (NodeIndex i = 0; i < pipeline.size(); ++i) {
    config.b.push_back(std::max(1.0, std::ceil(pipeline.mean_gain(i))));
  }
  return config;
}

EnforcedWaitsStrategy::EnforcedWaitsStrategy(sdf::PipelineSpec pipeline,
                                             EnforcedWaitsConfig config)
    : pipeline_(std::move(pipeline)), config_(std::move(config)) {
  RIPPLE_REQUIRE(config_.b.size() == pipeline_.size(),
                 "one b multiplier per node required");
  for (double b : config_.b) {
    RIPPLE_REQUIRE(b >= 1.0, "b multipliers must be at least 1");
  }
  // Both quantities depend only on the pipeline and b, not on (tau0, D);
  // caching them turns every per-cell feasibility check into two compares.
  minimal_intervals_ = sdf::minimal_firing_intervals(pipeline_);
  minimal_budget_ = sdf::minimal_deadline_budget(pipeline_, config_.b);
}

bool EnforcedWaitsStrategy::is_feasible(Cycles tau0, Cycles deadline) const {
  if (minimal_intervals_[0] > static_cast<double>(pipeline_.simd_width()) * tau0) {
    return false;
  }
  return minimal_budget_ <= deadline;
}

Cycles EnforcedWaitsStrategy::min_feasible_deadline(Cycles tau0) const {
  if (minimal_intervals_[0] > static_cast<double>(pipeline_.simd_width()) * tau0) {
    return kUnboundedCycles;
  }
  return minimal_budget_;
}

Cycles EnforcedWaitsStrategy::min_feasible_tau0(Cycles deadline) const {
  // Feasibility is exactly two compares (see is_feasible): the deadline
  // bound does not involve tau0, and the rate bound is the sharp threshold
  // L_0 <= v * tau0 — so the frontier is closed-form, no search needed.
  if (minimal_budget_ > deadline) return kUnboundedCycles;
  return minimal_intervals_[0] / static_cast<double>(pipeline_.simd_width());
}

double EnforcedWaitsStrategy::active_fraction(
    const std::vector<Cycles>& firing_intervals) const {
  RIPPLE_REQUIRE(firing_intervals.size() == pipeline_.size(),
                 "one interval per node required");
  double sum = 0.0;
  for (NodeIndex i = 0; i < pipeline_.size(); ++i) {
    sum += pipeline_.service_time(i) / firing_intervals[i];
  }
  return sum / static_cast<double>(pipeline_.size());
}

opt::ConvexProblem EnforcedWaitsStrategy::build_problem(Cycles tau0,
                                                        Cycles deadline) const {
  const std::size_t n = pipeline_.size();
  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<Cycles> service(n);
  for (NodeIndex i = 0; i < n; ++i) service[i] = pipeline_.service_time(i);

  opt::ConvexProblem problem;
  problem.objective = [service, inv_n](const linalg::Vector& x) {
    double sum = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) sum += service[i] / x[i];
    return sum * inv_n;
  };
  problem.gradient = [service, inv_n](const linalg::Vector& x) {
    linalg::Vector g(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      g[i] = -inv_n * service[i] / (x[i] * x[i]);
    }
    return g;
  };
  problem.hessian = [service, inv_n](const linalg::Vector& x) {
    linalg::Matrix h(x.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      h(i, i) = 2.0 * inv_n * service[i] / (x[i] * x[i] * x[i]);
    }
    return h;
  };

  // Bounds: x_i >= t_i always; x_0 additionally capped by the arrival-rate
  // constraint x_0 <= v * tau0.
  problem.lower_bounds = linalg::Vector(service.begin(), service.end());
  problem.upper_bounds = linalg::Vector(n, opt::kInf);
  problem.upper_bounds[0] = static_cast<double>(pipeline_.simd_width()) * tau0;

  // Chain constraints: g_{i-1} * x_i - x_{i-1} <= 0.
  for (std::size_t i = 1; i < n; ++i) {
    const double g = pipeline_.mean_gain(i - 1);
    if (g <= 0.0) continue;  // zero-gain edge carries no items: no constraint
    opt::LinearInequality chain;
    chain.coefficients = linalg::zeros(n);
    chain.coefficients[i] = g;
    chain.coefficients[i - 1] = -1.0;
    chain.rhs = 0.0;
    chain.label = "chain[" + std::to_string(i) + "]";
    problem.constraints.push_back(std::move(chain));
  }

  // Deadline budget: sum_i b_i x_i <= D.
  opt::LinearInequality budget;
  budget.coefficients = linalg::Vector(config_.b.begin(), config_.b.end());
  budget.rhs = deadline;
  budget.label = "deadline";
  problem.constraints.push_back(std::move(budget));

  return problem;
}

linalg::Vector EnforcedWaitsStrategy::interior_start(Cycles tau0,
                                                     Cycles deadline) const {
  const std::size_t n = pipeline_.size();
  const double rate_cap = static_cast<double>(pipeline_.simd_width()) * tau0;

  // Backward construction: x_i = max(t_i, g_i * x_{i+1}) * (1 + eps) makes
  // every bound and chain constraint strictly slack; shrink eps until the
  // rate cap and deadline budget are also strictly satisfied.
  for (double eps = 1e-2; eps >= 1e-13; eps *= 0.25) {
    linalg::Vector x(n);
    x[n - 1] = pipeline_.service_time(n - 1) * (1.0 + eps);
    for (std::size_t ii = n - 1; ii-- > 0;) {
      const double g = pipeline_.mean_gain(ii);
      x[ii] = std::max(pipeline_.service_time(ii), g * x[ii + 1]) * (1.0 + eps);
    }
    double budget = 0.0;
    for (std::size_t i = 0; i < n; ++i) budget += config_.b[i] * x[i];
    if (x[0] < rate_cap && budget < deadline) return x;
  }
  return {};
}

EnforcedWaitsSchedule EnforcedWaitsStrategy::make_schedule(
    std::vector<Cycles> intervals, const opt::ConvexProblem& problem) const {
  EnforcedWaitsSchedule schedule;
  schedule.firing_intervals = std::move(intervals);
  schedule.waits.resize(pipeline_.size());
  for (NodeIndex i = 0; i < pipeline_.size(); ++i) {
    schedule.waits[i] =
        std::max(0.0, schedule.firing_intervals[i] - pipeline_.service_time(i));
    schedule.deadline_budget_used +=
        config_.b[i] * schedule.firing_intervals[i];
  }
  schedule.predicted_active_fraction = active_fraction(schedule.firing_intervals);
  // Scale the active-set threshold by the largest interval: constraint
  // slacks are in cycles, and later stages routinely run orders of
  // magnitude longer intervals than stage 0, so scaling by x_0 alone
  // misclassified active constraints on those stages.
  const Cycles max_interval = *std::max_element(
      schedule.firing_intervals.begin(), schedule.firing_intervals.end());
  schedule.kkt = opt::check_kkt(
      problem,
      linalg::Vector(schedule.firing_intervals.begin(),
                     schedule.firing_intervals.end()),
      /*active_tolerance=*/1e-6 * (1.0 + max_interval));
  return schedule;
}

std::vector<std::uint8_t> EnforcedWaitsStrategy::detect_active_chain(
    const std::vector<Cycles>& firing_intervals) const {
  RIPPLE_REQUIRE(firing_intervals.size() == pipeline_.size(),
                 "one interval per node required");
  std::vector<std::uint8_t> active(pipeline_.size(), 0);
  for (std::size_t i = 1; i < pipeline_.size(); ++i) {
    const double g = pipeline_.mean_gain(i - 1);
    if (g <= 0.0) continue;
    const double slack = firing_intervals[i - 1] - g * firing_intervals[i];
    if (slack <= 1e-6 * (1.0 + firing_intervals[i - 1])) active[i] = 1;
  }
  return active;
}

std::vector<Cycles> EnforcedWaitsStrategy::canonical_chain_solve(
    Cycles tau0, Cycles deadline, const opt::ConvexProblem& problem,
    std::vector<std::uint8_t> active_chain) const {
  const std::size_t n = pipeline_.size();

  // Fixed-point iteration over the discrete active set: solve the set
  // exactly, re-detect on the exact point, repeat. Each distinct set is
  // visited at most once, so n + 1 rounds always suffice to either settle
  // or cycle out. A settled set is accepted only with a certificate-grade
  // KKT pass — a rejected candidate costs a barrier solve, an accepted one
  // must be the optimum.
  auto settle = [&](std::vector<std::uint8_t> set)
      -> std::optional<WaterfillSolution> {
    for (std::size_t round = 0; round <= n; ++round) {
      auto solved = waterfill_solve_chained(pipeline_, config_.b, tau0,
                                            deadline, set);
      if (!solved.ok()) return std::nullopt;
      WaterfillSolution& candidate = solved.value();
      if (!candidate.chain_feasible) {
        // An inactive edge is violated: it belongs in the active set.
        std::vector<std::uint8_t> widened = set;
        bool changed = false;
        for (std::size_t i = 1; i < n; ++i) {
          const double g = pipeline_.mean_gain(i - 1);
          if (g > 0.0 && candidate.firing_intervals[i] * g >
                             candidate.firing_intervals[i - 1] * (1.0 + 1e-12)) {
            if (widened[i] == 0) changed = true;
            widened[i] = 1;
          }
        }
        if (!changed) return std::nullopt;
        set = std::move(widened);
        continue;
      }
      const std::vector<std::uint8_t> detected =
          detect_active_chain(candidate.firing_intervals);
      if (detected != set) {
        set = detected;
        continue;
      }
      const linalg::Vector x(candidate.firing_intervals.begin(),
                             candidate.firing_intervals.end());
      const double grad_scale = 1.0 + linalg::norm_inf(problem.gradient(x));
      const Cycles max_interval = *std::max_element(
          candidate.firing_intervals.begin(), candidate.firing_intervals.end());
      const opt::KktReport report = opt::check_kkt(
          problem, x, /*active_tolerance=*/1e-6 * (1.0 + max_interval));
      if (report.certified(/*primal=*/1e-9 * (1.0 + deadline),
                           /*stationarity=*/1e-8 * grad_scale,
                           /*multiplier=*/1e-8 * grad_scale)) {
        candidate.chain_active = std::move(set);
        return std::move(candidate);
      }
      return std::nullopt;
    }
    return std::nullopt;
  };

  std::optional<WaterfillSolution> settled = settle(std::move(active_chain));
  if (!settled.has_value()) return {};

  // Canonical minimal set: a forced chain equality re-detects as active with
  // exactly zero slack, so a spuriously nominated edge is a fixed point of
  // settle() too, and with certificate tolerances two different sets can
  // both pass. Prune any edge whose removal strictly improves the certified
  // optimum; warm (over-nominating) and cold (barrier-detected) starts then
  // land on the same set, which is what makes warm solves bit-identical.
  // Each accepted prune strictly lowers the objective, so n rounds bound it.
  for (std::size_t round = 0; round < n; ++round) {
    bool improved = false;
    for (std::size_t i = 1; i < n && !improved; ++i) {
      if (settled->chain_active[i] == 0) continue;
      std::vector<std::uint8_t> trial_set = settled->chain_active;
      trial_set[i] = 0;
      std::optional<WaterfillSolution> trial = settle(std::move(trial_set));
      if (trial.has_value() &&
          trial->active_fraction < settled->active_fraction) {
        settled = std::move(trial);
        improved = true;
      }
    }
    if (!improved) break;
  }
  return std::move(settled->firing_intervals);
}

util::Result<EnforcedWaitsSchedule> EnforcedWaitsStrategy::solve(
    Cycles tau0, Cycles deadline, const WarmStart* warm) const {
  using R = util::Result<EnforcedWaitsSchedule>;
  RIPPLE_REQUIRE(tau0 > 0.0, "tau0 must be positive");
  RIPPLE_REQUIRE(deadline > 0.0, "deadline must be positive");

  const std::vector<Cycles>& lower = minimal_intervals_;
  const double rate_cap = static_cast<double>(pipeline_.simd_width()) * tau0;
  if (lower[0] > rate_cap) {
    return R::failure(
        "infeasible",
        "arrival-rate constraint violated: minimal x_0 = " +
            util::format_double(lower[0], 3) + " exceeds v*tau0 = " +
            util::format_double(rate_cap, 3));
  }
  if (minimal_budget_ > deadline) {
    return R::failure("infeasible",
                      "deadline too tight: minimal budget sum b_i x_i = " +
                          util::format_double(minimal_budget_, 3) +
                          " exceeds D = " + util::format_double(deadline, 3));
  }

  const opt::ConvexProblem problem = build_problem(tau0, deadline);

  // Degenerate feasible region: when the minimal point L already exhausts
  // (numerically) the whole deadline budget, L is the unique feasible point
  // (every feasible x dominates L componentwise).
  const linalg::Vector start = interior_start(tau0, deadline);
  if (start.empty()) {
    return make_schedule(lower, problem);
  }

  // Fast path: the chain-free water-filling closed form. When its optimum
  // already satisfies the chain constraints it is exact for the full
  // problem (the chain constraints were inactive), and the KKT check in
  // make_schedule certifies it.
  if (auto filled = waterfill_solve(pipeline_, config_.b, tau0, deadline);
      filled.ok() && filled.value().chain_feasible) {
    return make_schedule(filled.value().firing_intervals, problem);
  }

  // Warm path: a neighboring cell's intervals nominate the active chain
  // set; canonical_chain_solve only accepts a KKT-certified exact optimum,
  // so a stale hint falls through to the barrier below at no correctness
  // cost. Note the hint is reduced to a discrete active set — the numeric
  // intervals themselves never leak into the result, which is how warm and
  // cold solves stay bit-identical.
  if (warm != nullptr && warm->has_enforced_hint() &&
      warm->firing_intervals.size() == pipeline_.size()) {
    std::vector<Cycles> canonical = canonical_chain_solve(
        tau0, deadline, problem, detect_active_chain(warm->firing_intervals));
    if (!canonical.empty()) {
      return make_schedule(std::move(canonical), problem);
    }
  }

  auto solved = opt::barrier_minimize(problem, start);
  if (!solved.ok()) {
    return R::failure(solved.error().code,
                      "barrier solve failed: " + solved.error().message);
  }
  const linalg::Vector& x = solved.value().x;

  // Canonical polish: replace the barrier's approximate point with the
  // exact chained water-filling solution of its active set. This is what
  // the warm path computes directly, so a cell solved cold and a cell
  // solved from a neighbor's hint land on the same bits.
  std::vector<Cycles> intervals(x.begin(), x.end());
  std::vector<Cycles> canonical = canonical_chain_solve(
      tau0, deadline, problem, detect_active_chain(intervals));
  if (!canonical.empty()) {
    return make_schedule(std::move(canonical), problem);
  }
  return make_schedule(std::move(intervals), problem);
}

}  // namespace ripple::core
