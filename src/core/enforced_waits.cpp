#include "core/enforced_waits.hpp"

#include <algorithm>
#include <cmath>

#include "core/waterfill.hpp"
#include "opt/barrier.hpp"
#include "sdf/analysis.hpp"
#include "util/assert.hpp"
#include "util/string_utils.hpp"

namespace ripple::core {

EnforcedWaitsConfig EnforcedWaitsConfig::optimistic(
    const sdf::PipelineSpec& pipeline) {
  EnforcedWaitsConfig config;
  config.b.reserve(pipeline.size());
  for (NodeIndex i = 0; i < pipeline.size(); ++i) {
    config.b.push_back(std::max(1.0, std::ceil(pipeline.mean_gain(i))));
  }
  return config;
}

EnforcedWaitsStrategy::EnforcedWaitsStrategy(sdf::PipelineSpec pipeline,
                                             EnforcedWaitsConfig config)
    : pipeline_(std::move(pipeline)), config_(std::move(config)) {
  RIPPLE_REQUIRE(config_.b.size() == pipeline_.size(),
                 "one b multiplier per node required");
  for (double b : config_.b) {
    RIPPLE_REQUIRE(b >= 1.0, "b multipliers must be at least 1");
  }
}

bool EnforcedWaitsStrategy::is_feasible(Cycles tau0, Cycles deadline) const {
  const std::vector<Cycles> lower = sdf::minimal_firing_intervals(pipeline_);
  if (lower[0] > static_cast<double>(pipeline_.simd_width()) * tau0) return false;
  return sdf::minimal_deadline_budget(pipeline_, config_.b) <= deadline;
}

Cycles EnforcedWaitsStrategy::min_feasible_deadline(Cycles tau0) const {
  const std::vector<Cycles> lower = sdf::minimal_firing_intervals(pipeline_);
  if (lower[0] > static_cast<double>(pipeline_.simd_width()) * tau0) {
    return kUnboundedCycles;
  }
  return sdf::minimal_deadline_budget(pipeline_, config_.b);
}

double EnforcedWaitsStrategy::active_fraction(
    const std::vector<Cycles>& firing_intervals) const {
  RIPPLE_REQUIRE(firing_intervals.size() == pipeline_.size(),
                 "one interval per node required");
  double sum = 0.0;
  for (NodeIndex i = 0; i < pipeline_.size(); ++i) {
    sum += pipeline_.service_time(i) / firing_intervals[i];
  }
  return sum / static_cast<double>(pipeline_.size());
}

opt::ConvexProblem EnforcedWaitsStrategy::build_problem(Cycles tau0,
                                                        Cycles deadline) const {
  const std::size_t n = pipeline_.size();
  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<Cycles> service(n);
  for (NodeIndex i = 0; i < n; ++i) service[i] = pipeline_.service_time(i);

  opt::ConvexProblem problem;
  problem.objective = [service, inv_n](const linalg::Vector& x) {
    double sum = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) sum += service[i] / x[i];
    return sum * inv_n;
  };
  problem.gradient = [service, inv_n](const linalg::Vector& x) {
    linalg::Vector g(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      g[i] = -inv_n * service[i] / (x[i] * x[i]);
    }
    return g;
  };
  problem.hessian = [service, inv_n](const linalg::Vector& x) {
    linalg::Matrix h(x.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      h(i, i) = 2.0 * inv_n * service[i] / (x[i] * x[i] * x[i]);
    }
    return h;
  };

  // Bounds: x_i >= t_i always; x_0 additionally capped by the arrival-rate
  // constraint x_0 <= v * tau0.
  problem.lower_bounds = linalg::Vector(service.begin(), service.end());
  problem.upper_bounds = linalg::Vector(n, opt::kInf);
  problem.upper_bounds[0] = static_cast<double>(pipeline_.simd_width()) * tau0;

  // Chain constraints: g_{i-1} * x_i - x_{i-1} <= 0.
  for (std::size_t i = 1; i < n; ++i) {
    const double g = pipeline_.mean_gain(i - 1);
    if (g <= 0.0) continue;  // zero-gain edge carries no items: no constraint
    opt::LinearInequality chain;
    chain.coefficients = linalg::zeros(n);
    chain.coefficients[i] = g;
    chain.coefficients[i - 1] = -1.0;
    chain.rhs = 0.0;
    chain.label = "chain[" + std::to_string(i) + "]";
    problem.constraints.push_back(std::move(chain));
  }

  // Deadline budget: sum_i b_i x_i <= D.
  opt::LinearInequality budget;
  budget.coefficients = linalg::Vector(config_.b.begin(), config_.b.end());
  budget.rhs = deadline;
  budget.label = "deadline";
  problem.constraints.push_back(std::move(budget));

  return problem;
}

linalg::Vector EnforcedWaitsStrategy::interior_start(Cycles tau0,
                                                     Cycles deadline) const {
  const std::size_t n = pipeline_.size();
  const double rate_cap = static_cast<double>(pipeline_.simd_width()) * tau0;

  // Backward construction: x_i = max(t_i, g_i * x_{i+1}) * (1 + eps) makes
  // every bound and chain constraint strictly slack; shrink eps until the
  // rate cap and deadline budget are also strictly satisfied.
  for (double eps = 1e-2; eps >= 1e-13; eps *= 0.25) {
    linalg::Vector x(n);
    x[n - 1] = pipeline_.service_time(n - 1) * (1.0 + eps);
    for (std::size_t ii = n - 1; ii-- > 0;) {
      const double g = pipeline_.mean_gain(ii);
      x[ii] = std::max(pipeline_.service_time(ii), g * x[ii + 1]) * (1.0 + eps);
    }
    double budget = 0.0;
    for (std::size_t i = 0; i < n; ++i) budget += config_.b[i] * x[i];
    if (x[0] < rate_cap && budget < deadline) return x;
  }
  return {};
}

EnforcedWaitsSchedule EnforcedWaitsStrategy::make_schedule(
    std::vector<Cycles> intervals, const opt::ConvexProblem& problem) const {
  EnforcedWaitsSchedule schedule;
  schedule.firing_intervals = std::move(intervals);
  schedule.waits.resize(pipeline_.size());
  for (NodeIndex i = 0; i < pipeline_.size(); ++i) {
    schedule.waits[i] =
        std::max(0.0, schedule.firing_intervals[i] - pipeline_.service_time(i));
    schedule.deadline_budget_used +=
        config_.b[i] * schedule.firing_intervals[i];
  }
  schedule.predicted_active_fraction = active_fraction(schedule.firing_intervals);
  schedule.kkt = opt::check_kkt(
      problem,
      linalg::Vector(schedule.firing_intervals.begin(),
                     schedule.firing_intervals.end()),
      /*active_tolerance=*/1e-6 * (1.0 + schedule.firing_intervals[0]));
  return schedule;
}

util::Result<EnforcedWaitsSchedule> EnforcedWaitsStrategy::solve(
    Cycles tau0, Cycles deadline) const {
  using R = util::Result<EnforcedWaitsSchedule>;
  RIPPLE_REQUIRE(tau0 > 0.0, "tau0 must be positive");
  RIPPLE_REQUIRE(deadline > 0.0, "deadline must be positive");

  const std::vector<Cycles> lower = sdf::minimal_firing_intervals(pipeline_);
  const double rate_cap = static_cast<double>(pipeline_.simd_width()) * tau0;
  if (lower[0] > rate_cap) {
    return R::failure(
        "infeasible",
        "arrival-rate constraint violated: minimal x_0 = " +
            util::format_double(lower[0], 3) + " exceeds v*tau0 = " +
            util::format_double(rate_cap, 3));
  }
  const Cycles min_budget = sdf::minimal_deadline_budget(pipeline_, config_.b);
  if (min_budget > deadline) {
    return R::failure("infeasible",
                      "deadline too tight: minimal budget sum b_i x_i = " +
                          util::format_double(min_budget, 3) + " exceeds D = " +
                          util::format_double(deadline, 3));
  }

  const opt::ConvexProblem problem = build_problem(tau0, deadline);

  // Degenerate feasible region: when the minimal point L already exhausts
  // (numerically) the whole deadline budget, L is the unique feasible point
  // (every feasible x dominates L componentwise).
  const linalg::Vector start = interior_start(tau0, deadline);
  if (start.empty()) {
    return make_schedule(lower, problem);
  }

  // Fast path: the chain-free water-filling closed form. When its optimum
  // already satisfies the chain constraints it is exact for the full
  // problem (the chain constraints were inactive), and the KKT check in
  // make_schedule certifies it.
  if (auto filled = waterfill_solve(pipeline_, config_.b, tau0, deadline);
      filled.ok() && filled.value().chain_feasible) {
    return make_schedule(filled.value().firing_intervals, problem);
  }

  auto solved = opt::barrier_minimize(problem, start);
  if (!solved.ok()) {
    return R::failure(solved.error().code,
                      "barrier solve failed: " + solved.error().message);
  }
  const linalg::Vector& x = solved.value().x;
  return make_schedule(std::vector<Cycles>(x.begin(), x.end()), problem);
}

}  // namespace ripple::core
