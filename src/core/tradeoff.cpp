#include "core/tradeoff.hpp"

#include <algorithm>
#include <cmath>

#include "sdf/analysis.hpp"
#include "util/assert.hpp"

namespace ripple::core {

util::Result<TradeoffCurve> trace_tradeoff(const sdf::PipelineSpec& pipeline,
                                           const EnforcedWaitsConfig& enforced_config,
                                           const MonolithicConfig& monolithic_config,
                                           Cycles tau0,
                                           const TradeoffConfig& config) {
  using R = util::Result<TradeoffCurve>;
  RIPPLE_REQUIRE(config.samples >= 2, "need at least two samples");
  RIPPLE_REQUIRE(tau0 > 0.0, "tau0 must be positive");

  const EnforcedWaitsStrategy enforced(pipeline, enforced_config);
  const MonolithicStrategy monolithic(pipeline, monolithic_config);

  const Cycles floor_deadline = enforced.min_feasible_deadline(tau0);
  if (std::isinf(floor_deadline)) {
    return R::failure("infeasible",
                      "arrival rate beyond the enforced-waits capacity");
  }

  TradeoffCurve curve;
  curve.tau0 = tau0;
  curve.enforced_floor = sdf::unconstrained_active_fraction(pipeline, tau0);

  // Upper end of the sweep: explicit, or grow geometrically until the
  // optimum sits within floor_tolerance of the floor.
  Cycles max_deadline = config.max_deadline;
  if (max_deadline <= 0.0) {
    max_deadline = floor_deadline * 2.0;
    for (int grow = 0; grow < 40; ++grow) {
      auto solved = enforced.solve(tau0, max_deadline);
      if (solved.ok() && solved.value().predicted_active_fraction -
                                 curve.enforced_floor <
                             config.floor_tolerance) {
        break;
      }
      max_deadline *= 1.6;
    }
  }
  max_deadline = std::max(max_deadline, floor_deadline * 1.01);

  // Geometric spacing: the interesting curvature is near the floor deadline.
  const double ratio =
      std::pow(max_deadline / floor_deadline,
               1.0 / static_cast<double>(config.samples - 1));
  Cycles deadline = floor_deadline;
  for (std::size_t s = 0; s < config.samples; ++s, deadline *= ratio) {
    TradeoffPoint point;
    point.deadline = deadline;
    if (auto solved = enforced.solve(tau0, deadline); solved.ok()) {
      point.enforced_feasible = true;
      point.enforced_active_fraction = solved.value().predicted_active_fraction;
    }
    if (auto solved = monolithic.solve(tau0, deadline); solved.ok()) {
      point.monolithic_feasible = true;
      point.monolithic_active_fraction =
          solved.value().predicted_active_fraction;
    }
    curve.points.push_back(point);
  }

  // Knee: max perpendicular distance from the chord between the first and
  // last feasible enforced points, in normalized coordinates.
  std::ptrdiff_t first = -1;
  std::ptrdiff_t last = -1;
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    if (!curve.points[i].enforced_feasible) continue;
    if (first < 0) first = static_cast<std::ptrdiff_t>(i);
    last = static_cast<std::ptrdiff_t>(i);
  }
  if (first >= 0 && last - first >= 2) {
    const auto& a = curve.points[static_cast<std::size_t>(first)];
    const auto& b = curve.points[static_cast<std::size_t>(last)];
    const double dx = b.deadline - a.deadline;
    const double dy =
        b.enforced_active_fraction - a.enforced_active_fraction;
    double best = -1.0;
    for (std::ptrdiff_t i = first + 1; i < last; ++i) {
      const auto& p = curve.points[static_cast<std::size_t>(i)];
      if (!p.enforced_feasible) continue;
      // Normalized distance from the chord.
      const double nx = (p.deadline - a.deadline) / dx;
      const double ny = dy == 0.0
                            ? 0.0
                            : (p.enforced_active_fraction -
                               a.enforced_active_fraction) /
                                  dy;
      // Convex decreasing: interior points sit below the chord (ny > nx);
      // the knee is the one farthest below.
      const double distance = ny - nx;
      if (distance > best) {
        best = distance;
        curve.knee_index = i;
      }
    }
  }
  return curve;
}

}  // namespace ripple::core
