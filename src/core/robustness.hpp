// Schedule sensitivity analysis: what a designer gets for relaxing each
// constraint of the enforced-waits problem.
//
// By Lagrangian duality, the deadline multiplier lambda of the optimum
// equals -dT*/dD: the rate at which the optimal active fraction falls per
// extra cycle of deadline. The water-filling solver recovers lambda exactly
// when the chain constraints are inactive; this module packages it together
// with per-constraint slacks so tools can answer "is the deadline, the
// arrival rate, or a chain coupling what's limiting this schedule?".
#pragma once

#include <string>
#include <vector>

#include "core/enforced_waits.hpp"
#include "sdf/pipeline.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace ripple::core {

struct ConstraintSlack {
  std::string label;     ///< "rate", "deadline", "chain[i]", "wait[i]"
  double slack = 0.0;    ///< rhs - lhs at the optimum (0 = active)
  bool active = false;   ///< slack within tolerance of zero
};

struct ScheduleSensitivity {
  /// -d(active fraction)/dD at the optimum: the marginal value of deadline.
  /// Exact (from the water-filling multiplier) when `exact` is true;
  /// otherwise estimated by a central finite difference of two solves.
  double deadline_multiplier = 0.0;
  bool exact = false;

  std::vector<ConstraintSlack> slacks;

  /// Label of the binding constraint with the largest multiplier influence:
  /// "deadline", "rate", or "chain" (heuristic: the active constraint family
  /// that, when relaxed, changes the optimum).
  std::string bottleneck;
};

/// Analyze the optimum at (tau0, D). Fails with "infeasible" when no
/// schedule exists there.
util::Result<ScheduleSensitivity> analyze_sensitivity(
    const EnforcedWaitsStrategy& strategy, Cycles tau0, Cycles deadline,
    double active_tolerance = 1e-6);

}  // namespace ripple::core
