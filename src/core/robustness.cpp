#include "core/robustness.hpp"

#include <algorithm>
#include <cmath>

#include "core/waterfill.hpp"
#include "util/assert.hpp"

namespace ripple::core {

util::Result<ScheduleSensitivity> analyze_sensitivity(
    const EnforcedWaitsStrategy& strategy, Cycles tau0, Cycles deadline,
    double active_tolerance) {
  using R = util::Result<ScheduleSensitivity>;

  auto solved = strategy.solve(tau0, deadline);
  if (!solved.ok()) {
    return R::failure(solved.error().code, solved.error().message);
  }
  const EnforcedWaitsSchedule& schedule = solved.value();
  const sdf::PipelineSpec& pipeline = strategy.pipeline();
  const std::vector<double>& b = strategy.config().b;
  const std::size_t n = pipeline.size();
  const auto& x = schedule.firing_intervals;

  ScheduleSensitivity sensitivity;

  // Per-constraint slacks at the optimum.
  const double rate_cap = static_cast<double>(pipeline.simd_width()) * tau0;
  auto add_slack = [&](std::string label, double slack, double scale) {
    ConstraintSlack entry;
    entry.label = std::move(label);
    entry.slack = slack;
    entry.active = slack <= active_tolerance * (1.0 + scale);
    sensitivity.slacks.push_back(std::move(entry));
  };
  add_slack("rate", rate_cap - x[0], rate_cap);
  add_slack("deadline", deadline - schedule.deadline_budget_used, deadline);
  for (std::size_t i = 1; i < n; ++i) {
    const double g = pipeline.mean_gain(i - 1);
    if (g <= 0.0) continue;
    add_slack("chain[" + std::to_string(i) + "]", x[i - 1] - g * x[i], x[i - 1]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    add_slack("wait[" + std::to_string(i) + "]",
              x[i] - pipeline.service_time(i), x[i]);
  }

  // Deadline multiplier: exact from water-filling when the chain couplings
  // are inactive there; otherwise a central finite difference.
  if (auto filled = waterfill_solve(pipeline, b, tau0, deadline);
      filled.ok() && filled.value().chain_feasible) {
    // The strategy objective carries a 1/N factor relative to sum t_i/x_i.
    sensitivity.deadline_multiplier =
        filled.value().lambda / static_cast<double>(n);
    sensitivity.exact = true;
  } else {
    const double h = std::max(1.0, 1e-4 * deadline);
    auto minus = strategy.solve(tau0, deadline - h);
    auto plus = strategy.solve(tau0, deadline + h);
    if (minus.ok() && plus.ok()) {
      sensitivity.deadline_multiplier =
          (minus.value().predicted_active_fraction -
           plus.value().predicted_active_fraction) /
          (2.0 * h);
      sensitivity.exact = false;
    }
  }

  // Bottleneck: the active structural constraint family, preferring the
  // deadline (it is active at every optimum with finite D), unless the rate
  // cap or a chain coupling also binds — those cap the benefit of more D.
  sensitivity.bottleneck = "deadline";
  for (const ConstraintSlack& slack : sensitivity.slacks) {
    if (!slack.active) continue;
    if (slack.label == "rate") {
      sensitivity.bottleneck = "rate";
      break;
    }
    if (slack.label.rfind("chain", 0) == 0) sensitivity.bottleneck = "chain";
  }
  return sensitivity;
}

}  // namespace ripple::core
