// The enforced-waits scheduling strategy (paper Section 4, Figure 1).
//
// Each node n_i is given a fixed wait w_i appended to every firing, so its
// firing interval is x_i = t_i + w_i. Choosing w minimizes the pipeline's
// active fraction
//
//     T(w) = (1/N) * sum_i t_i / (t_i + w_i)
//
// subject to
//     (t_0 + w_0) * rho0          <= v            (arrival-rate stability)
//     (t_i + w_i) * g_{i-1}       <= t_{i-1} + w_{i-1}   (chain stability)
//     sum_i b_i * (t_i + w_i)     <= D            (deadline budget)
//     w_i                         >= 0
//
// where the b_i are worst-case queue-depth multipliers calibrated against
// simulation (see calib/). The problem is convex in x = t + w with linear
// constraints; we solve it with the log-barrier Newton solver and verify the
// result against KKT conditions.
#pragma once

#include <cstdint>
#include <vector>

#include "core/warm_start.hpp"
#include "opt/kkt.hpp"
#include "opt/problem.hpp"
#include "sdf/pipeline.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace ripple::core {

/// Worst-case queue multipliers b_i: an input to node i may wait up to
/// b_i firings before being consumed. The paper calibrates {1, 3, 9, 6} for
/// the BLAST pipeline.
struct EnforcedWaitsConfig {
  std::vector<double> b;

  /// The paper's optimistic starting point: b_i = max(1, ceil(g_i)).
  static EnforcedWaitsConfig optimistic(const sdf::PipelineSpec& pipeline);
};

/// A solved schedule.
struct EnforcedWaitsSchedule {
  std::vector<Cycles> waits;             ///< w_i >= 0
  std::vector<Cycles> firing_intervals;  ///< x_i = t_i + w_i
  double predicted_active_fraction = 1.0;
  Cycles deadline_budget_used = 0.0;     ///< sum_i b_i x_i
  opt::KktReport kkt;                    ///< optimality certificate
};

class EnforcedWaitsStrategy {
 public:
  /// Throws std::logic_error if b is missing a multiplier per node or has a
  /// multiplier below 1 (an item always waits at least one firing).
  EnforcedWaitsStrategy(sdf::PipelineSpec pipeline, EnforcedWaitsConfig config);

  const sdf::PipelineSpec& pipeline() const noexcept { return pipeline_; }
  const EnforcedWaitsConfig& config() const noexcept { return config_; }

  /// Exact feasibility: the componentwise-minimal chain-feasible intervals L
  /// must satisfy the rate bound and the deadline budget.
  bool is_feasible(Cycles tau0, Cycles deadline) const;

  /// Smallest deadline for which a feasible schedule exists at this tau0
  /// (infinite when the rate constraint alone is violated).
  Cycles min_feasible_deadline(Cycles tau0) const;

  /// Smallest inter-arrival time tau0 (= highest sustainable rate) for which
  /// a feasible schedule exists at this deadline; infinite when the deadline
  /// is below the minimal budget, so no rate is ever feasible. The admission
  /// controller sheds load down to 1/min_feasible_tau0 when the offered rate
  /// exceeds it.
  Cycles min_feasible_tau0(Cycles deadline) const;

  /// Solve Figure 1. Failure code "infeasible" carries the violated
  /// constraint in its message.
  ///
  /// `warm` optionally carries a neighboring cell's solution (see
  /// warm_start.hpp). The hinted firing intervals are used to guess the
  /// active chain set, which the chained water-filling closed form then
  /// solves exactly; a KKT certificate on the full problem gates
  /// acceptance. Because the cold path canonicalizes its barrier solution
  /// through the same active-set machinery, warm and cold solves return
  /// bit-identical schedules — the hint only skips the barrier iterations.
  util::Result<EnforcedWaitsSchedule> solve(Cycles tau0, Cycles deadline,
                                            const WarmStart* warm = nullptr) const;

  /// The Figure 1 problem in x-space (exposed for cross-checking solvers).
  opt::ConvexProblem build_problem(Cycles tau0, Cycles deadline) const;

  /// A strictly interior start for the barrier solver; empty when the
  /// feasible region has (numerically) no interior.
  linalg::Vector interior_start(Cycles tau0, Cycles deadline) const;

  /// Active fraction of a given schedule x (no feasibility check).
  double active_fraction(const std::vector<Cycles>& firing_intervals) const;

  /// Chain constraints numerically tight at x (one flag per node; entry i
  /// refers to g_{i-1} x_i <= x_{i-1}, entry 0 always false). Exposed for
  /// the warm-start tests.
  std::vector<std::uint8_t> detect_active_chain(
      const std::vector<Cycles>& firing_intervals) const;

 private:
  EnforcedWaitsSchedule make_schedule(std::vector<Cycles> intervals,
                                      const opt::ConvexProblem& problem) const;

  /// Deterministic canonicalization: starting from a guessed active chain
  /// set, iterate chained water-filling + re-detection to a fixed point and
  /// accept only with a KKT certificate on the full problem. Returns the
  /// exact intervals, or empty when no certified fixed point was reached
  /// (caller falls back). The result depends only on (tau0, deadline,
  /// fixed-point set), never on where the initial guess came from — the
  /// warm and cold paths meet here, which is what makes them bit-identical.
  std::vector<Cycles> canonical_chain_solve(
      Cycles tau0, Cycles deadline, const opt::ConvexProblem& problem,
      std::vector<std::uint8_t> active_chain) const;

  sdf::PipelineSpec pipeline_;
  EnforcedWaitsConfig config_;
  std::vector<Cycles> minimal_intervals_;  ///< cached chain-feasible floor L
  Cycles minimal_budget_ = 0.0;            ///< cached sum b_i L_i
};

}  // namespace ripple::core
