// Exact water-filling solution of the enforced-waits problem when the chain
// constraints are inactive.
//
// Dropping the chain couplings from Figure 1 leaves a separable convex
// program:
//
//     min sum_i t_i / x_i   s.t.   sum_i b_i x_i <= D,  l_i <= x_i <= u_i
//
// with l_i = t_i, u_0 = v * tau0, u_{i>0} = inf. Its KKT conditions give the
// closed form  x_i(lambda) = clamp(sqrt(t_i / (lambda b_i)), l_i, u_i)  with
// the single multiplier lambda chosen so the budget binds; the budget usage
// is strictly decreasing in lambda, so bisection recovers lambda to machine
// precision. When the resulting point also satisfies the chain constraints
// — the common case away from the feasibility frontier — it is the exact
// optimum of the full problem; otherwise the caller falls back to the
// barrier solver (EnforcedWaitsStrategy does this automatically).
#pragma once

#include <vector>

#include "sdf/pipeline.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace ripple::core {

struct WaterfillSolution {
  std::vector<Cycles> firing_intervals;  ///< x_i
  double lambda = 0.0;                   ///< budget multiplier
  double active_fraction = 1.0;
  bool chain_feasible = false;  ///< true -> exact optimum of the full problem
};

/// Solve the relaxed (chain-free) problem exactly. Failure codes:
///   "infeasible" — even x = l violates rate or deadline
util::Result<WaterfillSolution> waterfill_solve(const sdf::PipelineSpec& pipeline,
                                                const std::vector<double>& b,
                                                Cycles tau0, Cycles deadline);

}  // namespace ripple::core
