// Exact water-filling solution of the enforced-waits problem when the chain
// constraints are inactive — and, via waterfill_solve_chained, when a known
// subset of them is active.
//
// Dropping the chain couplings from Figure 1 leaves a separable convex
// program:
//
//     min sum_i t_i / x_i   s.t.   sum_i b_i x_i <= D,  l_i <= x_i <= u_i
//
// with l_i = t_i, u_0 = v * tau0, u_{i>0} = inf. Its KKT conditions give the
// closed form  x_i(lambda) = clamp(sqrt(t_i / (lambda b_i)), l_i, u_i)  with
// the single multiplier lambda chosen so the budget binds; the budget usage
// is strictly decreasing in lambda, so bisection recovers lambda to machine
// precision. When the resulting point also satisfies the chain constraints
// — the common case away from the feasibility frontier — it is the exact
// optimum of the full problem; otherwise the caller falls back to the
// barrier solver (EnforcedWaitsStrategy does this automatically).
//
// The chained variant generalizes the closed form to a prescribed active
// chain set: nodes linked by an active equality x_{i-1} = g_{i-1} x_i merge
// into a block with one representative variable y (the last node's
// interval), aggregated objective weight T_B = sum t_j / r_j, budget weight
// B_B = sum b_j r_j and bounds folded through the ratios r_j. The reduced
// problem is separable again, so the same single-lambda bisection solves it
// exactly. Combined with a KKT certificate on the full problem this turns a
// guessed active set (e.g. a warm-start neighbor's) into an exact,
// deterministic optimum — the basis of the sweep warm-start path.
#pragma once

#include <cstdint>
#include <vector>

#include "sdf/pipeline.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace ripple::core {

struct WaterfillSolution {
  std::vector<Cycles> firing_intervals;  ///< x_i
  double lambda = 0.0;                   ///< budget multiplier
  double active_fraction = 1.0;
  bool chain_feasible = false;  ///< true -> exact optimum of the full problem
  /// The chain set this point was solved against (empty for the plain
  /// solver); callers iterating over active sets carry it here.
  std::vector<std::uint8_t> chain_active;
};

/// Solve the relaxed (chain-free) problem exactly. Failure codes:
///   "infeasible" — even x = l violates rate or deadline
util::Result<WaterfillSolution> waterfill_solve(const sdf::PipelineSpec& pipeline,
                                                const std::vector<double>& b,
                                                Cycles tau0, Cycles deadline);

/// Solve with the chain constraints in `chain_active` held as equalities.
/// `chain_active` has one entry per node; entry i (i >= 1) refers to the
/// constraint g_{i-1} x_i <= x_{i-1} (entry 0 is ignored). Entries on
/// zero-gain edges are ignored (the constraint does not exist there). The
/// returned `chain_feasible` reports whether the *inactive* chain
/// constraints also hold at the solution; only then is the point feasible
/// for the full problem. Failure code "infeasible" as for waterfill_solve,
/// including the case where the active equalities contradict the bounds.
util::Result<WaterfillSolution> waterfill_solve_chained(
    const sdf::PipelineSpec& pipeline, const std::vector<double>& b,
    Cycles tau0, Cycles deadline, const std::vector<std::uint8_t>& chain_active);

}  // namespace ripple::core
