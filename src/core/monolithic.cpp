#include "core/monolithic.hpp"

#include <algorithm>
#include <cmath>

#include "opt/integer.hpp"
#include "util/assert.hpp"
#include "util/string_utils.hpp"

namespace ripple::core {

namespace {
/// Hard cap on scan range; generous relative to the paper's parameter space
/// (M <= D * rho0 <= 3.5e5 there).
constexpr std::int64_t kMaxBlockCap = 50'000'000;
}  // namespace

MonolithicStrategy::MonolithicStrategy(sdf::PipelineSpec pipeline,
                                       MonolithicConfig config)
    : pipeline_(std::move(pipeline)), config_(config),
      total_gains_(pipeline_.total_gains()) {
  RIPPLE_REQUIRE(config_.b >= 1.0, "block multiplier b must be at least 1");
  RIPPLE_REQUIRE(config_.S >= 1.0, "worst-case scale S must be at least 1");
}

Cycles MonolithicStrategy::mean_block_service(std::int64_t block_size) const {
  RIPPLE_REQUIRE(block_size > 0, "block size must be positive");
  const double v = static_cast<double>(pipeline_.simd_width());
  Cycles total = 0.0;
  for (NodeIndex i = 0; i < pipeline_.size(); ++i) {
    const double expected_items =
        static_cast<double>(block_size) * total_gains_[i];
    const double firings = std::ceil(expected_items / v);
    total += firings * pipeline_.service_time(i);
  }
  return total;
}

bool MonolithicStrategy::is_block_feasible(std::int64_t block_size, Cycles tau0,
                                           Cycles deadline) const {
  const Cycles tbar = mean_block_service(block_size);
  const double m = static_cast<double>(block_size);
  if (tbar > m * tau0) return false;                        // stability
  const Cycles worst = config_.S * tbar;
  return config_.b * m * tau0 + worst <= deadline;          // deadline
}

double MonolithicStrategy::active_fraction(std::int64_t block_size,
                                           Cycles tau0) const {
  return mean_block_service(block_size) /
         (static_cast<double>(block_size) * tau0);
}

std::int64_t MonolithicStrategy::max_block_size(Cycles tau0,
                                                Cycles deadline) const {
  const double cap = deadline / (config_.b * tau0);
  if (cap < 1.0) return 0;
  return std::min<std::int64_t>(static_cast<std::int64_t>(cap), kMaxBlockCap);
}

bool MonolithicStrategy::is_feasible(Cycles tau0, Cycles deadline) const {
  const std::int64_t hi = max_block_size(tau0, deadline);
  for (std::int64_t m = 1; m <= hi; ++m) {
    if (is_block_feasible(m, tau0, deadline)) return true;
  }
  return false;
}

MonolithicSchedule MonolithicStrategy::make_schedule(
    std::int64_t block_size, Cycles tau0, std::uint64_t evaluations) const {
  MonolithicSchedule schedule;
  schedule.block_size = block_size;
  schedule.mean_block_service = mean_block_service(block_size);
  schedule.worst_block_service = config_.S * schedule.mean_block_service;
  schedule.predicted_active_fraction = active_fraction(block_size, tau0);
  schedule.worst_case_latency =
      config_.b * static_cast<double>(block_size) * tau0 +
      schedule.worst_block_service;
  schedule.candidates_scanned = evaluations;
  return schedule;
}

util::Result<MonolithicSchedule> MonolithicStrategy::solve(
    Cycles tau0, Cycles deadline) const {
  using R = util::Result<MonolithicSchedule>;
  RIPPLE_REQUIRE(tau0 > 0.0, "tau0 must be positive");
  RIPPLE_REQUIRE(deadline > 0.0, "deadline must be positive");

  const std::int64_t hi = max_block_size(tau0, deadline);
  if (hi < 1) {
    return R::failure("infeasible",
                      "deadline admits no block: b*tau0 = " +
                          util::format_double(config_.b * tau0, 3) +
                          " exceeds D = " + util::format_double(deadline, 3));
  }
  const auto scan = opt::minimize_integer_scan(
      1, hi, [&](std::int64_t m) -> std::optional<double> {
        if (!is_block_feasible(m, tau0, deadline)) return std::nullopt;
        return active_fraction(m, tau0);
      });
  if (!scan.feasible) {
    return R::failure("infeasible",
                      "no block size in [1, " + std::to_string(hi) +
                          "] satisfies stability + deadline");
  }
  return make_schedule(scan.argmin, tau0, scan.evaluations);
}

util::Result<MonolithicSchedule> MonolithicStrategy::solve_branch_and_bound(
    Cycles tau0, Cycles deadline) const {
  using R = util::Result<MonolithicSchedule>;
  const std::int64_t hi = max_block_size(tau0, deadline);
  if (hi < 1) {
    return R::failure("infeasible", "deadline admits no block");
  }

  const double v = static_cast<double>(pipeline_.simd_width());
  // Relaxation: ceil(z) >= max(z, 1 when z > 0), so the objective at M is at
  // least f_relax(M) = sum_i max(G_i t_i / v, t_i/M [G_i>0]) / tau0, which is
  // non-increasing in M; its minimum over [lo, hi] is at hi.
  auto relaxed = [&](std::int64_t m) {
    double total = 0.0;
    for (NodeIndex i = 0; i < pipeline_.size(); ++i) {
      if (total_gains_[i] <= 0.0) continue;
      total += std::max(total_gains_[i] * pipeline_.service_time(i) / v,
                        pipeline_.service_time(i) / static_cast<double>(m));
    }
    return total / tau0;
  };

  const auto found = opt::branch_and_bound_minimize(
      1, hi,
      [&](std::int64_t m) -> std::optional<double> {
        if (!is_block_feasible(m, tau0, deadline)) return std::nullopt;
        return active_fraction(m, tau0);
      },
      [&](std::int64_t, std::int64_t interval_hi) { return relaxed(interval_hi); });
  if (!found.feasible) {
    return R::failure("infeasible", "branch-and-bound found no feasible block");
  }
  return make_schedule(found.argmin, tau0, found.evaluations);
}

}  // namespace ripple::core
