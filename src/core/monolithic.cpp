#include "core/monolithic.hpp"

#include <algorithm>
#include <cmath>

#include "opt/integer.hpp"
#include "util/assert.hpp"
#include "util/string_utils.hpp"

namespace ripple::core {

namespace {
/// Hard cap on scan range; generous relative to the paper's parameter space
/// (M <= D * rho0 <= 3.5e5 there).
constexpr std::int64_t kMaxBlockCap = 50'000'000;
}  // namespace

MonolithicStrategy::MonolithicStrategy(sdf::PipelineSpec pipeline,
                                       MonolithicConfig config)
    : pipeline_(std::move(pipeline)), config_(config),
      total_gains_(pipeline_.total_gains()) {
  RIPPLE_REQUIRE(config_.b >= 1.0, "block multiplier b must be at least 1");
  RIPPLE_REQUIRE(config_.S >= 1.0, "worst-case scale S must be at least 1");
  // ceil() in Tbar never rounds down, so Tbar(M) >= M * c exactly.
  service_per_input_floor_ = pipeline_.mean_service_per_input();
}

Cycles MonolithicStrategy::mean_block_service(std::int64_t block_size) const {
  RIPPLE_REQUIRE(block_size > 0, "block size must be positive");
  const double v = static_cast<double>(pipeline_.simd_width());
  Cycles total = 0.0;
  for (NodeIndex i = 0; i < pipeline_.size(); ++i) {
    const double expected_items =
        static_cast<double>(block_size) * total_gains_[i];
    const double firings = std::ceil(expected_items / v);
    total += firings * pipeline_.service_time(i);
  }
  return total;
}

bool MonolithicStrategy::is_block_feasible(std::int64_t block_size, Cycles tau0,
                                           Cycles deadline) const {
  const Cycles tbar = mean_block_service(block_size);
  const double m = static_cast<double>(block_size);
  if (tbar > m * tau0) return false;                        // stability
  const Cycles worst = config_.S * tbar;
  return config_.b * m * tau0 + worst <= deadline;          // deadline
}

double MonolithicStrategy::active_fraction(std::int64_t block_size,
                                           Cycles tau0) const {
  return mean_block_service(block_size) /
         (static_cast<double>(block_size) * tau0);
}

std::int64_t MonolithicStrategy::max_block_size(Cycles tau0,
                                                Cycles deadline) const {
  // Tbar(M) >= M * c, so the deadline b*M*tau0 + S*Tbar(M) <= D forces
  // M <= D / (b*tau0 + S*c). Only deadline-infeasible blocks are cut, so
  // every scan/branch-and-bound argmin is unchanged (regression-tested
  // against the untightened cap over the paper grid).
  const double cap =
      deadline / (config_.b * tau0 + config_.S * service_per_input_floor_);
  if (cap < 1.0) return 0;
  return std::min<std::int64_t>(static_cast<std::int64_t>(cap), kMaxBlockCap);
}

double MonolithicStrategy::interval_bound(std::int64_t lo, std::int64_t hi,
                                          Cycles tau0) const {
  // Relaxation: ceil(z) >= max(z, 1 when z > 0), so the objective at M is at
  // least f_relax(M) = sum_i max(G_i t_i / v, t_i/M [G_i>0]) / tau0, which is
  // non-increasing in M; its minimum over [lo, hi] is at hi.
  const double v = static_cast<double>(pipeline_.simd_width());
  double relaxed = 0.0;
  for (NodeIndex i = 0; i < pipeline_.size(); ++i) {
    if (total_gains_[i] <= 0.0) continue;
    relaxed += std::max(total_gains_[i] * pipeline_.service_time(i) / v,
                        pipeline_.service_time(i) / static_cast<double>(hi));
  }
  relaxed /= tau0;
  // Tbar non-decreasing: Tbar(M)/(M*tau0) >= Tbar(lo)/(hi*tau0) on [lo, hi].
  const double monotone =
      mean_block_service(lo) / (static_cast<double>(hi) * tau0);
  return std::max(relaxed, monotone);
}

bool MonolithicStrategy::is_feasible(Cycles tau0, Cycles deadline) const {
  // Tbar(M) >= M * c, so tau0 < c makes every block unstable.
  if (tau0 < service_per_input_floor_) return false;
  const std::int64_t hi = max_block_size(tau0, deadline);
  for (std::int64_t m = 1; m <= hi; ++m) {
    if (is_block_feasible(m, tau0, deadline)) return true;
  }
  return false;
}

MonolithicSchedule MonolithicStrategy::make_schedule(
    std::int64_t block_size, Cycles tau0, std::uint64_t evaluations) const {
  MonolithicSchedule schedule;
  schedule.block_size = block_size;
  schedule.mean_block_service = mean_block_service(block_size);
  schedule.worst_block_service = config_.S * schedule.mean_block_service;
  schedule.predicted_active_fraction = active_fraction(block_size, tau0);
  schedule.worst_case_latency =
      config_.b * static_cast<double>(block_size) * tau0 +
      schedule.worst_block_service;
  schedule.candidates_scanned = evaluations;
  return schedule;
}

util::Result<MonolithicSchedule> MonolithicStrategy::solve(
    Cycles tau0, Cycles deadline, const WarmStart* warm) const {
  using R = util::Result<MonolithicSchedule>;
  RIPPLE_REQUIRE(tau0 > 0.0, "tau0 must be positive");
  RIPPLE_REQUIRE(deadline > 0.0, "deadline must be positive");

  if (tau0 < service_per_input_floor_) {
    // Tbar(M) >= M * c: below the asymptotic service floor no block is ever
    // stable, so don't walk the scan at all (the old code burned the whole
    // [1, hi] range here for every infeasible fast-arrival cell).
    return R::failure("infeasible",
                      "unstable at any block: tau0 = " +
                          util::format_double(tau0, 3) +
                          " is below the per-input service floor " +
                          util::format_double(service_per_input_floor_, 3));
  }
  const std::int64_t hi = max_block_size(tau0, deadline);
  if (hi < 1) {
    return R::failure("infeasible",
                      "deadline admits no block: b*tau0 = " +
                          util::format_double(config_.b * tau0, 3) +
                          " exceeds D = " + util::format_double(deadline, 3));
  }
  const auto objective = [&](std::int64_t m) -> std::optional<double> {
    if (!is_block_feasible(m, tau0, deadline)) return std::nullopt;
    return active_fraction(m, tau0);
  };

  opt::IntegerResult found;
  bool solved_warm = false;
  if (warm != nullptr && warm->has_monolithic_hint()) {
    // Ringed search: scan a window around the hinted block for an
    // incumbent, then let branch-and-bound prove global (lexicographic)
    // optimality over [1, hi]. The interval bound Tbar(a)/(b*tau0) is tight
    // on narrow intervals, so a near-optimal incumbent prunes nearly the
    // whole range. Falls back to the cold scan unless the proof completed,
    // so the result always matches the scan bit for bit.
    const std::int64_t ring = std::max<std::int64_t>(64, hi / 128);
    const std::int64_t ring_lo = std::max<std::int64_t>(1, warm->block_size - ring);
    const std::int64_t ring_hi = std::min(hi, warm->block_size + ring);
    opt::IntegerResult ringed;
    if (ring_lo <= ring_hi) {
      ringed = opt::minimize_integer_scan(ring_lo, ring_hi, objective);
    }
    opt::BranchAndBoundOptions options;
    if (ringed.feasible) {
      options.incumbent_argmin = ringed.argmin;
      options.incumbent_value = ringed.value;
    }
    opt::IntegerResult bnb = opt::branch_and_bound_minimize(
        1, hi, objective,
        [&](std::int64_t interval_lo, std::int64_t interval_hi) {
          return interval_bound(interval_lo, interval_hi, tau0);
        },
        options);
    if (bnb.complete) {
      bnb.evaluations += ringed.evaluations;
      found = bnb;
      solved_warm = true;
    }
  }
  if (!solved_warm) {
    found = opt::minimize_integer_scan(1, hi, objective);
  }
  if (!found.feasible) {
    return R::failure("infeasible",
                      "no block size in [1, " + std::to_string(hi) +
                          "] satisfies stability + deadline");
  }
  return make_schedule(found.argmin, tau0, found.evaluations);
}

util::Result<MonolithicSchedule> MonolithicStrategy::solve_branch_and_bound(
    Cycles tau0, Cycles deadline) const {
  using R = util::Result<MonolithicSchedule>;
  const std::int64_t hi = max_block_size(tau0, deadline);
  if (hi < 1) {
    return R::failure("infeasible", "deadline admits no block");
  }

  const auto found = opt::branch_and_bound_minimize(
      1, hi,
      [&](std::int64_t m) -> std::optional<double> {
        if (!is_block_feasible(m, tau0, deadline)) return std::nullopt;
        return active_fraction(m, tau0);
      },
      [&](std::int64_t interval_lo, std::int64_t interval_hi) {
        return interval_bound(interval_lo, interval_hi, tau0);
      });
  if (!found.complete) {
    // The node budget ran out with intervals still open: the incumbent (if
    // any) is not certified optimal, so refuse to dress it up as a solution.
    return R::failure(
        "incomplete",
        "branch-and-bound exhausted its node budget over [1, " +
            std::to_string(hi) + "]; incumbent " +
            (found.feasible ? "value " + util::format_double(found.value, 6)
                            : "absent") +
            " is not certified optimal");
  }
  if (!found.feasible) {
    return R::failure("infeasible", "branch-and-bound found no feasible block");
  }
  return make_schedule(found.argmin, tau0, found.evaluations);
}

}  // namespace ripple::core
