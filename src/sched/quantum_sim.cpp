#include "sched/quantum_sim.hpp"

#include <algorithm>
#include <cmath>

#include "dist/rng.hpp"
#include "sched/stride_scheduler.hpp"
#include "sim/event_queue.hpp"
#include "util/assert.hpp"
#include "util/ring_buffer.hpp"

namespace ripple::sched {

namespace {

using RootId = std::uint32_t;

enum EventPriority : int {
  kPriorityArrival = 0,
  kPriorityTick = 1,
};

struct EventPayload {
  enum class Kind : std::uint8_t { kArrival, kTick };
  Kind kind;
  NodeIndex node = 0;
};

/// Per-node task state.
struct NodeTask {
  util::RingBuffer<RootId> queue;

  // Firing in progress (READY or RUNNING between quanta).
  bool firing_active = false;
  bool dispatched = false;         // got its first quantum
  Cycles remaining_work = 0.0;     // exclusive cycles left
  Cycles ready_time = 0.0;
  Cycles first_dispatch = 0.0;
  std::vector<RootId> outputs;     // delivered at completion
  std::uint32_t consumed = 0;

  Cycles last_ready = 0.0;         // anchor for the cadence recursion
  bool tick_pending = false;       // a kTick event is in flight
};

}  // namespace

QuantumSimMetrics simulate_quantum_scheduled(
    const sdf::PipelineSpec& pipeline,
    const std::vector<Cycles>& firing_intervals,
    arrivals::ArrivalProcess& arrival_process, const QuantumSimConfig& config) {
  const std::size_t n = pipeline.size();
  RIPPLE_REQUIRE(firing_intervals.size() == n, "one firing interval per node");
  RIPPLE_REQUIRE(config.quantum > 0.0, "quantum must be positive");
  RIPPLE_REQUIRE(config.input_count > 0, "need at least one input");
  for (NodeIndex i = 0; i < n; ++i) {
    RIPPLE_REQUIRE(firing_intervals[i] >= pipeline.service_time(i) - 1e-9,
                   "firing interval below service time at node " +
                       std::to_string(i));
  }

  dist::Xoshiro256 rng(config.seed);
  const std::uint32_t v = pipeline.simd_width();
  const double inv_n = 1.0 / static_cast<double>(n);

  QuantumSimMetrics metrics;
  metrics.base.nodes.resize(n);
  metrics.base.vector_width = v;
  metrics.base.sharing_actors = n;
  metrics.base.arm_latency_histogram(config.deadline);
  metrics.service_span.resize(n);

  std::vector<NodeTask> tasks(n);
  std::vector<dist::OutputCount> gain_draws(v);
  StrideScheduler scheduler = StrideScheduler::equal_shares(n);

  std::vector<Cycles> root_arrival;
  root_arrival.reserve(config.input_count);
  std::vector<bool> root_missed(config.input_count, false);

  std::uint64_t live_items = 0;
  bool arrivals_done = false;

  sim::EventQueue<EventPayload> events;
  events.push(arrival_process.next_interarrival(rng), kPriorityArrival,
              {EventPayload::Kind::kArrival, 0});
  for (NodeIndex i = 0; i < n; ++i) {
    tasks[i].last_ready = 0.0;
    tasks[i].tick_pending = true;
    events.push(0.0, kPriorityTick, {EventPayload::Kind::kTick, i});
  }

  Cycles now = 0.0;

  // True while there is (or may yet be) data in flight, so ticks keep firing.
  auto stream_live = [&] { return !(arrivals_done && live_items == 0); };

  auto complete_firing = [&](NodeIndex i) {
    NodeTask& task = tasks[i];
    const bool is_sink = (i + 1 == n);
    if (is_sink) {
      for (const RootId root : task.outputs) {
        ++metrics.base.sink_outputs;
        const Cycles latency = now - root_arrival[root];
        metrics.base.record_latency(latency);
        if (config.deadline > 0.0 &&
            latency > config.deadline * (1.0 + 1e-12) && !root_missed[root]) {
          root_missed[root] = true;
          ++metrics.base.inputs_missed;
        }
        metrics.base.makespan = std::max(metrics.base.makespan, now);
      }
      live_items -= task.outputs.size();
    } else {
      auto& next_queue = tasks[i + 1].queue;
      for (const RootId root : task.outputs) next_queue.push_back(root);
      metrics.base.nodes[i + 1].max_queue_length =
          std::max<std::uint64_t>(metrics.base.nodes[i + 1].max_queue_length,
                                  next_queue.size());
    }
    task.outputs.clear();
    task.firing_active = false;
    task.dispatched = false;
    scheduler.set_runnable(i, false);

    // Cadence recursion: ready_{k+1} = max(ready_k + x_i, completion).
    if (stream_live() && !task.tick_pending) {
      task.last_ready = std::max(task.last_ready + firing_intervals[i], now);
      task.tick_pending = true;
      events.push(task.last_ready, kPriorityTick,
                  {EventPayload::Kind::kTick, i});
    }
  };

  auto start_firing_dispatch = [&](NodeIndex i) {
    // First quantum of this firing: consume the input vector and sample
    // outputs (delivered at completion).
    NodeTask& task = tasks[i];
    task.dispatched = true;
    task.first_dispatch = now;
    metrics.dispatch_delay.add(now - task.ready_time);
    sim::NodeMetrics& node = metrics.base.nodes[i];
    const std::uint32_t consumed =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(task.queue.size(), v));
    task.consumed = consumed;
    ++node.firings;
    if (consumed == 0) ++node.empty_firings;
    node.active_time += pipeline.service_time(i);  // paper accounting basis
    node.items_consumed += consumed;

    const bool is_sink = (i + 1 == n);
    if (is_sink) {
      for (std::uint32_t k = 0; k < consumed; ++k) {
        task.outputs.push_back(task.queue.pop_front());
      }
    } else if (consumed > 0) {
      // One batched virtual call per firing; identical RNG draw order.
      pipeline.node(i).gain->sample_n(rng, gain_draws.data(), consumed);
      std::uint64_t produced = 0;
      for (std::uint32_t k = 0; k < consumed; ++k) {
        const RootId root = task.queue.pop_front();
        const dist::OutputCount outputs = gain_draws[k];
        produced += outputs;
        for (dist::OutputCount o = 0; o < outputs; ++o) {
          task.outputs.push_back(root);
        }
      }
      node.items_produced += produced;
      live_items += produced;
      live_items -= consumed;
    }
  };

  // Scheduling decisions happen only at quantum boundaries t = k * Q (the
  // coarseness under study: a timer-tick or kernel-slot dispatcher). A task
  // that finishes mid-slot releases its results at the true completion time,
  // but the processor is not re-dispatched until the next boundary.
  const Cycles quantum_length = config.quantum;
  auto next_boundary_after = [quantum_length](Cycles t) {
    const double slots = std::ceil(t / quantum_length - 1e-9);
    return std::max(slots, 0.0) * quantum_length;
  };

  std::uint64_t quanta = 0;
  while (quanta < config.max_quanta) {
    // Drain all events due at or before `now` (boundary processing).
    while (!events.empty() && events.top().time <= now + 1e-12) {
      const auto event = events.pop();
      switch (event.payload.kind) {
        case EventPayload::Kind::kArrival: {
          const RootId root = static_cast<RootId>(root_arrival.size());
          root_arrival.push_back(event.time);
          ++metrics.base.inputs_arrived;
          tasks[0].queue.push_back(root);
          ++live_items;
          metrics.base.nodes[0].max_queue_length =
              std::max<std::uint64_t>(metrics.base.nodes[0].max_queue_length,
                                      tasks[0].queue.size());
          if (root_arrival.size() < config.input_count) {
            events.push(event.time + arrival_process.next_interarrival(rng),
                        kPriorityArrival, {EventPayload::Kind::kArrival, 0});
          } else {
            arrivals_done = true;
          }
          break;
        }
        case EventPayload::Kind::kTick: {
          const NodeIndex i = event.payload.node;
          NodeTask& task = tasks[i];
          task.tick_pending = false;
          if (task.firing_active) break;  // overrun: completion re-anchors
          const bool has_work = !task.queue.empty();
          if (has_work || config.charge_empty_firings) {
            task.firing_active = true;
            task.dispatched = false;
            task.ready_time = event.time;
            task.remaining_work = pipeline.service_time(i) * inv_n;
            scheduler.set_runnable(i, true);
          }
          // Schedule the next cadence tick (unless the stream has drained).
          if (stream_live() && !task.firing_active) {
            task.last_ready += firing_intervals[i];
            task.tick_pending = true;
            events.push(task.last_ready, kPriorityTick,
                        {EventPayload::Kind::kTick, i});
          }
          break;
        }
      }
    }

    if (scheduler.runnable_count() == 0) {
      if (events.empty()) break;  // fully drained
      // Idle until the first boundary at or after the next event.
      now = next_boundary_after(std::max(now, events.top().time));
      continue;
    }

    // Execute one slot: the picked task runs for min(Q, remaining); if it
    // finishes early the rest of the slot is dead time (coarse dispatch).
    const TaskId picked = scheduler.pick_and_charge();
    NodeTask& task = tasks[picked];
    if (!task.dispatched) start_firing_dispatch(picked);
    const Cycles slice = std::min(quantum_length, task.remaining_work);
    task.remaining_work -= slice;
    const Cycles work_end = now + slice;
    metrics.busy_time += slice;
    ++quanta;
    if (task.remaining_work <= 1e-9) {
      // Completion effects (output delivery, latency stamps, next cadence
      // anchor) take effect at the true work end, inside the slot.
      const Cycles boundary = now + quantum_length;
      now = work_end;
      metrics.service_span[picked].add(now - task.first_dispatch);
      complete_firing(picked);
      now = boundary;
    } else {
      now += quantum_length;
    }
  }
  RIPPLE_REQUIRE(quanta < config.max_quanta,
                 "quantum budget exhausted (unstable schedule?)");

  metrics.quanta_executed = quanta;
  metrics.base.events_processed = quanta;
  metrics.base.inputs_on_time =
      metrics.base.inputs_arrived - metrics.base.inputs_missed;
  if (metrics.base.makespan <= 0.0 && !root_arrival.empty()) {
    metrics.base.makespan = root_arrival.back();
  }
  return metrics;
}

}  // namespace ripple::sched
