// Stride scheduler: deterministic proportional-share CPU scheduling.
//
// The paper's implementation model (Section 2.2) assumes each of the N
// pipeline nodes owns a 1/N processor share dispensed by "preemptive
// scheduling at a fine granularity" with negligible dispatch delay. Its
// future work (Section 7) asks what happens under "cooperative or otherwise
// more coarse-grained division of processor time". This module provides the
// mechanism: stride scheduling (Waldspurger & Weihl, OSDI '94) doles out
// fixed-length quanta to runnable tasks in proportion to their tickets; as
// the quantum shrinks it converges to the fluid 1/N model, and as it grows
// it exposes dispatch latency. quantum_sim.hpp builds the pipeline runtime
// on top.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace ripple::sched {

using TaskId = std::size_t;

/// Pick-next-task policy over runnable task ids. Deterministic: ties on pass
/// value break toward the lower task id.
class StrideScheduler {
 public:
  /// All tasks get `tickets[i]` tickets; more tickets = more quanta.
  explicit StrideScheduler(std::vector<std::uint64_t> tickets);

  /// Equal-share convenience (the paper's 1/N model).
  static StrideScheduler equal_shares(std::size_t task_count);

  std::size_t task_count() const noexcept { return strides_.size(); }

  void set_runnable(TaskId task, bool runnable);
  bool is_runnable(TaskId task) const;
  std::size_t runnable_count() const noexcept { return runnable_count_; }

  /// Choose the runnable task with the minimum pass value, charge it one
  /// quantum (advance its pass by its stride), and return it. Requires at
  /// least one runnable task.
  TaskId pick_and_charge();

  /// Current pass value of a task (monotone in quanta received).
  std::uint64_t pass(TaskId task) const;

  /// Quanta charged to a task so far.
  std::uint64_t quanta_received(TaskId task) const;

 private:
  // When a task wakes after sleeping, its pass is brought forward to the
  // minimum runnable pass so it cannot monopolize the processor with credit
  // accumulated while asleep (standard stride-scheduler "pass adjustment").
  void adjust_pass_on_wake(TaskId task);

  std::vector<std::uint64_t> strides_;
  std::vector<std::uint64_t> passes_;
  std::vector<std::uint64_t> quanta_;
  std::vector<bool> runnable_;
  std::size_t runnable_count_ = 0;
};

}  // namespace ripple::sched
