// Enforced-waits pipeline execution on a quantum-scheduled processor.
//
// This is the paper's Section 7 future-work item made concrete: instead of
// assuming fine-grained preemption with negligible dispatch delay (the
// Section 2.2 fluid model, which sim/enforced_sim.hpp implements), each node
// becomes a task on a stride-scheduled virtual processor that hands out
// fixed-length quanta. One firing of node i carries t_i / N "exclusive"
// cycles of work (t_i is the paper's service time under a 1/N share, so the
// work itself is t_i / N processor-seconds).
//
// As quantum -> 0 with all nodes busy this converges to the paper's model
// (each firing spans ~t_i of wall clock); large quanta introduce dispatch
// latency — a node that becomes ready mid-quantum waits for the boundary and
// then for its stride turn — which eats deadline margin. When fewer than N
// tasks are runnable, the stride scheduler gives each a larger share, so
// firings can complete *faster* than t_i; the paper's 1/N assumption is thus
// conservative, and this module quantifies by how much.
//
// Cadence semantics: a node's k-th firing becomes ready at
//   ready_{k+1} = max(ready_k + x_i, completion_k),
// i.e. the paper's fixed cadence while the node keeps up, degrading
// gracefully when a firing overruns its interval.
#pragma once

#include <cstdint>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "dist/stats.hpp"
#include "sdf/pipeline.hpp"
#include "sim/metrics.hpp"
#include "util/types.hpp"

namespace ripple::sched {

struct QuantumSimConfig {
  Cycles quantum = 10.0;          ///< scheduler quantum length, in cycles
  ItemCount input_count = 20000;
  Cycles deadline = 0.0;
  bool charge_empty_firings = true;
  std::uint64_t seed = 0;
  std::uint64_t max_quanta = 2'000'000'000;  ///< runaway guard
};

struct QuantumSimMetrics {
  sim::TrialMetrics base;  ///< same counters as the fluid simulator

  /// ready -> first quantum, across all firings (the cost of coarseness).
  dist::RunningStats dispatch_delay;
  /// first quantum -> completion, per node (vs the paper's assumed t_i).
  std::vector<dist::RunningStats> service_span;

  Cycles busy_time = 0.0;           ///< processor time actually executing
  std::uint64_t quanta_executed = 0;

  /// Fraction of wall-clock the processor executed some node.
  double processor_busy_fraction() const {
    return base.makespan > 0.0 ? busy_time / base.makespan : 0.0;
  }
};

/// Run one trial of the enforced-waits schedule `firing_intervals` (the x_i)
/// under quantum scheduling. Node i gets tickets proportional to 1 (equal
/// shares, the paper's model).
QuantumSimMetrics simulate_quantum_scheduled(
    const sdf::PipelineSpec& pipeline,
    const std::vector<Cycles>& firing_intervals,
    arrivals::ArrivalProcess& arrival_process, const QuantumSimConfig& config);

}  // namespace ripple::sched
