#include "sched/stride_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace ripple::sched {

namespace {
// Large stride numerator: strides stay integral and precise for any sane
// ticket count.
constexpr std::uint64_t kStrideOne = 1ULL << 20;
}  // namespace

StrideScheduler::StrideScheduler(std::vector<std::uint64_t> tickets) {
  RIPPLE_REQUIRE(!tickets.empty(), "scheduler needs at least one task");
  strides_.reserve(tickets.size());
  for (std::uint64_t t : tickets) {
    RIPPLE_REQUIRE(t > 0, "every task needs at least one ticket");
    strides_.push_back(kStrideOne / t);
  }
  passes_.assign(tickets.size(), 0);
  quanta_.assign(tickets.size(), 0);
  runnable_.assign(tickets.size(), false);
}

StrideScheduler StrideScheduler::equal_shares(std::size_t task_count) {
  return StrideScheduler(std::vector<std::uint64_t>(task_count, 1));
}

void StrideScheduler::adjust_pass_on_wake(TaskId task) {
  std::uint64_t min_pass = std::numeric_limits<std::uint64_t>::max();
  bool any = false;
  for (std::size_t i = 0; i < runnable_.size(); ++i) {
    if (runnable_[i] && i != task) {
      min_pass = std::min(min_pass, passes_[i]);
      any = true;
    }
  }
  if (any) passes_[task] = std::max(passes_[task], min_pass);
}

void StrideScheduler::set_runnable(TaskId task, bool runnable) {
  RIPPLE_REQUIRE(task < runnable_.size(), "task id out of range");
  if (runnable_[task] == runnable) return;
  if (runnable) adjust_pass_on_wake(task);
  runnable_[task] = runnable;
  runnable_count_ += runnable ? 1 : std::size_t(-1);
}

bool StrideScheduler::is_runnable(TaskId task) const {
  RIPPLE_REQUIRE(task < runnable_.size(), "task id out of range");
  return runnable_[task];
}

TaskId StrideScheduler::pick_and_charge() {
  RIPPLE_REQUIRE(runnable_count_ > 0, "no runnable task to pick");
  TaskId best = 0;
  std::uint64_t best_pass = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < runnable_.size(); ++i) {
    if (runnable_[i] && passes_[i] < best_pass) {
      best_pass = passes_[i];
      best = i;
    }
  }
  passes_[best] += strides_[best];
  ++quanta_[best];
  return best;
}

std::uint64_t StrideScheduler::pass(TaskId task) const {
  RIPPLE_REQUIRE(task < passes_.size(), "task id out of range");
  return passes_[task];
}

std::uint64_t StrideScheduler::quanta_received(TaskId task) const {
  RIPPLE_REQUIRE(task < quanta_.size(), "task id out of range");
  return quanta_[task];
}

}  // namespace ripple::sched
