#include "sdf/analysis.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ripple::sdf {

std::vector<Cycles> minimal_firing_intervals(const PipelineSpec& pipeline) {
  const std::size_t n = pipeline.size();
  std::vector<Cycles> lower(n);
  lower[n - 1] = pipeline.service_time(n - 1);
  for (std::size_t ii = n - 1; ii-- > 0;) {
    const double g = pipeline.mean_gain(ii);
    lower[ii] = std::max(pipeline.service_time(ii), g * lower[ii + 1]);
  }
  return lower;
}

Cycles minimal_deadline_budget(const PipelineSpec& pipeline,
                               const std::vector<double>& b) {
  RIPPLE_REQUIRE(b.size() == pipeline.size(),
                 "one b multiplier per pipeline node required");
  const std::vector<Cycles> lower = minimal_firing_intervals(pipeline);
  Cycles budget = 0.0;
  for (std::size_t i = 0; i < lower.size(); ++i) budget += b[i] * lower[i];
  return budget;
}

Cycles min_interarrival_enforced(const PipelineSpec& pipeline) {
  const std::vector<Cycles> lower = minimal_firing_intervals(pipeline);
  return lower[0] / static_cast<double>(pipeline.simd_width());
}

Cycles min_interarrival_monolithic(const PipelineSpec& pipeline) {
  return pipeline.mean_service_per_input();
}

std::vector<Cycles> maximal_firing_intervals(const PipelineSpec& pipeline,
                                             Cycles tau0) {
  RIPPLE_REQUIRE(tau0 > 0.0, "inter-arrival time must be positive");
  const std::size_t n = pipeline.size();
  std::vector<Cycles> upper(n);
  upper[0] = static_cast<double>(pipeline.simd_width()) * tau0;
  for (std::size_t i = 1; i < n; ++i) {
    const double g = pipeline.mean_gain(i - 1);
    // A gain of zero means node i sees (on average) no input; its firing
    // interval is unconstrained by the chain.
    upper[i] = g > 0.0 ? upper[i - 1] / g : kUnboundedCycles;
  }
  return upper;
}

double unconstrained_active_fraction(const PipelineSpec& pipeline, Cycles tau0) {
  const std::vector<Cycles> upper = maximal_firing_intervals(pipeline, tau0);
  const std::size_t n = pipeline.size();
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (upper[i] < pipeline.service_time(i)) return 1.0;  // infeasible
    sum += pipeline.service_time(i) / upper[i];
  }
  return sum / static_cast<double>(n);
}

}  // namespace ripple::sdf
