// Analytic pipeline properties shared by both scheduling strategies.
#pragma once

#include <vector>

#include "sdf/pipeline.hpp"
#include "util/types.hpp"

namespace ripple::sdf {

/// The per-node firing-interval lower bounds L_i: the smallest values of
/// x_i = t_i + w_i simultaneously satisfying x_i >= t_i and the chain
/// constraints x_{i-1} >= g_{i-1} * x_i. Computed by backward recursion:
///   L_{N-1} = t_{N-1};   L_i = max(t_i, g_i * L_{i+1}).
/// Any feasible enforced-waits schedule has x_i >= L_i componentwise, and
/// x = L is itself chain-feasible, so L is the exact minimizer of any
/// monotone functional of x over the chain + box constraints.
std::vector<Cycles> minimal_firing_intervals(const PipelineSpec& pipeline);

/// Smallest achievable deadline budget sum_i b_i * x_i over feasible x
/// (ignoring the arrival-rate constraint, which is an upper bound on x_0 and
/// so never conflicts with minimizing x).
Cycles minimal_deadline_budget(const PipelineSpec& pipeline,
                               const std::vector<double>& b);

/// Largest arrival rate rho0 the pipeline can sustain under enforced waits:
/// node 0 consumes at most v items per L_0 cycles, so rho_max = v / L_0.
/// Returns the corresponding *minimum* inter-arrival time tau0_min = L_0 / v.
Cycles min_interarrival_enforced(const PipelineSpec& pipeline);

/// Minimum inter-arrival time the monolithic strategy can sustain:
/// stability requires Tbar(M) <= M * tau0, and Tbar(M)/M decreases toward
/// mean_service_per_input() as M grows, so tau0_min = sum_i G_i t_i / v.
Cycles min_interarrival_monolithic(const PipelineSpec& pipeline);

/// The idealized lower bound on active fraction for enforced waits at
/// inter-arrival tau0 and unlimited deadline: every node runs at its
/// chain-maximal firing interval U_i (U_0 = v*tau0, U_i = U_{i-1}/g_{i-1}).
/// Returns the active fraction (1/N) sum t_i / U_i, or 1.0 if infeasible.
double unconstrained_active_fraction(const PipelineSpec& pipeline, Cycles tau0);

/// Chain-maximal firing intervals U_i for a given tau0 (see above).
std::vector<Cycles> maximal_firing_intervals(const PipelineSpec& pipeline,
                                             Cycles tau0);

}  // namespace ripple::sdf
