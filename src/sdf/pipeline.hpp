// PipelineSpec: a linear chain of SIMD-serviced nodes (paper Section 2.1-2.2).
// The DAG generalization (tee/merge/synchronizer nodes, per-edge gains) lives
// in graph/graph_spec.hpp; a linear GraphSpec lowers losslessly to this type.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sdf/node.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace ripple::sdf {

/// Immutable-after-build description of an application pipeline.
///
/// Use PipelineBuilder to construct; building validates the invariants
/// the schedulers rely on (positive service times, gains on every
/// non-terminal node, positive SIMD width).
class PipelineSpec {
 public:
  const std::string& name() const noexcept { return name_; }

  /// Number of nodes N.
  std::size_t size() const noexcept { return nodes_.size(); }

  /// SIMD vector width v: max items one firing consumes.
  std::uint32_t simd_width() const noexcept { return simd_width_; }

  const NodeSpec& node(NodeIndex i) const;
  const std::vector<NodeSpec>& nodes() const noexcept { return nodes_; }

  /// Service time t_i.
  Cycles service_time(NodeIndex i) const;

  /// Mean per-input gain g_i of node i.
  double mean_gain(NodeIndex i) const;

  /// Total gain G_i INTO node i: prod_{j<i} g_j (G_0 = 1).
  /// This is the paper's expected items arriving at node i per pipeline input.
  double total_gain_into(NodeIndex i) const;

  /// All total gains, size N.
  std::vector<double> total_gains() const;

  /// Sum over nodes of G_i * t_i / v: the average active time each pipeline
  /// input ultimately costs (the large-M limit of Tbar(M)/M).
  Cycles mean_service_per_input() const;

 private:
  friend class PipelineBuilder;
  PipelineSpec() = default;

  std::string name_;
  std::uint32_t simd_width_ = 0;
  std::vector<NodeSpec> nodes_;
  std::vector<double> total_gains_;  // precomputed G_i
};

/// Fluent builder with validation at build().
class PipelineBuilder {
 public:
  explicit PipelineBuilder(std::string name);

  PipelineBuilder& simd_width(std::uint32_t v);
  PipelineBuilder& add_node(std::string name, Cycles service_time,
                            dist::GainPtr gain);

  /// Validates and produces the spec. Failure codes:
  ///   "empty"        — no nodes
  ///   "bad_width"    — simd width not positive
  ///   "bad_service"  — non-positive service time
  ///   "missing_gain" — a non-terminal node lacks a gain model
  util::Result<PipelineSpec> build() const;

 private:
  PipelineSpec spec_;
};

}  // namespace ripple::sdf
