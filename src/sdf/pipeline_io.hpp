// Pipeline specification serialization: JSON round trip.
//
// Downstream tooling (the ripple_cli tool, plotting scripts) describes
// pipelines in a small JSON schema:
//
//   {
//     "name": "blast(table1)",
//     "simd_width": 128,
//     "nodes": [
//       {"name": "seed_filter", "service_time": 287,
//        "gain": {"type": "bernoulli", "p": 0.379}},
//       {"name": "seed_expand", "service_time": 955,
//        "gain": {"type": "censored_poisson", "lambda": 1.92, "cap": 16}},
//       {"name": "ungapped_extend", "service_time": 402,
//        "gain": {"type": "bernoulli", "p": 0.0332}},
//       {"name": "gapped_extend", "service_time": 2753,
//        "gain": {"type": "deterministic", "k": 1}}
//     ]
//   }
//
// Gain types: deterministic{k}, bernoulli{p}, censored_poisson{lambda, cap},
// truncated_geometric{p, cap}, empirical{weights: [...]}. The terminal
// node's gain may be null.
#pragma once

#include <iosfwd>
#include <string>

#include "sdf/pipeline.hpp"
#include "util/jsonv.hpp"
#include "util/result.hpp"

namespace ripple::util {
class JsonWriter;
}

namespace ripple::sdf {

/// Parse one gain-model object ({"type": "bernoulli", ...}; JSON null maps
/// to an empty GainPtr for terminal nodes). Shared by the pipeline schema
/// and the graph schema (graph/graph_io.hpp).
util::Result<dist::GainPtr> gain_from_json(const util::JsonValue& value);

/// Serialize one gain model into the same vocabulary (nullptr emits null).
void gain_to_json(util::JsonWriter& json, const dist::GainDistribution* gain);

/// Parse a pipeline from a JSON document (see schema above).
/// Error codes: "parse_error" (malformed JSON), "bad_schema" (missing or
/// mistyped fields, unknown gain type), plus the PipelineBuilder's
/// validation codes.
util::Result<PipelineSpec> pipeline_from_json(const std::string& text);
util::Result<PipelineSpec> pipeline_from_json_value(const util::JsonValue& value);

/// Serialize a pipeline into the same schema (single line + newline).
void write_pipeline_spec_json(std::ostream& out, const PipelineSpec& pipeline);
std::string pipeline_to_json(const PipelineSpec& pipeline);

}  // namespace ripple::sdf
