// NodeSpec: one stage of a streaming dataflow pipeline (paper Section 2.1).
#pragma once

#include <string>

#include "dist/gain.hpp"
#include "util/types.hpp"

namespace ripple::sdf {

/// Static description of pipeline node n_i.
///
/// `service_time` is the paper's t_i: the fixed time to process one SIMD
/// vector of up to v inputs, measured while the node uses only its assigned
/// 1/N share of the processor. `gain` is the stochastic per-input output
/// model whose mean is the paper's g_i. The final (sink) node's gain is
/// irrelevant to scheduling (Table 1 lists it as N/A); by convention give it
/// DeterministicGain(1) so simulation can still count emitted results.
struct NodeSpec {
  std::string name;
  Cycles service_time = 0.0;
  dist::GainPtr gain;

  /// Mean outputs per input (g_i).
  double mean_gain() const { return gain ? gain->mean() : 0.0; }
};

}  // namespace ripple::sdf
