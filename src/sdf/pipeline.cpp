#include "sdf/pipeline.hpp"

#include "util/assert.hpp"

namespace ripple::sdf {

const NodeSpec& PipelineSpec::node(NodeIndex i) const {
  RIPPLE_REQUIRE(i < nodes_.size(), "node index out of range");
  return nodes_[i];
}

Cycles PipelineSpec::service_time(NodeIndex i) const {
  return node(i).service_time;
}

double PipelineSpec::mean_gain(NodeIndex i) const { return node(i).mean_gain(); }

double PipelineSpec::total_gain_into(NodeIndex i) const {
  RIPPLE_REQUIRE(i < total_gains_.size(), "node index out of range");
  return total_gains_[i];
}

std::vector<double> PipelineSpec::total_gains() const { return total_gains_; }

Cycles PipelineSpec::mean_service_per_input() const {
  Cycles total = 0.0;
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    total += total_gains_[i] * nodes_[i].service_time /
             static_cast<double>(simd_width_);
  }
  return total;
}

PipelineBuilder::PipelineBuilder(std::string name) {
  spec_.name_ = std::move(name);
  spec_.simd_width_ = 128;  // the paper's default v
}

PipelineBuilder& PipelineBuilder::simd_width(std::uint32_t v) {
  spec_.simd_width_ = v;
  return *this;
}

PipelineBuilder& PipelineBuilder::add_node(std::string name, Cycles service_time,
                                           dist::GainPtr gain) {
  NodeSpec node;
  node.name = std::move(name);
  node.service_time = service_time;
  node.gain = std::move(gain);
  spec_.nodes_.push_back(std::move(node));
  return *this;
}

util::Result<PipelineSpec> PipelineBuilder::build() const {
  using R = util::Result<PipelineSpec>;
  if (spec_.nodes_.empty()) {
    return R::failure("empty", "pipeline has no nodes");
  }
  if (spec_.simd_width_ == 0) {
    return R::failure("bad_width", "SIMD width must be positive");
  }
  for (std::size_t i = 0; i < spec_.nodes_.size(); ++i) {
    const NodeSpec& node = spec_.nodes_[i];
    if (!(node.service_time > 0.0)) {
      return R::failure("bad_service",
                        "node '" + node.name + "' has non-positive service time");
    }
    const bool terminal = (i + 1 == spec_.nodes_.size());
    if (!terminal && !node.gain) {
      return R::failure("missing_gain",
                        "non-terminal node '" + node.name + "' has no gain model");
    }
  }
  PipelineSpec built = spec_;
  built.total_gains_.resize(built.nodes_.size());
  double g = 1.0;
  for (std::size_t i = 0; i < built.nodes_.size(); ++i) {
    built.total_gains_[i] = g;
    if (built.nodes_[i].gain) g *= built.nodes_[i].gain->mean();
  }
  return built;
}

}  // namespace ripple::sdf
