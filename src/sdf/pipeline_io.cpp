#include "sdf/pipeline_io.hpp"

#include <cmath>
#include <sstream>

#include "util/json.hpp"

namespace ripple::sdf {

util::Result<dist::GainPtr> gain_from_json(const util::JsonValue& value) {
  using R = util::Result<dist::GainPtr>;
  if (value.is_null()) return dist::GainPtr{};  // terminal node
  if (!value.is_object()) {
    return R::failure("bad_schema", "gain must be an object or null");
  }
  const std::string type = value.string_or("type", "");
  if (type == "deterministic") {
    const double k = value.number_or("k", -1.0);
    if (k < 0.0 || k != std::floor(k)) {
      return R::failure("bad_schema", "deterministic gain needs integer k >= 0");
    }
    return dist::make_deterministic(static_cast<dist::OutputCount>(k));
  }
  if (type == "bernoulli") {
    const double p = value.number_or("p", -1.0);
    if (p < 0.0 || p > 1.0) {
      return R::failure("bad_schema", "bernoulli gain needs p in [0,1]");
    }
    return dist::make_bernoulli(p);
  }
  if (type == "censored_poisson") {
    const double lambda = value.number_or("lambda", -1.0);
    const double cap = value.number_or("cap", -1.0);
    if (lambda < 0.0 || cap < 1.0 || cap != std::floor(cap)) {
      return R::failure("bad_schema",
                        "censored_poisson needs lambda >= 0 and integer cap >= 1");
    }
    return dist::make_censored_poisson(lambda,
                                       static_cast<dist::OutputCount>(cap));
  }
  if (type == "truncated_geometric") {
    const double p = value.number_or("p", -1.0);
    const double cap = value.number_or("cap", -1.0);
    if (p < 0.0 || p >= 1.0 || cap < 1.0 || cap != std::floor(cap)) {
      return R::failure("bad_schema",
                        "truncated_geometric needs p in [0,1) and integer cap >= 1");
    }
    return dist::GainPtr(std::make_shared<const dist::TruncatedGeometricGain>(
        p, static_cast<dist::OutputCount>(cap)));
  }
  if (type == "empirical") {
    const util::JsonValue* weights_value = value.find("weights");
    if (weights_value == nullptr || !weights_value->is_array()) {
      return R::failure("bad_schema", "empirical gain needs a weights array");
    }
    std::vector<double> weights;
    for (const util::JsonValue& w : weights_value->as_array()) {
      if (!w.is_number()) {
        return R::failure("bad_schema", "empirical weights must be numbers");
      }
      weights.push_back(w.as_number());
    }
    if (weights.empty()) {
      return R::failure("bad_schema", "empirical weights must be non-empty");
    }
    return dist::GainPtr(
        std::make_shared<const dist::EmpiricalGain>(std::move(weights)));
  }
  return R::failure("bad_schema", "unknown gain type '" + type + "'");
}

void gain_to_json(util::JsonWriter& json, const dist::GainDistribution* gain) {
  if (gain == nullptr) {
    json.null();
    return;
  }
  json.begin_object();
  if (const auto* deterministic =
          dynamic_cast<const dist::DeterministicGain*>(gain)) {
    json.member("type", "deterministic");
    json.member("k", static_cast<std::uint64_t>(deterministic->count()));
  } else if (const auto* bernoulli =
                 dynamic_cast<const dist::BernoulliGain*>(gain)) {
    json.member("type", "bernoulli");
    json.member("p", bernoulli->probability());
  } else if (const auto* poisson =
                 dynamic_cast<const dist::CensoredPoissonGain*>(gain)) {
    json.member("type", "censored_poisson");
    json.member("lambda", poisson->lambda());
    json.member("cap", static_cast<std::uint64_t>(poisson->max_outputs()));
  } else if (const auto* geometric =
                 dynamic_cast<const dist::TruncatedGeometricGain*>(gain)) {
    json.member("type", "truncated_geometric");
    json.member("p", geometric->ratio());
    json.member("cap", static_cast<std::uint64_t>(geometric->max_outputs()));
  } else if (const auto* empirical =
                 dynamic_cast<const dist::EmpiricalGain*>(gain)) {
    json.member("type", "empirical");
    json.key("weights").begin_array();
    for (double w : empirical->weights()) json.value(w);
    json.end_array();
  } else {
    // Unknown family: preserve at least the moments as an empirical stand-in
    // would; emit the descriptive name for diagnostics.
    json.member("type", "unknown");
    json.member("name", gain->name());
    json.member("mean", gain->mean());
  }
  json.end_object();
}

util::Result<PipelineSpec> pipeline_from_json_value(const util::JsonValue& value) {
  using R = util::Result<PipelineSpec>;
  if (!value.is_object()) {
    return R::failure("bad_schema", "pipeline document must be an object");
  }
  const util::JsonValue* nodes = value.find("nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    return R::failure("bad_schema", "pipeline needs a nodes array");
  }
  PipelineBuilder builder(value.string_or("name", "pipeline"));
  const double width = value.number_or("simd_width", 128.0);
  if (width < 1.0 || width != std::floor(width)) {
    return R::failure("bad_schema", "simd_width must be a positive integer");
  }
  builder.simd_width(static_cast<std::uint32_t>(width));

  std::size_t index = 0;
  for (const util::JsonValue& node : nodes->as_array()) {
    if (!node.is_object()) {
      return R::failure("bad_schema", "node entries must be objects");
    }
    const double service = node.number_or("service_time", -1.0);
    if (!(service > 0.0)) {
      return R::failure("bad_schema", "node " + std::to_string(index) +
                                          " needs service_time > 0");
    }
    const util::JsonValue* gain_value = node.find("gain");
    dist::GainPtr gain;
    if (gain_value != nullptr) {
      auto parsed = gain_from_json(*gain_value);
      if (!parsed.ok()) {
        return R::failure(parsed.error().code,
                          "node " + std::to_string(index) + ": " +
                              parsed.error().message);
      }
      gain = parsed.value();
    }
    builder.add_node(node.string_or("name", "node" + std::to_string(index)),
                     service, std::move(gain));
    ++index;
  }
  return builder.build();
}

util::Result<PipelineSpec> pipeline_from_json(const std::string& text) {
  auto document = util::parse_json(text);
  if (!document.ok()) {
    return util::Result<PipelineSpec>::failure(document.error().code,
                                               document.error().message);
  }
  return pipeline_from_json_value(document.value());
}

void write_pipeline_spec_json(std::ostream& out, const PipelineSpec& pipeline) {
  util::JsonWriter json(out);
  json.begin_object();
  json.member("name", pipeline.name());
  json.member("simd_width", static_cast<std::uint64_t>(pipeline.simd_width()));
  json.key("nodes").begin_array();
  for (NodeIndex i = 0; i < pipeline.size(); ++i) {
    json.begin_object();
    json.member("name", pipeline.node(i).name);
    json.member("service_time", pipeline.service_time(i));
    json.key("gain");
    gain_to_json(json, pipeline.node(i).gain.get());
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

std::string pipeline_to_json(const PipelineSpec& pipeline) {
  std::ostringstream out;
  write_pipeline_spec_json(out, pipeline);
  return out.str();
}

}  // namespace ripple::sdf
