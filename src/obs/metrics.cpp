#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/json.hpp"

namespace ripple::obs {

void Gauge::add(double delta) noexcept {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

namespace {

/// Relaxed CAS update toward an extreme (Compare = std::less for minima).
template <typename Compare>
void update_extreme(std::atomic<double>& slot, double value, Compare better) {
  double current = slot.load(std::memory_order_relaxed);
  while (better(value, current) &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t LatencyHistogram::bucket_index(double value) noexcept {
  if (!(value >= 1.0)) return 0;  // also catches negatives and NaN
  const int octave =
      std::min(static_cast<int>(kOctaves) - 1, std::ilogb(value));
  // value / 2^octave is in [1, 2) (except at the clamped top octave).
  const double scaled = std::ldexp(value, -octave);
  const auto sub = std::min(
      kSubBuckets - 1,
      static_cast<std::size_t>((scaled - 1.0) * static_cast<double>(kSubBuckets)));
  return 1 + static_cast<std::size_t>(octave) * kSubBuckets + sub;
}

double LatencyHistogram::bucket_lower(std::size_t i) noexcept {
  if (i == 0) return 0.0;
  const std::size_t octave = (i - 1) / kSubBuckets;
  const std::size_t sub = (i - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets,
                    static_cast<int>(octave));
}

double LatencyHistogram::bucket_upper(std::size_t i) noexcept {
  // The last bucket's nominal upper bound is 2^kOctaves; overflow samples
  // clamp into it, and quantile() clamps reported values to the exact max.
  return i + 1 < kBucketCount ? bucket_lower(i + 1)
                              : std::ldexp(1.0, static_cast<int>(kOctaves));
}

void LatencyHistogram::record(double value) noexcept {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t previous =
      count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
  if (previous == 0) {
    // First sample initializes both extremes; racing first samples fall
    // through to the CAS updates below, so no sample is ever lost.
    double expected = 0.0;
    min_.compare_exchange_strong(expected, value, std::memory_order_relaxed);
    expected = 0.0;
    max_.compare_exchange_strong(expected, value, std::memory_order_relaxed);
  }
  update_extreme(min_, value, std::less<double>());
  update_extreme(max_, value, std::greater<double>());
}

double LatencyHistogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double LatencyHistogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double LatencyHistogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double LatencyHistogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += bucket_count(i);
    if (cumulative >= target) return std::min(bucket_upper(i), max());
  }
  return max();
}

void LatencyHistogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Entry& Registry::entry_for(std::string_view name, Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<LatencyHistogram>();
        break;
    }
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return it->second;
}

Counter* Registry::counter(std::string_view name) {
  return entry_for(name, Kind::kCounter).counter.get();
}

Gauge* Registry::gauge(std::string_view name) {
  return entry_for(name, Kind::kGauge).gauge.get();
}

LatencyHistogram* Registry::histogram(std::string_view name) {
  return entry_for(name, Kind::kHistogram).histogram.get();
}

void Registry::write_json(util::JsonWriter& writer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  writer.begin_object();
  writer.member("schema", "ripple.metrics.v1");

  writer.key("counters").begin_array();
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::kCounter) continue;
    writer.begin_object();
    writer.member("name", name);
    writer.member("value", entry.counter->value());
    writer.end_object();
  }
  writer.end_array();

  writer.key("gauges").begin_array();
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::kGauge) continue;
    writer.begin_object();
    writer.member("name", name);
    writer.member("value", entry.gauge->value());
    writer.end_object();
  }
  writer.end_array();

  writer.key("histograms").begin_array();
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::kHistogram) continue;
    const LatencyHistogram& h = *entry.histogram;
    writer.begin_object();
    writer.member("name", name);
    writer.member("count", h.count());
    writer.member("sum", h.sum());
    writer.member("mean", h.mean());
    writer.member("min", h.min());
    writer.member("max", h.max());
    writer.member("p50", h.quantile(0.50));
    writer.member("p95", h.quantile(0.95));
    writer.member("p99", h.quantile(0.99));
    writer.key("buckets").begin_array();
    for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
      const std::uint64_t bucket = h.bucket_count(i);
      if (bucket == 0) continue;  // sparse dump: only occupied buckets
      writer.begin_object();
      writer.member("lo", LatencyHistogram::bucket_lower(i));
      writer.member("hi", LatencyHistogram::bucket_upper(i));
      writer.member("count", bucket);
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
  }
  writer.end_array();

  writer.end_object();
}

void Registry::write_json(std::ostream& out) const {
  util::JsonWriter writer(out);
  write_json(writer);
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter: entry.counter->reset(); break;
      case Kind::kGauge: entry.gauge->reset(); break;
      case Kind::kHistogram: entry.histogram->reset(); break;
    }
  }
}

}  // namespace ripple::obs
