// Process-wide metrics registry: counters, gauges, and log-scale latency
// histograms with a self-describing JSON dump.
//
// Instruments register a metric once by name (mutex-guarded, cold path) and
// keep the returned pointer; all hot-path updates are lock-free atomics, so
// metrics can be fed concurrently from sweep workers and trial threads. The
// registry itself is always compiled — only the call sites in the simulator,
// sweep, and runtime layers are gated behind the RIPPLE_OBS build flag (see
// obs/obs.hpp and docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace ripple::util {
class JsonWriter;
}

namespace ripple::obs {

/// Monotonic event count (firings, solves, cache hits, ...).
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level that can move both ways (active workers, queue depth).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept;  // CAS loop; atomic<double> has no fetch_add
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket log-scale histogram for non-negative durations/latencies.
///
/// Bucket layout (exact, relied on by tests and the JSON schema):
///   bucket 0                 = [0, 1)
///   bucket 1 + 8*e + s       = [2^e * (1 + s/8), 2^e * (1 + (s+1)/8))
/// for octave e in [0, 40) and sub-bucket s in [0, 8) — 8 sub-buckets per
/// power of two bounds the relative bucket width at 12.5%, and 40 octaves
/// cover [1, 2^40) ~ 10^12, enough for cycle counts and microseconds alike.
/// Values >= 2^40 clamp into the last bucket; negative/NaN values clamp into
/// bucket 0.
///
/// All updates are relaxed atomics; quantiles are computed on read from the
/// bucket counts (upper-bound convention, clamped to the exact observed max).
class LatencyHistogram {
 public:
  static constexpr std::size_t kSubBuckets = 8;
  static constexpr std::size_t kOctaves = 40;
  static constexpr std::size_t kBucketCount = 1 + kSubBuckets * kOctaves;

  void record(double value) noexcept;

  /// Index of the bucket `value` lands in (the layout documented above).
  static std::size_t bucket_index(double value) noexcept;
  /// Inclusive lower / exclusive upper bound of bucket `i`.
  static double bucket_lower(std::size_t i) noexcept;
  static double bucket_upper(std::size_t i) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept;
  /// Exact extremes of the recorded samples (not bucket bounds).
  double min() const noexcept;
  double max() const noexcept;

  /// Value v such that at least ceil(q * count) samples are <= v: the upper
  /// bound of the first bucket whose cumulative count reaches that rank,
  /// clamped to the exact observed max. Deterministic given the same samples.
  double quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Named metric store. `global()` is the process-wide instance every
/// instrumentation point and exporter uses; independent instances exist only
/// in tests.
class Registry {
 public:
  static Registry& global();

  /// Get-or-create by name. Pointers stay valid for the registry's lifetime;
  /// requesting an existing name with a different kind throws
  /// std::logic_error. Names are dotted paths ("sweep.cells_solved").
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  LatencyHistogram* histogram(std::string_view name);

  /// Self-describing dump (schema "ripple.metrics.v1"): every registered
  /// metric with its kind, value(s), and for histograms the non-empty
  /// buckets with exact bounds plus p50/p95/p99. Metrics are emitted in
  /// name order, so the dump is deterministic.
  void write_json(util::JsonWriter& writer) const;
  void write_json(std::ostream& out) const;

  /// Zero every metric (counts and histogram buckets); registrations and
  /// handed-out pointers stay valid. Used between golden-test runs.
  void reset_values();

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry& entry_for(std::string_view name, Kind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace ripple::obs
