#include "obs/trace_export.hpp"

#include <fstream>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace ripple::obs {

namespace {

constexpr std::int64_t kHostPid = 1;
constexpr std::int64_t kSimPidBase = 100;

std::int64_t pid_of(const TraceEvent& event) {
  return event.domain == Domain::kHost
             ? kHostPid
             : kSimPidBase + static_cast<std::int64_t>(event.ring);
}

const char* phase_of(TraceKind kind) {
  switch (kind) {
    case TraceKind::kBegin: return "B";
    case TraceKind::kEnd: return "E";
    case TraceKind::kCounter: return "C";
    case TraceKind::kInstant: return "i";
  }
  return "i";
}

void write_metadata(util::JsonWriter& writer, std::int64_t pid,
                    std::int64_t tid, const char* what,
                    const std::string& name) {
  writer.begin_object();
  writer.member("name", what);
  writer.member("ph", "M");
  writer.member("pid", pid);
  if (tid >= 0) writer.member("tid", tid);
  writer.key("args").begin_object();
  writer.member("name", name);
  writer.end_object();
  writer.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const TraceSession& session) {
  util::JsonWriter writer(out);
  writer.begin_object();
  writer.member("schema", "ripple.trace.v1");
  writer.member("displayTimeUnit", "ms");

  writer.key("otherData").begin_object();
  writer.member("dropped_events", session.dropped());
  writer.member("sim_clock", "virtual cycles rendered as us");
  writer.member("host_clock", "wall-clock us since session epoch");
  writer.end_object();

  writer.key("traceEvents").begin_array();

  // Metadata first: process names for every pid present, then thread names
  // from the session's (domain, track) labels. Both are emitted from sorted
  // containers so the document is deterministic.
  std::set<std::int64_t> pids;
  std::set<std::pair<std::int64_t, std::int64_t>> lanes;
  for (const TraceEvent& event : events) {
    const std::int64_t pid = pid_of(event);
    pids.insert(pid);
    lanes.insert({pid, static_cast<std::int64_t>(event.track)});
  }
  for (const std::int64_t pid : pids) {
    const std::string name =
        pid == kHostPid
            ? std::string("host (wall-clock us)")
            : "sim ring " + std::to_string(pid - kSimPidBase) +
                  " (virtual cycles)";
    write_metadata(writer, pid, -1, "process_name", name);
  }
  const auto track_names = session.track_names();
  for (const auto& [pid, tid] : lanes) {
    const auto domain = pid == kHostPid ? Domain::kHost : Domain::kSim;
    const auto it = track_names.find({static_cast<std::uint8_t>(domain),
                                      static_cast<std::uint32_t>(tid)});
    const std::string name = it != track_names.end()
                                 ? it->second
                                 : "track " + std::to_string(tid);
    write_metadata(writer, pid, tid, "thread_name", name);
  }

  for (const TraceEvent& event : events) {
    writer.begin_object();
    writer.member("name", event.name == nullptr ? "?" : event.name);
    writer.member("ph", phase_of(event.kind));
    writer.member("pid", pid_of(event));
    writer.member("tid", static_cast<std::int64_t>(event.track));
    writer.member("ts", event.ts);
    if (event.kind == TraceKind::kInstant) {
      writer.member("s", "t");  // thread-scoped instant
    }
    if (event.kind == TraceKind::kInstant ||
        event.kind == TraceKind::kCounter) {
      writer.key("args").begin_object();
      writer.member("value", event.value);
      writer.end_object();
    }
    writer.end_object();
  }

  writer.end_array();
  writer.end_object();
}

util::Result<bool> export_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return util::Result<bool>::failure("io_error", "cannot open " + path);
  }
  auto& session = TraceSession::global();
  write_chrome_trace(out, session.drain(), session);
  out << "\n";
  if (!out.good()) {
    return util::Result<bool>::failure("io_error", "write failed: " + path);
  }
  return true;
}

util::Result<bool> export_metrics_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return util::Result<bool>::failure("io_error", "cannot open " + path);
  }
  Registry::global().write_json(out);
  out << "\n";
  if (!out.good()) {
    return util::Result<bool>::failure("io_error", "write failed: " + path);
  }
  return true;
}

util::Result<bool> validate_span_nesting(
    const std::vector<TraceEvent>& events) {
  using R = util::Result<bool>;
  // Lane key: (domain, ring, track). Each lane keeps its open-span stack.
  std::map<std::tuple<std::uint8_t, std::uint16_t, std::uint32_t>,
           std::vector<const char*>>
      stacks;
  for (const TraceEvent& event : events) {
    if (event.kind != TraceKind::kBegin && event.kind != TraceKind::kEnd) {
      continue;
    }
    auto& stack = stacks[{static_cast<std::uint8_t>(event.domain), event.ring,
                          event.track}];
    if (event.kind == TraceKind::kBegin) {
      stack.push_back(event.name);
    } else {
      if (stack.empty()) {
        return R::failure("bad_nesting",
                          std::string("end without begin: ") +
                              (event.name == nullptr ? "?" : event.name));
      }
      const char* open = stack.back();
      if (std::string_view(open == nullptr ? "" : open) !=
          std::string_view(event.name == nullptr ? "" : event.name)) {
        return R::failure("bad_nesting",
                          std::string("mismatched end: expected ") +
                              (open == nullptr ? "?" : open) + ", got " +
                              (event.name == nullptr ? "?" : event.name));
      }
      stack.pop_back();
    }
  }
  for (const auto& [lane, stack] : stacks) {
    if (!stack.empty()) {
      return R::failure("bad_nesting",
                        std::string("unclosed span: ") +
                            (stack.back() == nullptr ? "?" : stack.back()));
    }
  }
  return true;
}

}  // namespace ripple::obs
