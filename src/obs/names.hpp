// Well-known observability names: the catalog of every span, instant,
// counter-track, and registry-metric name the instrumented subsystems emit.
//
// Trace-event names must be string literals (obs/trace.hpp stores the
// pointer), so each subsystem already uses fixed names; this header is the
// single list of them. tools/trace_inspect validates traces against the
// catalog (--strict turns an unknown name into an error), which catches
// typos in new instrumentation and stale validators alike: adding an
// instrumentation point means adding its name here, or strict validation of
// its traces fails in CI.
//
// Header-only on purpose — trace_inspect links only ripple_util.
#pragma once

#include <string_view>

namespace ripple::obs::names {

// Span names ("B"/"E" pairs).
inline constexpr std::string_view kSpanNames[] = {
    "fire",           // enforced/greedy sim: one consuming firing (sim domain)
    "block",          // monolithic sim: one block run (sim domain)
    "service",        // runtime executor: one consuming firing (sim domain)
    "trial",          // trial_runner: one simulated trial (host domain)
    "cell_solve",     // sweep: one (tau0, D) cell solve (host domain)
    "tile",           // sweep: one traversal tile (host domain)
    "service.batch",  // service worker: one ingest batch execution (host)
    "control.replan", // controller: one enforced-waits re-solve (host)
    "journal.commit", // arrival journal: one group-commit write (host)
    "journal.snapshot", // arrival journal: one controller snapshot (host)
    "runtime.wave",   // parallel executor: one shadow-planner dispatch batch
                      // (host; emitted only with trace_workers)
    "runtime.task",   // worker pool: one stage-firing task execution (host;
                      // on the per-worker "runtime.worker<k>" track)
    "graph.fire",     // graph sim/executor: one SISO-node firing (sim domain)
    "graph.tee",      // graph sim/executor: one tee-node firing (sim domain)
    "graph.merge",    // graph sim/executor: one elementwise-merge firing
    "graph.sync",     // graph sim/executor: one synchronizer realign firing
};

// Instant names ("i").
inline constexpr std::string_view kInstantNames[] = {
    "empty_firing",   // sim/runtime: a vacuous firing (value = service time)
    "deadline_miss",  // sim/runtime: a late root input (value = slack, < 0)
    "control.shed",   // service worker: this tick is shedding (admission cut)
    "net.conn.open",  // ingest server: accepted a client connection
    "net.conn.close", // ingest server: closed a client connection
    "net.protocol_error",  // ingest server: malformed frame, connection dropped
};

// Counter-track names ("C").
inline constexpr std::string_view kCounterNames[] = {
    "queue_depth",        // sim/runtime: node input-queue depth at firing
    "block_items",        // monolithic sim: items per block
    "control.tau0_est",   // controller: EWMA inter-arrival estimate
    "runtime.steal",      // parallel executor: cumulative cross-worker deque
                          // steals (host; emitted only with trace_workers)
    "graph.queue_depth",  // graph sim/executor: per-in-edge queue depth at
                          // firing (edge track id = node count + edge index;
                          // the source's arrival queue reports on its node
                          // track)
};

// Counter *families*: prefixes under which every name is considered known.
// The sharded service emits one counter track per shard worker; the events
// carry a fixed per-event name but the family groups them in the catalog:
//   service.shard.queue_depth  — items popped from the shard ring this drain
//   service.shard.admitted     — sessions admitted after the global apportion
inline constexpr std::string_view kCounterFamilies[] = {
    "service.shard.",
};

inline bool is_known_span(std::string_view name) {
  for (std::string_view known : kSpanNames) {
    if (name == known) return true;
  }
  return false;
}
inline bool is_known_instant(std::string_view name) {
  for (std::string_view known : kInstantNames) {
    if (name == known) return true;
  }
  return false;
}
inline bool is_known_counter(std::string_view name) {
  for (std::string_view known : kCounterNames) {
    if (name == known) return true;
  }
  for (std::string_view family : kCounterFamilies) {
    if (name.size() > family.size() &&
        name.substr(0, family.size()) == family) {
      return true;
    }
  }
  return false;
}

}  // namespace ripple::obs::names
