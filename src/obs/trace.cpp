#include "obs/trace.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace ripple::obs {

namespace {

std::atomic<bool> g_enabled{false};

std::size_t round_up_pow2(std::size_t value) {
  std::size_t result = 16;
  while (result < value) result <<= 1;
  return result;
}

/// Thread-local ring cache, invalidated when the session generation moves
/// (i.e. after TraceSession::clear()).
struct ThreadSlot {
  TraceRing* ring = nullptr;
  std::uint64_t generation = 0;
};
thread_local ThreadSlot t_slot;

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool instrumentation_compiled() noexcept {
#if RIPPLE_OBS
  return true;
#else
  return false;
#endif
}

TraceRing::TraceRing(std::size_t capacity, std::uint16_t ordinal)
    : slots_(round_up_pow2(capacity)),
      mask_(slots_.size() - 1),
      ordinal_(ordinal) {}

std::uint64_t TraceRing::dropped() const noexcept {
  const std::uint64_t total = recorded();
  return total > slots_.size() ? total - slots_.size() : 0;
}

void TraceRing::drain_into(std::vector<TraceEvent>& out) const {
  const std::uint64_t total = recorded();
  const std::uint64_t retained =
      std::min<std::uint64_t>(total, slots_.size());
  for (std::uint64_t i = total - retained; i < total; ++i) {
    out.push_back(slots_[i & mask_]);
  }
}

TraceSession& TraceSession::global() {
  static TraceSession instance;
  return instance;
}

TraceSession::TraceSession() : epoch_(std::chrono::steady_clock::now()) {}

TraceRing* TraceSession::ring_for_current_thread() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (t_slot.ring != nullptr && t_slot.generation == generation_) {
    return t_slot.ring;
  }
  auto ring = std::make_unique<TraceRing>(
      ring_capacity_, static_cast<std::uint16_t>(rings_.size()));
  t_slot.ring = ring.get();
  t_slot.generation = generation_;
  rings_.push_back(std::move(ring));
  return t_slot.ring;
}

void TraceSession::set_ring_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_capacity_ = round_up_pow2(capacity);
}

std::vector<TraceEvent> TraceSession::drain() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> events;
  for (const auto& ring : rings_) ring->drain_into(events);
  return events;
}

std::uint64_t TraceSession::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

void TraceSession::set_track_name(Domain domain, std::uint32_t track,
                                  std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  track_names_[{static_cast<std::uint8_t>(domain), track}] = std::move(name);
}

std::map<std::pair<std::uint8_t, std::uint32_t>, std::string>
TraceSession::track_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return track_names_;
}

double TraceSession::host_now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceSession::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.clear();
  track_names_.clear();
  ++generation_;  // forces every thread to re-register on next use
}

TraceWriter TraceWriter::for_current_thread() {
  TraceWriter writer;
  if (enabled()) {
    writer.ring_ = TraceSession::global().ring_for_current_thread();
  }
  return writer;
}

}  // namespace ripple::obs
