// Per-thread lock-free trace-event rings, drained post-hoc into a timeline.
//
// Producers (the simulators, the sweep workers, the runtime executor) record
// fixed-size begin/end/instant/counter events into a thread-local ring with
// two relaxed atomic ops and no allocation; when the ring is full the oldest
// events are overwritten (the drop count is reported, never silent). Rings
// are registered with the global TraceSession, which drains them after the
// instrumented work has quiesced — there is no concurrent consumer, so the
// hot path never synchronizes.
//
// Timestamps carry one of two clock domains:
//   * kSim  — the simulator's virtual clock, in cycles. Each producer thread
//             gets its own Perfetto process so concurrent trials don't
//             interleave on one timeline.
//   * kHost — wall-clock microseconds since the session epoch (sweep solves,
//             trial spans, anything measured with real time).
// Event names must be string literals (the ring stores the pointer); dynamic
// names like pipeline node labels go through set_track_name instead.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ripple::obs {

/// Timestamp clock domain; also selects the Perfetto process grouping.
enum class Domain : std::uint8_t {
  kSim = 0,   ///< virtual cycles, one process per producer thread
  kHost = 1,  ///< wall-clock microseconds since the session epoch
};

enum class TraceKind : std::uint8_t {
  kEnd = 0,      ///< span end ("E"); ordered before kBegin at equal ts
  kCounter = 1,  ///< sampled level, e.g. queue depth ("C")
  kInstant = 2,  ///< point event, e.g. a deadline miss ("i")
  kBegin = 3,    ///< span begin ("B")
};

struct TraceEvent {
  const char* name = nullptr;  ///< static string literal
  double ts = 0.0;             ///< in the domain's clock units
  double value = 0.0;          ///< counter level / instant payload (slack)
  std::uint32_t track = 0;     ///< node index or worker ordinal (Perfetto tid)
  std::uint16_t ring = 0;      ///< producer ring ordinal, stamped on record
  Domain domain = Domain::kSim;
  TraceKind kind = TraceKind::kInstant;
};

/// Fixed-capacity single-producer ring. Overwrites the oldest events when
/// full; `dropped()` reports how many were lost.
class TraceRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 16).
  explicit TraceRing(std::size_t capacity, std::uint16_t ordinal);

  std::uint16_t ordinal() const noexcept { return ordinal_; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Record one event (producer thread only). Two relaxed atomics, no locks.
  void record(TraceEvent event) noexcept {
    const std::uint64_t index = head_.load(std::memory_order_relaxed);
    event.ring = ordinal_;
    slots_[index & mask_] = event;
    head_.store(index + 1, std::memory_order_release);
  }

  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  std::uint64_t dropped() const noexcept;

  /// Append the retained events, oldest first (call after the producer has
  /// quiesced).
  void drain_into(std::vector<TraceEvent>& out) const;

 private:
  std::vector<TraceEvent> slots_;
  std::uint64_t mask_;
  std::uint16_t ordinal_;
  std::atomic<std::uint64_t> head_{0};
};

/// Owns every thread's ring plus the track-name metadata; the exporter
/// drains it after a run. One global instance serves the whole process.
class TraceSession {
 public:
  static TraceSession& global();

  /// This thread's ring, creating and registering it on first use (or after
  /// clear()). The returned pointer stays valid until clear().
  TraceRing* ring_for_current_thread();

  /// Capacity for rings created after this call (default 1 << 16 events).
  void set_ring_capacity(std::size_t capacity);

  /// All retained events: rings in registration order, each oldest-first.
  /// Within one (ring, track) pair events are already in timestamp order, so
  /// the exporter needs no sort. Only call while no producer is recording.
  std::vector<TraceEvent> drain() const;

  /// Total events lost to ring wraparound across all rings.
  std::uint64_t dropped() const;

  /// Human-readable Perfetto track label (e.g. a pipeline node name) for a
  /// (domain, track) pair; exported as thread_name metadata.
  void set_track_name(Domain domain, std::uint32_t track, std::string name);
  std::map<std::pair<std::uint8_t, std::uint32_t>, std::string> track_names()
      const;

  /// Wall-clock microseconds since this session was created (kHost domain).
  double host_now_us() const noexcept;

  /// Drop every ring, name, and event. Only call while no producer is
  /// recording; threads transparently re-register on their next record.
  void clear();

 private:
  TraceSession();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::map<std::pair<std::uint8_t, std::uint32_t>, std::string> track_names_;
  std::size_t ring_capacity_ = 1 << 16;
  std::uint64_t generation_ = 0;  // bumped by clear(); invalidates TL caches
  std::chrono::steady_clock::time_point epoch_;
};

/// Cheap per-call-site handle: null when observability is disabled at
/// runtime, so the instrumented hot path pays one branch on a cached pointer.
class TraceWriter {
 public:
  /// Bound to this thread's ring when obs::enabled(), inactive otherwise.
  static TraceWriter for_current_thread();

  bool active() const noexcept { return ring_ != nullptr; }
  /// This producer's ring ordinal — used as the kHost track id so each
  /// worker thread gets its own timeline row.
  std::uint32_t track() const noexcept {
    return ring_ == nullptr ? 0 : ring_->ordinal();
  }

  void begin(Domain domain, std::uint32_t track, const char* name,
             double ts) noexcept {
    record(domain, track, name, ts, 0.0, TraceKind::kBegin);
  }
  void end(Domain domain, std::uint32_t track, const char* name,
           double ts) noexcept {
    record(domain, track, name, ts, 0.0, TraceKind::kEnd);
  }
  void instant(Domain domain, std::uint32_t track, const char* name, double ts,
               double value) noexcept {
    record(domain, track, name, ts, value, TraceKind::kInstant);
  }
  void counter(Domain domain, std::uint32_t track, const char* name, double ts,
               double value) noexcept {
    record(domain, track, name, ts, value, TraceKind::kCounter);
  }

 private:
  void record(Domain domain, std::uint32_t track, const char* name, double ts,
              double value, TraceKind kind) noexcept {
    TraceEvent event;
    event.name = name;
    event.ts = ts;
    event.value = value;
    event.track = track;
    event.domain = domain;
    event.kind = kind;
    ring_->record(event);
  }

  TraceRing* ring_ = nullptr;
};

}  // namespace ripple::obs
