// Exporters for the observability layer.
//
// Two artifacts, both self-describing JSON written with util::JsonWriter:
//   * a metrics dump of the global Registry (schema "ripple.metrics.v1",
//     see Registry::write_json), and
//   * a Chrome trace_event timeline (the "JSON Array Format" variant with
//     an object wrapper) loadable in chrome://tracing and Perfetto.
//
// Timeline mapping (documented in docs/OBSERVABILITY.md):
//   * kSim events:  pid = 100 + ring ordinal (one Perfetto process per
//     producer thread, so concurrent trials get separate timelines),
//     tid = TraceEvent::track (the pipeline node index), ts = virtual
//     cycles rendered as microseconds.
//   * kHost events: pid = 1, tid = TraceEvent::track (the worker ordinal),
//     ts = wall-clock microseconds since the session epoch.
//   * kBegin/kEnd -> ph "B"/"E", kInstant -> ph "i" (thread scope, payload
//     in args.value), kCounter -> ph "C" (args.value).
// Output is byte-deterministic given the same event sequence; golden tests
// pin it (tests/test_obs_export.cpp).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/result.hpp"

namespace ripple::obs {

/// Write `events` (as returned by TraceSession::drain) as a Chrome
/// trace_event document. Track-name metadata and the dropped-event count are
/// taken from `session`.
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const TraceSession& session);

/// Drain the global session and write it to `path`. Failure code "io_error".
util::Result<bool> export_chrome_trace_file(const std::string& path);

/// Dump the global metrics registry to `path`. Failure code "io_error".
util::Result<bool> export_metrics_file(const std::string& path);

/// Strict begin/end pairing check over a drained event sequence: within
/// every (domain, ring, track) lane, each kEnd must close a same-named
/// kBegin and no span may remain open. Failure code "bad_nesting" names the
/// first offending event. Used by the exporter golden test and meaningful
/// only when no events were dropped.
util::Result<bool> validate_span_nesting(const std::vector<TraceEvent>& events);

}  // namespace ripple::obs
