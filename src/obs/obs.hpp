// Umbrella header for instrumentation call sites.
//
// Observability has two gates (see docs/OBSERVABILITY.md for the matrix):
//   * compile time — the RIPPLE_OBS preprocessor flag (CMake option of the
//     same name) decides whether instrumentation statements exist at all.
//     The obs library itself (registry, rings, exporters) is always built
//     and tested; only the call sites in the sim/core/runtime hot paths
//     vanish in an OFF build.
//   * run time — obs::set_enabled(true) arms recording. Instrumented
//     functions snapshot the flag once (TraceWriter::for_current_thread or
//     a local bool), so the compiled-in-but-disabled path costs a single
//     branch on a cached value per instrumentation point.
//
// Instrumented hot paths wrap their observability statements in
// `#if RIPPLE_OBS` blocks; this header is safe to include unconditionally.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ripple::obs {

/// Runtime master switch; false by default. Reading is one relaxed atomic
/// load of a bool.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// True when the hot-path call sites were compiled in (build configured
/// with -DRIPPLE_OBS=ON). The CLI uses this to warn when --trace-out is
/// requested from an uninstrumented build.
bool instrumentation_compiled() noexcept;

}  // namespace ripple::obs
