#include "linalg/matrix.hpp"

namespace ripple::linalg {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::multiply(const Vector& x) const {
  RIPPLE_REQUIRE(x.size() == cols_, "matrix-vector size mismatch");
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += data_[r * cols_ + c] * x[c];
    out[r] = sum;
  }
  return out;
}

Matrix Matrix::multiply(const Matrix& other) const {
  RIPPLE_REQUIRE(cols_ == other.rows_, "matrix-matrix size mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[r * cols_ + k];
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

void Matrix::add_diagonal(double s) {
  RIPPLE_REQUIRE(square(), "add_diagonal needs a square matrix");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += s;
}

}  // namespace ripple::linalg
