// Dense row-major matrix, sized for small optimization problems.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector.hpp"
#include "util/assert.hpp"

namespace ripple::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool square() const noexcept { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    RIPPLE_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    RIPPLE_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  Vector multiply(const Vector& x) const;
  Matrix multiply(const Matrix& other) const;
  Matrix transposed() const;

  /// A += s * I (used to regularize near-singular Newton systems).
  void add_diagonal(double s);

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace ripple::linalg
