#include "linalg/solve.hpp"

#include <cmath>
#include <numeric>
#include <utility>

namespace ripple::linalg {

namespace {

struct LuFactors {
  Matrix lu;                     // packed L (unit diagonal) and U
  std::vector<std::size_t> perm; // row permutation
  int sign = 1;                  // permutation sign, for determinants
};

util::Result<LuFactors> factor_lu(const Matrix& a, double pivot_tolerance) {
  RIPPLE_REQUIRE(a.square(), "LU needs a square matrix");
  const std::size_t n = a.rows();
  LuFactors f{a, std::vector<std::size_t>(n), 1};
  std::iota(f.perm.begin(), f.perm.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest magnitude in column k at or below the diagonal.
    std::size_t pivot_row = k;
    double pivot_mag = std::fabs(f.lu(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::fabs(f.lu(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < pivot_tolerance) {
      return util::Result<LuFactors>::failure("singular",
                                              "pivot below tolerance in LU");
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(f.lu(k, c), f.lu(pivot_row, c));
      }
      std::swap(f.perm[k], f.perm[pivot_row]);
      f.sign = -f.sign;
    }
    const double pivot = f.lu(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = f.lu(r, k) / pivot;
      f.lu(r, k) = m;
      for (std::size_t c = k + 1; c < n; ++c) {
        f.lu(r, c) -= m * f.lu(k, c);
      }
    }
  }
  return f;
}

Vector lu_solve_factored(const LuFactors& f, const Vector& b) {
  const std::size_t n = f.perm.size();
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[f.perm[i]];
    for (std::size_t j = 0; j < i; ++j) sum -= f.lu(i, j) * y[j];
    y[i] = sum;
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= f.lu(ii, j) * x[j];
    x[ii] = sum / f.lu(ii, ii);
  }
  return x;
}

}  // namespace

util::Result<Vector> solve_lu(const Matrix& a, const Vector& b,
                              double pivot_tolerance) {
  RIPPLE_REQUIRE(b.size() == a.rows(), "rhs size mismatch");
  auto factors = factor_lu(a, pivot_tolerance);
  if (!factors.ok()) {
    return util::Result<Vector>::failure(factors.error().code,
                                         factors.error().message);
  }
  return lu_solve_factored(factors.value(), b);
}

util::Result<Vector> solve_cholesky(const Matrix& a, const Vector& b) {
  RIPPLE_REQUIRE(a.square(), "Cholesky needs a square matrix");
  RIPPLE_REQUIRE(b.size() == a.rows(), "rhs size mismatch");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0) {
      return util::Result<Vector>::failure("not_spd",
                                           "matrix is not positive definite");
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / l(j, j);
    }
  }
  // Forward then back substitution with L and L^T.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) sum -= l(i, j) * y[j];
    y[i] = sum / l(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= l(j, ii) * x[j];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

double determinant(const Matrix& a) {
  // An exactly-zero pivot means a numerically singular matrix: det = 0.
  auto factors = factor_lu(a, 1e-300);
  if (!factors.ok()) return 0.0;
  const auto& f = factors.value();
  double det = f.sign;
  for (std::size_t i = 0; i < a.rows(); ++i) det *= f.lu(i, i);
  return det;
}

}  // namespace ripple::linalg
