// Dense real vector operations on std::vector<double>.
//
// The solver dimensionality here is tiny (N = pipeline depth, typically 4),
// so clarity wins over blocking/vectorization tricks.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/assert.hpp"

namespace ripple::linalg {

using Vector = std::vector<double>;

inline Vector zeros(std::size_t n) { return Vector(n, 0.0); }

inline Vector add(const Vector& a, const Vector& b) {
  RIPPLE_REQUIRE(a.size() == b.size(), "vector size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

inline Vector subtract(const Vector& a, const Vector& b) {
  RIPPLE_REQUIRE(a.size() == b.size(), "vector size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

inline Vector scale(const Vector& a, double s) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

/// a += s * b
inline void axpy(Vector& a, double s, const Vector& b) {
  RIPPLE_REQUIRE(a.size() == b.size(), "vector size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

inline double dot(const Vector& a, const Vector& b) {
  RIPPLE_REQUIRE(a.size() == b.size(), "vector size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

inline double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

inline double norm_inf(const Vector& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::fabs(v));
  return m;
}

}  // namespace ripple::linalg
