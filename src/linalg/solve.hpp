// Direct solvers for the small dense systems arising in barrier-Newton steps.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "util/result.hpp"

namespace ripple::linalg {

/// Solve A x = b by LU decomposition with partial pivoting.
/// Fails with code "singular" if a pivot falls below `pivot_tolerance`.
util::Result<Vector> solve_lu(const Matrix& a, const Vector& b,
                              double pivot_tolerance = 1e-14);

/// Solve A x = b for symmetric positive-definite A by Cholesky factorization.
/// Fails with code "not_spd" if a leading minor is not positive.
util::Result<Vector> solve_cholesky(const Matrix& a, const Vector& b);

/// Determinant via LU (useful in tests).
double determinant(const Matrix& a);

}  // namespace ripple::linalg
