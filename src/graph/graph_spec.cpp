#include "graph/graph_spec.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

#include "util/assert.hpp"
#include "util/string_utils.hpp"

namespace ripple::graph {

namespace {

std::string edge_label(const GraphSpec& graph, const GraphEdgeSpec& edge) {
  return "edge " + graph.node(edge.from).name + "->" + graph.node(edge.to).name;
}

}  // namespace

const char* node_kind_name(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::kSiso:
      return "siso";
    case NodeKind::kSimoTee:
      return "tee";
    case NodeKind::kMisoElementwise:
      return "merge";
    case NodeKind::kMimoSynchronizer:
      return "synchronizer";
  }
  return "?";
}

const GraphNodeSpec& GraphSpec::node(NodeIndex i) const {
  RIPPLE_REQUIRE(i < nodes_.size(), "graph node index out of range");
  return nodes_[i];
}

Cycles GraphSpec::service_time(NodeIndex i) const {
  return node(i).service_time;
}

const GraphEdgeSpec& GraphSpec::edge(EdgeIndex e) const {
  RIPPLE_REQUIRE(e < edges_.size(), "graph edge index out of range");
  return edges_[e];
}

const std::vector<EdgeIndex>& GraphSpec::out_edges(NodeIndex i) const {
  RIPPLE_REQUIRE(i < out_edges_.size(), "graph node index out of range");
  return out_edges_[i];
}

const std::vector<EdgeIndex>& GraphSpec::in_edges(NodeIndex i) const {
  RIPPLE_REQUIRE(i < in_edges_.size(), "graph node index out of range");
  return in_edges_[i];
}

bool GraphSpec::is_linear() const noexcept {
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind != NodeKind::kSiso) return false;
    if (out_edges_[i].size() > 1 || in_edges_[i].size() > 1) return false;
  }
  return true;
}

util::Result<sdf::PipelineSpec> GraphSpec::lower_to_pipeline() const {
  using R = util::Result<sdf::PipelineSpec>;
  if (!is_linear()) {
    return R::failure("not_linear",
                      "graph '" + name_ + "' has non-SISO structure");
  }
  sdf::PipelineBuilder builder(name_);
  builder.simd_width(simd_width_);
  // Walk the unique chain from the source; node i's pipeline gain is its
  // single out-edge's gain, the sink gets the Deterministic(1) convention.
  NodeIndex current = source_;
  for (std::size_t step = 0; step < nodes_.size(); ++step) {
    const GraphNodeSpec& node = nodes_[current];
    if (out_edges_[current].empty()) {
      builder.add_node(node.name, node.service_time,
                       std::make_shared<dist::DeterministicGain>(1));
      break;
    }
    const GraphEdgeSpec& out = edges_[out_edges_[current][0]];
    builder.add_node(node.name, node.service_time, out.gain);
    current = out.to;
  }
  return builder.build();
}

double GraphSpec::node_flow(NodeIndex i) const {
  RIPPLE_REQUIRE(i < node_flows_.size(), "graph node index out of range");
  return node_flows_[i];
}

double GraphSpec::edge_flow(EdgeIndex e) const {
  const GraphEdgeSpec& spec = edge(e);
  return node_flows_[spec.from] * spec.mean_gain();
}

std::vector<Cycles> GraphSpec::minimal_firing_intervals() const {
  std::vector<Cycles> minimal(nodes_.size(), 0.0);
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const NodeIndex u = *it;
    Cycles interval = nodes_[u].service_time;
    for (EdgeIndex e : out_edges_[u]) {
      interval = std::max(interval, edges_[e].mean_gain() * minimal[edges_[e].to]);
    }
    minimal[u] = interval;
  }
  return minimal;
}

Cycles GraphSpec::max_path_budget(const std::vector<double>& b,
                                  const std::vector<Cycles>& x) const {
  RIPPLE_REQUIRE(b.size() == nodes_.size(), "budget coefficient count mismatch");
  RIPPLE_REQUIRE(x.size() == nodes_.size(), "interval count mismatch");
  // best[u] = max over u->sink suffix paths of sum b_i x_i, reverse topo DP.
  std::vector<Cycles> best(nodes_.size(), 0.0);
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const NodeIndex u = *it;
    Cycles suffix = 0.0;
    for (EdgeIndex e : out_edges_[u]) {
      suffix = std::max(suffix, best[edges_[e].to]);
    }
    best[u] = b[u] * x[u] + suffix;
  }
  return best[source_];
}

util::Result<std::vector<GraphPath>> GraphSpec::enumerate_paths(
    std::size_t max_paths) const {
  using R = util::Result<std::vector<GraphPath>>;
  std::vector<GraphPath> paths;
  // Iterative DFS in out-edge insertion order keeps enumeration deterministic.
  GraphPath current;
  current.nodes.push_back(source_);
  std::vector<std::size_t> next_edge{0};
  while (!current.nodes.empty()) {
    const NodeIndex u = current.nodes.back();
    if (out_edges_[u].empty()) {
      if (paths.size() >= max_paths) {
        return R::failure("too_many_paths",
                          "graph '" + name_ + "' has more than " +
                              std::to_string(max_paths) +
                              " source->sink paths");
      }
      paths.push_back(current);
    }
    if (next_edge.back() < out_edges_[u].size()) {
      const EdgeIndex e = out_edges_[u][next_edge.back()];
      ++next_edge.back();
      current.edges.push_back(e);
      current.total_gain *= edges_[e].mean_gain();
      current.nodes.push_back(edges_[e].to);
      next_edge.push_back(0);
    } else {
      current.nodes.pop_back();
      next_edge.pop_back();
      if (!current.edges.empty()) {
        const double gain = edges_[current.edges.back()].mean_gain();
        current.total_gain = gain > 0.0 ? current.total_gain / gain : 1.0;
        current.edges.pop_back();
      }
    }
  }
  // Division-based gain unwinding accumulates rounding; recompute each path's
  // product exactly so callers can rely on bit-stable totals.
  for (GraphPath& path : paths) {
    path.total_gain = 1.0;
    for (EdgeIndex e : path.edges) path.total_gain *= edges_[e].mean_gain();
  }
  return paths;
}

GraphBuilder::GraphBuilder(std::string name) {
  spec_.name_ = std::move(name);
  spec_.simd_width_ = 128;  // the paper's default v
}

GraphBuilder& GraphBuilder::simd_width(std::uint32_t v) {
  spec_.simd_width_ = v;
  return *this;
}

GraphBuilder& GraphBuilder::add_node(std::string name, NodeKind kind,
                                     Cycles service_time) {
  GraphNodeSpec node;
  node.name = std::move(name);
  node.kind = kind;
  node.service_time = service_time;
  spec_.nodes_.push_back(std::move(node));
  return *this;
}

GraphBuilder& GraphBuilder::add_edge(NodeIndex from, NodeIndex to,
                                     dist::GainPtr gain) {
  GraphEdgeSpec edge;
  edge.from = from;
  edge.to = to;
  edge.gain = std::move(gain);
  spec_.edges_.push_back(std::move(edge));
  return *this;
}

util::Result<GraphSpec> GraphBuilder::build() const {
  using R = util::Result<GraphSpec>;
  GraphSpec spec = spec_;
  const std::size_t n = spec.nodes_.size();
  if (n == 0) return R::failure("empty", "graph has no nodes");
  if (spec.simd_width_ == 0) {
    return R::failure("bad_width", "SIMD width must be positive");
  }
  for (NodeIndex i = 0; i < n; ++i) {
    if (!(spec.nodes_[i].service_time > 0.0)) {
      return R::failure("bad_service", "node " + spec.nodes_[i].name +
                                           ": service time must be positive");
    }
  }

  // Edge sanity + adjacency.
  spec.out_edges_.assign(n, {});
  spec.in_edges_.assign(n, {});
  std::set<std::pair<NodeIndex, NodeIndex>> seen;
  for (EdgeIndex e = 0; e < spec.edges_.size(); ++e) {
    const GraphEdgeSpec& edge = spec.edges_[e];
    if (edge.from >= n || edge.to >= n) {
      return R::failure("bad_edge", "edge " + std::to_string(e) +
                                        ": endpoint out of range");
    }
    if (edge.from == edge.to) {
      return R::failure("bad_edge", "edge " + std::to_string(e) +
                                        ": self-loop on node " +
                                        spec.nodes_[edge.from].name);
    }
    if (!seen.insert({edge.from, edge.to}).second) {
      return R::failure("bad_edge",
                        "duplicate " + edge_label(spec, edge));
    }
    if (!edge.gain) {
      return R::failure("missing_gain",
                        edge_label(spec, edge) + ": no gain model");
    }
    spec.out_edges_[edge.from].push_back(e);
    spec.in_edges_[edge.to].push_back(e);
  }

  // Kahn topological order, smallest-ready-index first (deterministic).
  std::vector<std::size_t> remaining(n);
  for (NodeIndex i = 0; i < n; ++i) remaining[i] = spec.in_edges_[i].size();
  std::priority_queue<NodeIndex, std::vector<NodeIndex>,
                      std::greater<NodeIndex>>
      ready;
  for (NodeIndex i = 0; i < n; ++i) {
    if (remaining[i] == 0) ready.push(i);
  }
  spec.topo_.clear();
  while (!ready.empty()) {
    const NodeIndex u = ready.top();
    ready.pop();
    spec.topo_.push_back(u);
    for (EdgeIndex e : spec.out_edges_[u]) {
      if (--remaining[spec.edges_[e].to] == 0) ready.push(spec.edges_[e].to);
    }
  }
  if (spec.topo_.size() != n) {
    return R::failure("cycle", "graph '" + spec.name_ + "' contains a cycle");
  }

  // Exactly one source and one sink.
  std::vector<NodeIndex> sources;
  std::vector<NodeIndex> sinks;
  for (NodeIndex i = 0; i < n; ++i) {
    if (spec.in_edges_[i].empty()) sources.push_back(i);
    if (spec.out_edges_[i].empty()) sinks.push_back(i);
  }
  if (sources.empty()) return R::failure("no_source", "graph has no source");
  if (sources.size() > 1) {
    return R::failure("multi_source",
                      "nodes " + spec.nodes_[sources[0]].name + " and " +
                          spec.nodes_[sources[1]].name +
                          " both have zero in-edges");
  }
  if (sinks.empty()) return R::failure("no_sink", "graph has no sink");
  if (sinks.size() > 1) {
    return R::failure("multi_sink",
                      "nodes " + spec.nodes_[sinks[0]].name + " and " +
                          spec.nodes_[sinks[1]].name +
                          " both have zero out-edges");
  }
  spec.source_ = sources[0];
  spec.sink_ = sinks[0];

  // With a single source and sink in an acyclic graph, topo order implies
  // every node is forward-reachable from the source (in-degree > 0 chains
  // back) — but check both directions explicitly for clear errors.
  {
    std::vector<char> from_source(n, 0);
    from_source[spec.source_] = 1;
    for (NodeIndex u : spec.topo_) {
      if (!from_source[u]) continue;
      for (EdgeIndex e : spec.out_edges_[u]) from_source[spec.edges_[e].to] = 1;
    }
    std::vector<char> to_sink(n, 0);
    to_sink[spec.sink_] = 1;
    for (auto it = spec.topo_.rbegin(); it != spec.topo_.rend(); ++it) {
      if (!to_sink[*it]) continue;
      for (EdgeIndex e : spec.in_edges_[*it]) to_sink[spec.edges_[e].from] = 1;
    }
    for (NodeIndex i = 0; i < n; ++i) {
      if (!from_source[i] || !to_sink[i]) {
        return R::failure("unreachable",
                          "node " + spec.nodes_[i].name +
                              " is not on any source->sink path");
      }
    }
  }

  // Per-kind degree rules.
  for (NodeIndex i = 0; i < n; ++i) {
    const GraphNodeSpec& node = spec.nodes_[i];
    const std::size_t in = spec.in_edges_[i].size();
    const std::size_t out = spec.out_edges_[i].size();
    bool ok = false;
    switch (node.kind) {
      case NodeKind::kSiso:
        ok = in <= 1 && out <= 1;
        break;
      case NodeKind::kSimoTee:
        ok = in == 1 && out >= 2;
        break;
      case NodeKind::kMisoElementwise:
        ok = in >= 2 && out == 1;
        break;
      case NodeKind::kMimoSynchronizer:
        ok = in >= 2 && in == out;
        break;
    }
    if (!ok) {
      return R::failure(
          "bad_degree",
          "node " + node.name + " (" + node_kind_name(node.kind) + ") has " +
              std::to_string(in) + " in-edge(s) and " + std::to_string(out) +
              " out-edge(s)");
    }
  }

  // Expected per-input flows (topo order), then merge/synchronizer
  // rate-match validation: elementwise consumption requires every in-edge to
  // carry the same mean flow.
  spec.node_flows_.assign(n, 0.0);
  spec.node_flows_[spec.source_] = 1.0;
  for (NodeIndex u : spec.topo_) {
    if (!spec.in_edges_[u].empty()) {
      // Merge/synchronizer in-edges are rate-matched (validated below), so
      // the node's flow is the matched per-edge flow, not the sum.
      double flow = 0.0;
      for (EdgeIndex e : spec.in_edges_[u]) {
        const GraphEdgeSpec& edge = spec.edges_[e];
        flow = std::max(flow,
                        spec.node_flows_[edge.from] * edge.mean_gain());
      }
      spec.node_flows_[u] = flow;
    }
  }
  for (NodeIndex i = 0; i < n; ++i) {
    const GraphNodeSpec& node = spec.nodes_[i];
    if (node.kind != NodeKind::kMisoElementwise &&
        node.kind != NodeKind::kMimoSynchronizer) {
      continue;
    }
    const std::vector<EdgeIndex>& in = spec.in_edges_[i];
    const GraphEdgeSpec& first = spec.edges_[in[0]];
    const double reference = spec.node_flows_[first.from] * first.mean_gain();
    for (std::size_t j = 1; j < in.size(); ++j) {
      const GraphEdgeSpec& edge = spec.edges_[in[j]];
      const double flow = spec.node_flows_[edge.from] * edge.mean_gain();
      if (std::abs(flow - reference) > 1e-9 * (1.0 + std::abs(reference))) {
        return R::failure(
            "rate_mismatch",
            "node " + node.name + ": in-" + edge_label(spec, edge) +
                " carries mean flow " + util::format_double(flow, 6) +
                " but in-" + edge_label(spec, first) + " carries " +
                util::format_double(reference, 6));
      }
    }
  }

  return spec;
}

}  // namespace ripple::graph
