// GraphSpec serialization: versioned JSON round trip (satellite of the
// sdf/pipeline_io.hpp schema, sharing its gain-model vocabulary).
//
//   {
//     "schema": "ripple.graph.v1",
//     "name": "branching_blast",
//     "simd_width": 64,
//     "nodes": [
//       {"name": "seed_probe", "kind": "siso", "service_time": 300},
//       {"name": "branch", "kind": "tee", "service_time": 80},
//       ...
//     ],
//     "edges": [
//       {"from": "seed_probe", "to": "branch",
//        "gain": {"type": "bernoulli", "p": 0.42}},
//       ...
//     ]
//   }
//
// Node kinds: "siso", "tee", "merge", "synchronizer" (node_kind_name's
// vocabulary). Edges reference nodes by name, so names must be unique in a
// document. Malformed input fails with "parse_error" / "bad_schema" and a
// message naming the offending node or edge; structural violations surface
// the GraphBuilder's validation codes unchanged.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph_spec.hpp"
#include "util/jsonv.hpp"
#include "util/result.hpp"

namespace ripple::graph {

/// Schema tag expected in the "schema" field.
inline constexpr const char* kGraphSchemaV1 = "ripple.graph.v1";

util::Result<GraphSpec> graph_from_json(const std::string& text);
util::Result<GraphSpec> graph_from_json_value(const util::JsonValue& value);

/// Serialize into the same schema (single line + newline).
void write_graph_spec_json(std::ostream& out, const GraphSpec& graph);
std::string graph_to_json(const GraphSpec& graph);

}  // namespace ripple::graph
