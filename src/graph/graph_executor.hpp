// Vector-wide virtual-time execution of REAL stage computations over
// GraphSpec DAGs — the graph generalization of runtime/pipeline_executor.hpp.
//
// Items flow through per-edge SoA ring queues; each firing of node u hands
// its stage one dense batch of up to v lanes gathered from u's in-edge
// queues. Gains, queue growth, and deadline misses emerge from the stage
// computations themselves rather than from fitted distributions; time stays
// virtual (node u's firings occupy its configured x_u cycles) so runs are
// exactly reproducible and independent of host speed.
//
// Node-kind semantics (matching graph_sim's routing contract):
//   source / SISO  — the stage sees one item per lane and its outputs flow
//                    down the single out-edge (sink outputs are results).
//   tee            — the stage runs once per lane; its outputs are
//                    *replicated* onto every out-edge, in out-edge insertion
//                    order. Item payloads must be copy-constructible.
//   merge          — one matched item per in-edge per lane, handed to the
//                    stage as a tuple in in-edge insertion order; the
//                    combined outputs flow down the single out-edge carrying
//                    the first in-edge's root.
//   synchronizer   — pure forwarding (stage must be null): in-edge j's item
//                    k moves to out-edge j, so every stream advances by the
//                    same matched count and batch boundaries realign.
//
// A linear graph delegates wholesale to PipelineExecutor on the lowered
// PipelineSpec (stages wrapped through the per-item adapter), so results,
// metrics, and exported traces on chains are bit-identical to the existing
// engine — including its task-parallel exec_threads >= 2 mode.
//
// Branching graphs run the DAG-native engine. With exec_threads >= 2 it
// executes each virtual-time *wave* (the set of same-timestamp firings,
// which by construction consume disjoint queues) concurrently: input
// windows are gathered sequentially in event-pop order, stage functions run
// on the pool, and effects commit sequentially in pop order — so results,
// metrics, and traces are bit-identical across every exec_threads value.
// Stage functions must be safe to invoke concurrently with each other.
//
// run_reference() is the seed-style per-item oracle: one std::deque of
// (item, root) per edge, the same event cadence, scalar stage calls. The
// vector engine is golden-tested against it (tests/test_graph_executor.cpp).
//
// On RIPPLE_OBS builds each consuming firing emits the kind-specific span
// ("graph.fire" / "graph.tee" / "graph.merge" / "graph.sync") on the node's
// track and "graph.queue_depth" counter samples per in-edge (edge track id =
// node count + edge index), mirroring the stochastic graph simulator.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/graph_spec.hpp"
#include "runtime/pipeline_executor.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace ripple::util {
class ThreadPool;
}

namespace ripple::graph {

using runtime::Item;

/// One graph stage invocation: `inputs` holds one item per in-edge in
/// in-edge insertion order (the source stage receives the arrival item as a
/// single input); append zero or more outputs. Synchronizer nodes forward
/// without a stage and must be registered as nullptr.
using GraphStageFn =
    std::function<void(std::vector<Item>&& inputs, std::vector<Item>& outputs)>;

struct GraphExecutorConfig {
  std::vector<Cycles> firing_intervals;  ///< x_u per node, by graph index
  Cycles input_gap = 1.0;                ///< virtual cycles between inputs
  /// Optional irregular arrival schedule (one positive gap per input); when
  /// non-empty `input_gap` is ignored.
  std::vector<Cycles> input_gaps;
  Cycles deadline = 0.0;  ///< 0 = no miss accounting
  bool charge_empty_firings = true;
  std::size_t max_collected_results = 1024;
  std::uint64_t max_events = 500'000'000;
  /// 1 runs on the calling thread; N >= 2 runs same-timestamp firing waves
  /// on a pool (bit-identical output); 0 selects hardware_concurrency.
  std::size_t exec_threads = 1;
};

class GraphExecutor {
 public:
  /// One GraphStageFn per node (synchronizers: nullptr). Throws
  /// std::logic_error when the stage count or per-kind callability rules are
  /// violated.
  GraphExecutor(GraphSpec graph, std::vector<GraphStageFn> stages);
  ~GraphExecutor();

  GraphExecutor(const GraphExecutor&) = delete;
  GraphExecutor& operator=(const GraphExecutor&) = delete;

  const GraphSpec& graph() const noexcept { return graph_; }

  /// True when run() delegates to the linear-chain PipelineExecutor.
  bool delegates_to_chain() const noexcept { return linear_ != nullptr; }

  /// Run inputs through the graph in virtual time. Node metrics in the
  /// result are indexed by graph node index. Failure codes: "bad_config",
  /// "event_budget", "stage_exception" (message names the node).
  util::Result<runtime::ExecutionMetrics> run(
      std::vector<Item> inputs, const GraphExecutorConfig& config) const;

  /// Per-item oracle: identical results and metrics to run(), computed by
  /// the scalar seed-style engine. Never delegates — on linear graphs this
  /// independently cross-checks the chain delegation.
  util::Result<runtime::ExecutionMetrics> run_reference(
      std::vector<Item> inputs, const GraphExecutorConfig& config) const;

 private:
  util::Result<runtime::ExecutionMetrics> execute_dag(
      std::vector<Item>& inputs, const GraphExecutorConfig& config,
      std::size_t threads) const;
  util::ThreadPool& acquire_pool(std::size_t threads) const;

  GraphSpec graph_;
  std::vector<GraphStageFn> stages_;

  // Linear delegation: chain position -> graph node index, plus the wrapped
  // chain executor over the lowered pipeline.
  std::vector<NodeIndex> chain_order_;
  std::unique_ptr<runtime::PipelineExecutor> linear_;

  mutable std::mutex pool_mutex_;
  mutable std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace ripple::graph
