#include "graph/scenarios.hpp"

#include <any>

#include "util/assert.hpp"

namespace ripple::graph {

namespace {

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// `rounds` chained hash applications: the unit of real per-item work, kept
/// proportional to the node's modeled service time (one round per 2
/// virtual cycles) so host-time benchmarks mirror the virtual-time model
/// and stage work dominates engine scheduling overhead.
inline std::uint64_t churn(std::uint64_t x, unsigned rounds) {
  for (unsigned r = 0; r < rounds; ++r) x = splitmix64(x);
  return x;
}

inline unsigned rounds_for(Cycles service_time) {
  return static_cast<unsigned>(service_time / 2.0);
}

/// seed_probe keeps a hit when its hash lands under this 16-bit threshold:
/// 27525 / 65536 ~= 0.42, the bernoulli gain the planner and simulator see.
constexpr std::uint64_t kSeedKeepThreshold = 27525;
constexpr double kSeedKeepProbability = 0.42;

GraphStageFn hash_stage(Cycles service_time, std::uint64_t salt) {
  const unsigned rounds = rounds_for(service_time);
  return [rounds, salt](std::vector<Item>&& inputs, std::vector<Item>& out) {
    const std::uint64_t x = std::any_cast<std::uint64_t>(inputs[0]);
    out.push_back(churn(x ^ salt, rounds));
  };
}

GraphStageFn seed_probe_stage(Cycles service_time) {
  const unsigned rounds = rounds_for(service_time);
  return [rounds](std::vector<Item>&& inputs, std::vector<Item>& out) {
    const std::uint64_t x = std::any_cast<std::uint64_t>(inputs[0]);
    const std::uint64_t h = churn(x, rounds);
    if ((h >> 48) < kSeedKeepThreshold) out.push_back(h);
  };
}

GraphStageFn combine_stage(Cycles service_time) {
  const unsigned rounds = rounds_for(service_time);
  return [rounds](std::vector<Item>&& inputs, std::vector<Item>& out) {
    std::uint64_t acc = 0;
    for (std::size_t j = 0; j < inputs.size(); ++j) {
      const std::uint64_t x = std::any_cast<std::uint64_t>(inputs[j]);
      acc = splitmix64(acc ^ (x + j));
    }
    out.push_back(churn(acc, rounds));
  };
}

dist::GainPtr det1() { return dist::make_deterministic(1); }

}  // namespace

GraphScenario branching_blast_scenario() {
  GraphBuilder builder("branching_blast");
  builder.simd_width(64);
  builder.add_node("seed_probe", NodeKind::kSiso, 300.0);       // 0
  builder.add_node("branch", NodeKind::kSimoTee, 80.0);         // 1
  builder.add_node("ext_fast", NodeKind::kSiso, 400.0);         // 2
  builder.add_node("ext_thorough", NodeKind::kSiso, 900.0);     // 3
  builder.add_node("rescore", NodeKind::kMisoElementwise, 250.0);  // 4
  builder.add_node("output", NodeKind::kSiso, 150.0);           // 5
  builder.add_edge(0, 1, dist::make_bernoulli(kSeedKeepProbability));
  builder.add_edge(1, 2, det1());
  builder.add_edge(1, 3, det1());
  builder.add_edge(2, 4, det1());
  builder.add_edge(3, 4, det1());
  builder.add_edge(4, 5, det1());
  auto graph = builder.build();
  RIPPLE_REQUIRE(graph.ok(), "branching_blast scenario must validate");

  GraphScenario scenario{std::move(graph).take(), {}};
  scenario.stages = {
      seed_probe_stage(300.0),       hash_stage(80.0, 0x1111),
      hash_stage(400.0, 0xfa57),     hash_stage(900.0, 0x7404),
      combine_stage(250.0),          hash_stage(150.0, 0x0075),
  };
  return scenario;
}

std::vector<GraphScenario> duplicated_chain_baseline() {
  const struct {
    const char* name;
    const char* ext_name;
    Cycles ext_time;
    std::uint64_t ext_salt;
  } variants[] = {
      {"blast_fast_chain", "ext_fast", 400.0, 0xfa57},
      {"blast_thorough_chain", "ext_thorough", 900.0, 0x7404},
  };
  std::vector<GraphScenario> chains;
  for (const auto& variant : variants) {
    GraphBuilder builder(variant.name);
    builder.simd_width(64);
    builder.add_node("seed_probe", NodeKind::kSiso, 300.0);
    builder.add_node("branch", NodeKind::kSiso, 80.0);
    builder.add_node(variant.ext_name, NodeKind::kSiso, variant.ext_time);
    builder.add_node("rescore", NodeKind::kSiso, 250.0);
    builder.add_node("output", NodeKind::kSiso, 150.0);
    builder.add_edge(0, 1, dist::make_bernoulli(kSeedKeepProbability));
    builder.add_edge(1, 2, det1());
    builder.add_edge(2, 3, det1());
    builder.add_edge(3, 4, det1());
    auto graph = builder.build();
    RIPPLE_REQUIRE(graph.ok(), "duplicated chain baseline must validate");
    GraphScenario scenario{std::move(graph).take(), {}};
    scenario.stages = {
        seed_probe_stage(300.0),
        hash_stage(80.0, 0x1111),
        hash_stage(variant.ext_time, variant.ext_salt),
        // Single-input rescore (no partner stream to merge in a chain).
        combine_stage(250.0),
        hash_stage(150.0, 0x0075),
    };
    chains.push_back(std::move(scenario));
  }
  return chains;
}

GraphScenario telemetry_fanin_scenario() {
  GraphBuilder builder("telemetry_fanin");
  builder.simd_width(64);
  builder.add_node("ingest", NodeKind::kSiso, 120.0);              // 0
  builder.add_node("fan", NodeKind::kSimoTee, 60.0);               // 1
  builder.add_node("parse_a", NodeKind::kSiso, 200.0);             // 2
  builder.add_node("parse_b", NodeKind::kSiso, 260.0);             // 3
  builder.add_node("parse_c", NodeKind::kSiso, 180.0);             // 4
  builder.add_node("align", NodeKind::kMimoSynchronizer, 90.0);    // 5
  builder.add_node("norm_a", NodeKind::kSiso, 70.0);               // 6
  builder.add_node("norm_b", NodeKind::kSiso, 70.0);               // 7
  builder.add_node("norm_c", NodeKind::kSiso, 70.0);               // 8
  builder.add_node("fuse", NodeKind::kMisoElementwise, 310.0);     // 9
  builder.add_node("emit", NodeKind::kSiso, 140.0);                // 10
  builder.add_edge(0, 1, det1());
  builder.add_edge(1, 2, det1());
  builder.add_edge(1, 3, det1());
  builder.add_edge(1, 4, det1());
  builder.add_edge(2, 5, det1());
  builder.add_edge(3, 5, det1());
  builder.add_edge(4, 5, det1());
  builder.add_edge(5, 6, det1());
  builder.add_edge(5, 7, det1());
  builder.add_edge(5, 8, det1());
  builder.add_edge(6, 9, det1());
  builder.add_edge(7, 9, det1());
  builder.add_edge(8, 9, det1());
  builder.add_edge(9, 10, det1());
  auto graph = builder.build();
  RIPPLE_REQUIRE(graph.ok(), "telemetry_fanin scenario must validate");

  GraphScenario scenario{std::move(graph).take(), {}};
  scenario.stages = {
      hash_stage(120.0, 0x1237),  hash_stage(60.0, 0xfa3),
      hash_stage(200.0, 0xaaaa),  hash_stage(260.0, 0xbbbb),
      hash_stage(180.0, 0xcccc),  nullptr,
      hash_stage(70.0, 0x0a),     hash_stage(70.0, 0x0b),
      hash_stage(70.0, 0x0c),     combine_stage(310.0),
      hash_stage(140.0, 0xe317),
  };
  return scenario;
}

std::vector<Item> scenario_inputs(std::size_t count, std::uint64_t seed) {
  std::vector<Item> inputs;
  inputs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    inputs.emplace_back(splitmix64(seed + i));
  }
  return inputs;
}

}  // namespace ripple::graph
