// GraphSpec: a DAG generalization of the linear PipelineSpec — SISO chains
// plus tee (SIMO), elementwise merge (MISO), and batch-aligning synchronizer
// (MIMO) nodes, with per-edge gain models.
//
// The paper's chain constraint g_{i-1} x_i <= x_{i-1} becomes a per-edge
// constraint g_e x_v <= x_u for every edge e = (u, v); the linear pipeline is
// the single-path special case, and a linear GraphSpec lowers losslessly to a
// PipelineSpec (lower_to_pipeline) so the existing solver/sim/executor paths
// stay bit-identical on chains.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/gain.hpp"
#include "sdf/pipeline.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace ripple::graph {

using EdgeIndex = std::size_t;

/// Node taxonomy (bpipe's filter vocabulary):
///   kSiso             — one in-edge, one out-edge (classic pipeline stage;
///                       the graph source has zero in-edges and the sink zero
///                       out-edges).
///   kSimoTee          — one in-edge, >= 2 out-edges: each consumed item's
///                       outputs are replicated onto every out-edge.
///   kMisoElementwise  — >= 2 in-edges, one out-edge: consumes one item from
///                       each in-edge per lane (rate-matched upstreams) and
///                       emits a combined item.
///   kMimoSynchronizer — K in-edges, K out-edges: realigns batch boundaries
///                       so downstream consumers see lockstep batches;
///                       in-edge j forwards to out-edge j.
enum class NodeKind : std::uint8_t {
  kSiso,
  kSimoTee,
  kMisoElementwise,
  kMimoSynchronizer,
};

/// Human-readable kind name ("siso", "tee", "merge", "synchronizer").
const char* node_kind_name(NodeKind kind) noexcept;

struct GraphNodeSpec {
  std::string name;
  NodeKind kind = NodeKind::kSiso;
  Cycles service_time = 0.0;
};

/// Directed edge u -> v with the gain model applied to items traversing it:
/// one input consumed at `from` yields gain-many items delivered to `to`.
struct GraphEdgeSpec {
  NodeIndex from = 0;
  NodeIndex to = 0;
  dist::GainPtr gain;

  double mean_gain() const { return gain ? gain->mean() : 0.0; }
};

/// One source -> sink path: node indices plus the edges walked, with the
/// path's total gain product (expected sink outputs per source input along
/// this path) and deadline-budget coefficients.
struct GraphPath {
  std::vector<NodeIndex> nodes;
  std::vector<EdgeIndex> edges;
  double total_gain = 1.0;
};

/// Immutable-after-build DAG description. Use GraphBuilder to construct;
/// building validates acyclicity, single source/sink, reachability, per-kind
/// degree rules, and merge/synchronizer rate matching, and precomputes the
/// topological order and adjacency used by the planner, sims, and executor.
class GraphSpec {
 public:
  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return nodes_.size(); }
  std::uint32_t simd_width() const noexcept { return simd_width_; }

  const GraphNodeSpec& node(NodeIndex i) const;
  const std::vector<GraphNodeSpec>& nodes() const noexcept { return nodes_; }
  Cycles service_time(NodeIndex i) const;

  const GraphEdgeSpec& edge(EdgeIndex e) const;
  const std::vector<GraphEdgeSpec>& edges() const noexcept { return edges_; }
  std::size_t edge_count() const noexcept { return edges_.size(); }

  /// Out-/in-edge indices of node i, in edge-insertion order. The order is
  /// load-bearing: tee replication, merge tuple layout, and synchronizer
  /// stream pairing (in-edge j -> out-edge j) all follow it.
  const std::vector<EdgeIndex>& out_edges(NodeIndex i) const;
  const std::vector<EdgeIndex>& in_edges(NodeIndex i) const;

  /// Topological order over nodes (deterministic: Kahn's algorithm with the
  /// smallest-index node first among ready nodes).
  const std::vector<NodeIndex>& topo_order() const noexcept { return topo_; }

  NodeIndex source() const noexcept { return source_; }
  NodeIndex sink() const noexcept { return sink_; }

  /// True when every node is kSiso with <= 1 in- and out-edge — i.e. the
  /// graph is exactly the paper's linear chain.
  bool is_linear() const noexcept;

  /// Lowers a linear graph to the equivalent PipelineSpec: node i's pipeline
  /// gain is its single out-edge's gain (sink: Deterministic(1)). Fails with
  /// code "not_linear" on branching graphs.
  util::Result<sdf::PipelineSpec> lower_to_pipeline() const;

  /// Expected items arriving at node i per source input (the DAG analogue of
  /// PipelineSpec::total_gain_into). For merge/synchronizer nodes all
  /// in-edges are rate-matched, so this is the matched per-edge flow.
  double node_flow(NodeIndex i) const;

  /// Expected items traversing edge e per source input.
  double edge_flow(EdgeIndex e) const;

  /// DAG-minimal firing intervals L_u = max(t_u, max over out-edges e=(u,v)
  /// of g_e * L_v) — the generalization of the chain's backward recursion.
  std::vector<Cycles> minimal_firing_intervals() const;

  /// Max over source->sink paths of sum_{i in path} b_i * x_i, computed by a
  /// topological DP (no path enumeration). With x = minimal intervals this
  /// is the graph's minimal deadline budget.
  Cycles max_path_budget(const std::vector<double>& b,
                         const std::vector<Cycles>& x) const;

  /// Every source->sink path in deterministic (out-edge insertion) order.
  /// Fails with code "too_many_paths" beyond `max_paths` (the planner's
  /// per-path constraint set must stay enumerable).
  util::Result<std::vector<GraphPath>> enumerate_paths(
      std::size_t max_paths = 64) const;

 private:
  friend class GraphBuilder;
  GraphSpec() = default;

  std::string name_;
  std::uint32_t simd_width_ = 0;
  std::vector<GraphNodeSpec> nodes_;
  std::vector<GraphEdgeSpec> edges_;
  std::vector<std::vector<EdgeIndex>> out_edges_;
  std::vector<std::vector<EdgeIndex>> in_edges_;
  std::vector<NodeIndex> topo_;
  NodeIndex source_ = 0;
  NodeIndex sink_ = 0;
  std::vector<double> node_flows_;  // precomputed expected per-input flow
};

/// Fluent builder with validation at build().
class GraphBuilder {
 public:
  explicit GraphBuilder(std::string name);

  GraphBuilder& simd_width(std::uint32_t v);
  GraphBuilder& add_node(std::string name, NodeKind kind, Cycles service_time);

  /// Adds edge from -> to (by node insertion index) carrying `gain`.
  GraphBuilder& add_edge(NodeIndex from, NodeIndex to, dist::GainPtr gain);

  /// Validates and produces the spec. Failure codes (messages name the
  /// offending node or edge):
  ///   "empty"         — no nodes
  ///   "bad_width"     — simd width not positive
  ///   "bad_service"   — non-positive service time
  ///   "bad_edge"      — endpoint out of range, self-loop, or duplicate edge
  ///   "missing_gain"  — an edge lacks a gain model
  ///   "cycle"         — the edge set is not acyclic
  ///   "no_source" / "multi_source" — not exactly one zero-in-degree node
  ///   "no_sink" / "multi_sink"     — not exactly one zero-out-degree node
  ///   "unreachable"   — a node off every source->sink path
  ///   "bad_degree"    — node kind vs in/out arity mismatch
  ///   "rate_mismatch" — merge/synchronizer in-edge mean flows differ
  util::Result<GraphSpec> build() const;

 private:
  GraphSpec spec_;
};

}  // namespace ripple::graph
