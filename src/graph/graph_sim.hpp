// Discrete-event simulation of enforced-waits schedules over GraphSpec DAGs
// (the per-edge generalization of sim/enforced_sim.hpp), plus the greedy
// throughput baseline extended to DAG routing.
//
// Each node fires on its fixed cadence x_u; a firing consumes up to v items
// from its in-edge queues (elementwise nodes consume one matched item per
// in-edge per lane), samples per-out-edge gains, and delivers the outputs to
// the out-edge queues at firing end. A linear graph delegates to the chain
// simulator on the lowered PipelineSpec, so linear-graph metrics are
// bit-identical to simulate_enforced_waits.
//
// On RIPPLE_OBS builds each consuming firing emits a kind-specific span
// ("graph.fire" / "graph.tee" / "graph.merge" / "graph.sync") on the node's
// track plus a "graph.queue_depth" counter sample per in-edge on the edge's
// own track (track id = node count + edge index); vacuous firings and late
// roots reuse the "empty_firing" / "deadline_miss" instants.
#pragma once

#include <cstdint>
#include <vector>

#include "arrivals/arrival_process.hpp"
#include "graph/graph_spec.hpp"
#include "sim/metrics.hpp"
#include "util/types.hpp"

namespace ripple::graph {

struct GraphSimConfig {
  ItemCount input_count = 50000;
  Cycles deadline = 0.0;  ///< D, for per-root miss accounting
  /// Count firings on empty queues as active time (the paper's accounting).
  bool charge_empty_firings = true;
  std::uint64_t seed = 0;
  std::uint64_t max_events = 500'000'000;  ///< runaway guard
  /// Optional per-node first-firing times, indexed by graph node index.
  std::vector<Cycles> initial_offsets;
};

/// DAG-aligned offsets: node u first fires at max over in-edges (u's
/// predecessor offset + its service time + epsilon), so deliveries along
/// every in-edge strictly precede the consuming firing. On a linear graph
/// this equals sim::aligned_phase_offsets of the lowered pipeline.
std::vector<Cycles> aligned_graph_phase_offsets(const GraphSpec& graph);

/// Run one enforced-waits trial. `firing_intervals` are indexed by graph
/// node index. Node metrics in the result are also indexed by graph node
/// index. Throws std::logic_error on malformed inputs.
sim::TrialMetrics simulate_graph_enforced(
    const GraphSpec& graph, const std::vector<Cycles>& firing_intervals,
    arrivals::ArrivalProcess& arrival_process, const GraphSimConfig& config);

struct GraphGreedyConfig {
  ItemCount input_count = 20000;
  Cycles deadline = 0.0;
  std::uint64_t seed = 0;
  /// Fire only when some node can consume at least this many items per
  /// in-edge, unless the stream has ended (drain).
  std::uint32_t min_batch = 1;
  std::uint64_t max_firings = 500'000'000;
};

/// Greedy throughput baseline on the DAG: the single processor repeatedly
/// runs whichever node has the most queued input (ties to the deeper node in
/// topological order), with exclusive service time t_u / N per firing.
sim::TrialMetrics simulate_graph_greedy(const GraphSpec& graph,
                                        arrivals::ArrivalProcess& arrival_process,
                                        const GraphGreedyConfig& config);

}  // namespace ripple::graph
