#include "graph/graph_executor.hpp"

#include <algorithm>
#include <deque>
#include <exception>
#include <limits>
#include <optional>
#include <thread>
#include <utility>

#include "runtime/executor_internal.hpp"
#include "runtime/soa_queue.hpp"
#include "sim/event_queue.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::graph {

using runtime::BatchEmitter;
using runtime::ExecutionMetrics;
using runtime::RootId;
using runtime::SoaQueue;
using runtime::detail::EventPayload;
using runtime::detail::kPriorityFireEnd;
using runtime::detail::kPriorityFireStart;

namespace {

/// Chain order of a linear graph: node indices along the unique path.
std::vector<NodeIndex> chain_order_of(const GraphSpec& graph) {
  std::vector<NodeIndex> order;
  order.reserve(graph.size());
  NodeIndex current = graph.source();
  for (std::size_t step = 0; step < graph.size(); ++step) {
    order.push_back(current);
    if (graph.out_edges(current).empty()) break;
    current = graph.edge(graph.out_edges(current)[0]).to;
  }
  return order;
}

/// Scatter chain-ordered node metrics back to graph node indices.
void scatter_node_metrics(const std::vector<NodeIndex>& chain_order,
                          sim::TrialMetrics& metrics) {
  std::vector<sim::NodeMetrics> by_graph_index(metrics.nodes.size());
  for (std::size_t p = 0; p < chain_order.size(); ++p) {
    by_graph_index[chain_order[p]] = metrics.nodes[p];
  }
  metrics.nodes = std::move(by_graph_index);
}

#if RIPPLE_OBS
const char* fire_span_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSiso:
      return "graph.fire";
    case NodeKind::kSimoTee:
      return "graph.tee";
    case NodeKind::kMisoElementwise:
      return "graph.merge";
    case NodeKind::kMimoSynchronizer:
      return "graph.sync";
  }
  return "graph.fire";
}
#endif

/// Graph-flavored twin of runtime::detail::validate_run_config (messages
/// name nodes, not chain positions, so linear delegation and the DAG engine
/// report identically).
std::optional<util::Result<ExecutionMetrics>> validate_config(
    const GraphSpec& graph, std::size_t input_count,
    const GraphExecutorConfig& config) {
  using R = util::Result<ExecutionMetrics>;
  if (config.firing_intervals.size() != graph.size()) {
    return R::failure("bad_config", "one firing interval per node required");
  }
  for (NodeIndex u = 0; u < graph.size(); ++u) {
    if (config.firing_intervals[u] < graph.service_time(u) - 1e-9) {
      return R::failure("bad_config",
                        "firing interval below service time at node '" +
                            graph.node(u).name + "'");
    }
  }
  if (input_count == 0) {
    return R::failure("bad_config", "need at least one input");
  }
  if (!config.input_gaps.empty()) {
    if (config.input_gaps.size() != input_count) {
      return R::failure("bad_config", "one arrival gap per input required");
    }
    for (Cycles gap : config.input_gaps) {
      if (!(gap > 0.0)) {
        return R::failure("bad_config", "arrival gaps must be positive");
      }
    }
  } else if (!(config.input_gap > 0.0)) {
    return R::failure("bad_config", "input gap must be positive");
  }
  return std::nullopt;
}

}  // namespace

GraphExecutor::GraphExecutor(GraphSpec graph, std::vector<GraphStageFn> stages)
    : graph_(std::move(graph)), stages_(std::move(stages)) {
  RIPPLE_REQUIRE(stages_.size() == graph_.size(),
                 "one stage function per graph node");
  for (NodeIndex u = 0; u < graph_.size(); ++u) {
    if (graph_.node(u).kind == NodeKind::kMimoSynchronizer) {
      RIPPLE_REQUIRE(
          !stages_[u],
          "synchronizer nodes forward without a stage (register nullptr)");
    } else {
      RIPPLE_REQUIRE(static_cast<bool>(stages_[u]),
                     "stage function for node '" + graph_.node(u).name +
                         "' must be callable");
    }
  }
  if (graph_.is_linear()) {
    chain_order_ = chain_order_of(graph_);
    auto lowered = graph_.lower_to_pipeline();
    RIPPLE_REQUIRE(lowered.ok(), "linear graph must lower to a pipeline");
    std::vector<runtime::StageFn> chain_stages;
    chain_stages.reserve(graph_.size());
    for (NodeIndex u : chain_order_) {
      chain_stages.push_back(
          [fn = stages_[u]](Item&& input, std::vector<Item>& outputs) {
            std::vector<Item> lane_inputs;
            lane_inputs.reserve(1);
            lane_inputs.push_back(std::move(input));
            fn(std::move(lane_inputs), outputs);
          });
    }
    linear_ = std::make_unique<runtime::PipelineExecutor>(
        std::move(lowered).take(), std::move(chain_stages));
  }
}

GraphExecutor::~GraphExecutor() = default;

util::ThreadPool& GraphExecutor::acquire_pool(std::size_t threads) const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (pool_ == nullptr || pool_->thread_count() != threads) {
    pool_.reset();  // quiesced between runs; join before respawn
    pool_ = std::make_unique<util::ThreadPool>(threads);
  }
  return *pool_;
}

util::Result<ExecutionMetrics> GraphExecutor::run(
    std::vector<Item> inputs, const GraphExecutorConfig& config) const {
  if (auto invalid = validate_config(graph_, inputs.size(), config)) {
    return *std::move(invalid);
  }
  const std::size_t threads =
      config.exec_threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : config.exec_threads;
  if (linear_ != nullptr) {
    // Chain delegation: bit-identical to the existing vector engine.
    const std::size_t n = graph_.size();
    runtime::ExecutorConfig chain;
    chain.firing_intervals.resize(n);
    for (std::size_t p = 0; p < n; ++p) {
      chain.firing_intervals[p] = config.firing_intervals[chain_order_[p]];
    }
    chain.input_gap = config.input_gap;
    chain.input_gaps = config.input_gaps;
    chain.deadline = config.deadline;
    chain.charge_empty_firings = config.charge_empty_firings;
    chain.max_collected_results = config.max_collected_results;
    chain.max_events = config.max_events;
    chain.exec_threads = threads;
    auto result = linear_->run(std::move(inputs), chain);
    if (!result.ok()) return result;
    ExecutionMetrics metrics = std::move(result).take();
    scatter_node_metrics(chain_order_, metrics.base);
    return metrics;
  }
  return execute_dag(inputs, config, threads);
}

util::Result<ExecutionMetrics> GraphExecutor::execute_dag(
    std::vector<Item>& inputs, const GraphExecutorConfig& config,
    std::size_t threads) const {
  using R = util::Result<ExecutionMetrics>;
  const std::size_t n = graph_.size();
  const std::uint32_t v = graph_.simd_width();
  const std::size_t input_count = inputs.size();
  const bool per_input_gaps = !config.input_gaps.empty();

  ExecutionMetrics metrics;
  metrics.base.nodes.resize(n);
  metrics.base.vector_width = v;
  metrics.base.sharing_actors = n;
  metrics.base.arm_latency_histogram(config.deadline);

  std::vector<Cycles> service_time(n);
  for (NodeIndex u = 0; u < n; ++u) service_time[u] = graph_.service_time(u);

  // One item queue per edge, plus the source's arrival queue.
  const std::size_t arrival_queue = graph_.edge_count();
  std::vector<SoaQueue> queues(graph_.edge_count() + 1);
  for (SoaQueue& queue : queues) {
    queue.configure(0, /*carries_items=*/true);
    queue.reserve(2 * v);
  }
  std::vector<std::vector<std::size_t>> in_queues(n);
  for (NodeIndex u = 0; u < n; ++u) {
    if (u == graph_.source()) {
      in_queues[u] = {arrival_queue};
    } else {
      for (EdgeIndex e : graph_.in_edges(u)) in_queues[u].push_back(e);
    }
  }

  // In-flight firing outputs, one emitter + root vector per out-edge slot
  // (sinks keep their results in slot 0 until the fire-end).
  std::vector<std::vector<BatchEmitter>> in_flight(n);
  std::vector<std::vector<std::vector<RootId>>> in_flight_roots(n);
  for (NodeIndex u = 0; u < n; ++u) {
    const std::size_t slots =
        std::max<std::size_t>(1, graph_.out_edges(u).size());
    in_flight[u].resize(slots);
    in_flight_roots[u].resize(slots);
    for (auto& roots : in_flight_roots[u]) roots.reserve(v);
  }

  std::vector<Cycles> root_arrival(input_count, 0.0);
  std::vector<bool> root_missed(input_count, false);

  std::uint64_t live_items = 0;
  std::size_t next_input = 0;
  Cycles next_arrival = per_input_gaps ? config.input_gaps[0] : config.input_gap;
  bool arrivals_done = false;

  const auto materialize_arrivals = [&](Cycles now) {
    if (arrivals_done || next_arrival > now) return;
    while (!arrivals_done && next_arrival <= now) {
      const RootId root = static_cast<RootId>(next_input);
      root_arrival[root] = next_arrival;
      ++metrics.base.inputs_arrived;
      queues[arrival_queue].push_item(std::move(inputs[next_input]), root);
      ++live_items;
      ++next_input;
      if (next_input == input_count) {
        arrivals_done = true;
      } else {
        next_arrival +=
            per_input_gaps ? config.input_gaps[next_input] : config.input_gap;
      }
    }
    metrics.base.nodes[graph_.source()].max_queue_length =
        std::max<std::uint64_t>(
            metrics.base.nodes[graph_.source()].max_queue_length,
            queues[arrival_queue].size());
  };

  sim::EventQueue<EventPayload> events;
  for (NodeIndex u = 0; u < n; ++u) {
    events.push(0.0, kPriorityFireStart, {EventPayload::Kind::kFireStart, u});
  }

#if RIPPLE_OBS
  obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
  if (trace.active()) {
    for (NodeIndex u = 0; u < n; ++u) {
      obs::TraceSession::global().set_track_name(
          obs::Domain::kSim, static_cast<std::uint32_t>(u), graph_.node(u).name);
    }
    for (EdgeIndex e = 0; e < graph_.edge_count(); ++e) {
      obs::TraceSession::global().set_track_name(
          obs::Domain::kSim, static_cast<std::uint32_t>(n + e),
          "edge " + graph_.node(graph_.edge(e).from).name + "->" +
              graph_.node(graph_.edge(e).to).name);
    }
  }
#endif

  // One wave = every FireStart sharing a timestamp. Wave members consume
  // disjoint queues (distinct nodes never share an in-edge, and same-time
  // fire-ends pop first on priority), so gathering sequentially in pop
  // order, running the stage functions concurrently, and committing effects
  // sequentially in pop order replays the sequential engine exactly — one
  // code path for every exec_threads value.
  struct Firing {
    NodeIndex node = 0;
    std::uint32_t consumed = 0;
    bool run_stage = false;
    std::vector<std::vector<Item>> windows;  ///< one per in-queue
    std::exception_ptr error;
  };
  std::vector<Firing> wave;
  std::size_t wave_count = 0;

  const auto execute_firing = [&](Firing& firing) {
    if (!firing.run_stage) return;
    const NodeIndex u = firing.node;
    const GraphStageFn& fn = stages_[u];
    const NodeKind kind = graph_.node(u).kind;
    std::vector<BatchEmitter>& emitters = in_flight[u];
    const std::size_t fan_in = firing.windows.size();
    std::vector<Item> scratch;
    try {
      for (std::uint32_t k = 0; k < firing.consumed; ++k) {
        std::vector<Item> lane_inputs;
        lane_inputs.reserve(fan_in);
        for (std::size_t q = 0; q < fan_in; ++q) {
          lane_inputs.push_back(std::move(firing.windows[q][k]));
        }
        scratch.clear();
        fn(std::move(lane_inputs), scratch);
        if (kind == NodeKind::kSimoTee) {
          const std::size_t slots = emitters.size();
          for (std::size_t s = 0; s < slots; ++s) {
            for (Item& out : scratch) {
              emitters[s].emit_item(k,
                                    s + 1 < slots ? Item(out) : std::move(out));
            }
          }
        } else {
          for (Item& out : scratch) emitters[0].emit_item(k, std::move(out));
        }
      }
    } catch (...) {
      firing.error = std::current_exception();
    }
  };

  std::uint64_t processed = 0;
  while (!events.empty() && processed < config.max_events) {
    const auto event = events.pop();
    ++processed;
    const Cycles now = event.time;
    materialize_arrivals(now);

    if (event.payload.kind == EventPayload::Kind::kFireEnd) {
      const NodeIndex u = event.payload.node;
      const std::vector<EdgeIndex>& out = graph_.out_edges(u);
      if (out.empty()) {
        BatchEmitter& emitter = in_flight[u][0];
        const std::vector<RootId>& lane_roots = in_flight_roots[u][0];
        const std::uint32_t* counts = emitter.counts();
        std::size_t out_idx = 0;
        for (std::size_t lane = 0; lane < emitter.lanes(); ++lane) {
          const RootId root = lane_roots[lane];
          for (std::uint32_t c = 0; c < counts[lane]; ++c, ++out_idx) {
            ++metrics.base.sink_outputs;
            const Cycles latency = now - root_arrival[root];
            metrics.base.record_latency(latency);
            if (config.deadline > 0.0 &&
                latency > config.deadline * (1.0 + 1e-12) &&
                !root_missed[root]) {
              root_missed[root] = true;
              ++metrics.base.inputs_missed;
#if RIPPLE_OBS
              if (trace.active()) {
                trace.instant(obs::Domain::kSim, static_cast<std::uint32_t>(u),
                              "deadline_miss", now, config.deadline - latency);
              }
#endif
            }
            metrics.base.makespan = std::max(metrics.base.makespan, now);
            if (metrics.results.size() < config.max_collected_results) {
              metrics.results.push_back(std::move(emitter.items()[out_idx]));
            }
          }
        }
        live_items -= emitter.total();
        emitter.reset(0, 0, /*carries_items=*/true);
      } else {
        for (std::size_t s = 0; s < out.size(); ++s) {
          BatchEmitter& emitter = in_flight[u][s];
          SoaQueue& queue = queues[out[s]];
          queue.append(emitter, in_flight_roots[u][s].data());
          const NodeIndex target = graph_.edge(out[s]).to;
          metrics.base.nodes[target].max_queue_length = std::max<std::uint64_t>(
              metrics.base.nodes[target].max_queue_length, queue.size());
          emitter.reset(0, 0, /*carries_items=*/true);
        }
      }
#if RIPPLE_OBS
      if (trace.active()) {
        trace.end(obs::Domain::kSim, static_cast<std::uint32_t>(u),
                  fire_span_name(graph_.node(u).kind), now);
      }
#endif
      continue;
    }

    // ------------------------------------------------------------ FireStart
    // Gather phase: absorb every same-timestamp FireStart into the wave,
    // window the consumed lanes, and arm the emitters — in pop order.
    wave_count = 0;
    NodeIndex wave_node = event.payload.node;
    while (true) {
      Firing& firing =
          wave_count < wave.size() ? wave[wave_count] : wave.emplace_back();
      ++wave_count;
      const NodeIndex u = wave_node;
      firing.node = u;
      firing.run_stage = false;
      firing.error = nullptr;

      sim::NodeMetrics& node = metrics.base.nodes[u];
      const std::vector<std::size_t>& node_inputs = in_queues[u];
      std::uint64_t deepest = 0;
      std::uint64_t matched = std::numeric_limits<std::uint64_t>::max();
      for (const std::size_t q : node_inputs) {
        deepest = std::max<std::uint64_t>(deepest, queues[q].size());
        matched = std::min<std::uint64_t>(matched, queues[q].size());
      }
      const NodeKind kind = graph_.node(u).kind;
      const bool elementwise = kind == NodeKind::kMisoElementwise ||
                               kind == NodeKind::kMimoSynchronizer;
      const std::uint32_t consumed = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(elementwise ? matched : deepest, v));
      firing.consumed = consumed;

#if RIPPLE_OBS
      if (trace.active()) {
        for (const std::size_t q : node_inputs) {
          const std::uint32_t track = q == arrival_queue
                                          ? static_cast<std::uint32_t>(u)
                                          : static_cast<std::uint32_t>(n + q);
          trace.counter(obs::Domain::kSim, track, "graph.queue_depth", now,
                        static_cast<double>(queues[q].size()));
        }
        if (consumed > 0) {
          trace.begin(obs::Domain::kSim, static_cast<std::uint32_t>(u),
                      fire_span_name(kind), now);
        } else if (config.charge_empty_firings) {
          trace.instant(obs::Domain::kSim, static_cast<std::uint32_t>(u),
                        "empty_firing", now, service_time[u]);
        }
      }
#endif

      if (consumed > 0 || config.charge_empty_firings) {
        ++node.firings;
        if (consumed == 0) ++node.empty_firings;
        node.active_time += service_time[u];
      }

      if (consumed > 0) {
        if (kind == NodeKind::kMimoSynchronizer) {
          // Pure forwarding: stream j's items move straight into out-slot j.
          for (std::size_t j = 0; j < node_inputs.size(); ++j) {
            SoaQueue& queue = queues[node_inputs[j]];
            BatchEmitter& emitter = in_flight[u][j];
            emitter.reset(consumed, 0, /*carries_items=*/true);
            std::vector<RootId>& roots = in_flight_roots[u][j];
            roots.resize(consumed);
            for (std::uint32_t k = 0; k < consumed; ++k) {
              emitter.emit_item(k, std::move(queue.item_at(k)));
              roots[k] = queue.root_at(k);
            }
            queue.discard_front(consumed);
          }
        } else {
          firing.run_stage = true;
          firing.windows.resize(node_inputs.size());
          for (std::size_t j = 0; j < node_inputs.size(); ++j) {
            SoaQueue& queue = queues[node_inputs[j]];
            std::vector<Item>& window = firing.windows[j];
            window.resize(consumed);
            for (std::uint32_t k = 0; k < consumed; ++k) {
              window[k] = std::move(queue.item_at(k));
            }
          }
          // Roots follow the first in-queue (merge tuples re-join tee'd
          // copies of the same root); tee replicates them to every slot.
          const std::size_t slots = in_flight[u].size();
          std::vector<RootId>& roots0 = in_flight_roots[u][0];
          roots0.resize(consumed);
          for (std::uint32_t k = 0; k < consumed; ++k) {
            roots0[k] = queues[node_inputs[0]].root_at(k);
          }
          for (std::size_t s = 0; s < slots; ++s) {
            in_flight[u][s].reset(consumed, 0, /*carries_items=*/true);
            if (s > 0) in_flight_roots[u][s] = roots0;
          }
          for (const std::size_t q : node_inputs) {
            queues[q].discard_front(consumed);
          }
        }
      }

      if (events.empty() || processed >= config.max_events ||
          events.top().time != now ||
          events.top().payload.kind != EventPayload::Kind::kFireStart) {
        break;
      }
      const auto next = events.pop();
      ++processed;
      wave_node = next.payload.node;
    }

    // Execute phase: stage functions only touch their own windows/emitters.
    std::size_t stage_members = 0;
    for (std::size_t i = 0; i < wave_count; ++i) {
      if (wave[i].run_stage) ++stage_members;
    }
    if (threads > 1 && stage_members > 1) {
      acquire_pool(threads).parallel_for(
          wave_count, [&](std::size_t i) { execute_firing(wave[i]); });
    } else {
      for (std::size_t i = 0; i < wave_count; ++i) execute_firing(wave[i]);
    }

    // Commit phase, in pop order.
    for (std::size_t i = 0; i < wave_count; ++i) {
      Firing& firing = wave[i];
      const NodeIndex u = firing.node;
      if (firing.consumed > 0) {
        if (firing.error) {
          try {
            std::rethrow_exception(firing.error);
          } catch (const std::exception& e) {
            return R::failure("stage_exception", "stage '" +
                                                     graph_.node(u).name +
                                                     "' threw: " + e.what());
          } catch (...) {
            return R::failure(
                "stage_exception",
                "stage '" + graph_.node(u).name + "' threw");
          }
        }
        sim::NodeMetrics& node = metrics.base.nodes[u];
        const NodeKind kind = graph_.node(u).kind;
        const bool elementwise = kind == NodeKind::kMisoElementwise ||
                                 kind == NodeKind::kMimoSynchronizer;
        const std::uint64_t consumed_total =
            static_cast<std::uint64_t>(firing.consumed) *
            (elementwise ? in_queues[u].size() : 1);
        std::uint64_t produced = 0;
        for (const BatchEmitter& emitter : in_flight[u]) {
          produced += emitter.total();
        }
        node.items_consumed += consumed_total;
        node.items_produced += produced;
        live_items += produced;
        live_items -= consumed_total;
        events.push(now + service_time[u], kPriorityFireEnd,
                    {EventPayload::Kind::kFireEnd, u});
      }
      if (!(arrivals_done && live_items == 0)) {
        events.push(now + config.firing_intervals[u], kPriorityFireStart,
                    {EventPayload::Kind::kFireStart, u});
      }
    }
  }
  if (processed >= config.max_events) {
    return R::failure("event_budget",
                      "event budget exhausted (unstable schedule?)");
  }

  metrics.base.inputs_on_time =
      metrics.base.inputs_arrived - metrics.base.inputs_missed;
  if (metrics.base.makespan <= 0.0 && metrics.base.inputs_arrived > 0) {
    metrics.base.makespan =
        per_input_gaps
            ? next_arrival
            : config.input_gap *
                  static_cast<double>(metrics.base.inputs_arrived);
  }
  return metrics;
}

util::Result<ExecutionMetrics> GraphExecutor::run_reference(
    std::vector<Item> inputs, const GraphExecutorConfig& config) const {
  using R = util::Result<ExecutionMetrics>;
  if (auto invalid = validate_config(graph_, inputs.size(), config)) {
    return *std::move(invalid);
  }
  const std::size_t n = graph_.size();
  const std::uint32_t v = graph_.simd_width();
  const std::size_t input_count = inputs.size();
  const bool per_input_gaps = !config.input_gaps.empty();

  ExecutionMetrics metrics;
  metrics.base.nodes.resize(n);
  metrics.base.vector_width = v;
  metrics.base.sharing_actors = n;
  metrics.base.arm_latency_histogram(config.deadline);

  std::vector<Cycles> service_time(n);
  for (NodeIndex u = 0; u < n; ++u) service_time[u] = graph_.service_time(u);

  using Lane = std::pair<Item, RootId>;
  const std::size_t arrival_queue = graph_.edge_count();
  std::vector<std::deque<Lane>> queues(graph_.edge_count() + 1);
  std::vector<std::vector<std::size_t>> in_queues(n);
  for (NodeIndex u = 0; u < n; ++u) {
    if (u == graph_.source()) {
      in_queues[u] = {arrival_queue};
    } else {
      for (EdgeIndex e : graph_.in_edges(u)) in_queues[u].push_back(e);
    }
  }
  std::vector<std::vector<std::vector<Lane>>> in_flight(n);
  for (NodeIndex u = 0; u < n; ++u) {
    in_flight[u].resize(std::max<std::size_t>(1, graph_.out_edges(u).size()));
  }

  std::vector<Cycles> root_arrival(input_count, 0.0);
  std::vector<bool> root_missed(input_count, false);

  std::uint64_t live_items = 0;
  std::size_t next_input = 0;
  Cycles next_arrival = per_input_gaps ? config.input_gaps[0] : config.input_gap;
  bool arrivals_done = false;

  const auto materialize_arrivals = [&](Cycles now) {
    if (arrivals_done || next_arrival > now) return;
    while (!arrivals_done && next_arrival <= now) {
      const RootId root = static_cast<RootId>(next_input);
      root_arrival[root] = next_arrival;
      ++metrics.base.inputs_arrived;
      queues[arrival_queue].emplace_back(std::move(inputs[next_input]), root);
      ++live_items;
      ++next_input;
      if (next_input == input_count) {
        arrivals_done = true;
      } else {
        next_arrival +=
            per_input_gaps ? config.input_gaps[next_input] : config.input_gap;
      }
    }
    metrics.base.nodes[graph_.source()].max_queue_length =
        std::max<std::uint64_t>(
            metrics.base.nodes[graph_.source()].max_queue_length,
            queues[arrival_queue].size());
  };

  sim::EventQueue<EventPayload> events;
  if (linear_ != nullptr) {
    // Chain order so the event sequence numbers (and hence any same-time
    // FireStart ordering) match the delegated PipelineExecutor's exactly.
    for (NodeIndex u : chain_order_) {
      events.push(0.0, kPriorityFireStart, {EventPayload::Kind::kFireStart, u});
    }
  } else {
    for (NodeIndex u = 0; u < n; ++u) {
      events.push(0.0, kPriorityFireStart, {EventPayload::Kind::kFireStart, u});
    }
  }

  std::vector<Item> scratch;
  std::uint64_t processed = 0;
  while (!events.empty() && processed < config.max_events) {
    const auto event = events.pop();
    ++processed;
    const Cycles now = event.time;
    materialize_arrivals(now);

    if (event.payload.kind == EventPayload::Kind::kFireEnd) {
      const NodeIndex u = event.payload.node;
      const std::vector<EdgeIndex>& out = graph_.out_edges(u);
      if (out.empty()) {
        std::vector<Lane>& bundle = in_flight[u][0];
        for (Lane& lane : bundle) {
          ++metrics.base.sink_outputs;
          const Cycles latency = now - root_arrival[lane.second];
          metrics.base.record_latency(latency);
          if (config.deadline > 0.0 &&
              latency > config.deadline * (1.0 + 1e-12) &&
              !root_missed[lane.second]) {
            root_missed[lane.second] = true;
            ++metrics.base.inputs_missed;
          }
          metrics.base.makespan = std::max(metrics.base.makespan, now);
          if (metrics.results.size() < config.max_collected_results) {
            metrics.results.push_back(std::move(lane.first));
          }
        }
        live_items -= bundle.size();
        bundle.clear();
      } else {
        for (std::size_t s = 0; s < out.size(); ++s) {
          std::vector<Lane>& bundle = in_flight[u][s];
          std::deque<Lane>& queue = queues[out[s]];
          for (Lane& lane : bundle) queue.push_back(std::move(lane));
          const NodeIndex target = graph_.edge(out[s]).to;
          metrics.base.nodes[target].max_queue_length = std::max<std::uint64_t>(
              metrics.base.nodes[target].max_queue_length, queue.size());
          bundle.clear();
        }
      }
      continue;
    }

    // FireStart
    const NodeIndex u = event.payload.node;
    sim::NodeMetrics& node = metrics.base.nodes[u];
    const std::vector<std::size_t>& node_inputs = in_queues[u];
    std::uint64_t deepest = 0;
    std::uint64_t matched = std::numeric_limits<std::uint64_t>::max();
    for (const std::size_t q : node_inputs) {
      deepest = std::max<std::uint64_t>(deepest, queues[q].size());
      matched = std::min<std::uint64_t>(matched, queues[q].size());
    }
    const NodeKind kind = graph_.node(u).kind;
    const bool elementwise = kind == NodeKind::kMisoElementwise ||
                             kind == NodeKind::kMimoSynchronizer;
    const std::uint32_t consumed = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(elementwise ? matched : deepest, v));

    if (consumed > 0 || config.charge_empty_firings) {
      ++node.firings;
      if (consumed == 0) ++node.empty_firings;
      node.active_time += service_time[u];
    }

    if (consumed > 0) {
      std::uint64_t produced = 0;
      try {
        if (kind == NodeKind::kMimoSynchronizer) {
          for (std::size_t j = 0; j < node_inputs.size(); ++j) {
            std::deque<Lane>& queue = queues[node_inputs[j]];
            std::vector<Lane>& bundle = in_flight[u][j];
            for (std::uint32_t k = 0; k < consumed; ++k) {
              bundle.push_back(std::move(queue[k]));
            }
            queue.erase(queue.begin(), queue.begin() + consumed);
            produced += consumed;
          }
        } else {
          const GraphStageFn& fn = stages_[u];
          for (std::uint32_t k = 0; k < consumed; ++k) {
            std::vector<Item> lane_inputs;
            lane_inputs.reserve(node_inputs.size());
            for (const std::size_t q : node_inputs) {
              lane_inputs.push_back(std::move(queues[q][k].first));
            }
            const RootId root = queues[node_inputs[0]][k].second;
            scratch.clear();
            fn(std::move(lane_inputs), scratch);
            if (kind == NodeKind::kSimoTee) {
              const std::size_t slots = in_flight[u].size();
              for (std::size_t s = 0; s < slots; ++s) {
                for (Item& out : scratch) {
                  in_flight[u][s].emplace_back(
                      s + 1 < slots ? Item(out) : std::move(out), root);
                }
                produced += scratch.size();
              }
            } else {
              for (Item& out : scratch) {
                in_flight[u][0].emplace_back(std::move(out), root);
              }
              produced += scratch.size();
            }
          }
          for (const std::size_t q : node_inputs) {
            queues[q].erase(queues[q].begin(), queues[q].begin() + consumed);
          }
        }
      } catch (const std::exception& e) {
        return R::failure("stage_exception", "stage '" + graph_.node(u).name +
                                                 "' threw: " + e.what());
      } catch (...) {
        return R::failure("stage_exception",
                          "stage '" + graph_.node(u).name + "' threw");
      }
      const std::uint64_t consumed_total =
          static_cast<std::uint64_t>(consumed) *
          (elementwise ? node_inputs.size() : 1);
      node.items_consumed += consumed_total;
      node.items_produced += produced;
      live_items += produced;
      live_items -= consumed_total;
      events.push(now + service_time[u], kPriorityFireEnd,
                  {EventPayload::Kind::kFireEnd, u});
    }
    if (!(arrivals_done && live_items == 0)) {
      events.push(now + config.firing_intervals[u], kPriorityFireStart,
                  {EventPayload::Kind::kFireStart, u});
    }
  }
  if (processed >= config.max_events) {
    return R::failure("event_budget",
                      "event budget exhausted (unstable schedule?)");
  }

  metrics.base.inputs_on_time =
      metrics.base.inputs_arrived - metrics.base.inputs_missed;
  if (metrics.base.makespan <= 0.0 && metrics.base.inputs_arrived > 0) {
    metrics.base.makespan =
        per_input_gaps
            ? next_arrival
            : config.input_gap *
                  static_cast<double>(metrics.base.inputs_arrived);
  }
  return metrics;
}

}  // namespace ripple::graph
