#include "graph/graph_sim.hpp"

#include <algorithm>
#include <limits>

#include "dist/rng.hpp"
#include "sim/enforced_sim.hpp"
#include "sim/event_sources.hpp"
#include "sim/greedy_sim.hpp"
#include "util/assert.hpp"
#include "util/ring_buffer.hpp"

#if RIPPLE_OBS
#include "obs/obs.hpp"
#endif

namespace ripple::graph {

namespace {

using RootId = std::uint32_t;

enum EventPriority : int {
  kPriorityFireEnd = 0,
  kPriorityArrival = 1,
  kPriorityFireStart = 2,
};

/// Chain order of a linear graph: node indices along the unique path.
std::vector<NodeIndex> chain_order_of(const GraphSpec& graph) {
  std::vector<NodeIndex> order;
  order.reserve(graph.size());
  NodeIndex current = graph.source();
  for (std::size_t step = 0; step < graph.size(); ++step) {
    order.push_back(current);
    if (graph.out_edges(current).empty()) break;
    current = graph.edge(graph.out_edges(current)[0]).to;
  }
  return order;
}

/// Scatter chain-ordered node metrics back to graph node indices (identity
/// when the graph was built in chain order).
void scatter_node_metrics(const std::vector<NodeIndex>& chain_order,
                          sim::TrialMetrics& metrics) {
  std::vector<sim::NodeMetrics> by_graph_index(metrics.nodes.size());
  for (std::size_t p = 0; p < chain_order.size(); ++p) {
    by_graph_index[chain_order[p]] = metrics.nodes[p];
  }
  metrics.nodes = std::move(by_graph_index);
}

#if RIPPLE_OBS
/// Kind-specific span names — string literals, as obs/trace.hpp requires.
const char* fire_span_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSiso:
      return "graph.fire";
    case NodeKind::kSimoTee:
      return "graph.tee";
    case NodeKind::kMisoElementwise:
      return "graph.merge";
    case NodeKind::kMimoSynchronizer:
      return "graph.sync";
  }
  return "graph.fire";
}
#endif

}  // namespace

std::vector<Cycles> aligned_graph_phase_offsets(const GraphSpec& graph) {
  std::vector<Cycles> offsets(graph.size(), 0.0);
  for (NodeIndex u : graph.topo_order()) {
    Cycles offset = 0.0;
    for (EdgeIndex e : graph.in_edges(u)) {
      const NodeIndex from = graph.edge(e).from;
      // +epsilon so the consuming firing strictly follows the delivery even
      // under floating-point ties (matches sim::aligned_phase_offsets).
      offset = std::max(offset,
                        offsets[from] + graph.service_time(from) + 1e-6);
    }
    offsets[u] = offset;
  }
  return offsets;
}

sim::TrialMetrics simulate_graph_enforced(
    const GraphSpec& graph, const std::vector<Cycles>& firing_intervals,
    arrivals::ArrivalProcess& arrival_process, const GraphSimConfig& config) {
  const std::size_t n = graph.size();
  RIPPLE_REQUIRE(firing_intervals.size() == n, "one firing interval per node");
  for (NodeIndex u = 0; u < n; ++u) {
    RIPPLE_REQUIRE(firing_intervals[u] >= graph.service_time(u) - 1e-9,
                   "firing interval below service time at node " +
                       graph.node(u).name);
  }
  RIPPLE_REQUIRE(config.input_count > 0, "need at least one input");
  RIPPLE_REQUIRE(config.initial_offsets.empty() ||
                     config.initial_offsets.size() == n,
                 "one phase offset per node (or none)");

  if (graph.is_linear()) {
    // Chain delegation: bit-identical to the paper-path simulator.
    const std::vector<NodeIndex> order = chain_order_of(graph);
    auto lowered = graph.lower_to_pipeline();
    RIPPLE_REQUIRE(lowered.ok(), "linear graph must lower to a pipeline");
    sim::EnforcedSimConfig chain_config;
    chain_config.input_count = config.input_count;
    chain_config.deadline = config.deadline;
    chain_config.charge_empty_firings = config.charge_empty_firings;
    chain_config.seed = config.seed;
    chain_config.max_events = config.max_events;
    std::vector<Cycles> chain_intervals(n);
    for (std::size_t p = 0; p < n; ++p) {
      chain_intervals[p] = firing_intervals[order[p]];
    }
    if (!config.initial_offsets.empty()) {
      chain_config.initial_offsets.resize(n);
      for (std::size_t p = 0; p < n; ++p) {
        chain_config.initial_offsets[p] = config.initial_offsets[order[p]];
      }
    }
    sim::TrialMetrics metrics = sim::simulate_enforced_waits(
        lowered.value(), chain_intervals, arrival_process, chain_config);
    scatter_node_metrics(order, metrics);
    return metrics;
  }

  dist::Xoshiro256 rng(config.seed);
  const std::uint32_t v = graph.simd_width();

  sim::TrialMetrics metrics;
  metrics.reset(n);
  metrics.vector_width = v;
  metrics.sharing_actors = n;
  metrics.arm_latency_histogram(config.deadline);

  // Flat caches for the dispatch loop.
  std::vector<Cycles> service_time(n);
  for (NodeIndex u = 0; u < n; ++u) service_time[u] = graph.service_time(u);
  std::vector<const dist::GainDistribution*> edge_gain(graph.edge_count());
  for (EdgeIndex e = 0; e < graph.edge_count(); ++e) {
    edge_gain[e] = graph.edge(e).gain.get();
  }

  // One queue per edge, plus the source's arrival queue at index edge_count.
  const std::size_t arrival_queue = graph.edge_count();
  std::vector<util::RingBuffer<RootId>> queues(graph.edge_count() + 1);
  for (auto& queue : queues) queue.reserve(4 * v);
  // In-queue indices per node (the source consumes the arrival queue).
  std::vector<std::vector<std::size_t>> in_queues(n);
  for (NodeIndex u = 0; u < n; ++u) {
    if (u == graph.source()) {
      in_queues[u] = {arrival_queue};
    } else {
      for (EdgeIndex e : graph.in_edges(u)) in_queues[u].push_back(e);
    }
  }

  // Outputs of the in-progress firing, one bundle per out-edge slot (sinks
  // keep their consumed roots in slot 0 until the exit at firing end).
  std::vector<std::vector<std::vector<RootId>>> in_flight(n);
  for (NodeIndex u = 0; u < n; ++u) {
    const std::size_t slots = std::max<std::size_t>(1, graph.out_edges(u).size());
    in_flight[u].resize(slots);
    for (std::size_t s = 0; s < slots; ++s) {
      const std::uint32_t cap =
          s < graph.out_edges(u).size()
              ? edge_gain[graph.out_edges(u)[s]]->max_outputs()
              : 1u;
      in_flight[u][s].reserve(static_cast<std::size_t>(v) * cap);
    }
  }
  std::vector<dist::OutputCount> gain_draws(v);
  // Per-lane roots gathered for the current firing (merge tuples take the
  // first in-edge's root).
  std::vector<RootId> lane_roots(v);

  std::vector<Cycles> root_arrival;
  root_arrival.reserve(config.input_count);
  std::vector<bool> root_missed(config.input_count, false);

  std::uint64_t live_items = 0;
  bool arrivals_done = false;
  const Cycles fixed_gap = arrival_process.fixed_interarrival();

  const std::size_t kArrivalSource = 0;
  const std::size_t kFireStartBase = 1;
  const std::size_t kFireEndBase = 1 + n;
  sim::IndexedScheduler events(2 * n + 1);

  events.schedule(kArrivalSource, arrival_process.next_interarrival(rng),
                  kPriorityArrival);
  for (NodeIndex u = 0; u < n; ++u) {
    const Cycles offset =
        config.initial_offsets.empty() ? 0.0 : config.initial_offsets[u];
    RIPPLE_REQUIRE(offset >= 0.0, "phase offsets must be non-negative");
    events.schedule(kFireStartBase + u, offset, kPriorityFireStart);
  }

#if RIPPLE_OBS
  // Node tracks carry the spans/instants; each edge gets its own counter
  // track (id = node count + edge index) so per-edge queue depths stay
  // separable in the exported timeline.
  obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
  if (trace.active()) {
    for (NodeIndex u = 0; u < n; ++u) {
      obs::TraceSession::global().set_track_name(
          obs::Domain::kSim, static_cast<std::uint32_t>(u), graph.node(u).name);
    }
    for (EdgeIndex e = 0; e < graph.edge_count(); ++e) {
      obs::TraceSession::global().set_track_name(
          obs::Domain::kSim, static_cast<std::uint32_t>(n + e),
          "edge " + graph.node(graph.edge(e).from).name + "->" +
              graph.node(graph.edge(e).to).name);
    }
  }
#endif

  std::uint64_t processed_events = 0;
  while (!events.empty() && processed_events < config.max_events) {
    const sim::IndexedScheduler::Next event = events.pop();
    ++processed_events;
    const Cycles now = event.time;

    if (event.source >= kFireEndBase) {
      // ------------------------------------------------------------ FireEnd
      const NodeIndex u = static_cast<NodeIndex>(event.source - kFireEndBase);
      const std::vector<EdgeIndex>& out = graph.out_edges(u);
      if (out.empty()) {
        // Sink exit: slot 0 holds the consumed roots.
        auto& bundle = in_flight[u][0];
        for (const RootId root : bundle) {
          ++metrics.sink_outputs;
          const Cycles latency = now - root_arrival[root];
          metrics.record_latency(latency);
          if (config.deadline > 0.0 &&
              latency > config.deadline * (1.0 + 1e-12)) {
            if (!root_missed[root]) {
              root_missed[root] = true;
              ++metrics.inputs_missed;
#if RIPPLE_OBS
              if (trace.active()) {
                trace.instant(obs::Domain::kSim, static_cast<std::uint32_t>(u),
                              "deadline_miss", now, config.deadline - latency);
              }
#endif
            }
          }
          metrics.makespan = std::max(metrics.makespan, now);
        }
        live_items -= bundle.size();
        bundle.clear();
      } else {
        for (std::size_t s = 0; s < out.size(); ++s) {
          auto& bundle = in_flight[u][s];
          auto& queue = queues[out[s]];
          for (const RootId root : bundle) queue.push_back(root);
          bundle.clear();
        }
      }
#if RIPPLE_OBS
      if (trace.active()) {
        trace.end(obs::Domain::kSim, static_cast<std::uint32_t>(u),
                  fire_span_name(graph.node(u).kind), now);
      }
#endif
    } else if (event.source >= kFireStartBase) {
      // ---------------------------------------------------------- FireStart
      const NodeIndex u = static_cast<NodeIndex>(event.source - kFireStartBase);
      sim::NodeMetrics& node = metrics.nodes[u];
      const std::vector<std::size_t>& inputs = in_queues[u];

      // Consumable lanes: elementwise nodes need one matched item per
      // in-edge, so the min across in-queues gates the batch.
      std::uint64_t deepest = 0;
      std::uint64_t matched = std::numeric_limits<std::uint64_t>::max();
      for (const std::size_t q : inputs) {
        deepest = std::max<std::uint64_t>(deepest, queues[q].size());
        matched = std::min<std::uint64_t>(matched, queues[q].size());
      }
      node.max_queue_length = std::max(node.max_queue_length, deepest);
      const NodeKind kind = graph.node(u).kind;
      const bool elementwise = kind == NodeKind::kMisoElementwise ||
                               kind == NodeKind::kMimoSynchronizer;
      const std::uint32_t consumed = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(elementwise ? matched : deepest, v));

#if RIPPLE_OBS
      if (trace.active()) {
        for (const std::size_t q : inputs) {
          // The source's arrival queue reports on the node's own track;
          // edges report on their dedicated tracks.
          const std::uint32_t track = q == arrival_queue
                                          ? static_cast<std::uint32_t>(u)
                                          : static_cast<std::uint32_t>(n + q);
          trace.counter(obs::Domain::kSim, track, "graph.queue_depth", now,
                        static_cast<double>(queues[q].size()));
        }
        if (consumed > 0) {
          trace.begin(obs::Domain::kSim, static_cast<std::uint32_t>(u),
                      fire_span_name(kind), now);
        } else if (config.charge_empty_firings) {
          trace.instant(obs::Domain::kSim, static_cast<std::uint32_t>(u),
                        "empty_firing", now, service_time[u]);
        }
      }
#endif

      if (consumed > 0 || config.charge_empty_firings) {
        ++node.firings;
        if (consumed == 0) ++node.empty_firings;
        node.active_time += service_time[u];
      }

      if (consumed > 0) {
        const std::vector<EdgeIndex>& out = graph.out_edges(u);
        std::uint64_t produced = 0;
        switch (kind) {
          case NodeKind::kSiso: {
            auto& queue = queues[inputs[0]];
            node.items_consumed += consumed;
            if (out.empty()) {
              // Sink: consumed roots exit at firing end.
              auto& bundle = in_flight[u][0];
              for (std::uint32_t k = 0; k < consumed; ++k) {
                bundle.push_back(queue[k]);
              }
            } else {
              edge_gain[out[0]]->sample_n(rng, gain_draws.data(), consumed);
              auto& bundle = in_flight[u][0];
              for (std::uint32_t k = 0; k < consumed; ++k) {
                const RootId root = queue[k];
                for (dist::OutputCount o = 0; o < gain_draws[k]; ++o) {
                  bundle.push_back(root);
                }
                produced += gain_draws[k];
              }
              live_items += produced;
              live_items -= consumed;
            }
            queue.discard_front(consumed);
            break;
          }
          case NodeKind::kSimoTee: {
            // Replicate each consumed item's outputs onto every out-edge;
            // gains are sampled independently per out-edge, in out-edge
            // insertion order (the RNG-order contract the reference
            // executor and compliance bench pin down).
            auto& queue = queues[inputs[0]];
            node.items_consumed += consumed;
            for (std::uint32_t k = 0; k < consumed; ++k) {
              lane_roots[k] = queue[k];
            }
            for (std::size_t s = 0; s < out.size(); ++s) {
              edge_gain[out[s]]->sample_n(rng, gain_draws.data(), consumed);
              auto& bundle = in_flight[u][s];
              for (std::uint32_t k = 0; k < consumed; ++k) {
                for (dist::OutputCount o = 0; o < gain_draws[k]; ++o) {
                  bundle.push_back(lane_roots[k]);
                }
                produced += gain_draws[k];
              }
            }
            live_items += produced;
            live_items -= consumed;
            queue.discard_front(consumed);
            break;
          }
          case NodeKind::kMisoElementwise: {
            // One matched item per in-edge per lane; the combined item
            // carries the first in-edge's root (all in-edge copies of a
            // tee'd root re-join here, so any choice names the same root
            // on rejoining topologies).
            node.items_consumed +=
                static_cast<std::uint64_t>(consumed) * inputs.size();
            for (std::uint32_t k = 0; k < consumed; ++k) {
              lane_roots[k] = queues[inputs[0]][k];
            }
            for (const std::size_t q : inputs) {
              queues[q].discard_front(consumed);
            }
            edge_gain[out[0]]->sample_n(rng, gain_draws.data(), consumed);
            auto& bundle = in_flight[u][0];
            for (std::uint32_t k = 0; k < consumed; ++k) {
              for (dist::OutputCount o = 0; o < gain_draws[k]; ++o) {
                bundle.push_back(lane_roots[k]);
              }
              produced += gain_draws[k];
            }
            live_items += produced;
            live_items -=
                static_cast<std::uint64_t>(consumed) * inputs.size();
            break;
          }
          case NodeKind::kMimoSynchronizer: {
            // Stream j forwards to out-edge j with out-edge j's gain; batch
            // boundaries realign because every stream advances by the same
            // `consumed` count.
            node.items_consumed +=
                static_cast<std::uint64_t>(consumed) * inputs.size();
            for (std::size_t j = 0; j < inputs.size(); ++j) {
              auto& queue = queues[inputs[j]];
              edge_gain[out[j]]->sample_n(rng, gain_draws.data(), consumed);
              auto& bundle = in_flight[u][j];
              for (std::uint32_t k = 0; k < consumed; ++k) {
                const RootId root = queue[k];
                for (dist::OutputCount o = 0; o < gain_draws[k]; ++o) {
                  bundle.push_back(root);
                }
                produced += gain_draws[k];
              }
              queue.discard_front(consumed);
            }
            live_items += produced;
            live_items -=
                static_cast<std::uint64_t>(consumed) * inputs.size();
            break;
          }
        }
        node.items_produced += produced;
        events.schedule(kFireEndBase + u, now + service_time[u],
                        kPriorityFireEnd);
      }

      if (!(arrivals_done && live_items == 0)) {
        events.schedule(kFireStartBase + u, now + firing_intervals[u],
                        kPriorityFireStart);
      }
    } else {
      // ------------------------------------------------------------ Arrival
      // Same horizon fast-path as the chain simulator: consume consecutive
      // arrivals while they provably pop first.
      const sim::IndexedScheduler::Horizon horizon = events.horizon();
      Cycles arrival_time = now;
      auto& queue0 = queues[arrival_queue];
      while (true) {
        const RootId root = static_cast<RootId>(root_arrival.size());
        root_arrival.push_back(arrival_time);
        queue0.push_back(root);
        ++live_items;
        if (root_arrival.size() >= config.input_count) {
          arrivals_done = true;
          break;
        }
        const Cycles next_time =
            arrival_time + (fixed_gap > 0.0
                                ? fixed_gap
                                : arrival_process.next_interarrival(rng));
        if (processed_events >= config.max_events ||
            !horizon.beaten_by(next_time, kPriorityArrival)) {
          events.schedule(kArrivalSource, next_time, kPriorityArrival);
          break;
        }
        arrival_time = next_time;
        ++processed_events;
      }
    }
  }

  RIPPLE_REQUIRE(processed_events < config.max_events,
                 "event budget exhausted (unstable schedule?)");
  metrics.events_processed = processed_events;
  metrics.inputs_arrived = root_arrival.size();
  metrics.inputs_on_time = metrics.inputs_arrived - metrics.inputs_missed;
  if (metrics.makespan <= 0.0 && !root_arrival.empty()) {
    metrics.makespan = root_arrival.back();
  }
  return metrics;
}

sim::TrialMetrics simulate_graph_greedy(
    const GraphSpec& graph, arrivals::ArrivalProcess& arrival_process,
    const GraphGreedyConfig& config) {
  const std::size_t n = graph.size();
  RIPPLE_REQUIRE(config.input_count > 0, "need at least one input");
  RIPPLE_REQUIRE(config.min_batch >= 1, "min_batch must be at least 1");

  if (graph.is_linear()) {
    const std::vector<NodeIndex> order = chain_order_of(graph);
    auto lowered = graph.lower_to_pipeline();
    RIPPLE_REQUIRE(lowered.ok(), "linear graph must lower to a pipeline");
    sim::GreedySimConfig chain_config;
    chain_config.input_count = config.input_count;
    chain_config.deadline = config.deadline;
    chain_config.seed = config.seed;
    chain_config.min_batch = config.min_batch;
    chain_config.max_firings = config.max_firings;
    sim::TrialMetrics metrics = sim::simulate_greedy_throughput(
        lowered.value(), arrival_process, chain_config);
    scatter_node_metrics(order, metrics);
    return metrics;
  }

  dist::Xoshiro256 rng(config.seed);
  const std::uint32_t v = graph.simd_width();
  const double exclusive_scale = 1.0 / static_cast<double>(n);

  sim::TrialMetrics metrics;
  metrics.nodes.resize(n);
  metrics.vector_width = v;
  metrics.sharing_actors = 1;
  metrics.arm_latency_histogram(config.deadline);

  std::vector<Cycles> service_time(n);
  for (NodeIndex u = 0; u < n; ++u) service_time[u] = graph.service_time(u);
  std::vector<const dist::GainDistribution*> edge_gain(graph.edge_count());
  for (EdgeIndex e = 0; e < graph.edge_count(); ++e) {
    edge_gain[e] = graph.edge(e).gain.get();
  }

  const std::size_t arrival_queue = graph.edge_count();
  std::vector<util::RingBuffer<RootId>> queues(graph.edge_count() + 1);
  for (auto& queue : queues) queue.reserve(4 * v);
  std::vector<std::vector<std::size_t>> in_queues(n);
  for (NodeIndex u = 0; u < n; ++u) {
    if (u == graph.source()) {
      in_queues[u] = {arrival_queue};
    } else {
      for (EdgeIndex e : graph.in_edges(u)) in_queues[u].push_back(e);
    }
  }
  // Topo position for tie-breaking: the deeper node wins.
  std::vector<std::size_t> topo_position(n, 0);
  for (std::size_t p = 0; p < graph.topo_order().size(); ++p) {
    topo_position[graph.topo_order()[p]] = p;
  }

  std::vector<dist::OutputCount> gain_draws(v);
  std::vector<RootId> lane_roots(v);

  std::vector<Cycles> root_arrival;
  root_arrival.reserve(config.input_count);
  std::vector<bool> root_missed(config.input_count, false);

  Cycles now = 0.0;
  Cycles next_arrival = arrival_process.next_interarrival(rng);
  ItemCount generated = 0;

  auto drain_arrivals_until = [&](Cycles time) {
    while (generated < config.input_count && next_arrival <= time + 1e-12) {
      const RootId root = static_cast<RootId>(root_arrival.size());
      root_arrival.push_back(next_arrival);
      ++metrics.inputs_arrived;
      queues[arrival_queue].push_back(root);
      metrics.nodes[graph.source()].max_queue_length = std::max<std::uint64_t>(
          metrics.nodes[graph.source()].max_queue_length,
          queues[arrival_queue].size());
      ++generated;
      if (generated < config.input_count) {
        next_arrival += arrival_process.next_interarrival(rng);
      }
    }
  };

#if RIPPLE_OBS
  obs::TraceWriter trace = obs::TraceWriter::for_current_thread();
  if (trace.active()) {
    for (NodeIndex u = 0; u < n; ++u) {
      obs::TraceSession::global().set_track_name(
          obs::Domain::kSim, static_cast<std::uint32_t>(u), graph.node(u).name);
    }
  }
#endif

  std::uint64_t firings = 0;
  while (firings < config.max_firings) {
    drain_arrivals_until(now);
    const bool arrivals_done = generated >= config.input_count;

    // Pick the node with the most queued input among those that can
    // consume; ties go to the deeper node in topo order (drives items
    // toward the sink). min_batch gates the matched batch mid-stream.
    std::size_t best = n;
    std::uint64_t best_queued = 0;
    std::size_t best_position = 0;
    for (NodeIndex u = 0; u < n; ++u) {
      std::uint64_t total = 0;
      std::uint64_t matched = std::numeric_limits<std::uint64_t>::max();
      for (const std::size_t q : in_queues[u]) {
        total += queues[q].size();
        matched = std::min<std::uint64_t>(matched, queues[q].size());
      }
      if (matched == 0) continue;
      if (!arrivals_done && matched < config.min_batch) continue;
      if (best == n || total > best_queued ||
          (total == best_queued && topo_position[u] > best_position)) {
        best = u;
        best_queued = total;
        best_position = topo_position[u];
      }
    }

    if (best == n) {
      // Nothing can consume now. Post-stream this is the drain's end (a
      // merge may strand unmatched partial tuples; they are dropped, same
      // as the chain sim drops nothing because SISO never starves).
      if (arrivals_done) break;
      now = std::max(now, next_arrival);
      continue;
    }

    ++firings;
    sim::NodeMetrics& node = metrics.nodes[best];
    const std::vector<std::size_t>& inputs = in_queues[best];
    std::uint64_t matched = std::numeric_limits<std::uint64_t>::max();
    for (const std::size_t q : inputs) {
      matched = std::min<std::uint64_t>(matched, queues[q].size());
    }
    const std::uint32_t consumed =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(matched, v));
    ++node.firings;
    const Cycles duration = service_time[best] * exclusive_scale;
    node.active_time += duration;
#if RIPPLE_OBS
    if (trace.active()) {
      trace.counter(obs::Domain::kSim, static_cast<std::uint32_t>(best),
                    "graph.queue_depth", now, static_cast<double>(matched));
      trace.begin(obs::Domain::kSim, static_cast<std::uint32_t>(best),
                  fire_span_name(graph.node(best).kind), now);
    }
#endif
    now += duration;

    const std::vector<EdgeIndex>& out = graph.out_edges(best);
    const NodeKind kind = graph.node(best).kind;
    std::uint64_t produced = 0;
    auto deliver = [&](EdgeIndex e, RootId root, dist::OutputCount outputs) {
      auto& queue = queues[e];
      for (dist::OutputCount o = 0; o < outputs; ++o) queue.push_back(root);
      produced += outputs;
      metrics.nodes[graph.edge(e).to].max_queue_length = std::max<std::uint64_t>(
          metrics.nodes[graph.edge(e).to].max_queue_length, queue.size());
    };
    if (out.empty()) {
      auto& queue = queues[inputs[0]];
      node.items_consumed += consumed;
      for (std::uint32_t k = 0; k < consumed; ++k) {
        const RootId root = queue.pop_front();
        ++metrics.sink_outputs;
        const Cycles latency = now - root_arrival[root];
        metrics.record_latency(latency);
        if (config.deadline > 0.0 &&
            latency > config.deadline * (1.0 + 1e-12) && !root_missed[root]) {
          root_missed[root] = true;
          ++metrics.inputs_missed;
#if RIPPLE_OBS
          if (trace.active()) {
            trace.instant(obs::Domain::kSim, static_cast<std::uint32_t>(best),
                          "deadline_miss", now, config.deadline - latency);
          }
#endif
        }
        metrics.makespan = std::max(metrics.makespan, now);
      }
    } else {
      switch (kind) {
        case NodeKind::kSiso: {
          auto& queue = queues[inputs[0]];
          node.items_consumed += consumed;
          edge_gain[out[0]]->sample_n(rng, gain_draws.data(), consumed);
          for (std::uint32_t k = 0; k < consumed; ++k) {
            deliver(out[0], queue.pop_front(), gain_draws[k]);
          }
          break;
        }
        case NodeKind::kSimoTee: {
          auto& queue = queues[inputs[0]];
          node.items_consumed += consumed;
          for (std::uint32_t k = 0; k < consumed; ++k) {
            lane_roots[k] = queue.pop_front();
          }
          for (std::size_t s = 0; s < out.size(); ++s) {
            edge_gain[out[s]]->sample_n(rng, gain_draws.data(), consumed);
            for (std::uint32_t k = 0; k < consumed; ++k) {
              deliver(out[s], lane_roots[k], gain_draws[k]);
            }
          }
          break;
        }
        case NodeKind::kMisoElementwise: {
          node.items_consumed +=
              static_cast<std::uint64_t>(consumed) * inputs.size();
          for (std::uint32_t k = 0; k < consumed; ++k) {
            lane_roots[k] = queues[inputs[0]][k];
          }
          for (const std::size_t q : inputs) queues[q].discard_front(consumed);
          edge_gain[out[0]]->sample_n(rng, gain_draws.data(), consumed);
          for (std::uint32_t k = 0; k < consumed; ++k) {
            deliver(out[0], lane_roots[k], gain_draws[k]);
          }
          break;
        }
        case NodeKind::kMimoSynchronizer: {
          node.items_consumed +=
              static_cast<std::uint64_t>(consumed) * inputs.size();
          for (std::size_t j = 0; j < inputs.size(); ++j) {
            auto& queue = queues[inputs[j]];
            edge_gain[out[j]]->sample_n(rng, gain_draws.data(), consumed);
            for (std::uint32_t k = 0; k < consumed; ++k) {
              deliver(out[j], queue[k], gain_draws[k]);
            }
            queue.discard_front(consumed);
          }
          break;
        }
      }
      node.items_produced += produced;
    }
#if RIPPLE_OBS
    if (trace.active()) {
      trace.end(obs::Domain::kSim, static_cast<std::uint32_t>(best),
                fire_span_name(graph.node(best).kind), now);
    }
#endif
  }
  RIPPLE_REQUIRE(firings < config.max_firings,
                 "firing budget exhausted (arrival rate beyond capacity?)");

  metrics.events_processed = firings;
  metrics.inputs_on_time = metrics.inputs_arrived - metrics.inputs_missed;
  if (metrics.makespan <= 0.0 && !root_arrival.empty()) {
    metrics.makespan = root_arrival.back();
  }
  return metrics;
}

}  // namespace ripple::graph
