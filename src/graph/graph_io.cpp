#include "graph/graph_io.hpp"

#include <cmath>
#include <sstream>
#include <unordered_map>

#include "sdf/pipeline_io.hpp"
#include "util/json.hpp"

namespace ripple::graph {

namespace {

bool kind_from_token(const std::string& token, NodeKind& kind) {
  if (token == "siso") {
    kind = NodeKind::kSiso;
  } else if (token == "tee") {
    kind = NodeKind::kSimoTee;
  } else if (token == "merge") {
    kind = NodeKind::kMisoElementwise;
  } else if (token == "synchronizer") {
    kind = NodeKind::kMimoSynchronizer;
  } else {
    return false;
  }
  return true;
}

}  // namespace

util::Result<GraphSpec> graph_from_json_value(const util::JsonValue& value) {
  using R = util::Result<GraphSpec>;
  if (!value.is_object()) {
    return R::failure("bad_schema", "graph document must be an object");
  }
  const std::string schema = value.string_or("schema", "");
  if (schema != kGraphSchemaV1) {
    return R::failure("bad_schema", "schema must be '" +
                                        std::string(kGraphSchemaV1) +
                                        "' (got '" + schema + "')");
  }
  const util::JsonValue* nodes = value.find("nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    return R::failure("bad_schema", "graph needs a nodes array");
  }
  const util::JsonValue* edges = value.find("edges");
  if (edges == nullptr || !edges->is_array()) {
    return R::failure("bad_schema", "graph needs an edges array");
  }

  GraphBuilder builder(value.string_or("name", "graph"));
  const double width = value.number_or("simd_width", 128.0);
  if (width < 1.0 || width != std::floor(width)) {
    return R::failure("bad_schema", "simd_width must be a positive integer");
  }
  builder.simd_width(static_cast<std::uint32_t>(width));

  std::unordered_map<std::string, NodeIndex> index_by_name;
  std::size_t node_index = 0;
  for (const util::JsonValue& node : nodes->as_array()) {
    if (!node.is_object()) {
      return R::failure("bad_schema", "node " + std::to_string(node_index) +
                                          " must be an object");
    }
    const std::string name =
        node.string_or("name", "node" + std::to_string(node_index));
    const std::string kind_token = node.string_or("kind", "siso");
    NodeKind kind = NodeKind::kSiso;
    if (!kind_from_token(kind_token, kind)) {
      return R::failure("bad_schema", "node '" + name + "': unknown kind '" +
                                          kind_token + "'");
    }
    const double service = node.number_or("service_time", -1.0);
    if (!(service > 0.0)) {
      return R::failure("bad_schema",
                        "node '" + name + "' needs service_time > 0");
    }
    if (!index_by_name.emplace(name, node_index).second) {
      return R::failure("bad_schema",
                        "duplicate node name '" + name +
                            "' (edges reference nodes by name)");
    }
    builder.add_node(name, kind, service);
    ++node_index;
  }

  std::size_t edge_index = 0;
  for (const util::JsonValue& edge : edges->as_array()) {
    if (!edge.is_object()) {
      return R::failure("bad_schema", "edge " + std::to_string(edge_index) +
                                          " must be an object");
    }
    const std::string from = edge.string_or("from", "");
    const std::string to = edge.string_or("to", "");
    const auto from_it = index_by_name.find(from);
    const auto to_it = index_by_name.find(to);
    if (from_it == index_by_name.end()) {
      return R::failure("bad_schema", "edge " + std::to_string(edge_index) +
                                          ": unknown node '" + from + "'");
    }
    if (to_it == index_by_name.end()) {
      return R::failure("bad_schema", "edge " + std::to_string(edge_index) +
                                          ": unknown node '" + to + "'");
    }
    const util::JsonValue* gain_value = edge.find("gain");
    if (gain_value == nullptr || gain_value->is_null()) {
      return R::failure("bad_schema", "edge " + from + "->" + to +
                                          " needs a gain model");
    }
    auto gain = sdf::gain_from_json(*gain_value);
    if (!gain.ok()) {
      return R::failure(gain.error().code, "edge " + from + "->" + to + ": " +
                                               gain.error().message);
    }
    builder.add_edge(from_it->second, to_it->second, gain.value());
    ++edge_index;
  }
  return builder.build();
}

util::Result<GraphSpec> graph_from_json(const std::string& text) {
  auto document = util::parse_json(text);
  if (!document.ok()) {
    return util::Result<GraphSpec>::failure(document.error().code,
                                            document.error().message);
  }
  return graph_from_json_value(document.value());
}

void write_graph_spec_json(std::ostream& out, const GraphSpec& graph) {
  util::JsonWriter json(out);
  json.begin_object();
  json.member("schema", kGraphSchemaV1);
  json.member("name", graph.name());
  json.member("simd_width", static_cast<std::uint64_t>(graph.simd_width()));
  json.key("nodes").begin_array();
  for (NodeIndex u = 0; u < graph.size(); ++u) {
    json.begin_object();
    json.member("name", graph.node(u).name);
    json.member("kind", node_kind_name(graph.node(u).kind));
    json.member("service_time", graph.service_time(u));
    json.end_object();
  }
  json.end_array();
  json.key("edges").begin_array();
  for (EdgeIndex e = 0; e < graph.edge_count(); ++e) {
    const GraphEdgeSpec& edge = graph.edge(e);
    json.begin_object();
    json.member("from", graph.node(edge.from).name);
    json.member("to", graph.node(edge.to).name);
    json.key("gain");
    sdf::gain_to_json(json, edge.gain.get());
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

std::string graph_to_json(const GraphSpec& graph) {
  std::ostringstream out;
  write_graph_spec_json(out, graph);
  return out.str();
}

}  // namespace ripple::graph
