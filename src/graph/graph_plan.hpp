// Enforced-waits planning over GraphSpec DAGs (the per-edge generalization
// of core/enforced_waits.hpp).
//
// Each node u fires every x_u = t_u + w_u cycles; choosing w minimizes the
// graph's active fraction (1/N) sum_u t_u / x_u subject to
//
//     x_source * rho0 <= v                    (arrival-rate stability)
//     g_e * x_v       <= x_u   for each edge e = (u, v)   (edge stability)
//     sum_{i in p} b_i x_i <= D  for each source->sink path p  (deadline)
//     w_u >= 0
//
// On a linear graph the edge set is exactly the paper's chain and there is a
// single path, so the problem degenerates to Figure 1; GraphPlanner then
// delegates to EnforcedWaitsStrategy on the lowered PipelineSpec, making
// linear-graph plans bit-identical to the chain solver's. Genuine DAGs carry
// multiple path budgets — the single-lambda chained-waterfill closed form no
// longer applies, so the planner solves each root->sink path's chain problem
// (warm-started from shared prefixes), combines the per-node maxima into a
// barrier start, and certifies the barrier optimum with a KKT check.
#pragma once

#include <memory>
#include <vector>

#include "core/enforced_waits.hpp"
#include "graph/graph_spec.hpp"
#include "opt/kkt.hpp"
#include "opt/problem.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace ripple::graph {

/// Worst-case queue multipliers b_i, indexed by graph node index.
struct GraphPlanConfig {
  std::vector<double> b;

  /// Optimistic default: b_u = max(1, ceil(max over out-edges g_e)) — the
  /// chain rule applied to the node's heaviest out-edge (1 at the sink).
  static GraphPlanConfig optimistic(const GraphSpec& graph);
};

/// A solved schedule, indexed by graph node index.
struct GraphSchedule {
  std::vector<Cycles> waits;             ///< w_u >= 0
  std::vector<Cycles> firing_intervals;  ///< x_u = t_u + w_u
  double predicted_active_fraction = 1.0;
  Cycles deadline_budget_used = 0.0;  ///< max over paths of sum b_i x_i
  opt::KktReport kkt;                 ///< optimality certificate
  bool lowered_linear = false;        ///< solved by chain-solver delegation
};

class GraphPlanner {
 public:
  /// Throws std::logic_error if b is missing a multiplier per node or has a
  /// multiplier below 1.
  GraphPlanner(GraphSpec graph, GraphPlanConfig config);

  const GraphSpec& graph() const noexcept { return graph_; }
  const GraphPlanConfig& config() const noexcept { return config_; }

  /// True when this planner delegates to the linear chain solver.
  bool delegates_to_chain() const noexcept { return linear_ != nullptr; }

  /// Exact feasibility: the DAG-minimal intervals L must satisfy the rate
  /// bound at the source and the max-path deadline budget.
  bool is_feasible(Cycles tau0, Cycles deadline) const;
  Cycles min_feasible_deadline(Cycles tau0) const;
  Cycles min_feasible_tau0(Cycles deadline) const;

  /// Solve the per-edge problem. Failure codes: "infeasible" (message names
  /// the violated constraint), "too_many_paths" (per-path budget set not
  /// enumerable), or a barrier failure code.
  util::Result<GraphSchedule> solve(Cycles tau0, Cycles deadline) const;

  /// The DAG problem in x-space (per-edge + per-path constraints), exposed
  /// for cross-checking solvers. Built for branching graphs only; linear
  /// planners delegate and tests should cross-check against the chain
  /// solver's build_problem instead.
  util::Result<opt::ConvexProblem> build_problem(Cycles tau0,
                                                 Cycles deadline) const;

  /// Active fraction of a given schedule (no feasibility check).
  double active_fraction(const std::vector<Cycles>& firing_intervals) const;

  /// DAG-minimal feasible intervals L (cached from the spec).
  const std::vector<Cycles>& minimal_intervals() const noexcept {
    return minimal_intervals_;
  }

 private:
  GraphSchedule make_schedule(std::vector<Cycles> intervals,
                              const opt::ConvexProblem& problem) const;
  linalg::Vector interior_start(Cycles tau0, Cycles deadline) const;
  linalg::Vector per_path_warm_start(Cycles tau0, Cycles deadline,
                                     const opt::ConvexProblem& problem) const;

  GraphSpec graph_;
  GraphPlanConfig config_;
  std::vector<GraphPath> paths_;           ///< empty when not enumerable
  bool paths_enumerable_ = false;
  std::vector<Cycles> minimal_intervals_;  ///< DAG-feasible floor L
  Cycles minimal_budget_ = 0.0;            ///< max-path budget at L

  // Linear delegation: chain position -> graph node index, plus the wrapped
  // chain strategy over the lowered pipeline.
  std::vector<NodeIndex> chain_order_;
  std::unique_ptr<core::EnforcedWaitsStrategy> linear_;
};

}  // namespace ripple::graph
