#include "graph/graph_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "opt/barrier.hpp"
#include "util/assert.hpp"
#include "util/string_utils.hpp"

namespace ripple::graph {

GraphPlanConfig GraphPlanConfig::optimistic(const GraphSpec& graph) {
  GraphPlanConfig config;
  config.b.resize(graph.size(), 1.0);
  for (NodeIndex u = 0; u < graph.size(); ++u) {
    double heaviest = 0.0;
    for (EdgeIndex e : graph.out_edges(u)) {
      heaviest = std::max(heaviest, graph.edge(e).mean_gain());
    }
    config.b[u] = std::max(1.0, std::ceil(heaviest));
  }
  return config;
}

GraphPlanner::GraphPlanner(GraphSpec graph, GraphPlanConfig config)
    : graph_(std::move(graph)), config_(std::move(config)) {
  if (config_.b.size() != graph_.size()) {
    throw std::logic_error("GraphPlanConfig needs one multiplier per node");
  }
  for (double b : config_.b) {
    if (b < 1.0) {
      throw std::logic_error(
          "queue multipliers must be >= 1 (an item waits at least one firing)");
    }
  }
  minimal_intervals_ = graph_.minimal_firing_intervals();
  minimal_budget_ = graph_.max_path_budget(config_.b, minimal_intervals_);

  if (graph_.is_linear()) {
    // Chain order: walk the unique path from the source so the lowered
    // pipeline's position p maps back to graph node chain_order_[p].
    chain_order_.reserve(graph_.size());
    NodeIndex current = graph_.source();
    for (std::size_t step = 0; step < graph_.size(); ++step) {
      chain_order_.push_back(current);
      if (graph_.out_edges(current).empty()) break;
      current = graph_.edge(graph_.out_edges(current)[0]).to;
    }
    auto lowered = graph_.lower_to_pipeline();
    RIPPLE_REQUIRE(lowered.ok(), "linear graph must lower to a pipeline");
    core::EnforcedWaitsConfig chain_config;
    chain_config.b.reserve(chain_order_.size());
    for (NodeIndex u : chain_order_) chain_config.b.push_back(config_.b[u]);
    linear_ = std::make_unique<core::EnforcedWaitsStrategy>(
        std::move(lowered).take(), std::move(chain_config));
  } else {
    auto paths = graph_.enumerate_paths();
    if (paths.ok()) {
      paths_ = std::move(paths).take();
      paths_enumerable_ = true;
    }
  }
}

bool GraphPlanner::is_feasible(Cycles tau0, Cycles deadline) const {
  if (linear_) return linear_->is_feasible(tau0, deadline);
  const double rate_cap = static_cast<double>(graph_.simd_width()) * tau0;
  if (minimal_intervals_[graph_.source()] > rate_cap) return false;
  return minimal_budget_ <= deadline;
}

Cycles GraphPlanner::min_feasible_deadline(Cycles tau0) const {
  if (linear_) return linear_->min_feasible_deadline(tau0);
  const double rate_cap = static_cast<double>(graph_.simd_width()) * tau0;
  if (minimal_intervals_[graph_.source()] > rate_cap) return kUnboundedCycles;
  return minimal_budget_;
}

Cycles GraphPlanner::min_feasible_tau0(Cycles deadline) const {
  if (linear_) return linear_->min_feasible_tau0(deadline);
  if (minimal_budget_ > deadline) return kUnboundedCycles;
  return minimal_intervals_[graph_.source()] /
         static_cast<double>(graph_.simd_width());
}

double GraphPlanner::active_fraction(
    const std::vector<Cycles>& firing_intervals) const {
  RIPPLE_REQUIRE(firing_intervals.size() == graph_.size(),
                 "one interval per node required");
  double sum = 0.0;
  for (NodeIndex u = 0; u < graph_.size(); ++u) {
    sum += graph_.service_time(u) / firing_intervals[u];
  }
  return sum / static_cast<double>(graph_.size());
}

util::Result<opt::ConvexProblem> GraphPlanner::build_problem(
    Cycles tau0, Cycles deadline) const {
  using R = util::Result<opt::ConvexProblem>;
  if (!linear_ && !paths_enumerable_) {
    return R::failure("too_many_paths",
                      "graph '" + graph_.name() +
                          "' has too many source->sink paths to enumerate "
                          "per-path deadline budgets");
  }
  const std::size_t n = graph_.size();
  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<Cycles> service(n);
  for (NodeIndex u = 0; u < n; ++u) service[u] = graph_.service_time(u);

  opt::ConvexProblem problem;
  problem.objective = [service, inv_n](const linalg::Vector& x) {
    double sum = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) sum += service[i] / x[i];
    return sum * inv_n;
  };
  problem.gradient = [service, inv_n](const linalg::Vector& x) {
    linalg::Vector g(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      g[i] = -inv_n * service[i] / (x[i] * x[i]);
    }
    return g;
  };
  problem.hessian = [service, inv_n](const linalg::Vector& x) {
    linalg::Matrix h(x.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      h(i, i) = 2.0 * inv_n * service[i] / (x[i] * x[i] * x[i]);
    }
    return h;
  };

  // Bounds: x_u >= t_u always; the source additionally capped by the
  // arrival-rate constraint x_source <= v * tau0.
  problem.lower_bounds = linalg::Vector(service.begin(), service.end());
  problem.upper_bounds = linalg::Vector(n, opt::kInf);
  problem.upper_bounds[graph_.source()] =
      static_cast<double>(graph_.simd_width()) * tau0;

  // Per-edge stability: g_e * x_v - x_u <= 0.
  for (EdgeIndex e = 0; e < graph_.edge_count(); ++e) {
    const GraphEdgeSpec& edge = graph_.edge(e);
    const double g = edge.mean_gain();
    if (g <= 0.0) continue;  // zero-gain edge carries no items: no constraint
    opt::LinearInequality stability;
    stability.coefficients = linalg::zeros(n);
    stability.coefficients[edge.to] = g;
    stability.coefficients[edge.from] = -1.0;
    stability.rhs = 0.0;
    stability.label = "edge[" + graph_.node(edge.from).name + "->" +
                      graph_.node(edge.to).name + "]";
    problem.constraints.push_back(std::move(stability));
  }

  // Per-path deadline budgets: sum_{i in p} b_i x_i <= D. On a linear graph
  // there is one path and this is exactly the chain problem's budget row.
  if (linear_) {
    opt::LinearInequality budget;
    budget.coefficients = linalg::Vector(config_.b.begin(), config_.b.end());
    budget.rhs = deadline;
    budget.label = "deadline";
    problem.constraints.push_back(std::move(budget));
  } else {
    for (std::size_t k = 0; k < paths_.size(); ++k) {
      opt::LinearInequality budget;
      budget.coefficients = linalg::zeros(n);
      for (NodeIndex u : paths_[k].nodes) {
        budget.coefficients[u] = config_.b[u];
      }
      budget.rhs = deadline;
      budget.label = "deadline[" + std::to_string(k) + "]";
      problem.constraints.push_back(std::move(budget));
    }
  }
  return problem;
}

linalg::Vector GraphPlanner::interior_start(Cycles tau0,
                                            Cycles deadline) const {
  const std::size_t n = graph_.size();
  const double rate_cap = static_cast<double>(graph_.simd_width()) * tau0;

  // Reverse-topo construction: x_u = max(t_u, max_e g_e x_v) * (1 + eps)
  // makes every bound and edge constraint strictly slack; shrink eps until
  // the rate cap and every path budget are also strictly satisfied.
  for (double eps = 1e-2; eps >= 1e-13; eps *= 0.25) {
    linalg::Vector x(n, 0.0);
    const std::vector<NodeIndex>& topo = graph_.topo_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeIndex u = *it;
      double floor = graph_.service_time(u);
      for (EdgeIndex e : graph_.out_edges(u)) {
        floor = std::max(floor, graph_.edge(e).mean_gain() * x[graph_.edge(e).to]);
      }
      x[u] = floor * (1.0 + eps);
    }
    const Cycles budget = graph_.max_path_budget(
        config_.b, std::vector<Cycles>(x.begin(), x.end()));
    if (x[graph_.source()] < rate_cap && budget < deadline) return x;
  }
  return {};
}

linalg::Vector GraphPlanner::per_path_warm_start(
    Cycles tau0, Cycles deadline, const opt::ConvexProblem& problem) const {
  // Solve each root->sink path's chain problem and take the per-node max.
  // Shared prefixes warm each solve with the running combination, so a path
  // that only differs in its tail reuses the prefix's active-set guess. The
  // combination can violate a path budget (maxima only raise sums), so it
  // is only used when strictly interior for the full problem.
  linalg::Vector combined(graph_.size(), 0.0);
  std::vector<char> touched(graph_.size(), 0);
  for (const GraphPath& path : paths_) {
    sdf::PipelineBuilder builder(graph_.name() + ".path");
    builder.simd_width(graph_.simd_width());
    core::EnforcedWaitsConfig chain_config;
    for (std::size_t p = 0; p < path.nodes.size(); ++p) {
      const NodeIndex u = path.nodes[p];
      dist::GainPtr gain = p < path.edges.size()
                               ? graph_.edge(path.edges[p]).gain
                               : std::make_shared<dist::DeterministicGain>(1);
      builder.add_node(graph_.node(u).name, graph_.service_time(u),
                       std::move(gain));
      chain_config.b.push_back(config_.b[u]);
    }
    auto pipeline = builder.build();
    if (!pipeline.ok()) continue;
    core::EnforcedWaitsStrategy chain(std::move(pipeline).take(), chain_config);

    core::WarmStart warm;
    bool any_touched = false;
    warm.firing_intervals.reserve(path.nodes.size());
    for (NodeIndex u : path.nodes) {
      warm.firing_intervals.push_back(touched[u] ? combined[u]
                                                 : minimal_intervals_[u]);
      any_touched = any_touched || touched[u];
    }
    auto solved = chain.solve(tau0, deadline, any_touched ? &warm : nullptr);
    if (!solved.ok()) continue;
    for (std::size_t p = 0; p < path.nodes.size(); ++p) {
      const NodeIndex u = path.nodes[p];
      combined[u] = std::max(combined[u], solved.value().firing_intervals[p]);
      touched[u] = 1;
    }
  }
  for (char t : touched) {
    if (!t) return {};
  }
  if (problem.min_slack(combined) <= 0.0) return {};
  return combined;
}

GraphSchedule GraphPlanner::make_schedule(
    std::vector<Cycles> intervals, const opt::ConvexProblem& problem) const {
  GraphSchedule schedule;
  schedule.firing_intervals = std::move(intervals);
  schedule.waits.resize(graph_.size());
  for (NodeIndex u = 0; u < graph_.size(); ++u) {
    schedule.waits[u] = std::max(
        0.0, schedule.firing_intervals[u] - graph_.service_time(u));
  }
  schedule.deadline_budget_used =
      graph_.max_path_budget(config_.b, schedule.firing_intervals);
  schedule.predicted_active_fraction =
      active_fraction(schedule.firing_intervals);
  const Cycles max_interval = *std::max_element(
      schedule.firing_intervals.begin(), schedule.firing_intervals.end());
  schedule.kkt = opt::check_kkt(
      problem,
      linalg::Vector(schedule.firing_intervals.begin(),
                     schedule.firing_intervals.end()),
      /*active_tolerance=*/1e-6 * (1.0 + max_interval));
  return schedule;
}

util::Result<GraphSchedule> GraphPlanner::solve(Cycles tau0,
                                                Cycles deadline) const {
  using R = util::Result<GraphSchedule>;
  RIPPLE_REQUIRE(tau0 > 0.0, "tau0 must be positive");
  RIPPLE_REQUIRE(deadline > 0.0, "deadline must be positive");

  if (linear_) {
    // Chain delegation: bit-identical to the paper-path solver. Results
    // come back in chain order; scatter them to graph node indices.
    auto solved = linear_->solve(tau0, deadline);
    if (!solved.ok()) return R(solved.error());
    const core::EnforcedWaitsSchedule& chain = solved.value();
    GraphSchedule schedule;
    schedule.lowered_linear = true;
    schedule.waits.resize(graph_.size());
    schedule.firing_intervals.resize(graph_.size());
    for (std::size_t p = 0; p < chain_order_.size(); ++p) {
      schedule.waits[chain_order_[p]] = chain.waits[p];
      schedule.firing_intervals[chain_order_[p]] = chain.firing_intervals[p];
    }
    schedule.predicted_active_fraction = chain.predicted_active_fraction;
    schedule.deadline_budget_used = chain.deadline_budget_used;
    schedule.kkt = chain.kkt;
    return schedule;
  }

  const double rate_cap = static_cast<double>(graph_.simd_width()) * tau0;
  if (minimal_intervals_[graph_.source()] > rate_cap) {
    return R::failure(
        "infeasible",
        "arrival-rate constraint violated: minimal x_source = " +
            util::format_double(minimal_intervals_[graph_.source()], 3) +
            " exceeds v*tau0 = " + util::format_double(rate_cap, 3));
  }
  if (minimal_budget_ > deadline) {
    return R::failure(
        "infeasible",
        "deadline too tight: minimal max-path budget = " +
            util::format_double(minimal_budget_, 3) +
            " exceeds D = " + util::format_double(deadline, 3));
  }

  auto built = build_problem(tau0, deadline);
  if (!built.ok()) return R(built.error());
  const opt::ConvexProblem& problem = built.value();

  // Degenerate feasible region: the minimal point L is the unique feasible
  // point (every feasible x dominates L componentwise).
  linalg::Vector start = interior_start(tau0, deadline);
  if (start.empty()) {
    return make_schedule(minimal_intervals_, problem);
  }

  // Warm start from the per-path chain solves when the combination stays
  // strictly interior; otherwise fall back to the generic interior point.
  linalg::Vector warm = per_path_warm_start(tau0, deadline, problem);
  auto solved = opt::barrier_minimize(problem, warm.empty() ? start : warm);
  if (!solved.ok() && !warm.empty()) {
    solved = opt::barrier_minimize(problem, start);
  }
  if (!solved.ok()) {
    return R::failure(solved.error().code,
                      "barrier solve failed: " + solved.error().message);
  }
  return make_schedule(
      std::vector<Cycles>(solved.value().x.begin(), solved.value().x.end()),
      problem);
}

}  // namespace ripple::graph
