// Measured DAG scenarios: graph topologies paired with real stage
// computations for the vector-wide GraphExecutor, plus gain models for the
// planner and stochastic simulator.
//
// branching_blast_scenario() is the post-filter slice of the mini-BLAST
// pipeline re-expressed as a DAG: a seed-probe filter tees each surviving
// hit into a fast and a thorough extension variant, and an elementwise
// rescore merge re-joins the two scores before output. The expensive
// seed-probe prefix runs ONCE per input; duplicated_chain_baseline() is the
// linear-pipeline workaround (one chain per extension variant, each
// re-running the shared prefix) that bench/bench_graph.cpp measures the DAG
// against.
//
// telemetry_fanin_scenario() exercises the remaining node kinds: a 3-way
// tee fans raw telemetry to per-format parsers whose outputs a synchronizer
// realigns into lockstep batches before an elementwise fuse.
//
// Stage computations are splitmix64 hash loops whose round counts scale
// with the node's modeled service time, so virtual-time service costs and
// host-time work stay proportional; the seed-probe filter keeps a hit when
// a hash bucket clears a threshold, matching its bernoulli gain model in
// expectation.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph_executor.hpp"
#include "graph/graph_spec.hpp"

namespace ripple::graph {

/// A runnable scenario: the topology (with gain models) plus one stage
/// computation per node (synchronizers: nullptr).
struct GraphScenario {
  GraphSpec graph;
  std::vector<GraphStageFn> stages;
};

/// Branching mini-BLAST post-filter:
///
///   seed_probe --[bern 0.42]--> branch(tee) --> {ext_fast, ext_thorough}
///                               --> rescore(merge) --> output
GraphScenario branching_blast_scenario();

/// The two duplicated linear chains the DAG replaces: {fast, thorough},
/// each re-running the seed_probe + branch prefix.
std::vector<GraphScenario> duplicated_chain_baseline();

/// Synthetic telemetry fan-in:
///
///   ingest --> fan(tee x3) --> parse_{a,b,c} --> align(sync 3x3) --> fuse(merge) --> emit
GraphScenario telemetry_fanin_scenario();

/// Deterministic scenario inputs: `count` splitmix64-scrambled u64 payloads.
std::vector<Item> scenario_inputs(std::size_t count, std::uint64_t seed = 1);

}  // namespace ripple::graph
