#include "opt/projection.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ripple::opt {

util::Result<linalg::Vector> project_to_feasible(const ConvexProblem& problem,
                                                 const linalg::Vector& point,
                                                 const ProjectionOptions& options) {
  using R = util::Result<linalg::Vector>;
  RIPPLE_REQUIRE(point.size() == problem.dimension(), "point dimension mismatch");

  // Dykstra's algorithm: cycle through the convex sets (each half-space, then
  // the box), projecting with per-set correction vectors. Converges to the
  // projection onto the intersection when it is non-empty.
  const std::size_t set_count = problem.constraints.size() + 1;  // + box
  std::vector<linalg::Vector> corrections(set_count,
                                          linalg::zeros(point.size()));
  linalg::Vector x = point;

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    const linalg::Vector before = x;

    for (std::size_t s = 0; s < set_count; ++s) {
      linalg::Vector y = linalg::add(x, corrections[s]);
      linalg::Vector projected = y;
      if (s < problem.constraints.size()) {
        const LinearInequality& c = problem.constraints[s];
        const double violation = linalg::dot(c.coefficients, y) - c.rhs;
        if (violation > 0.0) {
          const double norm2 = linalg::dot(c.coefficients, c.coefficients);
          if (norm2 > 0.0) {
            linalg::axpy(projected, -violation / norm2, c.coefficients);
          }
        }
      } else {
        for (std::size_t i = 0; i < projected.size(); ++i) {
          projected[i] = std::clamp(projected[i], problem.lower_bounds[i],
                                    problem.upper_bounds[i]);
        }
      }
      corrections[s] = linalg::subtract(y, projected);
      x = std::move(projected);
    }

    const double moved = linalg::norm_inf(linalg::subtract(x, before));
    if (moved < options.tolerance && problem.is_feasible(x, 1e-9)) {
      return x;
    }
  }
  if (problem.is_feasible(x, 1e-7)) return x;
  return R::failure("no_convergence",
                    "Dykstra projection did not converge (empty feasible set?)");
}

}  // namespace ripple::opt
