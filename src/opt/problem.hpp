// Convex NLP with linear inequality constraints and box bounds:
//
//   minimize f(x)   subject to   A x <= c,   l <= x <= u.
//
// This is the problem class both of the paper's optimizations reduce to
// (Figures 1 and 2); the barrier, projected-gradient and KKT modules all
// consume it.
#pragma once

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace ripple::opt {

/// One half-space: coefficients . x <= rhs.
struct LinearInequality {
  linalg::Vector coefficients;
  double rhs = 0.0;
  std::string label;  ///< for diagnostics ("deadline", "chain[2]", ...)

  double slack(const linalg::Vector& x) const {
    return rhs - linalg::dot(coefficients, x);
  }
};

/// The problem description. Objective callbacks must be defined on the open
/// feasible region; convexity is assumed by the barrier solver.
struct ConvexProblem {
  std::function<double(const linalg::Vector&)> objective;
  std::function<linalg::Vector(const linalg::Vector&)> gradient;
  /// Optional; when absent the barrier solver approximates with BFGS-free
  /// diagonal secant (adequate for separable objectives).
  std::function<linalg::Matrix(const linalg::Vector&)> hessian;

  std::vector<LinearInequality> constraints;
  linalg::Vector lower_bounds;  ///< -inf entries allowed
  linalg::Vector upper_bounds;  ///< +inf entries allowed

  std::size_t dimension() const { return lower_bounds.size(); }

  /// Max violation of any constraint/bound at x (0 means feasible).
  double infeasibility(const linalg::Vector& x) const;

  /// True if x satisfies everything within `tolerance`.
  bool is_feasible(const linalg::Vector& x, double tolerance = 1e-9) const;

  /// Smallest slack across constraints and bounds (negative = infeasible).
  double min_slack(const linalg::Vector& x) const;
};

inline constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace ripple::opt
