// One-dimensional minimization: golden-section and Brent's method.
#pragma once

#include <functional>

namespace ripple::opt {

struct ScalarResult {
  double x = 0.0;        ///< argmin estimate
  double value = 0.0;    ///< f(x)
  int evaluations = 0;   ///< objective calls used
  bool converged = false;
};

using ScalarFn = std::function<double(double)>;

/// Golden-section search on [lo, hi]; tolerance is on the x interval width.
/// Requires f unimodal on the interval for a global guarantee.
ScalarResult golden_section_minimize(const ScalarFn& f, double lo, double hi,
                                     double x_tolerance = 1e-10,
                                     int max_evaluations = 10000);

/// Brent's method (golden section + successive parabolic interpolation).
ScalarResult brent_minimize(const ScalarFn& f, double lo, double hi,
                            double x_tolerance = 1e-10,
                            int max_iterations = 200);

}  // namespace ripple::opt
