#include "opt/integer.hpp"

#include <limits>
#include <queue>
#include <vector>

#include "util/assert.hpp"

namespace ripple::opt {

IntegerResult minimize_integer_scan(std::int64_t lo, std::int64_t hi,
                                    const IntegerObjective& objective) {
  IntegerResult result;
  result.value = std::numeric_limits<double>::infinity();
  for (std::int64_t m = lo; m <= hi; ++m) {
    ++result.evaluations;
    const std::optional<double> value = objective(m);
    if (value.has_value() && *value < result.value) {
      result.feasible = true;
      result.argmin = m;
      result.value = *value;
    }
  }
  return result;
}

IntegerResult branch_and_bound_minimize(std::int64_t lo, std::int64_t hi,
                                        const IntegerObjective& objective,
                                        const IntervalBound& bound,
                                        const BranchAndBoundOptions& options) {
  IntegerResult result;
  result.value = std::numeric_limits<double>::infinity();
  if (lo > hi) return result;

  struct Node {
    double bound;
    std::int64_t lo;
    std::int64_t hi;
    bool operator>(const Node& other) const { return bound > other.bound; }
  };
  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> frontier;
  frontier.push({bound(lo, hi), lo, hi});

  std::uint64_t nodes = 0;
  while (!frontier.empty() && nodes < options.max_nodes) {
    const Node node = frontier.top();
    frontier.pop();
    ++nodes;

    // Prune: even the relaxation cannot beat the incumbent.
    if (result.feasible && node.bound >= result.value) continue;

    const std::int64_t width = node.hi - node.lo + 1;
    if (width <= options.leaf_width) {
      for (std::int64_t m = node.lo; m <= node.hi; ++m) {
        ++result.evaluations;
        const std::optional<double> value = objective(m);
        if (value.has_value() && *value < result.value) {
          result.feasible = true;
          result.argmin = m;
          result.value = *value;
        }
      }
      continue;
    }

    const std::int64_t mid = node.lo + width / 2;
    const double left_bound = bound(node.lo, mid - 1);
    const double right_bound = bound(mid, node.hi);
    if (!result.feasible || left_bound < result.value) {
      frontier.push({left_bound, node.lo, mid - 1});
    }
    if (!result.feasible || right_bound < result.value) {
      frontier.push({right_bound, mid, node.hi});
    }
  }
  return result;
}

}  // namespace ripple::opt
