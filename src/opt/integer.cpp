#include "opt/integer.hpp"

#include <limits>
#include <queue>
#include <vector>

#include "util/assert.hpp"

namespace ripple::opt {

namespace {

/// Lexicographic (value, argmin) improvement: strictly smaller value, or the
/// same value at a lower index. Matches the scan's first-strictly-less rule.
inline bool improves(double value, std::int64_t m, const IntegerResult& best) {
  if (!best.feasible) return true;
  if (value < best.value) return true;
  return value == best.value && m < best.argmin;
}

}  // namespace

IntegerResult minimize_integer_scan(std::int64_t lo, std::int64_t hi,
                                    const IntegerObjective& objective) {
  IntegerResult result;
  result.value = std::numeric_limits<double>::infinity();
  for (std::int64_t m = lo; m <= hi; ++m) {
    ++result.evaluations;
    const std::optional<double> value = objective(m);
    if (value.has_value() && *value < result.value) {
      result.feasible = true;
      result.argmin = m;
      result.value = *value;
    }
  }
  result.complete = true;  // exhaustive by construction
  return result;
}

IntegerResult branch_and_bound_minimize(std::int64_t lo, std::int64_t hi,
                                        const IntegerObjective& objective,
                                        const IntervalBound& bound,
                                        const BranchAndBoundOptions& options) {
  IntegerResult result;
  result.value = std::numeric_limits<double>::infinity();
  if (lo > hi) {
    result.complete = true;
    return result;
  }
  if (options.incumbent_value.has_value()) {
    RIPPLE_REQUIRE(options.incumbent_argmin.has_value(),
                   "incumbent value requires an incumbent argmin");
    result.feasible = true;
    result.argmin = *options.incumbent_argmin;
    result.value = *options.incumbent_value;
  }

  struct Node {
    double bound;
    std::int64_t lo;
    std::int64_t hi;
    bool operator>(const Node& other) const { return bound > other.bound; }
  };
  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> frontier;
  frontier.push({bound(lo, hi), lo, hi});

  // Prune only intervals that provably cannot improve the lexicographic
  // incumbent: bound strictly above the value, or equal value with every
  // index at or above the incumbent argmin.
  auto prunable = [&](double interval_bound, std::int64_t interval_lo) {
    if (!result.feasible) return false;
    if (interval_bound > result.value) return true;
    return interval_bound == result.value && interval_lo >= result.argmin;
  };

  std::uint64_t nodes = 0;
  while (!frontier.empty() && nodes < options.max_nodes) {
    const Node node = frontier.top();
    frontier.pop();
    ++nodes;

    if (prunable(node.bound, node.lo)) continue;

    const std::int64_t width = node.hi - node.lo + 1;
    if (width <= options.leaf_width) {
      for (std::int64_t m = node.lo; m <= node.hi; ++m) {
        ++result.evaluations;
        const std::optional<double> value = objective(m);
        if (value.has_value() && improves(*value, m, result)) {
          result.feasible = true;
          result.argmin = m;
          result.value = *value;
        }
      }
      continue;
    }

    const std::int64_t mid = node.lo + width / 2;
    const double left_bound = bound(node.lo, mid - 1);
    const double right_bound = bound(mid, node.hi);
    if (!prunable(left_bound, node.lo)) {
      frontier.push({left_bound, node.lo, mid - 1});
    }
    if (!prunable(right_bound, mid)) {
      frontier.push({right_bound, mid, node.hi});
    }
  }
  result.complete = frontier.empty();
  return result;
}

}  // namespace ripple::opt
