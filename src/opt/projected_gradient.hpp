// Projected-gradient descent for ConvexProblem.
//
// Slower but structurally independent of the barrier solver; tests use it to
// cross-validate optima, mirroring how one would sanity-check BONMIN output.
#pragma once

#include "opt/problem.hpp"
#include "util/result.hpp"

namespace ripple::opt {

struct ProjectedGradientOptions {
  int max_iterations = 5000;
  double initial_step = 1.0;
  double step_shrink = 0.5;
  double step_grow = 1.25;
  double tolerance = 1e-10;  ///< stop when an accepted move is smaller than this
};

struct ProjectedGradientSolution {
  linalg::Vector x;
  double objective = 0.0;
  int iterations = 0;
};

/// Minimize from `start` (need not be feasible; it is projected first).
/// Fails with "no_feasible_point" when projection cannot find the set.
util::Result<ProjectedGradientSolution> projected_gradient_minimize(
    const ConvexProblem& problem, const linalg::Vector& start,
    const ProjectedGradientOptions& options = {});

}  // namespace ripple::opt
