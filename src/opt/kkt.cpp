#include "opt/kkt.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/solve.hpp"
#include "util/assert.hpp"

namespace ripple::opt {

KktReport check_kkt(const ConvexProblem& problem, const linalg::Vector& x,
                    double active_tolerance) {
  RIPPLE_REQUIRE(x.size() == problem.dimension(), "point dimension mismatch");
  KktReport report;
  report.primal_infeasibility = problem.infeasibility(x);

  // Gather active constraint normals (outward: a with a.x <= rhs active, and
  // +-e_i for bounds).
  std::vector<linalg::Vector> normals;
  const std::size_t n = x.size();
  for (const LinearInequality& c : problem.constraints) {
    if (c.slack(x) <= active_tolerance) {
      normals.push_back(c.coefficients);
      report.active_labels.push_back(c.label.empty() ? "ineq" : c.label);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (problem.lower_bounds[i] > -kInf &&
        x[i] - problem.lower_bounds[i] <= active_tolerance) {
      linalg::Vector e = linalg::zeros(n);
      e[i] = -1.0;  // lower bound is -x_i <= -l_i
      normals.push_back(std::move(e));
      report.active_labels.push_back("lower[" + std::to_string(i) + "]");
    }
    if (problem.upper_bounds[i] < kInf &&
        problem.upper_bounds[i] - x[i] <= active_tolerance) {
      linalg::Vector e = linalg::zeros(n);
      e[i] = 1.0;
      normals.push_back(std::move(e));
      report.active_labels.push_back("upper[" + std::to_string(i) + "]");
    }
  }

  const linalg::Vector g = problem.gradient(x);

  if (normals.empty()) {
    report.stationarity_residual = linalg::norm_inf(g);
    report.min_multiplier = 0.0;
    return report;
  }

  // Least-squares multipliers: minimize ||g + A^T lambda||_2 over lambda,
  // i.e. solve (A A^T) lambda = -A g. Regularize lightly in case active
  // normals are linearly dependent.
  const std::size_t k = normals.size();
  linalg::Matrix gram(k, k);
  linalg::Vector rhs(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      gram(i, j) = linalg::dot(normals[i], normals[j]);
    }
    rhs[i] = -linalg::dot(normals[i], g);
  }
  gram.add_diagonal(1e-12);
  auto lambda = linalg::solve_lu(gram, rhs);
  if (!lambda.ok()) {
    // Degenerate active set; report raw gradient norm as the residual.
    report.stationarity_residual = linalg::norm_inf(g);
    report.min_multiplier = 0.0;
    return report;
  }

  linalg::Vector residual = g;
  double min_multiplier = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    linalg::axpy(residual, lambda.value()[i], normals[i]);
    min_multiplier = std::min(min_multiplier, lambda.value()[i]);
  }
  report.stationarity_residual = linalg::norm_inf(residual);
  report.min_multiplier = min_multiplier;
  return report;
}

}  // namespace ripple::opt
