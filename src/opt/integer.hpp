// Integer minimization for the monolithic MINLP (one bounded integer
// variable, paper Figure 2).
//
// Two interchangeable drivers:
//   * minimize_integer_scan — exhaustive over [lo, hi]; exact, and fast
//     enough for the block sizes arising here (hi <= D * rho0 ~ 1e6).
//   * BranchAndBound1D — interval branch-and-bound with a caller-supplied
//     relaxation bound; the BONMIN-style algorithmic substrate, validated
//     against the scan in tests.
//
// Both drivers share the scan's tie-break semantics: among all feasible
// minimizers the lowest index wins, i.e. the result is the lexicographic
// minimum of (value, argmin). This makes branch-and-bound a drop-in,
// bit-identical replacement for the scan whenever it runs to completion.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

namespace ripple::opt {

/// Objective evaluation at an integer point: nullopt means infeasible there.
using IntegerObjective = std::function<std::optional<double>(std::int64_t)>;

/// Lower bound on the objective over all integers in [lo, hi] (inclusive),
/// ignoring feasibility (a valid relaxation bound).
using IntervalBound = std::function<double(std::int64_t lo, std::int64_t hi)>;

struct IntegerResult {
  bool feasible = false;
  std::int64_t argmin = 0;
  double value = 0.0;
  std::uint64_t evaluations = 0;
  /// True when the driver proved (value, argmin) is the exact lexicographic
  /// minimum over [lo, hi]: the scan always completes; branch-and-bound
  /// completes only if the frontier drained before `max_nodes` was hit.
  /// When false the incumbent may be suboptimal and callers must not claim
  /// optimality.
  bool complete = false;
};

/// Exhaustive scan of [lo, hi].
IntegerResult minimize_integer_scan(std::int64_t lo, std::int64_t hi,
                                    const IntegerObjective& objective);

struct BranchAndBoundOptions {
  /// Intervals at or below this width are enumerated exhaustively.
  std::int64_t leaf_width = 64;
  std::uint64_t max_nodes = 1u << 20;
  /// Optional warm incumbent: a feasible point whose value is already known
  /// (e.g. from a ringed neighborhood scan around a warm-start hint). It
  /// primes pruning but never biases the answer: the driver still returns
  /// the lexicographic minimum over the whole range, so an equal-valued
  /// lower index elsewhere in [lo, hi] still wins.
  std::optional<std::int64_t> incumbent_argmin;
  std::optional<double> incumbent_value;
};

/// Best-first interval branch-and-bound over [lo, hi].
IntegerResult branch_and_bound_minimize(std::int64_t lo, std::int64_t hi,
                                        const IntegerObjective& objective,
                                        const IntervalBound& bound,
                                        const BranchAndBoundOptions& options = {});

}  // namespace ripple::opt
