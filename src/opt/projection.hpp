// Euclidean projection onto the feasible polytope of a ConvexProblem
// (intersection of half-spaces and a box) via Dykstra's alternating
// projections. Used by the projected-gradient cross-check solver.
#pragma once

#include "opt/problem.hpp"
#include "util/result.hpp"

namespace ripple::opt {

struct ProjectionOptions {
  int max_sweeps = 2000;
  double tolerance = 1e-12;  ///< stop when a full sweep moves x less than this
};

/// Project `point` onto the problem's feasible set. Fails with
/// "no_convergence" if Dykstra does not settle within the sweep budget
/// (e.g. the feasible set is empty).
util::Result<linalg::Vector> project_to_feasible(const ConvexProblem& problem,
                                                 const linalg::Vector& point,
                                                 const ProjectionOptions& options = {});

}  // namespace ripple::opt
