#include "opt/barrier.hpp"

#include <cmath>

#include "linalg/solve.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace ripple::opt {

namespace {

/// Count of barrier terms m (constraints + finite bounds): the duality-gap
/// proxy is m * mu.
std::size_t barrier_term_count(const ConvexProblem& p) {
  std::size_t m = p.constraints.size();
  for (std::size_t i = 0; i < p.dimension(); ++i) {
    if (p.lower_bounds[i] > -kInf) ++m;
    if (p.upper_bounds[i] < kInf) ++m;
  }
  return m;
}

double barrier_value(const ConvexProblem& p, const linalg::Vector& x, double mu) {
  double value = p.objective(x);
  for (const auto& c : p.constraints) {
    const double s = c.slack(x);
    if (s <= 0.0) return kInf;
    value -= mu * std::log(s);
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (p.lower_bounds[i] > -kInf) {
      const double s = x[i] - p.lower_bounds[i];
      if (s <= 0.0) return kInf;
      value -= mu * std::log(s);
    }
    if (p.upper_bounds[i] < kInf) {
      const double s = p.upper_bounds[i] - x[i];
      if (s <= 0.0) return kInf;
      value -= mu * std::log(s);
    }
  }
  return value;
}

linalg::Vector barrier_gradient(const ConvexProblem& p, const linalg::Vector& x,
                                double mu) {
  linalg::Vector g = p.gradient(x);
  for (const auto& c : p.constraints) {
    const double s = c.slack(x);
    // grad of -mu log(rhs - a.x) is +mu a / s
    linalg::axpy(g, mu / s, c.coefficients);
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (p.lower_bounds[i] > -kInf) g[i] -= mu / (x[i] - p.lower_bounds[i]);
    if (p.upper_bounds[i] < kInf) g[i] += mu / (p.upper_bounds[i] - x[i]);
  }
  return g;
}

linalg::Matrix barrier_hessian(const ConvexProblem& p, const linalg::Vector& x,
                               double mu) {
  const std::size_t n = x.size();
  linalg::Matrix h = p.hessian ? p.hessian(x) : linalg::Matrix(n, n, 0.0);
  for (const auto& c : p.constraints) {
    const double s = c.slack(x);
    const double w = mu / (s * s);
    for (std::size_t i = 0; i < n; ++i) {
      const double ai = c.coefficients[i];
      if (ai == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        h(i, j) += w * ai * c.coefficients[j];
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (p.lower_bounds[i] > -kInf) {
      const double s = x[i] - p.lower_bounds[i];
      h(i, i) += mu / (s * s);
    }
    if (p.upper_bounds[i] < kInf) {
      const double s = p.upper_bounds[i] - x[i];
      h(i, i) += mu / (s * s);
    }
  }
  return h;
}

}  // namespace

util::Result<BarrierSolution> barrier_minimize(const ConvexProblem& problem,
                                               const linalg::Vector& interior_start,
                                               const BarrierOptions& options) {
  using R = util::Result<BarrierSolution>;
  RIPPLE_REQUIRE(static_cast<bool>(problem.objective), "objective required");
  RIPPLE_REQUIRE(static_cast<bool>(problem.gradient), "gradient required");
  RIPPLE_REQUIRE(interior_start.size() == problem.dimension(),
                 "start point dimension mismatch");

  if (problem.min_slack(interior_start) <= 0.0) {
    return R::failure("not_interior", "start point is not strictly feasible");
  }

  const std::size_t m = barrier_term_count(problem);
  BarrierSolution solution;
  solution.x = interior_start;

  double mu = options.initial_mu;
  for (int outer = 0; outer < options.max_outer_iterations; ++outer) {
    ++solution.outer_iterations;

    // Inner: damped Newton on the barrier-augmented objective at fixed mu.
    for (int inner = 0; inner < options.max_newton_iterations; ++inner) {
      const linalg::Vector g = barrier_gradient(problem, solution.x, mu);
      linalg::Matrix h = barrier_hessian(problem, solution.x, mu);

      auto step = linalg::solve_cholesky(h, linalg::scale(g, -1.0));
      if (!step.ok()) {
        // Regularize a non-SPD Hessian (numerical, or missing objective
        // Hessian) and fall back to LU.
        h.add_diagonal(1e-8 * (1.0 + linalg::norm_inf(g)));
        auto retry = linalg::solve_lu(h, linalg::scale(g, -1.0));
        if (!retry.ok()) {
          return R::failure("singular", "Newton system unsolvable: " +
                                            retry.error().message);
        }
        step = std::move(retry);
      }
      const linalg::Vector& direction = step.value();

      const double decrement2 = -linalg::dot(g, direction);  // lambda^2
      if (decrement2 * 0.5 <= options.newton_tolerance) break;
      ++solution.newton_iterations;

      // Backtracking: stay strictly feasible, then Armijo on barrier value.
      const double base = barrier_value(problem, solution.x, mu);
      double t = 1.0;
      linalg::Vector candidate = solution.x;
      bool accepted = false;
      for (int bt = 0; bt < 80; ++bt) {
        candidate = solution.x;
        linalg::axpy(candidate, t, direction);
        if (problem.min_slack(candidate) > 0.0) {
          const double value = barrier_value(problem, candidate, mu);
          if (value <= base - options.armijo_c * t * decrement2) {
            accepted = true;
            break;
          }
        }
        t *= options.backtrack_ratio;
      }
      if (!accepted) break;  // step stalled; outer loop will tighten mu
      solution.x = std::move(candidate);
    }

    if (static_cast<double>(m) * mu < options.gap_tolerance) {
      solution.objective = problem.objective(solution.x);
      solution.final_mu = mu;
      return solution;
    }
    mu *= options.mu_shrink;
  }

  return R::failure("no_convergence", "barrier iteration budget exhausted");
}

}  // namespace ripple::opt
