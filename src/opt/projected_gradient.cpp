#include "opt/projected_gradient.hpp"

#include "opt/projection.hpp"
#include "util/assert.hpp"

namespace ripple::opt {

util::Result<ProjectedGradientSolution> projected_gradient_minimize(
    const ConvexProblem& problem, const linalg::Vector& start,
    const ProjectedGradientOptions& options) {
  using R = util::Result<ProjectedGradientSolution>;

  auto projected_start = project_to_feasible(problem, start);
  if (!projected_start.ok()) {
    return R::failure("no_feasible_point", projected_start.error().message);
  }

  ProjectedGradientSolution solution;
  solution.x = std::move(projected_start).take();
  double value = problem.objective(solution.x);
  double step = options.initial_step;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++solution.iterations;
    const linalg::Vector g = problem.gradient(solution.x);

    // Try a gradient step, project, accept on decrease; otherwise shrink.
    bool accepted = false;
    for (int attempt = 0; attempt < 60; ++attempt) {
      linalg::Vector trial = solution.x;
      linalg::axpy(trial, -step, g);
      auto projected = project_to_feasible(problem, trial);
      if (projected.ok()) {
        const linalg::Vector& candidate = projected.value();
        const double candidate_value = problem.objective(candidate);
        if (candidate_value < value) {
          const double moved =
              linalg::norm_inf(linalg::subtract(candidate, solution.x));
          solution.x = candidate;
          value = candidate_value;
          step *= options.step_grow;
          accepted = true;
          if (moved < options.tolerance) {
            solution.objective = value;
            return solution;
          }
          break;
        }
      }
      step *= options.step_shrink;
      if (step < 1e-16) break;
    }
    if (!accepted) break;  // no descent possible at any step length: done
  }

  solution.objective = value;
  return solution;
}

}  // namespace ripple::opt
